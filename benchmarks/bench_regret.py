"""Extension bench: regret of feedback control vs. the clairvoyant oracle.

How much throughput does *not knowing* the network/server state cost?
The oracle reads the experiment's schedules and always sits at the
computed sustainable rate; FrameFeedback must discover it from timeout
feedback.  Regret is the per-phase and whole-run throughput gap.
"""

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.report import ascii_table
from repro.experiments.standard import framefeedback_factory, oracle_factory


def _controllers():
    return {"FrameFeedback": framefeedback_factory(), "Oracle": oracle_factory()}


def test_regret_vs_oracle(benchmark, emit):
    fig3, fig4 = benchmark.pedantic(
        lambda: (
            run_fig3(seed=0, total_frames=4000, controllers=_controllers()),
            run_fig4(seed=0, total_frames=4000, controllers=_controllers()),
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, result in (("Table V", fig3), ("Table VI", fig4)):
        for ph in result.phases:
            ff = ph.mean_throughput["FrameFeedback"]
            oracle = ph.mean_throughput["Oracle"]
            rows.append(
                [
                    f"{label} {ph.label}",
                    f"{ff:6.2f}",
                    f"{oracle:6.2f}",
                    f"{oracle - ff:+6.2f}",
                ]
            )
    ff3 = fig3.runs["FrameFeedback"].qos.mean_throughput
    or3 = fig3.runs["Oracle"].qos.mean_throughput
    ff4 = fig4.runs["FrameFeedback"].qos.mean_throughput
    or4 = fig4.runs["Oracle"].qos.mean_throughput
    emit(
        "Regret vs clairvoyant oracle (per phase and whole run):\n"
        + ascii_table(["phase", "FrameFeedback", "Oracle", "regret"], rows)
        + f"\nwhole-run: network {ff3:.2f} vs {or3:.2f} "
        f"(regret {or3 - ff3:+.2f}); "
        f"load {ff4:.2f} vs {or4:.2f} (regret {or4 - ff4:+.2f})"
    )

    # feedback costs something on network scenarios (oracle knows the
    # schedule) but stays within ~25% overall...
    assert or3 - ff3 < 0.3 * or3
    # ...and under server load FrameFeedback is at least on par: the
    # oracle's analytic capacity model is no better than measuring.
    assert ff4 > or4 - 1.5
