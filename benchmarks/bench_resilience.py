"""Extension bench: the resilience stack under total-failure chaos.

Same seed, same fault plan, two devices: the paper's bare client vs
the full defense stack (hedged retries + circuit breaker with local
fallback + server overload pushback).  The claim under test is the
ISSUE's acceptance criterion: during a server blackout the breaker
trips within three control periods, every frame in the open window is
classified locally, and the deadline-violation rate during the outage
is *strictly lower* than the bare baseline's — resilience must buy
fewer violations, not merely different ones.
"""

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.chaos import ChaosScenario, run_chaos
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario
from repro.faults import BandwidthCollapse, FaultTimeline, ServerCrash
from repro.resilience import ResilienceConfig

OUTAGE = (25.0, 20.0)  # total-failure window [25, 45)
DURATION = 80.0
SEED = 11

INJECTORS = {
    "server-crash": lambda: ServerCrash(FaultTimeline.from_rows([OUTAGE])),
    "bw-collapse": lambda: BandwidthCollapse(
        FaultTimeline.from_rows([OUTAGE]), factor=0.01
    ),
}


def run_one(injector_factory, resilient: bool):
    chaos = ChaosScenario(
        base=Scenario(
            controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
            device=DeviceConfig(total_frames=int(DURATION * 30)),
            seed=SEED,
        ),
        injectors=[injector_factory()],
        resilience=ResilienceConfig() if resilient else None,
    )
    return run_chaos(chaos)


def test_resilience_vs_bare_under_total_failure(benchmark, emit):
    def sweep():
        return {
            name: (run_one(factory, False), run_one(factory, True))
            for name, factory in INJECTORS.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    heal = OUTAGE[0] + OUTAGE[1]
    rows = []
    for name, (bare, res) in results.items():
        bare_t = bare.run.traces.timeout_rate.mean_over(OUTAGE[0], heal)
        res_t = res.run.traces.timeout_rate.mean_over(OUTAGE[0], heal)
        trips = [c for c in res.invariants if c.name == "breaker-trip"]
        rows.append(
            [
                name,
                f"{bare_t:6.2f}",
                f"{res_t:6.2f}",
                f"{bare.run.qos.timeouts:5d}",
                f"{res.run.qos.timeouts:5d}",
                f"{trips[0].observed:5.2f}" if trips else "  n/a",
                "PASS" if res.all_invariants_hold else "FAIL",
            ]
        )
    emit(
        f"Bare vs resilient client, seed {SEED}, outage [{OUTAGE[0]:.0f},{heal:.0f})s "
        f"of a {DURATION:.0f}s run (T = violations/s during the outage):\n"
        + ascii_table(
            [
                "fault",
                "T bare",
                "T resil",
                "viol bare",
                "viol resil",
                "trip (periods)",
                "invariants",
            ],
            rows,
        )
    )

    for name, (bare, res) in results.items():
        # the acceptance criterion: strictly fewer violations during
        # the outage, on the same seed
        bare_t = bare.run.traces.timeout_rate.mean_over(OUTAGE[0], heal)
        res_t = res.run.traces.timeout_rate.mean_over(OUTAGE[0], heal)
        assert res_t < bare_t, f"{name}: resilience did not reduce violations"
        assert res.run.qos.timeouts < bare.run.qos.timeouts, name
        # the full invariant surface holds: trip <= 3 periods, standing
        # probe at 0.1 F_s, bounded re-close after healing
        assert res.all_invariants_hold, [
            c.detail for c in res.invariants if not c.passed
        ]
        # no free lunch claimed elsewhere: overall throughput with the
        # stack is no worse than the bare run's
        assert (
            res.run.traces.throughput.mean_over(0.0, DURATION)
            >= bare.run.traces.throughput.mean_over(0.0, DURATION) - 0.5
        )
