"""Table II bench: recover every P_l cell through the device pipeline."""

from repro.experiments.report import render_table2
from repro.experiments.table2 import run_table2


def test_table2_local_rates(benchmark, emit):
    cells = benchmark.pedantic(
        lambda: run_table2(duration=120.0, seed=0), rounds=1, iterations=1
    )
    emit(render_table2(cells))
    assert all(cell.relative_error < 0.05 for cell in cells)
