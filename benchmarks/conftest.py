"""Shared benchmark fixtures.

Each bench regenerates one paper table/figure: the timed body runs the
experiment, and the rendered rows/series are printed straight to the
terminal (bypassing capture) so `pytest benchmarks/ --benchmark-only`
shows the same output the paper reports.
"""

import pytest


@pytest.fixture
def emit(capsys):
    """Print around pytest's output capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
