"""Characterization bench: the latency/violation cliff (§I contribution 1).

Open-loop sweep: offload at fixed rates on the congested (bw=4) link
and report end-to-end RTT percentiles and the violation rate ``T`` at
each offered rate.  The resulting hockey stick — flat RTT, then a
queueing cliff just past ~13 fps — is the landscape FrameFeedback has
to navigate blind; the closed loop's whole job is to sit just left of
this cliff without knowing where it is.
"""

import numpy as np

from repro.control.baselines import FixedRateController
from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.netem.profiles import CONGESTED
from repro.workloads.schedules import steady_schedule

OFFERED_RATES = (3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 24.0, 30.0)


def _sweep(seed=0, total_frames=1200):
    device = DeviceConfig(total_frames=total_frames)
    out = {}
    for rate in OFFERED_RATES:
        result = run_scenario(
            Scenario(
                controller_factory=lambda c, _rate=rate: FixedRateController(_rate),
                device=device,
                network=steady_schedule(CONGESTED),
                seed=seed,
            )
        )
        rtts = np.array(
            [s.total for s in result.breakdown.samples if s.ok], dtype=float
        )
        out[rate] = {
            "p50": float(np.percentile(rtts, 50)) if rtts.size else float("nan"),
            "p95": float(np.percentile(rtts, 95)) if rtts.size else float("nan"),
            "T": result.qos.mean_violation_rate,
            "P": result.qos.mean_throughput,
        }
    return out


def test_open_loop_latency_curve(benchmark, emit):
    curve = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{rate:g}",
            f"{row['p50'] * 1e3:6.1f}",
            f"{row['p95'] * 1e3:6.1f}",
            f"{row['T']:5.2f}",
            f"{row['P']:6.2f}",
        ]
        for rate, row in curve.items()
    ]
    emit(
        "Open-loop offload sweep on the bw=4 link "
        "(fixed P_o, RTT of successes in ms):\n"
        + ascii_table(["offered P_o", "RTT p50", "RTT p95", "T (/s)", "P"], rows)
    )

    # below the cliff: RTTs comfortable, violations ~0
    assert curve[6.0]["T"] < 0.5
    assert curve[6.0]["p95"] < 0.25
    # past the cliff (link capacity ~13 fps): violations explode
    assert curve[18.0]["T"] > 5.0
    # total throughput peaks near the cliff, not at max offloading
    best_rate = max(curve, key=lambda r: curve[r]["P"])
    assert 9.0 <= best_rate <= 15.0
    # RTT p95 is monotically worse across the cliff
    assert curve[15.0]["p95"] > curve[6.0]["p95"]
