"""Extension bench: violation-reactive vs latency-predictive control.

FrameFeedback reacts to violations; the Headroom variant reacts to the
p95 RTT of frames that *succeeded*, backing off while there is still
margin under the deadline.  Both run the paper's two scenarios; the
trade is violations vs. capacity used.
"""

from repro.control.headroom import HeadroomController
from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.workloads.schedules import table_v_schedule, table_vi_schedule


def _run(factory, network=None, load=None, seed=0, total_frames=4000):
    return run_scenario(
        Scenario(
            controller_factory=factory,
            device=DeviceConfig(total_frames=total_frames),
            network=network,
            load=load,
            seed=seed,
        )
    )


def test_headroom_vs_framefeedback(benchmark, emit):
    def sweep():
        headroom = lambda c: HeadroomController(c.frame_rate, c.deadline)  # noqa: E731
        return {
            ("Table V", "FrameFeedback"): _run(framefeedback_factory(), network=table_v_schedule()),
            ("Table V", "Headroom"): _run(headroom, network=table_v_schedule()),
            ("Table VI", "FrameFeedback"): _run(framefeedback_factory(), load=table_vi_schedule()),
            ("Table VI", "Headroom"): _run(headroom, load=table_vi_schedule()),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            scenario,
            name,
            f"{r.qos.mean_throughput:6.2f}",
            f"{r.qos.mean_violation_rate:5.2f}",
            f"{r.qos.timeouts:5d}",
        ]
        for (scenario, name), r in results.items()
    ]
    emit(
        "Violation-reactive (FrameFeedback) vs latency-predictive (Headroom):\n"
        + ascii_table(["scenario", "controller", "mean P", "mean T", "violations"], rows)
    )

    # network: equal throughput, roughly half the violations
    ff_v, hr_v = results[("Table V", "FrameFeedback")], results[("Table V", "Headroom")]
    assert hr_v.qos.mean_throughput > ff_v.qos.mean_throughput - 1.0
    assert hr_v.qos.timeouts < 0.75 * ff_v.qos.timeouts
    # load: violations cut >2x for at most ~10% throughput
    ff_l, hr_l = results[("Table VI", "FrameFeedback")], results[("Table VI", "Headroom")]
    assert hr_l.qos.timeouts < 0.5 * ff_l.qos.timeouts
    assert hr_l.qos.mean_throughput > 0.88 * ff_l.qos.mean_throughput
