"""Figure 3 bench: 4,000 frames x 4 controllers under Table V network.

Paper shape: equivalence at bw=10; FrameFeedback 1.5-3x over
all-or-nothing at bw=4 and under loss; FF == LocalOnly at bw=1 while
AlwaysOffload collapses.
"""

from repro.experiments.fig3 import run_fig3
from repro.experiments.report import render_fig3


def test_fig3_network_comparison(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig3(seed=0, total_frames=4000), rounds=1, iterations=1
    )
    emit(render_fig3(result))

    phases = result.phases
    # intermediate regimes: FrameFeedback wins by >= 1.3x
    for idx in (1, 4, 5):
        assert phases[idx].winner() == "FrameFeedback"
        assert phases[idx].advantage_over("FrameFeedback", "AllOrNothing") > 1.3
    # dead network: FF falls back to local-only throughput
    assert abs(
        phases[2].mean_throughput["FrameFeedback"]
        - phases[2].mean_throughput["LocalOnly"]
    ) < 1.5
