"""Figure 4 bench: 4,000 frames x 4 controllers under Table VI load.

Paper shape: FrameFeedback fits offloading in below saturation,
degrades gracefully to ~P_l at the 150 req/s peak, and recovers;
baselines either collapse (AlwaysOffload) or flap (AllOrNothing).
"""

from repro.experiments.fig4 import run_fig4
from repro.experiments.report import render_fig4


def test_fig4_server_load_comparison(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig4(seed=0, total_frames=4000), rounds=1, iterations=1
    )
    emit(render_fig4(result))

    phases = result.phases
    for ph in phases[1:-1]:  # every loaded phase
        assert ph.winner() == "FrameFeedback", ph.label
    peak = phases[4]  # 150 req/s
    assert abs(peak.mean_throughput["FrameFeedback"] - 13.0) < 2.5
    assert peak.mean_throughput["AlwaysOffload"] < 6.0
