"""Extension bench: the asyncio gateway under load, healthy vs killed.

Two wall-clock bursts with the same seeded arrival pattern: one
against a healthy gateway, one with a mid-run kill/restart injected
from the spec'd fault timeline.  The claims under test are the ISSUE's
acceptance criteria: the event loop keeps a 200-client burst on
schedule (bounded p99 tick jitter), accounting stays closed on both
wire ends through the outage, and every wall-clock chaos invariant
(breaker trip, local fallback, re-close, recovery) holds.
"""

import asyncio

from repro.experiments.report import ascii_table
from repro.realtime.chaos import default_realtime_spec, run_realtime_chaos_async
from repro.realtime.gateway import GatewayConfig, InferenceGateway
from repro.realtime.loadgen import LoadgenConfig, run_loadgen

CLIENTS = 200
DURATION = 3.0
SEED = 0


async def healthy_burst():
    gateway = await InferenceGateway(GatewayConfig()).start()
    try:
        config = LoadgenConfig(
            clients=CLIENTS,
            frame_rate=4.0,
            deadline=0.3,
            duration=DURATION,
            frame_bytes=512,
            seed=SEED,
        )
        report = await run_loadgen(config, gateway.address)
    finally:
        await gateway.stop()
    return report, gateway.stats


def test_gateway_burst_and_chaos(benchmark, emit):
    def sweep():
        report, stats = asyncio.run(healthy_burst())
        chaos = asyncio.run(run_realtime_chaos_async(default_realtime_spec(SEED)))
        return report, stats, chaos

    report, stats, chaos = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            "healthy burst",
            f"{report.clients}",
            f"{report.completed}",
            f"{report.outcomes.get('fallback_local', 0)}",
            f"{report.jitter_p99 * 1e3:.1f}ms",
            "yes" if report.accounting_closed and stats.accounting_closed else "NO",
        ],
        [
            "kill/restart",
            f"{chaos.report.clients}",
            f"{chaos.report.completed}",
            f"{chaos.report.outcomes.get('fallback_local', 0)}",
            f"{chaos.report.jitter_p99 * 1e3:.1f}ms",
            "yes" if chaos.all_invariants_hold else "NO",
        ],
    ]
    emit(
        "Asyncio gateway under load (wall clock)\n"
        + ascii_table(
            ["burst", "clients", "completed", "fallback", "p99 jitter", "gates"],
            rows,
        )
    )

    # the acceptance criteria, asserted
    assert report.accounting_closed and stats.accounting_closed
    assert report.jitter_p99 < 0.15
    assert chaos.all_invariants_hold
    for check in chaos.invariants:
        assert check.passed, check.name
