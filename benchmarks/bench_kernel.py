"""Substrate microbenchmarks (performance engineering, per the hpc guides).

Not a paper artifact: these keep the simulator fast enough that the
paper-scale runs above stay interactive.  Timed with pytest-benchmark's
default multi-round statistics (they are microseconds, not minutes).
"""

import numpy as np

from repro.control.base import Measurement
from repro.control.framefeedback import FrameFeedbackController
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.sim import Environment
from repro.sim.rng import RngRegistry


def test_kernel_event_throughput(benchmark):
    """Schedule + dispatch 10k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(0.001)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 9.9


def test_kernel_process_spawn_throughput(benchmark):
    """Spawn 5k short-lived processes."""

    def run():
        env = Environment()
        done = []

        def child(env):
            yield env.timeout(0.01)
            done.append(1)

        for _ in range(5_000):
            env.process(child(env))
        env.run()
        return len(done)

    assert benchmark(run) == 5_000


def test_kernel_sleep_throughput(benchmark):
    """10k allocation-free sleeps (the fast path behind periodic loops)."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.sleep(0.001)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) > 9.9


def test_kernel_timer_cancellation(benchmark):
    """20k armed-then-cancelled deadline timers (lazy heap deletion)."""

    def run():
        env = Environment()
        timers = [env.timeout(10.0) for _ in range(20_000)]
        for t in timers:
            assert t.cancel()
        env.run()
        assert env.now == 0.0  # every entry was dead; the clock never moved
        return len(timers)

    assert benchmark(run) == 20_000


def _offload_round_trip(traced: bool) -> int:
    """2k frames device->link->server->link->device (§II-B hot path).

    ``traced=True`` attaches a :class:`repro.trace.Tracer` and registers
    every frame, so each hop pays the full span-recording cost;
    ``traced=False`` is the production shape, where every hook is a
    single ``env.tracer is None`` check.
    """
    from repro.device.camera import Frame
    from repro.device.offload import OffloadClient
    from repro.server.server import EdgeServer
    from repro.trace import Tracer

    env = Environment()
    tracer = None
    if traced:
        tracer = Tracer()
        env.tracer = tracer
    box = ConditionBox(LinkConditions(bandwidth=10.0, loss=0.0))
    uplink = Link(env, np.random.default_rng(1), box, queue_bytes_cap=1e9)
    downlink = Link(env, np.random.default_rng(2), box, name="downlink",
                    queue_bytes_cap=1e9)
    server = EdgeServer(env, np.random.default_rng(3))
    done = {"ok": 0, "bad": 0}
    client = OffloadClient(
        env,
        uplink=uplink,
        downlink=downlink,
        server=server,
        tenant="bench",
        model_name="mobilenet_v3_small",
        deadline=0.25,
        response_bytes=256,
        on_success=lambda frame, rtt: done.__setitem__("ok", done["ok"] + 1),
        on_timeout=lambda frame, why: done.__setitem__("bad", done["bad"] + 1),
    )

    def driver(env):
        for i in range(2_000):
            if tracer is not None:
                tracer.begin_frame("bench", i, env.now, 11_700, "offload")
            client.send(Frame(frame_id=i, captured_at=env.now, nbytes=11_700))
            yield env.sleep(1.0 / 30.0)

    env.process(driver(env))
    env.run()
    if tracer is not None:
        assert len(tracer.frames) == 2_000
    return done["ok"] + done["bad"]


def test_kernel_offload_round_trip(benchmark):
    """The hot path with tracing disabled (the production default)."""
    assert benchmark(_offload_round_trip, False) == 2_000


def test_kernel_offload_round_trip_traced(benchmark):
    """The same path with full span recording, for the overhead delta."""
    assert benchmark(_offload_round_trip, True) == 2_000


def test_tracer_disabled_overhead_within_baseline_gate():
    """ISSUE-5 guard: a disabled tracer must cost <5% on the hot path.

    Fresh tracer-disabled throughput is compared against the committed
    ``BENCH_kernel.json`` "after" number, normalized by the same
    pure-heapq calibration loop the perf-smoke gate uses — so the 5%
    budget tracks the hooks added to the substrate, not machine speed.
    """
    import json
    import pathlib

    import kernel_baseline

    baseline = json.loads(
        (pathlib.Path(__file__).parent.parent / "BENCH_kernel.json").read_text()
    )
    scale = (
        kernel_baseline.calibration_score()
        / float(baseline["calibration_heapq_ops_per_sec"])
    )
    recorded = baseline["benches_events_per_sec"]["offload_round_trip"]
    expected = float(recorded["after"] if isinstance(recorded, dict) else recorded)
    fresh = kernel_baseline.bench_offload_round_trip()
    floor = expected * scale * 0.95
    assert fresh >= floor, (
        f"tracer-disabled offload path regressed >5%: {fresh:,.0f} ev/s "
        f"vs floor {floor:,.0f} (= {expected:,.0f} x {scale:.2f} x 0.95)"
    )


def test_link_frame_throughput(benchmark):
    """Push 2k frames through a lossy link."""

    def run():
        env = Environment()
        box = ConditionBox(LinkConditions(bandwidth=10.0, loss=0.05))
        link = Link(env, np.random.default_rng(0), box, queue_bytes_cap=1e9)
        delivered = []
        for i in range(2_000):
            link.send(11_700, i, lambda p: delivered.append(p))
        env.run()
        return len(delivered)

    assert benchmark(run) > 1_900


def test_controller_step_cost(benchmark):
    """One FrameFeedback update (the per-second hot path on a Pi)."""
    c = FrameFeedbackController(30.0)
    m = Measurement(
        time=0.0,
        frame_rate=30.0,
        offload_target=10.0,
        offload_rate=10.0,
        offload_success_rate=8.0,
        timeout_rate=2.0,
        timeout_rate_last=2.0,
        local_rate=13.0,
        throughput=21.0,
    )
    out = benchmark(lambda: c.update(m))
    assert 0.0 <= out <= 30.0


def test_full_scenario_60s_wall_time(benchmark):
    """A full 60 s closed-loop scenario (the unit of all experiments)."""
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.netem.profiles import CONGESTED
    from repro.workloads.schedules import steady_schedule

    scenario = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=1800),
        network=steady_schedule(CONGESTED),
        seed=0,
    )
    result = benchmark.pedantic(
        lambda: run_scenario(scenario), rounds=3, iterations=1
    )
    assert result.qos.mean_throughput > 10.0
