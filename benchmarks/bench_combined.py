"""§IV-C extension bench: combined network + server-load stress.

The paper mentions (and cuts for space) that the two latency sources
combine "largely additively"; this bench runs Table V x Table VI
simultaneously and checks the additivity direction.
"""

from repro.experiments.combined import run_additivity_check, run_combined


def test_combined_stress(benchmark, emit):
    combined = benchmark.pedantic(
        lambda: run_combined(seed=0, total_frames=4000), rounds=1, iterations=1
    )
    additivity = run_additivity_check(seed=0, total_frames=2400)

    lines = ["Sec IV-C combined stress (Table V x stretched Table VI):"]
    for run in combined.runs.values():
        lines.append("  " + run.qos.row())
    lines.append(
        "  FrameFeedback mean T:  "
        f"network-only={additivity['network']:.2f}/s  "
        f"load-only={additivity['load']:.2f}/s  "
        f"both={additivity['both']:.2f}/s"
    )
    emit("\n".join(lines))

    qos = {name: run.qos.mean_throughput for name, run in combined.runs.items()}
    assert qos["FrameFeedback"] == max(qos.values())
    assert additivity["both"] >= 0.8 * max(additivity["network"], additivity["load"])
