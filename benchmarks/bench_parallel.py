"""Harness bench: process-parallel sweep throughput.

Seed sweeps dominate wall time when studying robustness; this bench
measures the pool speedup on an 8-seed Table V sweep and verifies the
parallel results are bit-identical to serial execution (determinism
survives process boundaries).
"""

import json
import os
import time

from repro.experiments.parallel import run_many, seed_sweep_configs
from repro.experiments.report import ascii_table
from repro.sim import core as sim_core

BASE = {
    "controller": "FrameFeedback",
    "device": {"total_frames": 4000},  # full paper-scale runs: pool
    "network": [  # startup (~0.5 s) must amortize
        [0, 10, 0],
        [30, 4, 0],
        [45, 1, 0],
        [60, 10, 0],
        [90, 10, 7],
        [105, 4, 7],
    ],
}

SEEDS = range(8)


def test_parallel_sweep(benchmark, emit):
    configs = seed_sweep_configs(BASE, SEEDS)

    t0 = time.perf_counter()
    serial = run_many(configs, workers=1)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_many(configs, workers=4), rounds=1, iterations=1
    )
    parallel_wall = time.perf_counter() - t0

    cores = os.cpu_count() or 1
    emit(
        f"8-seed Table V sweep, serial vs 4-way process pool ({cores} core(s)):\n"
        + ascii_table(
            ["mode", "wall (s)", "runs/s"],
            [
                ["serial", f"{serial_wall:5.2f}", f"{8 / serial_wall:5.2f}"],
                ["pool x4", f"{parallel_wall:5.2f}", f"{8 / parallel_wall:5.2f}"],
            ],
        )
        + f"\nspeedup: {serial_wall / parallel_wall:.2f}x"
        + (" (single core: correctness/overhead check only)" if cores == 1 else "")
    )

    # determinism across process boundaries: identical scalars per seed
    assert [s.mean_throughput for s in serial] == [
        p.mean_throughput for p in parallel
    ]
    assert [s.successful for s in serial] == [p.successful for p in parallel]
    if cores > 1:
        # with real cores the pool must win outright
        assert parallel_wall < serial_wall
    else:
        # on one core the pool may only add bounded overhead
        assert parallel_wall < serial_wall * 1.5


def test_sweep_kernel_event_cost(emit):
    """Kernel events/sec across one paper-scale run, via EnvStats.

    The wall-clock of a sweep is (events per run) x (cost per event) /
    workers; this reports both factors so a kernel regression is
    attributable before it shows up as a slower sweep.  The numbers are
    the in-simulator counterpart of ``BENCH_kernel.json`` (which CI
    gates on via ``kernel_baseline.py --check``).
    """
    configs = seed_sweep_configs(BASE, range(1))
    sink: list = []
    sim_core.capture_env_stats(sink)
    try:
        t0 = time.perf_counter()
        run_many(configs, workers=1)
        wall = time.perf_counter() - t0
    finally:
        sim_core.capture_env_stats(None)

    processed = sum(s.events_processed for s in sink)
    cancelled = sum(s.events_cancelled for s in sink)
    assert processed > 0
    emit(
        "paper-scale run kernel cost (EnvStats over "
        f"{len(sink)} environment(s)):\n"
        + json.dumps(
            {
                "events_processed": processed,
                "events_cancelled": cancelled,
                "events_per_wall_sec": round(processed / wall, 1),
                "wall_sec": round(wall, 2),
            },
            indent=1,
        )
    )
