"""Extension bench: T_n vs T_l attribution (paper Table I notation).

The device cannot tell network timeouts from load timeouts — and
FrameFeedback does not need to (§II-B).  The harness, omniscient,
attributes every violation; this bench shows the Table V run's
violations land on ``T_n`` and the Table VI run's on ``T_l``, plus the
per-component latency profile of successful offloads.
"""

from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.workloads.schedules import table_v_schedule, table_vi_schedule


def _run(network=None, load=None, seed=0):
    device = DeviceConfig(total_frames=4000)
    return run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=device,
            network=network,
            load=load,
            duration=device.stream_duration + 2.0,
            seed=seed,
        )
    )


def test_timeout_attribution(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {
            "Table V (network)": _run(network=table_v_schedule()),
            "Table VI (load)": _run(load=table_vi_schedule()),
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, result in results.items():
        rates = result.breakdown.cause_rates(0.0, result.elapsed)
        rows.append(
            [
                label,
                f"{rates['T_n']:5.2f}",
                f"{rates['T_l']:5.2f}",
                result.breakdown.total_violations,
            ]
        )
    stats = results["Table VI (load)"].breakdown.component_stats()
    comp = ascii_table(
        ["component", "mean (ms)", "p50 (ms)", "p95 (ms)"],
        [
            [name, f"{s.mean * 1e3:6.1f}", f"{s.p50 * 1e3:6.1f}", f"{s.p95 * 1e3:6.1f}"]
            for name, s in stats.items()
        ],
    )
    emit(
        "Timeout attribution (violations/s, FrameFeedback):\n"
        + ascii_table(["scenario", "T_n", "T_l", "total"], rows)
        + "\n\nSuccessful-offload latency components (Table VI run):\n"
        + comp
    )

    net = results["Table V (network)"].breakdown.cause_rates(
        0.0, results["Table V (network)"].elapsed
    )
    load = results["Table VI (load)"].breakdown.cause_rates(
        0.0, results["Table VI (load)"].elapsed
    )
    assert net["T_n"] > 3 * max(net["T_l"], 0.05)
    assert load["T_l"] > 3 * max(load["T_n"], 0.05)
