"""Standalone DES-kernel baseline runner: emits ``BENCH_kernel.json``.

Unlike the pytest-benchmark suites in this directory, this runner has
no dependencies beyond the repo itself, so CI's perf-smoke job (and
anyone bisecting a slowdown) can run it directly::

    PYTHONPATH=src python benchmarks/kernel_baseline.py --json BENCH_kernel.json
    PYTHONPATH=src python benchmarks/kernel_baseline.py --check BENCH_kernel.json

``--check`` compares a fresh run against the committed baseline and
exits non-zero when event throughput regresses more than
``--tolerance`` (default 25 %).  Raw events/sec are machine-dependent,
so the comparison is normalized by a pure-``heapq`` calibration loop
measured both at baseline-record time and at check time: the check
compares *kernel overhead relative to what this machine can do*, which
transfers across hosts far better than absolute rates.

The runner feature-detects the kernel fast path (``Environment.sleep``,
``Event.cancel``) and falls back to the slow-path equivalents, so the
same script produced the pre-optimization "before" numbers recorded in
``BENCH_kernel.json``.
"""

from __future__ import annotations

import argparse
import heapq
import json
import platform
import sys
import time
from typing import Callable, Dict, Optional

from repro.sim import Environment

#: benches whose throughput the --check gate enforces
GATED = ("event_throughput", "offload_round_trip", "routed_round_trip")

#: max fraction of round-trip throughput the fleet Router may cost at
#: N=1 (same substrate, one-server pool): routing must be a seam, not
#: a tax.  Checked from the same fresh run, so machine speed cancels.
ROUTER_OVERHEAD_MAX = 0.05

#: minimum paired speedup of the hybrid kernel over exact DES on the
#: steady-state sweep (both sides measured back-to-back on the same
#: host, so machine speed cancels — no calibration needed)
HYBRID_SPEEDUP_MIN = 3.0


def _best_of(fn: Callable[[], float], reps: int = 3) -> float:
    """Run ``fn`` (returns an ops count) ``reps`` times; best ops/sec."""
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        ops = fn()
        wall = time.perf_counter() - t0
        if wall > 0:
            best = max(best, ops / wall)
    return best


def calibration_score(reps: int = 3) -> float:
    """Machine-speed reference: pure-python heapq push/pop ops/sec.

    Used to normalize kernel throughput across machines — the kernel is
    a Python loop around a heap, so this tracks the dominant costs
    (interpreter dispatch, allocation, heap ops) without touching any
    repo code that a PR could change.
    """
    n = 200_000

    def run() -> float:
        h: list = []
        push, pop = heapq.heappush, heapq.heappop
        for i in range(n):
            push(h, ((i * 2654435761) & 1023, i))
        while h:
            pop(h)
        return 2.0 * n

    return _best_of(run, reps)


# ----------------------------------------------------------------------
# benches — each returns "events of useful work per wall second"
# ----------------------------------------------------------------------
def bench_event_throughput() -> float:
    """A periodic process ticking 50k times (camera/controller shape)."""
    n = 50_000

    def run() -> float:
        env = Environment()
        sleep = getattr(env, "sleep", None)

        def ticker(env):
            if sleep is not None:
                for _ in range(n):
                    yield sleep(0.001)
            else:
                for _ in range(n):
                    yield env.timeout(0.001)

        env.process(ticker(env))
        env.run()
        assert env.now > 0.001 * (n - 1)
        return float(n)

    return _best_of(run)


def bench_process_spawn() -> float:
    """5k short-lived processes (fork/join shape)."""
    n = 5_000

    def run() -> float:
        env = Environment()

        def child(env):
            yield env.timeout(0.01)

        for _ in range(n):
            env.process(child(env))
        env.run()
        return float(n)

    return _best_of(run)


def bench_timer_cancel() -> float:
    """20k armed-then-dead deadline timers (the offload watchdog shape).

    With a cancellable kernel the timers are cancelled and lazily
    skipped; without one they sit in the heap until the run drains
    them — which is exactly the cost the fast path removes.
    """
    n = 20_000

    def run() -> float:
        env = Environment()
        timers = [env.timeout(10.0) for _ in range(n)]
        if hasattr(timers[0], "cancel"):
            for t in timers:
                t.cancel()
        env.run()
        return float(n)

    return _best_of(run)


def bench_offload_round_trip() -> float:
    """Device->link->server->link->device for 2k frames, no controller.

    The §II-B pipelined path in isolation: token costs are frame
    serialization, the per-frame deadline watchdog, server batching and
    the response trip.  Good network, zero loss — every frame makes it,
    so the number is pure kernel + substrate overhead.
    """
    import numpy as np

    from repro.device.camera import Frame
    from repro.device.offload import OffloadClient
    from repro.netem.link import ConditionBox, Link, LinkConditions
    from repro.server.server import EdgeServer

    n = 2_000

    def run() -> float:
        env = Environment()
        box = ConditionBox(LinkConditions(bandwidth=10.0, loss=0.0))
        uplink = Link(env, np.random.default_rng(1), box, queue_bytes_cap=1e9)
        downlink = Link(env, np.random.default_rng(2), box, name="downlink",
                        queue_bytes_cap=1e9)
        server = EdgeServer(env, np.random.default_rng(3))
        done = {"ok": 0, "bad": 0}
        client = OffloadClient(
            env,
            uplink=uplink,
            downlink=downlink,
            server=server,
            tenant="bench",
            model_name="mobilenet_v3_small",
            deadline=0.25,
            response_bytes=256,
            on_success=lambda frame, rtt: done.__setitem__("ok", done["ok"] + 1),
            on_timeout=lambda frame, why: done.__setitem__("bad", done["bad"] + 1),
        )

        def driver(env):
            for i in range(n):
                client.send(Frame(frame_id=i, captured_at=env.now, nbytes=11_700))
                yield env.timeout(1.0 / 30.0)

        env.process(driver(env))
        env.run()
        assert done["ok"] + done["bad"] == n
        return float(n)

    return _best_of(run)


def bench_routed_round_trip() -> float:
    """The offload round trip through a one-server fleet Router.

    Identical substrate to :func:`bench_offload_round_trip` plus the
    fleet seam (ServerPool health tracking, token-bucket admission,
    per-attempt route selection).  The delta between the two benches is
    the router's per-frame cost, gated by :data:`ROUTER_OVERHEAD_MAX`.
    """
    import numpy as np

    from repro.device.camera import Frame
    from repro.device.offload import OffloadClient
    from repro.fleet.config import FleetConfig
    from repro.fleet.pool import ServerPool
    from repro.fleet.router import Router
    from repro.netem.link import ConditionBox, Link, LinkConditions
    from repro.server.server import EdgeServer

    n = 2_000

    def run() -> float:
        env = Environment()
        box = ConditionBox(LinkConditions(bandwidth=10.0, loss=0.0))
        uplink = Link(env, np.random.default_rng(1), box, queue_bytes_cap=1e9)
        downlink = Link(env, np.random.default_rng(2), box, name="downlink",
                        queue_bytes_cap=1e9)
        server = EdgeServer(env, np.random.default_rng(3), name="edge0")
        # admission generous enough to never throttle the 30 fps stream
        pool = ServerPool(
            env, [server], FleetConfig(admission_rate=1e9, admission_burst=1e9)
        )
        router = Router(pool)
        done = {"ok": 0, "bad": 0}
        client = OffloadClient(
            env,
            uplink=uplink,
            downlink=downlink,
            server=server,
            tenant="bench",
            model_name="mobilenet_v3_small",
            deadline=0.25,
            response_bytes=256,
            on_success=lambda frame, rtt: done.__setitem__("ok", done["ok"] + 1),
            on_timeout=lambda frame, why: done.__setitem__("bad", done["bad"] + 1),
            router=router,
        )

        def driver(env):
            for i in range(n):
                client.send(Frame(frame_id=i, captured_at=env.now, nbytes=11_700))
                yield env.timeout(1.0 / 30.0)

        env.process(driver(env))
        # the pool's health prober never exits, so bound the run instead
        # of draining the heap: stream length + one full deadline
        env.run(until=n / 30.0 + 1.0)
        assert done["ok"] + done["bad"] == n
        return float(n)

    return _best_of(run)


BENCHES: Dict[str, Callable[[], float]] = {
    "event_throughput": bench_event_throughput,
    "process_spawn": bench_process_spawn,
    "timer_cancel": bench_timer_cancel,
    "offload_round_trip": bench_offload_round_trip,
    "routed_round_trip": bench_routed_round_trip,
}


def measured_calendar_comparison() -> Dict[str, object]:
    """Paired heap vs calendar-queue throughput (prototype comparison).

    Re-runs two representative benches with ``REPRO_SIM_CALENDAR=1`` so
    :class:`~repro.sim.core.Environment` constructs the bucketed
    calendar queue (``repro/sim/calendar.py``) instead of the binary
    heap.  Back-to-back on the same host, so the ratio is the
    structure's cost directly.  Informational, not gated: the calendar
    is an opt-in prototype and the default kernel keeps whichever
    structure this comparison favors (see docs/performance.md).
    """
    import os

    out: Dict[str, object] = {}
    for name in ("event_throughput", "offload_round_trip"):
        fn = BENCHES[name]
        heap = fn()
        os.environ["REPRO_SIM_CALENDAR"] = "1"
        try:
            calendar = fn()
        finally:
            os.environ.pop("REPRO_SIM_CALENDAR", None)
        out[name] = {
            "heap": round(heap, 1),
            "calendar": round(calendar, 1),
            "ratio": round(calendar / heap, 3) if heap > 0 else 0.0,
        }
    return out


def measured_hybrid_speedup(pairs: int = 2) -> Dict[str, float]:
    """Paired exact-vs-hybrid frames/sec on the steady-state sweep.

    A 100 s FrameFeedback run over constant good network — the regime
    the fluid fast path exists for.  Exact and hybrid run back-to-back
    on the same scenario and the best pairing wins (scheduler noise
    only ever slows one side), mirroring
    :func:`measured_router_overhead`.  The paired speedup transfers
    across hosts without calibration and is gated by
    :data:`HYBRID_SPEEDUP_MIN` in ``--check``.
    """
    import os

    from repro.device.device import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.netem.link import LinkConditions
    from repro.workloads.schedules import steady_schedule

    total_frames = 3_000  # 100 s of 30 fps stream

    def scenario(kernel: str) -> "Scenario":
        device = DeviceConfig(total_frames=total_frames)
        return Scenario(
            controller_factory=framefeedback_factory(),
            device=device,
            network=steady_schedule(LinkConditions(bandwidth=10.0, loss=0.0)),
            duration=device.stream_duration + 1.0,
            seed=0,
            kernel=kernel,
        )

    # the env var would override scenario.kernel for both sides
    saved = os.environ.pop("REPRO_KERNEL", None)
    try:
        best = exact_fps = hybrid_fps = 0.0
        for _ in range(pairs):
            t0 = time.perf_counter()
            run_scenario(scenario("exact"))
            t1 = time.perf_counter()
            run_scenario(scenario("hybrid"))
            t2 = time.perf_counter()
            e = total_frames / (t1 - t0)
            h = total_frames / (t2 - t1)
            if e > 0 and h / e > best:
                best, exact_fps, hybrid_fps = h / e, e, h
    finally:
        if saved is not None:
            os.environ["REPRO_KERNEL"] = saved
    return {
        "exact_frames_per_sec": round(exact_fps, 1),
        "hybrid_frames_per_sec": round(hybrid_fps, 1),
        "speedup": round(best, 2),
    }


def measured_router_overhead(pairs: int = 3) -> float:
    """Best paired estimate of the router's N=1 throughput cost.

    Direct and routed round trips are measured back-to-back ``pairs``
    times and the most favorable pairing wins: scheduler noise on a
    loaded host only ever slows one side of a pair, so the best pair
    is the cleanest look at the systematic cost — a router that truly
    taxes the hot path shows up in every pairing.
    """
    best = 1.0
    for _ in range(pairs):
        direct = bench_offload_round_trip()
        routed = bench_routed_round_trip()
        if direct > 0:
            best = min(best, max(0.0, 1.0 - routed / direct))
    return best


def run_all() -> Dict[str, object]:
    results: Dict[str, float] = {}
    for name, fn in BENCHES.items():
        results[name] = round(fn(), 1)
    return {
        "calibration_heapq_ops_per_sec": round(calibration_score(), 1),
        "benches_events_per_sec": results,
        "calendar_queue_prototype": measured_calendar_comparison(),
        "hybrid_steady_state": measured_hybrid_speedup(),
        "machine": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
    }


def check(fresh: Dict[str, object], baseline: Dict[str, object],
          tolerance: float) -> int:
    """Gate: normalized throughput must be within ``tolerance`` of baseline."""
    base_cal = float(baseline["calibration_heapq_ops_per_sec"])
    fresh_cal = float(fresh["calibration_heapq_ops_per_sec"])
    scale = fresh_cal / base_cal  # how much faster this machine is
    failures = 0
    print(f"machine speed vs baseline host: {scale:.2f}x "
          f"(heapq {fresh_cal:,.0f} vs {base_cal:,.0f} ops/s)")
    baseline_benches = baseline["benches_events_per_sec"]
    for name in GATED:
        if name not in baseline_benches:
            continue  # older baseline predates this bench
        # the committed baseline stores before/after; gate on "after"
        recorded = baseline_benches[name]
        expected = float(recorded["after"] if isinstance(recorded, dict) else recorded)
        floor = expected * scale * (1.0 - tolerance)
        got = float(fresh["benches_events_per_sec"][name])
        verdict = "ok" if got >= floor else "REGRESSED"
        if got < floor:
            failures += 1
        print(f"  {name:22s} {got:12,.0f} ev/s  "
              f"(floor {floor:12,.0f} = {expected:,.0f} x {scale:.2f} "
              f"x {1 - tolerance:.2f})  {verdict}")
    # Router-overhead bound: routed vs direct round trip measured in
    # interleaved pairs on the same host, so machine speed cancels
    # exactly (no calibration needed).
    bound = float(baseline.get("router_overhead_max", ROUTER_OVERHEAD_MAX))
    overhead = measured_router_overhead()
    verdict = "ok" if overhead <= bound else "REGRESSED"
    if overhead > bound:
        failures += 1
    print(f"  router overhead (N=1)  {100 * overhead:10.2f} %    "
          f"(bound {100 * bound:.1f}%, best of 3 paired runs)  {verdict}")
    # Hybrid-kernel bound: exact and hybrid run back-to-back in the
    # fresh pass, so the paired speedup needs no calibration either.
    # Only gated once the committed baseline records the entry.
    if "hybrid_steady_state" in baseline:
        floor = float(baseline.get("hybrid_speedup_min", HYBRID_SPEEDUP_MIN))
        speedup = float(fresh["hybrid_steady_state"]["speedup"])
        verdict = "ok" if speedup >= floor else "REGRESSED"
        if speedup < floor:
            failures += 1
        print(f"  hybrid steady-state    {speedup:10.2f} x    "
              f"(floor {floor:.1f}x, paired exact-vs-hybrid)  {verdict}")
    return 1 if failures else 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=str, default=None,
                        help="write results to this path")
    parser.add_argument("--check", type=str, default=None,
                        help="compare against a committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized regression (default 0.25)")
    args = parser.parse_args(argv)

    fresh = run_all()
    text = json.dumps(fresh, indent=1, sort_keys=True)
    print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        return check(fresh, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
