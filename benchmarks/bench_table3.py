"""Table III bench: accuracy registry + the §II-D trade-off sweep."""

import pytest

from repro.experiments.report import render_table3
from repro.experiments.table3 import run_table3, run_tradeoff_sweep


def test_table3_accuracies(benchmark, emit):
    rows, sweep = benchmark.pedantic(
        lambda: (run_table3(), run_tradeoff_sweep()), rounds=1, iterations=1
    )
    emit(render_table3(rows, sweep))

    paper = {
        "EfficientNetB0": 0.771,
        "EfficientNetB4": 0.829,
        "MobileNetV3Small": 0.674,
        "MobileNetV3Large": 0.752,
    }
    for row in rows:
        assert row.top1 == pytest.approx(paper[row.display_name])
