"""Extension bench: fleet scaling — how many devices can one server carry?

§II-A.1 motivates multi-tenancy ("a single device's video stream may
under-utilize modern hardware"); this bench sweeps fleet size and
reports per-device and aggregate throughput, GPU utilization, and
Jain fairness — the capacity-planning curve a deployment would need.
"""

from repro.control.framefeedback import FrameFeedbackController
from repro.experiments.fleet import FleetScenario, homogeneous_fleet, run_fleet
from repro.experiments.report import ascii_table

FLEET_SIZES = (1, 2, 4, 8, 12)


def _sweep(total_frames=900, seed=0):
    out = {}
    for n in FLEET_SIZES:
        scenario = FleetScenario(
            members=homogeneous_fleet(n, total_frames=total_frames),
            controller_factory=lambda c: FrameFeedbackController(c.frame_rate),
            seed=seed,
        )
        out[n] = run_fleet(scenario)
    return out


def _failover_sweep(total_frames=900, seed=0):
    """One device per server-pool size, with a mid-run kill of edge0."""
    from repro.experiments.chaos import run_chaos
    from repro.fleet.chaos import fleet_chaos_scenario

    out = {}
    for n in (2, 3, 4):
        servers = tuple(f"edge{i}" for i in range(n))
        chaos = fleet_chaos_scenario(
            seed=seed,
            total_frames=total_frames,
            servers=servers,
            kill=("edge0", 8.34, 10.0),
        )
        out[n] = run_chaos(chaos)
    return out


def test_fleet_failover(benchmark, emit):
    """Kill/failover microbench: rescue cost across pool sizes.

    The ejection must never leak frames (accounting stays closed) and
    the surviving members must absorb the killed member's share.
    """
    results = benchmark.pedantic(_failover_sweep, rounds=1, iterations=1)

    rows = []
    for n, result in results.items():
        qos = result.run.qos
        ex = qos.extras
        rows.append(
            [
                n,
                f"{qos.successful:5d}/{qos.total_frames}",
                f"{ex.get('fleet.failovers', 0.0):4.0f}",
                f"{ex.get('fleet.crash_drops', 0.0):4.0f}",
                f"{qos.timeouts:4d}",
                f"{ex.get('fleet.mttr_mean', 0.0):6.2f}",
            ]
        )
    emit(
        "Fleet failover (kill edge0 @8.34s for 10s, one device):\n"
        + ascii_table(
            ["servers", "ok/total", "failover", "crash_drop", "timeouts", "MTTR"],
            rows,
        )
    )

    for n, result in results.items():
        qos = result.run.qos
        ex = qos.extras
        # accounting closed: every frame settles exactly once
        assert qos.successful + qos.timeouts + qos.dropped_local == qos.total_frames
        assert ex.get("fleet.outstanding") == 0.0
        # the kill is detected: edge0 is ejected and later re-admitted
        assert ex.get("fleet.edge0.ejections") == 1.0
        assert ex.get("fleet.mttr_count") == 1.0


def test_fleet_scaling(benchmark, emit):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for n, result in results.items():
        tp = list(result.throughputs().values())
        rows.append(
            [
                n,
                f"{sum(tp):7.1f}",
                f"{sum(tp) / n:6.2f}",
                f"{min(tp):6.2f}",
                f"{result.gpu_utilization:5.2f}",
                f"{result.mean_batch_size:5.1f}",
                f"{result.jain_fairness():5.3f}",
            ]
        )
    emit(
        "Fleet scaling (FrameFeedback on every device, ideal radios):\n"
        + ascii_table(
            ["devices", "aggregate P", "per-device", "min", "GPU util", "batch", "Jain"],
            rows,
        )
    )

    # §II-A.1: a single tenant fragments the GPU into tiny batches;
    # multi-tenancy amortizes the launch overhead into full ones
    assert results[1].mean_batch_size < 3.0
    assert results[12].mean_batch_size > 8.0
    assert results[12].gpu_utilization > results[1].gpu_utilization
    # aggregate throughput grows monotonically with fleet size
    aggregates = [sum(results[n].throughputs().values()) for n in FLEET_SIZES]
    assert all(b > a for a, b in zip(aggregates, aggregates[1:]))
    # nobody ever starves below the local floor
    for result in results.values():
        assert min(result.throughputs().values()) > 11.0
