"""Extension bench: fleet scaling — how many devices can one server carry?

§II-A.1 motivates multi-tenancy ("a single device's video stream may
under-utilize modern hardware"); this bench sweeps fleet size and
reports per-device and aggregate throughput, GPU utilization, and
Jain fairness — the capacity-planning curve a deployment would need.
"""

from repro.control.framefeedback import FrameFeedbackController
from repro.experiments.fleet import FleetScenario, homogeneous_fleet, run_fleet
from repro.experiments.report import ascii_table

FLEET_SIZES = (1, 2, 4, 8, 12)


def _sweep(total_frames=900, seed=0):
    out = {}
    for n in FLEET_SIZES:
        scenario = FleetScenario(
            members=homogeneous_fleet(n, total_frames=total_frames),
            controller_factory=lambda c: FrameFeedbackController(c.frame_rate),
            seed=seed,
        )
        out[n] = run_fleet(scenario)
    return out


def test_fleet_scaling(benchmark, emit):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for n, result in results.items():
        tp = list(result.throughputs().values())
        rows.append(
            [
                n,
                f"{sum(tp):7.1f}",
                f"{sum(tp) / n:6.2f}",
                f"{min(tp):6.2f}",
                f"{result.gpu_utilization:5.2f}",
                f"{result.mean_batch_size:5.1f}",
                f"{result.jain_fairness():5.3f}",
            ]
        )
    emit(
        "Fleet scaling (FrameFeedback on every device, ideal radios):\n"
        + ascii_table(
            ["devices", "aggregate P", "per-device", "min", "GPU util", "batch", "Jain"],
            rows,
        )
    )

    # §II-A.1: a single tenant fragments the GPU into tiny batches;
    # multi-tenancy amortizes the launch overhead into full ones
    assert results[1].mean_batch_size < 3.0
    assert results[12].mean_batch_size > 8.0
    assert results[12].gpu_utilization > results[1].gpu_utilization
    # aggregate throughput grows monotonically with fleet size
    aggregates = [sum(results[n].throughputs().values()) for n in FLEET_SIZES]
    assert all(b > a for a, b in zip(aggregates, aggregates[1:]))
    # nobody ever starves below the local floor
    for result in results.values():
        assert min(result.throughputs().values()) > 11.0
