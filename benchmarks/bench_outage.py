"""Extension bench: total server outages (availability failures).

The paper degrades the server with *load*; operations also sees hard
stalls (driver resets, co-located jobs, restarts).  This bench drops
the server for two windows of a 100 s run and measures each
controller's damage: lost frames relative to its own no-outage run,
plus recovery time back to the pre-outage offloading level.
"""

import numpy as np

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.device.device import EdgeDevice
from repro.experiments.report import ascii_table
from repro.experiments.standard import standard_controllers
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.server.server import EdgeServer
from repro.sim import Environment
from repro.sim.rng import RngRegistry
from repro.faults import OutageSchedule

OUTAGES = ((25.0, 8.0), (60.0, 4.0))
DURATION = 100.0


def run_one(factory, with_outage: bool, seed=0):
    env = Environment()
    rng = RngRegistry(seed)
    server = EdgeServer(env, rng.stream("server"))
    if with_outage:
        OutageSchedule.from_rows(OUTAGES).install(env, server)
    box = ConditionBox(LinkConditions())
    config = DeviceConfig(total_frames=int(DURATION * 30))
    device = EdgeDevice(
        env,
        config,
        factory(config),
        uplink=Link(env, rng.stream("up"), box),
        downlink=Link(env, rng.stream("down"), box),
        server=server,
        rng=rng.stream("dev"),
    )
    env.run(until=DURATION + 1.0)
    return device


def test_server_outage_resilience(benchmark, emit):
    def sweep():
        out = {}
        for name, factory in standard_controllers().items():
            clean = run_one(factory, with_outage=False)
            faulted = run_one(factory, with_outage=True)
            out[name] = (clean, faulted)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, (clean, faulted) in results.items():
        lost = clean.successes - faulted.successes
        rows.append(
            [
                name,
                f"{clean.successes:5d}",
                f"{faulted.successes:5d}",
                f"{lost:5d}",
                f"{faulted.timeouts:5d}",
            ]
        )
    emit(
        f"Server outages at {OUTAGES} (s, duration) over a {DURATION:.0f}s run:\n"
        + ascii_table(
            ["controller", "ok (clean)", "ok (outage)", "lost", "violations"], rows
        )
    )

    # FrameFeedback loses fewer frames than blind offloading and far
    # fewer *violations* (it stops feeding the dead server)...
    losses = {
        name: clean.successes - faulted.successes
        for name, (clean, faulted) in results.items()
    }
    assert losses["FrameFeedback"] <= losses["AlwaysOffload"]
    ff_faulted = results["FrameFeedback"][1]
    assert ff_faulted.timeouts < results["AlwaysOffload"][1].timeouts * 0.8
    # Honest trade-off captured here: for *binary* outages the
    # all-or-nothing policy recovers faster (one heartbeat flips it
    # back to F_s, while Table IV caps FrameFeedback's ramp at
    # 0.1 F_s per second) — the capped ramp buys its stability under
    # the paper's partial degradations, not under blackouts.
    assert losses["AllOrNothing"] <= losses["FrameFeedback"] + 120
    # ...and FrameFeedback keeps ~P_l even mid-blackout
    assert ff_faulted.traces.throughput.mean_over(27.0, 33.0) > 10.0