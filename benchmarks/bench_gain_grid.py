"""Fig 2 extension: the full (K_P, K_D) tuning landscape.

Fig 2 plots four hand-picked gain pairs; this bench sweeps a 4x4 grid
on the Fig 2 scenario (ideal link, 7 % loss injected at t=27 s) and
scores every cell on post-injection overshoot and swing, making the
§III-B tuning intuition a table: stability degrades up the K_P axis
and recovers along the K_D axis.
"""

from repro.control.tuning import sweep_gains
from repro.experiments.fig2 import LOSS_INJECTION_TIME
from repro.experiments.report import ascii_table

KP_VALUES = (0.1, 0.2, 0.4, 0.6)
KD_VALUES = (0.0, 0.13, 0.26, 0.52)


def make_run_fn(duration=60.0, seed=0):
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.workloads.schedules import fig2_schedule

    device = DeviceConfig(total_frames=int(duration * 30))

    def run(settings):
        result = run_scenario(
            Scenario(
                controller_factory=framefeedback_factory(settings),
                device=device,
                network=fig2_schedule(),
                duration=duration,
                seed=seed,
            )
        )
        trace = result.traces.offload_target.slice(LOSS_INJECTION_TIME + 3.0, duration)
        return trace.times, trace.values

    return run


def test_gain_grid(benchmark, emit):
    results = benchmark.pedantic(
        lambda: sweep_gains(make_run_fn(), KP_VALUES, KD_VALUES),
        rounds=1,
        iterations=1,
    )
    by_gains = {(r.kp, r.kd): r.report for r in results}

    rows = []
    for kp in KP_VALUES:
        rows.append(
            [
                f"Kp={kp:g}",
                *(
                    f"{by_gains[(kp, kd)].std:4.2f}/{by_gains[(kp, kd)].overshoot:4.2f}"
                    for kd in KD_VALUES
                ),
            ]
        )
    emit(
        "Post-injection P_o stability (std fps / overshoot) across gains:\n"
        + ascii_table(["", *(f"Kd={kd:g}" for kd in KD_VALUES)], rows)
        + "\npaper's Table IV cell: Kp=0.2, Kd=0.26"
    )

    # §III-B's two directions, averaged across the grid:
    import numpy as np

    # raising Kp degrades stability (swing grows along the Kp axis)
    swing_by_kp = [
        np.mean([by_gains[(kp, kd)].std for kd in KD_VALUES]) for kp in KP_VALUES
    ]
    assert swing_by_kp[-1] > swing_by_kp[0]
    # at the paper's Kp, derivative action cuts overshoot
    assert (
        by_gains[(0.2, 0.26)].overshoot < by_gains[(0.2, 0.0)].overshoot + 1e-9
    )
    # the paper's cell is near the stable corner of its row
    paper_std = by_gains[(0.2, 0.26)].std
    row = [by_gains[(0.2, kd)].std for kd in KD_VALUES]
    assert paper_std <= min(row) + 1.0
