"""Extension bench: motion-derived network conditions (§II-A.4).

A patrolling device walks away from and back toward the access point
twice; link quality follows the log-distance path-loss model.  Unlike
Table V's step changes, degradation here is *gradual* — the regime
adaptive offloading is supposed to shine in, since there is always an
intermediate rate worth finding.
"""

from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table, series_panel
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import standard_controllers
from repro.workloads.mobility import mobility_schedule, patrol_loop


def _sweep(seed=0):
    schedule = mobility_schedule(patrol_loop(lap_seconds=60.0, laps=2), step=2.0)
    device = DeviceConfig(total_frames=int(120 * 30))
    out = {}
    for name, factory in standard_controllers().items():
        out[name] = run_scenario(
            Scenario(
                controller_factory=factory,
                device=device,
                network=schedule,
                duration=121.0,
                seed=seed,
            )
        )
    return out


def test_patrol_mobility(benchmark, emit):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{r.qos.mean_throughput:6.2f}",
            f"{r.qos.mean_violation_rate:5.2f}",
        ]
        for name, r in results.items()
    ]
    panel = {name: r.traces.throughput for name, r in results.items()}
    emit(
        "Patrolling device, 2 laps away-and-back from the AP:\n"
        + series_panel(panel, vmax=30.0)
        + "\n\n"
        + ascii_table(["controller", "mean P", "mean T"], rows)
    )

    qos = {n: r.qos.mean_throughput for n, r in results.items()}
    # gradual degradation is FrameFeedback's home turf
    assert qos["FrameFeedback"] == max(qos.values())
    assert qos["FrameFeedback"] > qos["AllOrNothing"] + 1.0
    # both laps show recovery: throughput near F_s at each return
    ff = results["FrameFeedback"].traces.throughput
    assert ff.mean_over(55.0, 62.0) > 20.0  # end of lap 1
    assert ff.mean_over(115.0, 121.0) > 20.0  # end of lap 2
