"""Extension bench: content-driven frame-size variance.

The paper streams fixed-size ImageNet frames; live video does not
cooperate — scene complexity and cuts swing bytes-per-frame, which on
a tight link behaves like bandwidth jitter.  This bench sweeps content
variance on the congested (bw=4) link and reports what it costs each
controller.
"""

from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import standard_controllers
from repro.netem.profiles import CONGESTED
from repro.workloads.schedules import steady_schedule
from repro.workloads.video import VideoContentModel

VARIANTS = {
    "fixed": None,
    "mild (sigma=.15)": VideoContentModel(mean_bytes=11_700, sigma=0.15, scene_cut_rate=0.1),
    "busy (sigma=.35)": VideoContentModel(mean_bytes=11_700, sigma=0.35, scene_cut_rate=0.3),
}


def _sweep(seed=0, total_frames=1800):
    out = {}
    for label, video in VARIANTS.items():
        device = DeviceConfig(total_frames=total_frames, video=video)
        for name, factory in standard_controllers().items():
            result = run_scenario(
                Scenario(
                    controller_factory=factory,
                    device=device,
                    network=steady_schedule(CONGESTED),
                    seed=seed,
                )
            )
            out[(label, name)] = result.qos
    return out


def test_content_variance_cost(benchmark, emit):
    qos = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [
        [name, *(f"{qos[(label, name)].mean_throughput:6.2f}" for label in VARIANTS)]
        for name in standard_controllers()
    ]
    emit(
        "Mean P (fps) on the bw=4 link under content-size variance:\n"
        + ascii_table(["controller", *VARIANTS], rows)
    )

    for label in VARIANTS:
        ff = qos[(label, "FrameFeedback")].mean_throughput
        # FF stays the best adaptive policy and above the local floor
        assert ff >= qos[(label, "LocalOnly")].mean_throughput - 0.5
        assert ff > qos[(label, "AlwaysOffload")].mean_throughput
        assert ff > qos[(label, "AllOrNothing")].mean_throughput
