"""Sensitivity ablations: deadline, batch cap, and the T window.

Three environment/design constants the paper fixes without sweeping:

* the 250 ms deadline (§II-B "a justifiable deadline");
* the 15-frame batch cap (§IV-A);
* the "last few seconds" T-averaging window (§III-A.1 — the stated
  reason the integral term could be dropped).

Each sweep runs the Table V scenario with FrameFeedback and reports
whole-run QoS, quantifying how load-bearing each constant is.
"""

from dataclasses import replace

from repro.control.framefeedback import FrameFeedbackSettings
from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.models.latency import GpuBatchModel
from repro.workloads.schedules import table_v_schedule, table_vi_schedule

FRAMES = 2400


def _run(device=None, seed=0, network=True, **scenario_kw):
    device = device or DeviceConfig(total_frames=FRAMES)
    return run_scenario(
        Scenario(
            controller_factory=scenario_kw.pop(
                "controller_factory", framefeedback_factory()
            ),
            device=device,
            network=table_v_schedule() if network else None,
            load=None if network else table_vi_schedule(),
            seed=seed,
            **scenario_kw,
        )
    )


def test_sensitivity_sweeps(benchmark, emit):
    def sweep():
        out = {"deadline": {}, "batch": {}, "window": {}}
        for deadline in (0.150, 0.250, 0.400):
            device = DeviceConfig(total_frames=FRAMES, deadline=deadline)
            out["deadline"][f"{1e3 * deadline:.0f} ms"] = _run(device).qos
        for window in (1, 3, 6):
            device = DeviceConfig(total_frames=FRAMES, t_window_buckets=window)
            out["window"][f"{window} s"] = _run(device).qos
        for limit in (5, 15, 30):
            # batch cap matters under *server load*, not network stress
            out["batch"][f"cap {limit}"] = _run_with_batch_limit(limit).qos
        return out

    def _run_with_batch_limit(limit):
        from repro.control.framefeedback import FrameFeedbackController
        from repro.device.device import EdgeDevice
        from repro.netem.link import ConditionBox, Link, LinkConditions
        from repro.server.server import EdgeServer
        from repro.sim.core import Environment
        from repro.sim.rng import RngRegistry
        from repro.workloads.loadgen import BackgroundLoad

        env = Environment()
        rng = RngRegistry(0)
        server = EdgeServer(env, rng.stream("server"), batch_limit=limit)
        BackgroundLoad(env, server, table_vi_schedule(), rng.stream("bg"))
        box = ConditionBox(LinkConditions())
        config = DeviceConfig(total_frames=FRAMES)
        device = EdgeDevice(
            env,
            config,
            FrameFeedbackController(config.frame_rate),
            uplink=Link(env, rng.stream("up"), box),
            downlink=Link(env, rng.stream("down"), box),
            server=server,
            rng=rng.stream("dev"),
        )
        env.run(until=config.stream_duration + 1.0)

        class _R:  # minimal result shim
            qos = device.qos_report()

        return _R

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    sections = []
    for title, table in (
        ("deadline L (Table V network scenario)", results["deadline"]),
        ("T window (Table V network scenario)", results["window"]),
        ("server batch cap (Table VI load scenario)", results["batch"]),
    ):
        rows = [
            [label, f"{qos.mean_throughput:6.2f}", f"{qos.mean_violation_rate:5.2f}"]
            for label, qos in table.items()
        ]
        sections.append(
            f"{title}:\n" + ascii_table(["setting", "mean P", "mean T"], rows)
        )
    emit("\n\n".join(sections))

    # looser deadlines help, tighter ones hurt
    d = results["deadline"]
    assert d["400 ms"].mean_throughput >= d["250 ms"].mean_throughput - 0.5
    assert d["150 ms"].mean_throughput <= d["250 ms"].mean_throughput + 0.5
    # a 1-bucket window (no averaging) is noisier: more violations
    w = results["window"]
    assert w["1 s"].mean_violation_rate >= w["3 s"].mean_violation_rate - 0.5
    # batch cap = a latency/throughput dial: bigger batches raise the
    # server's aggregate rate but push per-request latency toward the
    # deadline, so for a deadline-bound client smaller caps win.  The
    # sweep should show that monotone direction.
    b = results["batch"]
    assert b["cap 5"].mean_throughput >= b["cap 30"].mean_throughput - 0.5
