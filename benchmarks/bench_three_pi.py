"""§IV-A fidelity bench: the three-Pi concurrent configuration.

Runs the paper's literal data-collection setup (Table II's three Pis,
MobileNetV3Small each, independent shaped links, one shared server)
under the Table V schedule, for FrameFeedback and the baselines, and
reports per-device + total throughput.
"""

from repro.control.framefeedback import FrameFeedbackController
from repro.experiments.report import ascii_table
from repro.experiments.standard import standard_controllers
from repro.experiments.three_pi import run_three_pi


def test_three_pi_table_v(benchmark, emit):
    def sweep():
        return {
            name: run_three_pi(factory, total_frames=4000, seed=0)
            for name, factory in standard_controllers().items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    device_names = list(next(iter(results.values())).per_device)
    rows = [
        [
            name,
            *(f"{res.per_device[d]:6.2f}" for d in device_names),
            f"{res.total_throughput:7.2f}",
        ]
        for name, res in results.items()
    ]
    emit(
        "Three concurrent Pis (Table II hardware) under Table V:\n"
        + ascii_table(["controller", *device_names, "total"], rows)
    )

    ff = results["FrameFeedback"]
    # the ordering of Fig 3 survives the three-tenant configuration
    assert ff.total_throughput > results["AllOrNothing"].total_throughput
    assert ff.total_throughput > results["AlwaysOffload"].total_throughput
    assert ff.total_throughput > results["LocalOnly"].total_throughput
    # slower local hardware leans harder on offloading but still keeps
    # its own floor: the 3B (P_l = 5.5) stays above it
    assert ff.per_device["pi3b"] > 5.0
    # local-only exposes the Table II spread (5.5 / 13 / 13.4)
    local = results["LocalOnly"].per_device
    assert local["pi3b"] < local["pi4b-r12"] <= local["pi4b-r14"] + 0.5
