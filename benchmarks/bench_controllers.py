"""Extension bench: the full controller lineup, including AIMD, the
ATOMS-lite reservation baseline and the clairvoyant oracle.

Runs both paper scenarios (Table V network, Table VI load) with seven
controllers and prints a cross-scenario league table.  The headline:
FrameFeedback is the best *realizable* controller on the network
scenario, the reservation scheme is competitive only under pure server
load (its §V-B blind spot), and the oracle quantifies the price of
feedback (regret, see bench_regret.py).
"""

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.report import ascii_table
from repro.experiments.standard import extended_controllers


def test_extended_controller_lineup(benchmark, emit):
    fig3, fig4 = benchmark.pedantic(
        lambda: (
            run_fig3(seed=0, total_frames=4000, controllers=extended_controllers()),
            run_fig4(seed=0, total_frames=4000, controllers=extended_controllers()),
        ),
        rounds=1,
        iterations=1,
    )

    names = list(extended_controllers())
    rows = []
    for name in names:
        rows.append(
            [
                name,
                f"{fig3.runs[name].qos.mean_throughput:6.2f}",
                f"{fig3.runs[name].qos.mean_violation_rate:5.2f}",
                f"{fig4.runs[name].qos.mean_throughput:6.2f}",
                f"{fig4.runs[name].qos.mean_violation_rate:5.2f}",
            ]
        )
    emit(
        "Whole-run means, extended lineup (Table V / Table VI scenarios):\n"
        + ascii_table(
            ["controller", "net P", "net T", "load P", "load T"], rows
        )
    )

    q3 = {n: fig3.runs[n].qos.mean_throughput for n in names}
    q4 = {n: fig4.runs[n].qos.mean_throughput for n in names}
    # reservation's blind spot: fine under load, poor under network
    assert q4["Reservation"] > 0.8 * q4["FrameFeedback"]
    assert q3["Reservation"] < 0.8 * q3["FrameFeedback"]
    # FrameFeedback beats every realizable baseline on both scenarios
    for scenario in (q3, q4):
        for name in ("LocalOnly", "AlwaysOffload", "AllOrNothing", "Reservation"):
            assert scenario["FrameFeedback"] > scenario[name] - 0.5
