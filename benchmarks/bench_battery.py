"""Extension bench: the full energy ledger per controller.

§II-A.5 claims offloading saves power but only measures CPU; this
bench adds the radio bill and reports watts, battery life on a 10 Wh
pack, and — the metric that actually matters for a battery-powered
analytics deployment — joules per successful inference, for every
controller on the Table V schedule.
"""

from repro.device.battery import account_run
from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import standard_controllers
from repro.workloads.schedules import table_v_schedule


def test_energy_ledger(benchmark, emit):
    def sweep():
        out = {}
        for name, factory in standard_controllers().items():
            result = run_scenario(
                Scenario(
                    controller_factory=factory,
                    device=DeviceConfig(total_frames=4000),
                    network=table_v_schedule(),
                    seed=0,
                )
            )
            out[name] = (result, account_run(result))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, (result, acct) in results.items():
        rows.append(
            [
                name,
                f"{acct.mean_watts:5.2f}",
                f"{acct.battery_hours(10.0):5.2f}",
                f"{result.qos.successful:5d}",
                f"{acct.joules_per_success(result.qos.successful):6.3f}",
            ]
        )
    emit(
        "Energy ledger on Table V (10 Wh pack; CPU + Wi-Fi radio):\n"
        + ascii_table(
            ["controller", "watts", "hours", "successes", "J/success"], rows
        )
    )

    watts = {n: acct.mean_watts for n, (_r, acct) in results.items()}
    jps = {
        n: acct.joules_per_success(r.qos.successful)
        for n, (r, acct) in results.items()
    }
    # local-only burns the most power (the §II-A.5 direction)
    assert watts["LocalOnly"] == max(watts.values())
    # FrameFeedback is the most energy-efficient per correct result:
    # it spends CPU only on frames offloading can't carry
    assert jps["FrameFeedback"] == min(jps.values())
