"""Substrate-validation bench: the link against Pollaczek–Khinchine.

Feeds the emulated link Poisson single-packet frames at a sweep of
utilizations and prints simulated mean queue wait against the M/D/1
closed form — the external ground-truth check that the DES kernel,
serializer and store mechanics together implement an actual queue.
"""

import numpy as np
import pytest

from repro.analysis.queueing import md1_wait
from repro.experiments.report import ascii_table
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.netem.packet import PACKET_PAYLOAD_BYTES
from repro.sim import Environment

RHOS = (0.2, 0.4, 0.6, 0.8, 0.9)


def measure(rho: float, n: int = 8000, seed: int = 0):
    env = Environment()
    cond = LinkConditions(
        bandwidth=10.0, loss=0.0, propagation_delay=0.0, jitter_sigma=0.0
    )
    link = Link(env, np.random.default_rng(seed), ConditionBox(cond),
                queue_bytes_cap=1e12)
    service = cond.packet_time(PACKET_PAYLOAD_BYTES)
    arrival_rate = rho / service
    sent = {}
    waits = []

    def deliver(i):
        waits.append(env.now - sent[i] - service)

    def feeder(env):
        rng = np.random.default_rng(seed + 1)
        for i in range(n):
            yield env.timeout(rng.exponential(1.0 / arrival_rate))
            sent[i] = env.now
            link.send(PACKET_PAYLOAD_BYTES, i, deliver)

    env.process(feeder(env))
    env.run()
    return float(np.mean(waits)), md1_wait(arrival_rate, service)


def test_link_is_an_md1_queue(benchmark, emit):
    curve = benchmark.pedantic(
        lambda: {rho: measure(rho) for rho in RHOS}, rounds=1, iterations=1
    )
    rows = [
        [
            f"{rho:.1f}",
            f"{sim * 1e3:7.3f}",
            f"{theory * 1e3:7.3f}",
            f"{100 * abs(sim - theory) / theory:5.1f}%",
        ]
        for rho, (sim, theory) in curve.items()
    ]
    emit(
        "Link queue wait vs M/D/1 theory (Poisson arrivals, ms):\n"
        + ascii_table(["rho", "simulated", "P-K formula", "error"], rows)
    )
    for rho, (sim, theory) in curve.items():
        assert sim == pytest.approx(theory, rel=0.12), f"rho={rho}"

