"""Extension bench: i.i.d. vs bursty loss at the same average rate.

The paper injects i.i.d. 7 % loss with NetEm and notes real wireless
paths can be far worse [37].  Holding the *average* loss fixed and
concentrating it into Gilbert-Elliott bursts changes the problem the
controller faces: smooth capacity reduction becomes intermittent
outages.  This bench compares the controllers under both, showing
FrameFeedback degrades gracefully in both regimes while the heartbeat
baseline is whipsawed by bursts.
"""

from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import standard_controllers
from repro.netem.link import LinkConditions
from repro.workloads.schedules import steady_schedule

AVERAGE_LOSS = 0.10

IID = LinkConditions(bandwidth=10.0, loss=AVERAGE_LOSS, loss_burst=1.0)
BURSTY = LinkConditions(bandwidth=10.0, loss=AVERAGE_LOSS, loss_burst=12.0)


def _compare(seed=0, total_frames=2400):
    device = DeviceConfig(total_frames=total_frames)
    out = {}
    for regime, cond in (("iid", IID), ("bursty", BURSTY)):
        for name, factory in standard_controllers().items():
            result = run_scenario(
                Scenario(
                    controller_factory=factory,
                    device=device,
                    network=steady_schedule(cond),
                    seed=seed,
                )
            )
            out[(regime, name)] = result.qos
    return out


def test_bursty_vs_iid_loss(benchmark, emit):
    qos = benchmark.pedantic(_compare, rounds=1, iterations=1)

    controllers = list(standard_controllers())
    rows = [
        [
            name,
            f"{qos[('iid', name)].mean_throughput:6.2f}",
            f"{qos[('bursty', name)].mean_throughput:6.2f}",
        ]
        for name in controllers
    ]
    emit(
        f"Mean throughput P (fps) at {100 * AVERAGE_LOSS:.0f}% average loss, "
        "i.i.d. vs Gilbert-Elliott bursts (mean burst 12 pkts):\n"
        + ascii_table(["controller", "iid", "bursty"], rows)
    )

    # FrameFeedback stays best-or-equal in both regimes and never
    # falls below the local-only floor.
    for regime in ("iid", "bursty"):
        ff = qos[(regime, "FrameFeedback")].mean_throughput
        assert ff >= qos[(regime, "AllOrNothing")].mean_throughput - 0.5
        assert ff >= qos[(regime, "LocalOnly")].mean_throughput - 0.5
        assert ff > qos[(regime, "AlwaysOffload")].mean_throughput
