"""Extension bench: the full controller-zoo tournament.

Races every zoo member across the built-in scenario matrix and prints
the mean-regret ranking (the same report ``repro tournament`` emits).
The assertions pin the structural claims the tournament exists to
make: the closed-loop policies beat the open-loop baselines on regret,
and the scoring oracle is never beaten on its own clairvoyant terms by
an always-offload policy.
"""

from repro.experiments.report import ascii_table
from repro.experiments.tournament import (
    TournamentConfig,
    render_report,
    run_tournament,
)


def test_zoo_tournament(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_tournament(TournamentConfig(seed=0, frames=900)),
        rounds=1,
        iterations=1,
    )

    emit(render_report(result))
    rows = [
        [s.controller, f"{s.mean_regret:+7.3f}", f"{s.max_regret:+7.3f}",
         s.wins, f"{s.mean_throughput:6.2f}"]
        for s in result.ranking
    ]
    emit(
        "Mean deadline-violation regret vs the oracle (lower is better):\n"
        + ascii_table(["controller", "mean", "max", "wins", "mean P"], rows)
    )

    standing = {s.controller: s for s in result.ranking}
    # feedback control must beat blind offloading by a wide margin
    assert standing["FrameFeedback"].mean_regret < standing["AlwaysOffload"].mean_regret
    assert standing["AIMD"].mean_regret < standing["AlwaysOffload"].mean_regret
    # the literature policies must be competitive: within 1 violation/s
    # of FrameFeedback on mean regret across the matrix
    assert standing["TokenBucket"].mean_regret < standing["FrameFeedback"].mean_regret + 1.0
    assert standing["RateLimitedMDP"].mean_regret < standing["FrameFeedback"].mean_regret + 1.0
    # every cell was scored against the oracle at its own seed
    assert len(result.cells) == len(result.ranking) * len(result.scenarios)
