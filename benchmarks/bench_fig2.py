"""Figure 2 bench: P_o traces per (K_P, K_D) with a 7 % loss injection.

Paper shape to verify by eye in the output: the Table IV gains ramp to
F_s, back off smoothly when loss hits at t = 27 s; hot gains swing; a
sluggish K_P never reaches F_s.
"""

from repro.experiments.fig2 import run_fig2
from repro.experiments.report import render_fig2


def test_fig2_gain_comparison(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_fig2(duration=60.0, seed=0), rounds=1, iterations=1
    )
    emit(render_fig2(result))

    # regression guards on the paper's qualitative claims
    from repro.experiments.fig2 import gain_label

    tuned = result.traces[gain_label(0.2, 0.26)]
    assert tuned.max_over(0.0, 27.0) > 28.0  # reaches F_s pre-injection
    assert tuned.mean_over(40.0, 60.0) < 0.75 * tuned.mean_over(20.0, 27.0)
