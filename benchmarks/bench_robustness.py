"""Robustness bench: the paper's orderings across seeds.

Single-seed wins can be luck; this bench reruns the Table V scenario
(the paper's strongest claims) across 5 seeds and reports mean ± 95 %
CI per controller plus FrameFeedback's win rate against each baseline.
"""

from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario
from repro.experiments.seeds import compare_across_seeds, win_rate
from repro.experiments.standard import standard_controllers
from repro.workloads.schedules import table_v_schedule

SEEDS = (0, 1, 2, 3, 4)


def test_fig3_ordering_across_seeds(benchmark, emit):
    device = DeviceConfig(total_frames=4000)  # full Table V coverage
    scenario = Scenario(
        controller_factory=lambda c: None,  # replaced per controller
        device=device,
        network=table_v_schedule(),
    )
    summaries = benchmark.pedantic(
        lambda: compare_across_seeds(scenario, standard_controllers(), SEEDS),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            name,
            f"{s.mean:6.2f}",
            f"±{s.ci_half_width:4.2f}",
            f"{s.std:4.2f}",
            f"{100 * win_rate(summaries, 'FrameFeedback', name):5.0f}%"
            if name != "FrameFeedback"
            else "—",
        ]
        for name, s in summaries.items()
    ]
    emit(
        f"Table V scenario across seeds {SEEDS} (whole-run mean P, fps):\n"
        + ascii_table(
            ["controller", "mean", "95% CI", "std", "FF win rate"], rows
        )
    )

    ff = summaries["FrameFeedback"]
    for name in ("LocalOnly", "AlwaysOffload", "AllOrNothing"):
        # FrameFeedback wins on every seed, with non-overlapping CIs
        assert win_rate(summaries, "FrameFeedback", name) == 1.0
        assert ff.lo > summaries[name].hi
