"""Table IV bench: settings verbatim + one-row-at-a-time ablation.

Quantifies §III's design arguments: the published gains are within a
few percent of the best ablated variant, and the asymmetric clamps /
dropped integral each earn their keep.
"""

from repro.experiments.report import render_table4
from repro.experiments.table4 import paper_settings_rows, run_table4_ablation


def test_table4_settings_and_ablation(benchmark, emit):
    ablation = benchmark.pedantic(
        lambda: run_table4_ablation(seed=0, total_frames=2400),
        rounds=1,
        iterations=1,
    )
    emit(render_table4(paper_settings_rows(), ablation))

    by_label = {row.label: row for row in ablation}
    paper = by_label["paper (Table IV)"]
    best = max(row.mean_throughput for row in ablation)
    assert paper.mean_throughput > 0.85 * best
