"""Ablation bench: FIFO vs FAIR batch policy under tenant asymmetry.

DESIGN.md calls out the §II-A.3 fairness requirement ("distributing
the available capacity fairly among clients") as a design choice worth
ablating: the paper's own batcher is FIFO; the FAIR variant bounds how
much a flooding tenant can starve a polite one.
"""

import numpy as np

from repro.models.latency import GpuBatchModel
from repro.server.batching import BatchPolicy
from repro.server.requests import InferenceRequest
from repro.server.server import EdgeServer
from repro.sim import Environment


def run_asymmetric_tenants(policy: BatchPolicy, seed: int = 0):
    """One polite 30 fps tenant vs one 300 req/s flooder for 30 s."""
    env = Environment()
    server = EdgeServer(
        env,
        np.random.default_rng(seed),
        cost_model=GpuBatchModel(),
        batch_policy=policy,
    )
    outcomes = {"polite": [0, 0], "flood": [0, 0]}  # [completed, rejected]

    def make_responder(tenant):
        def respond(response):
            outcomes[tenant][0 if response.ok else 1] += 1

        return respond

    def tenant(env, name, rate):
        while env.now < 30.0:
            server.submit(
                InferenceRequest(
                    tenant=name,
                    model_name="mobilenet_v3_small",
                    sent_at=env.now,
                    payload_bytes=11_700,
                    respond=make_responder(name),
                )
            )
            yield env.timeout(1.0 / rate)

    env.process(tenant(env, "polite", 30.0))
    env.process(tenant(env, "flood", 300.0))
    env.run(until=31.0)
    return outcomes


def test_fair_policy_protects_polite_tenant(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {p: run_asymmetric_tenants(p) for p in BatchPolicy},
        rounds=1,
        iterations=1,
    )
    lines = ["Fairness ablation (polite 30 fps vs 300 req/s flooder, 30 s):"]
    rates = {}
    for policy, outcome in results.items():
        polite_ok, polite_rej = outcome["polite"]
        served = polite_ok / max(polite_ok + polite_rej, 1)
        rates[policy] = served
        lines.append(
            f"  {policy.value:5s}: polite tenant served {100 * served:5.1f}% "
            f"({polite_ok} ok / {polite_rej} rejected); "
            f"flooder {outcome['flood'][0]} ok / {outcome['flood'][1]} rejected"
        )
    emit("\n".join(lines))

    # FAIR must serve the polite tenant strictly better than FIFO under
    # overload, and nearly completely.
    assert rates[BatchPolicy.FAIR] > rates[BatchPolicy.FIFO]
    assert rates[BatchPolicy.FAIR] > 0.95
