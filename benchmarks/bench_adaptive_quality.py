"""Extension bench: adaptive capture quality (§II-D closed-loop).

Compares three policies on the Table V network schedule:

* plain FrameFeedback at fixed q=90 (accuracy-first),
* plain FrameFeedback at fixed q=50 (bytes-first),
* FrameFeedback + the adaptive quality ladder.

Scored on *correct answers per second*: offloaded successes weighted
by the §II-D accuracy estimate at their capture quality, local
successes at the model's native accuracy (local inference reads raw
camera frames, not the JPEG).  The adaptive policy should track the
better fixed policy in each regime — accuracy when bandwidth is
plentiful, volume when it is not.
"""

import numpy as np

from repro.control.framefeedback import FrameFeedbackController
from repro.control.quality import AdaptiveQualityController
from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import RunResult, Scenario, run_scenario
from repro.models.accuracy import estimate_accuracy
from repro.models.frames import FrameSpec
from repro.models.zoo import MOBILENET_V3_SMALL
from repro.workloads.schedules import table_v_schedule

LOCAL_ACCURACY = MOBILENET_V3_SMALL.top1_accuracy


def correct_per_second(result: RunResult) -> float:
    """Accuracy-weighted throughput from the per-second traces."""
    tr = result.traces
    n = min(len(tr.offload_success), len(tr.capture_quality))
    offload = tr.offload_success.values[:n]
    local = tr.local_rate.values[:n]
    quality = tr.capture_quality.values[:n]
    acc = np.array([estimate_accuracy(MOBILENET_V3_SMALL, 224, q) for q in quality])
    return float((offload * acc + local * LOCAL_ACCURACY).mean())


def _run(factory, quality=None, seed=0, total_frames=4000):
    spec = FrameSpec(jpeg_quality=quality) if quality is not None else FrameSpec()
    device = DeviceConfig(total_frames=total_frames, frame_spec=spec)
    return run_scenario(
        Scenario(
            controller_factory=factory,
            device=device,
            network=table_v_schedule(),
            seed=seed,
        )
    )


def test_adaptive_quality(benchmark, emit):
    def sweep():
        return {
            "fixed q=90": _run(
                lambda c: FrameFeedbackController(c.frame_rate), quality=90.0
            ),
            "fixed q=50": _run(
                lambda c: FrameFeedbackController(c.frame_rate), quality=50.0
            ),
            "adaptive": _run(lambda c: AdaptiveQualityController(c.frame_rate)),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    scores = {}
    for label, result in results.items():
        score = correct_per_second(result)
        scores[label] = score
        rows.append(
            [
                label,
                f"{result.qos.mean_throughput:6.2f}",
                f"{score:6.2f}",
                f"{result.traces.capture_quality.values.mean():5.1f}",
            ]
        )
    emit(
        "Adaptive capture quality on the Table V schedule:\n"
        + ascii_table(
            ["policy", "P (fps)", "correct/s", "mean q"], rows
        )
    )

    # Honest outcome: JPEG accuracy is nearly flat above q~40 (the
    # §II-D penalty only bites at harsh compression), so the
    # bytes-first corner wins the mixed schedule outright — quality is
    # cheap to give up and frames are not.  What the adaptive ladder
    # must deliver is (a) a clear win over the accuracy-first default
    # and (b) regime tracking: top quality while bandwidth is
    # plentiful, descent when it is not.
    assert scores["adaptive"] > scores["fixed q=90"] + 0.5
    assert scores["adaptive"] >= 0.85 * scores["fixed q=50"]

    q_trace = results["adaptive"].traces.capture_quality
    assert q_trace.mean_over(5.0, 30.0) >= 85.0  # bw=10: stay sharp
    assert q_trace.mean_over(110.0, 133.0) <= 70.0  # bw=4+loss: descend
