"""§II-A.5 bench: CPU usage local (50.2 %) vs offloading (22.3 %)."""

import pytest

from repro.experiments.energy import PAPER_LOCAL_CPU, PAPER_OFFLOAD_CPU, run_energy


def test_energy_cpu_drop(benchmark, emit):
    res = benchmark.pedantic(
        lambda: run_energy(seed=0, total_frames=1800), rounds=1, iterations=1
    )
    emit(
        "Sec II-A.5 CPU usage (paper vs measured)\n"
        f"  local execution: paper {100 * PAPER_LOCAL_CPU:.1f}%  "
        f"measured {100 * res.local_cpu:.1f}%\n"
        f"  offloading:      paper {100 * PAPER_OFFLOAD_CPU:.1f}%  "
        f"measured {100 * res.offload_cpu:.1f}%"
    )
    assert res.local_cpu == pytest.approx(PAPER_LOCAL_CPU, abs=0.05)
    assert res.offload_cpu == pytest.approx(PAPER_OFFLOAD_CPU, abs=0.05)
