#!/usr/bin/env python
"""Approximate line coverage of ``src/repro`` without coverage.py.

The offline container does not ship ``coverage``/``pytest-cov`` (CI
installs them), so ratcheting the CI floor needs a local estimate.
This runs the tier-1 suite under a ``sys.settrace`` hook that records
executed lines for files under ``src/repro`` only, then divides by the
executable-line universe derived from each module's code objects
(``co_lines``), which is the same line table coverage.py uses.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Prints a per-package summary and the total percentage.  Expect the run
to be several times slower than a bare ``pytest`` — the hook fires on
every traced line.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PKG_PREFIX = str(SRC / "repro") + "/"

_executed: set = set()
_executed_add = _executed.add


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(PKG_PREFIX):
        return None  # opt the whole frame out: non-repro code runs untraced
    if event == "line" or event == "call":
        _executed_add((filename, frame.f_lineno))
    return _tracer


def _executable_lines(path: Path) -> set:
    """Line numbers with bytecode, collected recursively over consts."""
    try:
        top = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main(argv) -> int:
    import pytest

    pytest_args = list(argv) or ["-x", "-q", "tests"]
    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage numbers reflect a partial run")

    per_file = {}
    total_exec = total_hit = 0
    for path in sorted((SRC / "repro").rglob("*.py")):
        executable = _executable_lines(path)
        if not executable:
            continue
        hit = {ln for f, ln in _executed if f == str(path)} & executable
        per_file[str(path.relative_to(SRC))] = (len(hit), len(executable))
        total_exec += len(executable)
        total_hit += len(hit)

    by_pkg = {}
    for rel, (hit, executable) in per_file.items():
        pkg = "/".join(rel.split("/")[:2])
        h, e = by_pkg.get(pkg, (0, 0))
        by_pkg[pkg] = (h + hit, e + executable)
    for pkg in sorted(by_pkg):
        h, e = by_pkg[pkg]
        print(f"{pkg:40s} {100.0 * h / e:6.1f}%  ({h}/{e})")
    percent = 100.0 * total_hit / total_exec if total_exec else 0.0
    print(f"{'TOTAL':40s} {percent:6.1f}%  ({total_hit}/{total_exec})")
    print(json.dumps({"percent": round(percent, 1)}))
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
