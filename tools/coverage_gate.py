#!/usr/bin/env python
"""Coverage ratchet: compare a pytest-cov JSON report to the floor.

CI runs the tier-1 suite with ``--cov=repro --cov-report=json`` and then::

    python tools/coverage_gate.py coverage.json COVERAGE_baseline.json

The gate fails (exit 1) when measured line coverage drops more than
``slack`` (default 1.0 point) below the committed floor, and prints a
nudge when coverage has risen enough that the floor should be
ratcheted up.  To ratchet::

    python tools/coverage_gate.py coverage.json COVERAGE_baseline.json --update

which rewrites the baseline at the measured percentage (then commit it).

Only stdlib is needed here — pytest-cov produces the input, this script
just arbitrates, so it also runs in the offline container against a
report generated elsewhere.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="coverage.json produced by pytest-cov")
    parser.add_argument("baseline", help="committed COVERAGE_baseline.json")
    parser.add_argument("--slack", type=float, default=1.0,
                        help="allowed drop below the floor, in points (default 1.0)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline at the measured percentage")
    args = parser.parse_args(argv)

    with open(args.report) as fh:
        measured = float(json.load(fh)["totals"]["percent_covered"])

    if args.update:
        with open(args.baseline, "w") as fh:
            json.dump(
                {
                    "line_coverage_percent": round(measured, 1),
                    "note": "tier-1 line coverage floor; CI fails when "
                            "measured coverage drops more than --slack "
                            "(default 1.0) points below this. Ratchet with "
                            "tools/coverage_gate.py --update.",
                },
                fh,
                indent=1,
                sort_keys=True,
            )
            fh.write("\n")
        print(f"baseline ratcheted to {measured:.1f}%")
        return 0

    with open(args.baseline) as fh:
        floor = float(json.load(fh)["line_coverage_percent"])

    verdict = "ok" if measured >= floor - args.slack else "REGRESSED"
    print(f"line coverage: {measured:.2f}% (floor {floor:.1f}%, "
          f"slack {args.slack:.1f}pt) {verdict}")
    if measured > floor + 2.0:
        print(f"coverage rose well above the floor — consider ratcheting: "
              f"python tools/coverage_gate.py {args.report} {args.baseline} --update")
    return 0 if verdict == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
