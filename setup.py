"""Shim so `pip install -e .` works offline via the legacy setuptools path.

All metadata lives in pyproject.toml; setuptools >= 61-ish reads it.
"""

from setuptools import setup

setup()
