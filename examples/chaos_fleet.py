#!/usr/bin/env python
"""Fleet chaos: kill one server mid-run, fail in-flight frames over.

A single edge server is a single point of failure: when it dies, every
in-flight frame dies with it and the device stalls until the watchdog
fires.  This example runs a three-server pool (round-robin routing,
token-bucket admission, heartbeat health probing) through the same
kill schedule twice — ``edge0`` killed at t=8.34 s for 10 s — once
with failover enabled and once without, then shows what the fleet
tier buys:

* failover on: the prober ejects ``edge0`` at the kill instant,
  in-flight frames with enough remaining deadline budget are re-sent
  to a healthy sibling (watchdog still anchored at the original
  capture time — failover never extends a deadline), and ``edge0``
  rejoins after its probation window;
* failover off: the router keeps feeding the corpse; every frame
  routed there times out at full deadline cost.

Run:  python examples/chaos_fleet.py
"""

from repro.experiments.report import ascii_table
from repro.fleet.chaos import DEFAULT_KILL, DEFAULT_SERVERS, run_fleet_chaos
from repro.metrics.qos import fleet_extras


def main() -> None:
    result = run_fleet_chaos(seed=0, total_frames=900)

    server, at, dur = DEFAULT_KILL
    print(f"Fleet chaos: {len(DEFAULT_SERVERS)} servers, "
          f"kill {server} @{at}s for {dur}s, same schedule twice\n")

    for label, child in (("failover on", result.failover),
                         ("failover off (ablation)", result.no_failover)):
        qos = child.run.qos
        fleet = fleet_extras(qos.extras)
        print(f"--- {label} ---")
        print(f"ok={qos.successful}/{qos.total_frames}  "
              f"timeouts={qos.timeouts}  dropped_local={qos.dropped_local}  "
              f"violations/s={qos.mean_violation_rate:.2f}")
        rows = []
        for name in DEFAULT_SERVERS:
            rows.append([
                name,
                f"{fleet.get(f'fleet.{name}.routed', 0.0):.0f}",
                f"{fleet.get(f'fleet.{name}.successes', 0.0):.0f}",
                f"{fleet.get(f'fleet.{name}.failed_over_out', 0.0):.0f}",
                f"{fleet.get(f'fleet.{name}.failed_over_in', 0.0):.0f}",
                f"{fleet.get(f'fleet.{name}.ejections', 0.0):.0f}",
            ])
        print(ascii_table(
            ["server", "routed", "ok", "fo_out", "fo_in", "ejected"], rows,
        ))
        if label.startswith("failover on"):
            print(f"failover rescued {fleet['fleet.failovers']:.0f} in-flight "
                  f"frame(s); {server} re-admitted after "
                  f"{fleet.get('fleet.mttr_mean', 0.0):.1f}s (MTTR)")
        print()

    print("Fleet invariants (both runs + cross-run ordering):")
    print(ascii_table(
        ["invariant", "window", "observed", "expected", "verdict"],
        [c.row() for c in result.fleet_invariants],
    ))
    print(f"\nverdict: {'PASS' if result.all_invariants_hold else 'FAIL'}")


if __name__ == "__main__":
    main()
