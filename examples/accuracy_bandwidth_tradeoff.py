#!/usr/bin/env python
"""Pick capture settings under a bandwidth budget (§II-D quantified).

§II-D observes that higher resolution and lighter JPEG compression
raise accuracy but also raise bytes per frame — which squeezes how
many frames the link can offload before the 250 ms deadline.  This
example sweeps capture settings, runs the full closed loop at each
operating point on a congested link, and reports the *effective
accuracy rate* (successful classifications/s x estimated top-1
accuracy), i.e. correct answers per second — the quantity a downstream
application actually consumes.

Run:  python examples/accuracy_bandwidth_tradeoff.py   (~15 s)
"""

from repro import DeviceConfig, Scenario, run_scenario
from repro.experiments.report import ascii_table
from repro.experiments.standard import framefeedback_factory
from repro.models.accuracy import estimate_accuracy
from repro.models.frames import FrameSpec
from repro.models.zoo import MOBILENET_V3_SMALL
from repro.netem.profiles import CONGESTED
from repro.workloads.schedules import steady_schedule

OPERATING_POINTS = [
    (160, 60.0),
    (224, 60.0),
    (224, 85.0),
    (320, 85.0),
    (448, 95.0),
]


def main() -> None:
    rows = []
    for resolution, quality in OPERATING_POINTS:
        spec = FrameSpec(resolution=resolution, jpeg_quality=quality)
        device = DeviceConfig(frame_spec=spec, total_frames=1800)
        result = run_scenario(
            Scenario(
                controller_factory=framefeedback_factory(),
                device=device,
                network=steady_schedule(CONGESTED),
                seed=0,
            )
        )
        # offloaded frames classify at the capture settings; local
        # frames are resized down to the model's native 224 anyway
        acc_offload = estimate_accuracy(MOBILENET_V3_SMALL, resolution, quality)
        acc_local = estimate_accuracy(MOBILENET_V3_SMALL, min(resolution, 224), quality)
        duration = result.elapsed
        off_rate = result.qos.extras["offload_successes"] / duration
        local_rate = result.qos.extras["local_successes"] / duration
        effective = off_rate * acc_offload + local_rate * acc_local
        rows.append(
            [
                f"{resolution}x{resolution}",
                f"{quality:g}",
                f"{spec.bytes_on_wire / 1024:5.1f}",
                f"{off_rate + local_rate:5.1f}",
                f"{100 * acc_offload:5.1f}%",
                f"{effective:5.2f}",
            ]
        )

    print("FrameFeedback on a congested link (bw=4), per capture setting:")
    print(
        ascii_table(
            ["capture", "JPEG q", "kB/frame", "P (fps)", "est. top-1", "correct/s"],
            rows,
        )
    )
    best = max(rows, key=lambda r: float(r[-1]))
    print(
        f"\nbest correct-answers-per-second at {best[0]} q={best[1]}: "
        f"bigger frames win on accuracy until the link can no longer "
        f"carry enough of them before the deadline."
    )


if __name__ == "__main__":
    main()
