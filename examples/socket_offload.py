#!/usr/bin/env python
"""End-to-end over real sockets: the paper's topology on localhost.

Starts a threaded TCP inference server implementing the §IV-A adaptive
batching discipline (queue while the "GPU" runs, batch cap, reject the
overflow), then drives the *same* FrameFeedback controller used by the
simulator against it through the wall-clock runtime — frames are real
byte payloads over real connections.

Midway, a competing client floods the server so the controller has to
shed load, then the flood stops and it recovers.

Takes ~24 real seconds.  Run:  python examples/socket_offload.py
"""

import threading
import time

from repro.control.framefeedback import FrameFeedbackController
from repro.realtime.netserver import InferenceServer, SocketRemote
from repro.realtime.runtime import RealTimeLoop

FLOOD_START, FLOOD_END = 8.0, 16.0
FLOOD_RATE = 220  # req/s, beyond the toy server's capacity


def flood(server_address, stop_event):
    remote = SocketRemote(server_address, frame_bytes=4_000, timeout=0.5)
    period = 1.0 / FLOOD_RATE
    while not stop_event.is_set():
        threading.Thread(target=remote.submit, daemon=True).start()
        time.sleep(period)


def main() -> None:
    with InferenceServer(base_latency=0.022, per_item=0.0055) as server:
        print(f"inference server on {server.address}, batch cap {server.batch_limit}")
        remote = SocketRemote(server.address, frame_bytes=8_000, timeout=1.0)
        loop = RealTimeLoop(
            FrameFeedbackController(30.0),
            remote=remote,
            local_latency=0.077,  # Pi 4B MobileNetV3Small
            deadline=0.25,
        )

        stop_flood = threading.Event()

        def flood_window():
            time.sleep(FLOOD_START)
            print(f"--- flood starts ({FLOOD_RATE} req/s from a rival client) ---")
            flood_stop = threading.Event()
            t = threading.Thread(
                target=flood, args=(server.address, flood_stop), daemon=True
            )
            t.start()
            time.sleep(FLOOD_END - FLOOD_START)
            flood_stop.set()
            print("--- flood ends ---")

        threading.Thread(target=flood_window, daemon=True).start()
        print("running 24 s wall-clock...")
        result = loop.run(duration=24.0)

    print(f"\n{'t':>4s}  {'P_o':>6s}  {'P':>6s}  {'T':>5s}")
    for t, po, p, timeout in zip(
        result.times, result.offload_target, result.throughput, result.timeout_rate
    ):
        print(f"{t:4.0f}  {po:6.1f}  {p:6.1f}  {timeout:5.1f}  {'#' * int(po)}")
    print(
        f"\nserver totals: {server.stats.completed} completed, "
        f"{server.stats.rejected} rejected, {server.stats.batches} batches"
    )


if __name__ == "__main__":
    main()
