#!/usr/bin/env python
"""The same FrameFeedback controller, running in wall-clock time.

Everything else in this repository runs in simulated time; this demo
drives the identical controller object with real threads, a CPU-bound
local "inference" kernel, and a fake remote whose conditions degrade
mid-run — a miniature of the paper's actual Pi deployment.

Takes ~20 real seconds.  Run:  python examples/realtime_demo.py
"""

import threading
import time

from repro.control.framefeedback import FrameFeedbackController
from repro.realtime import FakeRemote, RealTimeLoop
from repro.realtime.fakework import RemoteConditions

GOOD = RemoteConditions(latency=0.04, jitter=0.01, failure_probability=0.0)
BAD = RemoteConditions(latency=0.18, jitter=0.08, failure_probability=0.25)


def main() -> None:
    remote = FakeRemote(seed=0)
    remote.set_conditions(GOOD)

    def degrade_later() -> None:
        time.sleep(10.0)
        print("--- injecting degradation (latency x4.5, 25% failures) ---")
        remote.set_conditions(BAD)

    threading.Thread(target=degrade_later, daemon=True).start()

    loop = RealTimeLoop(
        FrameFeedbackController(30.0),
        remote=remote,
        frame_rate=30.0,
        deadline=0.25,
        local_latency=0.05,  # a fast local model: ~20 fps locally
    )
    print("running 20 s wall-clock (degradation at t=10 s)...")
    result = loop.run(duration=20.0)

    print(f"\n{'t':>4s}  {'P_o target':>10s}  {'P':>6s}  {'T':>5s}")
    for t, po, p, timeout in zip(
        result.times, result.offload_target, result.throughput, result.timeout_rate
    ):
        bar = "#" * int(po)
        print(f"{t:4.0f}  {po:10.1f}  {p:6.1f}  {timeout:5.1f}  {bar}")

    ramped = max(result.offload_target[: len(result.offload_target) // 2])
    settled = result.offload_target[-1]
    print(
        f"\nramped to {ramped:.1f} fps of offloading under good conditions, "
        f"then backed off to {settled:.1f} fps after the injected degradation."
    )


if __name__ == "__main__":
    main()
