#!/usr/bin/env python
"""Adaptive capture quality: a second, slower loop around FrameFeedback.

§II-D of the paper identifies the accuracy-vs-bytes lever and leaves
it fixed; here the device walks a JPEG quality ladder in response to
sustained congestion (down: more frames fit the link) or sustained
clean saturation (up: spend headroom on accuracy), while the inner
FrameFeedback loop keeps picking the offload rate.

Run:  python examples/adaptive_quality.py   (~5 s)
"""

from repro.control.quality import AdaptiveQualityController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.viz import line_chart
from repro.workloads.schedules import table_v_schedule


def main() -> None:
    device = DeviceConfig(total_frames=4000)
    result = run_scenario(
        Scenario(
            controller_factory=lambda cfg: AdaptiveQualityController(cfg.frame_rate),
            device=device,
            network=table_v_schedule(),
            duration=device.stream_duration + 1.0,
            seed=0,
        )
    )

    print(result.qos.row())
    print()
    print(
        line_chart(
            {
                "P_o target (fps)": result.traces.offload_target,
                "JPEG quality": result.traces.capture_quality,
            },
            width=72,
            height=14,
            title="Offload rate and capture quality under the Table V schedule",
            y_max=95.0,
        )
    )
    print()
    q = result.traces.capture_quality
    for t0, t1, label in (
        (0, 30, "bw=10        "),
        (30, 45, "bw=4         "),
        (45, 60, "bw=1         "),
        (60, 90, "bw=10 again  "),
        (90, 105, "bw=10 loss 7%"),
        (105, 133, "bw=4  loss 7%"),
    ):
        print(f"  {label}: mean quality {q.mean_over(t0, t1):5.1f}")
    print(
        "\nThe ladder rides at q=90 while the link is generous, descends"
        "\nthrough the constrained and lossy phases to fit more frames"
        "\nwithin the 250 ms deadline, and climbs back when capacity returns."
    )


if __name__ == "__main__":
    main()
