#!/usr/bin/env python
"""A ten-minute day-in-the-life run on a drifting network, with export.

Table V's six hand-picked phases make a clean figure; real deployments
see bandwidth drift continuously.  This example runs FrameFeedback for
10 simulated minutes on a geometric-random-walk link with sporadic
loss episodes, charts the result, and exports the artifacts
(traces.csv + qos.json) the way an operations notebook would consume
them.

Run:  python examples/day_in_the_life.py [output-dir]
"""

import sys

import numpy as np

from repro import DeviceConfig, Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.io import export_run
from repro.netem.traces import random_walk_schedule
from repro.viz import line_chart

DURATION = 600.0  # ten minutes


def main() -> None:
    rng = np.random.default_rng(2024)
    network = random_walk_schedule(
        duration=DURATION,
        rng=rng,
        step_period=5.0,
        bandwidth_range=(1.5, 10.0),
        volatility=0.35,
        loss_episode_rate=0.01,
    )
    scenario = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=int(DURATION * 30)),
        network=network,
        duration=DURATION,
        seed=7,
    )
    result = run_scenario(scenario)

    # bandwidth as a series for the chart (scaled x3 onto the fps axis)
    from repro.metrics.timeseries import TimeSeries

    bw = TimeSeries("bandwidth x3")
    for t in range(0, int(DURATION), 5):
        bw.append(float(t), 3.0 * network.at(float(t)).bandwidth)

    print(result.qos.row())
    print()
    print(
        line_chart(
            {
                "link bandwidth x3": bw,
                "throughput P": result.traces.throughput,
                "offload target P_o": result.traces.offload_target,
            },
            width=76,
            height=14,
            title="10 minutes on a drifting link",
            y_max=32.0,
        )
    )

    rates = result.breakdown.cause_rates(0.0, DURATION)
    print(
        f"\nviolations: {result.qos.timeouts} total "
        f"(T_n={rates['T_n']:.2f}/s, T_l={rates['T_l']:.2f}/s); "
        f"P >= local-only floor for "
        f"{(result.traces.throughput.values >= 11.0).mean() * 100:.0f}% "
        f"of the run"
    )

    out_dir = sys.argv[1] if len(sys.argv) > 1 else "/tmp/framefeedback-day"
    paths = export_run(result, out_dir)
    print(f"artifacts: {paths['traces']} , {paths['qos']}")


if __name__ == "__main__":
    main()
