#!/usr/bin/env python
"""Quickstart: run FrameFeedback against the paper's testbed in ~2 s.

Builds one edge device (Pi 4B + MobileNetV3Small, 30 fps, 250 ms
deadline), an ideal-then-congested network, and compares FrameFeedback
with the three §IV-B baselines on identical seeds.

Run:  python examples/quickstart.py
"""

from repro import DeviceConfig, FrameFeedbackController, Scenario, run_scenario
from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    LocalOnlyController,
)
from repro.experiments.report import series_panel
from repro.netem.link import LinkConditions
from repro.netem.schedule import NetworkSchedule, SchedulePhase


def main() -> None:
    # 60 s stream: 30 s of good network, then a congested stretch.
    network = NetworkSchedule(
        [
            SchedulePhase(0.0, LinkConditions(bandwidth=10.0)),
            SchedulePhase(30.0, LinkConditions(bandwidth=4.0, loss=0.02)),
        ]
    )
    device = DeviceConfig(total_frames=1800)

    controllers = {
        "FrameFeedback": lambda cfg: FrameFeedbackController(cfg.frame_rate),
        "LocalOnly": lambda cfg: LocalOnlyController(),
        "AlwaysOffload": lambda cfg: AlwaysOffloadController(),
        "AllOrNothing": lambda cfg: AllOrNothingController(),
    }

    print("controller        QoS summary")
    print("-" * 78)
    throughput = {}
    for name, factory in controllers.items():
        result = run_scenario(
            Scenario(controller_factory=factory, device=device, network=network, seed=0)
        )
        throughput[name] = result.traces.throughput
        print(result.qos.row())

    print("\nper-second throughput (congestion starts at t=30s):")
    print(series_panel(throughput, vmax=30.0))


if __name__ == "__main__":
    main()
