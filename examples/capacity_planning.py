#!/usr/bin/env python
"""Capacity planning: how many cameras can one edge server carry?

A deployment question the paper's §II-A.1 multi-tenancy argument begs:
given the GPU batch model and per-device FrameFeedback control, where
does adding devices stop paying?  This example sweeps fleet size,
charts aggregate vs per-device throughput, and finds the knee.

Run:  python examples/capacity_planning.py   (~20 s)
"""

from repro.control.framefeedback import FrameFeedbackController
from repro.experiments.fleet import FleetScenario, homogeneous_fleet, run_fleet
from repro.experiments.report import ascii_table
from repro.metrics.timeseries import TimeSeries
from repro.viz import line_chart

FLEET_SIZES = (1, 2, 3, 4, 6, 8, 10, 12, 16)


def main() -> None:
    aggregate = TimeSeries("aggregate")
    per_device = TimeSeries("per-device x10")
    rows = []
    for n in FLEET_SIZES:
        result = run_fleet(
            FleetScenario(
                members=homogeneous_fleet(n, total_frames=900),
                controller_factory=lambda c: FrameFeedbackController(c.frame_rate),
                seed=0,
            )
        )
        throughputs = result.throughputs()
        total = sum(throughputs.values())
        aggregate.append(float(n), total)
        per_device.append(float(n), 10.0 * total / n)  # scaled onto one axis
        rows.append(
            [
                n,
                f"{total:7.1f}",
                f"{total / n:6.2f}",
                f"{min(throughputs.values()):6.2f}",
                f"{result.gpu_utilization:5.2f}",
                f"{result.mean_batch_size:5.1f}",
            ]
        )

    print(
        ascii_table(
            ["devices", "aggregate P", "per-device", "min device", "GPU util", "mean batch"],
            rows,
        )
    )
    print()
    print(
        line_chart(
            {"aggregate P (fps)": aggregate, "per-device P x10": per_device},
            width=64,
            height=12,
            title="Fleet scaling (x axis: fleet size 1..16)",
        )
    )

    # the knee: the largest fleet whose per-device throughput is still
    # within 10% of the single-device figure
    solo = rows[0]
    knee = max(
        n
        for n, row in zip(FLEET_SIZES, rows)
        if float(row[2]) > 0.9 * float(solo[2])
    )
    print(
        f"\nplanning answer: up to ~{knee} devices per server before "
        f"per-device throughput drops >10% below the single-tenant figure; "
        f"past that, every added camera costs the rest, but FrameFeedback "
        f"keeps even a 16-camera fleet above the local-only floor."
    )


if __name__ == "__main__":
    main()
