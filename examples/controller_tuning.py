#!/usr/bin/env python
"""Reproduce the §III-B tuning procedure against the simulator.

Phase 1 raises K_P (with K_D = 0) on a steady congested link until the
settled offload rate oscillates; phase 2 raises K_D until the swing
damps — the automated analogue of the paper's hand tuning, plus the
full Fig 2-style gain sweep table.

Run:  python examples/controller_tuning.py     (~30 s of simulations)
"""

import numpy as np

from repro.control.framefeedback import FrameFeedbackSettings
from repro.control.tuning import sweep_gains, tune_ziegler_nichols_like
from repro.device.config import DeviceConfig
from repro.experiments.report import ascii_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.netem.profiles import LOSSY
from repro.workloads.schedules import steady_schedule


def make_run_fn(seconds: float = 60.0, seed: int = 0):
    """settings -> settled (times, P_o) trace on a steady lossy link."""
    device = DeviceConfig(total_frames=int(seconds * 30))
    network = steady_schedule(LOSSY)

    def run(settings: FrameFeedbackSettings):
        result = run_scenario(
            Scenario(
                controller_factory=framefeedback_factory(settings),
                device=device,
                network=network,
                seed=seed,
            )
        )
        trace = result.traces.offload_target
        # score the settled half only (skip the deterministic ramp)
        settled = trace.slice(seconds / 2.0, seconds)
        return settled.times, settled.values

    return run


def main() -> None:
    run = make_run_fn()

    print("gain sweep on a steady 7%-loss link (settled P_o statistics):")
    results = sweep_gains(run, kp_values=(0.1, 0.2, 0.4), kd_values=(0.0, 0.26, 0.52))
    print(
        ascii_table(
            ["K_P", "K_D", "mean P_o", "std", "overshoot"],
            [
                [
                    f"{r.kp:g}",
                    f"{r.kd:g}",
                    f"{r.report.mean:6.2f}",
                    f"{r.report.std:5.2f}",
                    f"{r.report.overshoot:4.2f}",
                ]
                for r in results
            ],
        )
    )

    print("\nrunning the automated Ziegler-Nichols-style procedure...")
    tuned = tune_ziegler_nichols_like(
        run,
        kp_start=0.1,
        kp_step=0.1,
        kp_max=0.6,
        kd_step=0.13,
        kd_max=0.78,
        oscillation_threshold=3.0,
    )
    print(f"tuned gains: K_P={tuned.kp:g}, K_D={tuned.kd:g}")
    print("paper gains: K_P=0.2, K_D=0.26 (Table IV)")

    t, v = run(tuned)
    print(f"tuned settled P_o: mean={np.mean(v):.2f} fps, std={np.std(v):.2f}")


if __name__ == "__main__":
    main()
