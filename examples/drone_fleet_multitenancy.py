#!/usr/bin/env python
"""A drone fleet sharing one GPU edge server (§II-A.1 multi-tenancy).

Eight inspection drones stream frames to a single V100-class edge
server.  Mid-mission, a batch job from another team floods the server.
Each drone runs its own FrameFeedback controller; the question is
whether the fleet collectively sheds load instead of collapsing, and
whether the server's fair batching policy protects light users.

This example drives the substrate API directly (environment, links,
server, devices) rather than the Scenario convenience wrapper, showing
how multi-device topologies are wired.

Run:  python examples/drone_fleet_multitenancy.py
"""

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.device.device import EdgeDevice
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.server.batching import BatchPolicy
from repro.server.server import EdgeServer
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.loadgen import BackgroundLoad, LoadSchedule

N_DRONES = 8
MISSION_SECONDS = 90.0

#: the rogue batch job: nothing, then a 100 req/s flood, then nothing
FLOOD = LoadSchedule.from_rows([(0, 0), (30, 100), (60, 0)])


def build_fleet(policy: BatchPolicy, seed: int = 0):
    env = Environment()
    rng = RngRegistry(seed)
    server = EdgeServer(env, rng.stream("server"), batch_policy=policy)
    BackgroundLoad(env, server, FLOOD, rng.stream("flood"), tenant_prefix="batchjob")

    devices = []
    for i in range(N_DRONES):
        # each drone has its own radio link; slightly different quality
        box = ConditionBox(LinkConditions(bandwidth=8.0 + (i % 3)))
        uplink = Link(env, rng.stream(f"up{i}"), box, name=f"up{i}")
        downlink = Link(env, rng.stream(f"down{i}"), box, name=f"down{i}")
        config = DeviceConfig(name=f"drone{i}", total_frames=int(MISSION_SECONDS * 30))
        device = EdgeDevice(
            env,
            config,
            FrameFeedbackController(config.frame_rate),
            uplink=uplink,
            downlink=downlink,
            server=server,
            rng=rng.stream(f"dev{i}"),
        )
        devices.append(device)
    return env, server, devices


def fleet_stats(policy: BatchPolicy):
    env, server, devices = build_fleet(policy)
    env.run(until=MISSION_SECONDS + 1.0)
    throughputs = [d.traces.throughput.values.mean() for d in devices]
    flood_means = [
        d.traces.throughput.mean_over(32.0, 60.0) for d in devices
    ]
    return server, throughputs, flood_means


def main() -> None:
    for policy in (BatchPolicy.FIFO, BatchPolicy.FAIR):
        server, mission, flood = fleet_stats(policy)
        spread = max(flood) - min(flood)
        print(f"batch policy = {policy.value}")
        print(
            f"  fleet mean throughput: {sum(mission) / len(mission):5.2f} fps "
            f"per drone (whole mission)"
        )
        print(
            f"  during the flood:      {sum(flood) / len(flood):5.2f} fps per "
            f"drone, min {min(flood):5.2f}, max {max(flood):5.2f} "
            f"(spread {spread:4.2f})"
        )
        print(
            f"  server: {server.stats.completed} completed, "
            f"{server.stats.rejected} rejected, "
            f"GPU {server.gpu.frames_run} frames in {server.gpu.batches_run} batches "
            f"(mean batch {server.gpu.frames_run / max(server.gpu.batches_run, 1):.1f})"
        )
        print()

    print(
        "Every drone keeps P >= P_l through the flood because its own\n"
        "FrameFeedback loop scales offloading back instead of letting the\n"
        "shared server time everyone out; the FAIR batch policy narrows the\n"
        "per-drone spread during contention."
    )


if __name__ == "__main__":
    main()
