#!/usr/bin/env python
"""Supervision chaos: kill the controller mid-run, restart warm vs cold.

The closed loop's weakest point is the loop itself: if the process
computing ``P_o`` dies, the splitter freezes at its last target and
telemetry goes dark.  This example runs the same crash schedule twice —
controller killed at t=60 s, server killed at t=90 s, full device
reboot at t=108 s — once with checkpointing enabled (warm restarts)
and once without (cold restarts), then shows what the checkpoint buys:

* warm: restore target + PID state from the last measure tick's
  checkpoint and re-settle within a couple of control periods;
* cold: restart from ``initial_target = 0`` and pay the full ramp
  under the ``+0.1 F_s`` update clamp all over again.

Run:  python examples/chaos_supervision.py
"""

from repro.experiments.chaos import run_supervision_chaos
from repro.experiments.report import ascii_table, series_panel


def main() -> None:
    result = run_supervision_chaos(seed=0, total_frames=4000)

    print("Supervision chaos: controller kill @60s, server kill @90s, "
          "device reboot @108s\n")
    for label, child in (("warm (checkpointed)", result.warm),
                         ("cold (no checkpoints)", result.cold)):
        sup = child.supervision
        print(f"--- {label} ---")
        print(
            series_panel(
                {"P_o": child.run.traces.offload_target,
                 "T": child.run.traces.timeout_rate},
                vmax=30.0,
            )
        )
        mttr = ", ".join(
            f"{component}={values[0]:.1f}s"
            for component, values in sorted(sup["mttr"].items())
            if values
        )
        print(f"restarts: {sup['restarts']}   "
              f"missed windows: {sup['missed_windows']}   MTTR: {mttr}")
        print(ascii_table(
            ["invariant", "window", "observed", "expected", "verdict"],
            [c.row() for c in child.invariants],
        ))
        print()

    print("Cross-run ordering (same seed, same crash schedule):")
    print(ascii_table(
        ["invariant", "window", "warm", "cold", "verdict"],
        [c.row() for c in result.cross_invariants],
    ))
    print(f"\nverdict: {'PASS' if result.all_invariants_hold else 'FAIL'}")


if __name__ == "__main__":
    main()
