#!/usr/bin/env python
"""Surveillance camera on flaky Wi-Fi (the paper's §I motivation).

A fixed camera classifies every frame; its Wi-Fi link to the edge
server sees rush-hour interference: bandwidth sags and packet loss
spikes, then conditions recover.  The operator cares about one number —
how many frames per second actually produced a classification before
the 250 ms deadline.

This example also shows programmatic access to the traces: it finds
the worst minute for each controller and reports FrameFeedback's
advantage per network phase.

Run:  python examples/surveillance_camera.py
"""

from repro import DeviceConfig, Scenario, run_scenario
from repro.experiments.standard import standard_controllers
from repro.metrics.qos import summarize_phases
from repro.netem.schedule import NetworkSchedule
from repro.experiments.report import phase_table, series_panel

# A day-in-the-life schedule: (start s, bandwidth units, loss %)
RUSH_HOUR = NetworkSchedule.from_rows(
    [
        (0, 10, 0),  # quiet morning
        (40, 6, 2),  # traffic builds
        (70, 3, 5),  # rush hour: microwave ovens, congested spectrum
        (110, 6, 2),  # easing off
        (140, 10, 0),  # evening calm
    ]
)
PHASE_LABELS = ("quiet", "building", "rush hour", "easing", "calm")


def main() -> None:
    device = DeviceConfig(name="cam-07", total_frames=170 * 30)
    duration = device.stream_duration + 1.0

    runs = {}
    for name, factory in standard_controllers().items():
        runs[name] = run_scenario(
            Scenario(
                controller_factory=factory,
                device=device,
                network=RUSH_HOUR,
                duration=duration,
                seed=42,
            )
        )

    throughput = {name: run.traces.throughput for name, run in runs.items()}
    print("per-second successful classifications:")
    print(series_panel(throughput, vmax=30.0))

    phases = summarize_phases(
        throughput,
        boundaries=[p.start for p in RUSH_HOUR.phases],
        end=duration,
        labels=PHASE_LABELS,
    )
    print("\nmean throughput per phase:")
    print(phase_table(phases))

    rush = phases[2]
    print(
        f"\nduring rush hour FrameFeedback delivered "
        f"{rush.advantage_over('FrameFeedback', 'AllOrNothing'):.1f}x the "
        f"throughput of the all-or-nothing policy and "
        f"{rush.advantage_over('FrameFeedback', 'AlwaysOffload'):.1f}x "
        f"always-offload."
    )

    # Worst minute: where would an operator have seen the most drops?
    for name, run in runs.items():
        series = run.traces.throughput
        worst = min(
            (series.mean_over(t, t + 60.0), t)
            for t in range(0, int(duration) - 60, 10)
        )
        print(f"{name:>14s}: worst minute started at t={worst[1]:4d}s "
              f"with {worst[0]:5.1f} fps")


if __name__ == "__main__":
    main()
