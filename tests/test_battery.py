"""Tests for the battery/power model."""

import pytest

from repro.device.battery import BatteryAccountant, PowerModel, account_run
from repro.device.energy import CpuUtilizationModel
from repro.models.device_profiles import PI_4B_1_2


def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(idle_watts=5.0, loaded_watts=2.0)
    with pytest.raises(ValueError):
        PowerModel(tx_joules_per_byte=-1)
    pm = PowerModel()
    with pytest.raises(ValueError):
        pm.power(1.5)
    with pytest.raises(ValueError):
        pm.power(0.5, tx_bytes_per_s=-1)


def test_power_linear_in_utilization():
    pm = PowerModel(idle_watts=2.0, loaded_watts=6.0)
    assert pm.power(0.0) == pytest.approx(2.0)
    assert pm.power(1.0) == pytest.approx(6.0)
    assert pm.power(0.5) == pytest.approx(4.0)


def test_radio_energy_added():
    pm = PowerModel(idle_watts=2.0, loaded_watts=2.0, tx_joules_per_byte=1e-6)
    assert pm.power(0.0, tx_bytes_per_s=1_000_000) == pytest.approx(3.0)


def test_offloading_wins_at_default_frame_size():
    """§II-A.5 quantified: CPU savings dwarf the radio bill."""
    pm = PowerModel()
    cpu = CpuUtilizationModel(PI_4B_1_2)
    local = pm.power(cpu.local_only_utilization())
    offload = pm.power(
        cpu.full_offload_utilization(30.0),
        tx_bytes_per_s=30.0 * 11_700,
        rx_bytes_per_s=30.0 * 160,
    )
    assert offload < local
    # savings ~ 1 W against ~0.04 W of radio
    assert local - offload > 0.8


def test_radio_bill_can_flip_the_verdict():
    """With enormous frames the radio exceeds the CPU savings."""
    pm = PowerModel()
    cpu = CpuUtilizationModel(PI_4B_1_2)
    local = pm.power(cpu.local_only_utilization())
    huge_frames = pm.power(
        cpu.full_offload_utilization(30.0),
        tx_bytes_per_s=30.0 * 20_000_000,  # ~20 MB frames (raw 4K-ish)
    )
    assert huge_frames > local


def test_accountant_integrates():
    acct = BatteryAccountant(PowerModel(), CpuUtilizationModel(PI_4B_1_2))
    with pytest.raises(ValueError):
        acct.step(0.0, 0.5, 10.0, 11_700)
    for _ in range(10):
        acct.step(1.0, 0.5, 10.0, 11_700)
    assert acct.seconds == 10.0
    assert acct.consumed_joules > 0
    assert acct.mean_watts == pytest.approx(acct.consumed_joules / 10.0)
    assert acct.battery_hours(10.0) > 0
    assert acct.joules_per_success(100) == pytest.approx(acct.consumed_joules / 100)
    assert acct.joules_per_success(0) == float("inf")


def test_account_run_from_traces():
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.control.baselines import AlwaysOffloadController, LocalOnlyController

    def run(factory):
        return run_scenario(
            Scenario(
                controller_factory=factory,
                device=DeviceConfig(total_frames=900),
                seed=0,
            )
        )

    local = account_run(run(lambda c: LocalOnlyController()))
    offload = account_run(run(lambda c: AlwaysOffloadController()))
    assert local.mean_watts > offload.mean_watts  # the paper's claim
    # efficiency: offloading also produces MORE successes, so J/success
    # improves even more than watts
    assert offload.battery_hours(10.0) > local.battery_hours(10.0)
