"""Tests for the reservation broker (ATOMS-lite admission)."""

import numpy as np
import pytest

from repro.models.latency import GpuBatchModel
from repro.server.admission import ReservationBroker
from repro.server.requests import InferenceRequest
from repro.server.server import EdgeServer
from repro.sim import Environment


def make_broker(env=None, utilization_target=0.85):
    env = env or Environment()
    server = EdgeServer(env, np.random.default_rng(0))
    broker = ReservationBroker(env, server, utilization_target=utilization_target)
    return env, server, broker


def test_validation():
    env = Environment()
    server = EdgeServer(env, np.random.default_rng(0))
    with pytest.raises(ValueError):
        ReservationBroker(env, server, utilization_target=0.0)
    with pytest.raises(ValueError):
        ReservationBroker(env, server, measure_period=0.0)
    _, _, broker = make_broker()
    with pytest.raises(ValueError):
        broker.request("t", -1.0)


def test_single_tenant_gets_ask_when_capacity_allows():
    _, _, broker = make_broker()
    grant = broker.request("pi", 30.0)
    assert grant == pytest.approx(30.0)


def test_ask_beyond_capacity_is_capped():
    _, _, broker = make_broker()
    grant = broker.request("pi", 10_000.0)
    assert grant == pytest.approx(broker.capacity())


def test_two_tenants_split_fairly():
    _, _, broker = make_broker()
    cap = broker.capacity()
    a = broker.request("a", cap)
    b = broker.request("b", cap)
    # after both asks are standing, each gets half
    assert b == pytest.approx(cap / 2)
    assert broker.request("a", cap) == pytest.approx(cap / 2)
    assert a <= cap  # first call saw only itself


def test_max_min_small_ask_fully_served():
    _, _, broker = make_broker()
    cap = broker.capacity()
    broker.request("big", cap)
    small = broker.request("small", 2.0)
    assert small == pytest.approx(2.0)
    big = broker.request("big", cap)
    assert big == pytest.approx(cap - 2.0)


def test_release_returns_capacity():
    _, _, broker = make_broker()
    cap = broker.capacity()
    broker.request("a", cap)
    broker.request("b", cap)
    broker.release("a")
    assert broker.request("b", cap) == pytest.approx(cap)


def test_background_rate_measured_and_deducted():
    env, server, broker = make_broker()

    def background(env, server):
        while env.now < 5.0:
            server.submit(
                InferenceRequest(
                    tenant="bg0",
                    model_name="efficientnet_b0",
                    sent_at=env.now,
                    payload_bytes=100,
                    respond=lambda r: None,
                )
            )
            yield env.timeout(0.02)  # 50 req/s

    env.process(background(env, server))
    env.run(until=4.0)
    assert broker.background_rate == pytest.approx(50.0, rel=0.2)
    grant = broker.request("pi", 1000.0)
    assert grant == pytest.approx(broker.capacity() - broker.background_rate, rel=0.05)


def test_reserved_tenant_not_counted_as_background():
    env, server, broker = make_broker()
    broker.request("pi", 30.0)

    def reserved_traffic(env, server):
        while env.now < 3.0:
            server.submit(
                InferenceRequest(
                    tenant="pi",
                    model_name="mobilenet_v3_small",
                    sent_at=env.now,
                    payload_bytes=100,
                    respond=lambda r: None,
                )
            )
            yield env.timeout(1 / 30)

    env.process(reserved_traffic(env, server))
    env.run(until=3.0)
    assert broker.background_rate == pytest.approx(0.0, abs=0.5)


# ----------------------------------------------------------------------
# max-min fairness as a property (Hypothesis)
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

_asks_strategy = st.lists(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
)


def _final_grants(asks, order=None):
    """Register every ask, then re-query each tenant so all grants are
    computed against the full, settled set of standing asks."""
    _, _, broker = make_broker()
    tenants = [f"t{i}" for i in range(len(asks))]
    order = order if order is not None else list(range(len(asks)))
    for i in order:
        broker.request(tenants[i], asks[i])
    grants = {tenants[i]: broker.request(tenants[i], asks[i]) for i in order}
    return broker, grants


@settings(max_examples=60, deadline=None)
@given(asks=_asks_strategy)
def test_grants_never_exceed_asks(asks):
    _, grants = _final_grants(asks)
    for i, ask in enumerate(asks):
        assert grants[f"t{i}"] <= ask + 1e-9


@settings(max_examples=60, deadline=None)
@given(asks=_asks_strategy)
def test_grants_never_exceed_capacity(asks):
    broker, grants = _final_grants(asks)
    assert sum(grants.values()) <= broker.capacity() + 1e-6


@settings(max_examples=60, deadline=None)
@given(asks=_asks_strategy, data=st.data())
def test_grants_are_order_insensitive(asks, data):
    order = data.draw(st.permutations(list(range(len(asks)))))
    _, forward = _final_grants(asks)
    _, permuted = _final_grants(asks, order=order)
    for tenant, grant in forward.items():
        assert permuted[tenant] == pytest.approx(grant, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(asks=_asks_strategy)
def test_unsatisfied_tenants_get_no_less_than_satisfied_ones(asks):
    """Max-min: a tenant whose ask was cut never ends up with less than
    any fully-served tenant asked for."""
    _, grants = _final_grants(asks)
    cut = [grants[f"t{i}"] for i, a in enumerate(asks) if grants[f"t{i}"] < a - 1e-9]
    served = [a for i, a in enumerate(asks) if grants[f"t{i}"] >= a - 1e-9]
    if cut and served:
        assert min(cut) >= max(served) - 1e-6
