"""End-to-end fleet failover: a mid-run ServerKill must lose nothing.

Drives the full wired stack (device + router + pool + injectors)
through :func:`repro.fleet.chaos.fleet_chaos_scenario` and asserts the
PR's acceptance invariants directly: closed accounting, an exercised
failover path, per-server attribution, probation re-admission, and the
failover-beats-none ordering.
"""

import pytest

from repro.experiments.chaos import run_chaos
from repro.fleet.chaos import (
    DEFAULT_KILL,
    DEFAULT_SERVERS,
    fleet_chaos_scenario,
    run_fleet_chaos,
)


@pytest.fixture(scope="module")
def twin():
    return run_fleet_chaos(seed=0, total_frames=900)


def test_all_fleet_invariants_pass(twin):
    failed = [c.name for c in twin.fleet_invariants if not c.passed]
    assert not failed, f"failing fleet invariants: {failed}"
    assert twin.all_invariants_hold


def test_accounting_closed_in_both_runs(twin):
    for result in (twin.failover, twin.no_failover):
        qos = result.run.qos
        assert qos.successful + qos.timeouts + qos.dropped_local == qos.total_frames
        assert qos.extras["fleet.outstanding"] == 0.0


def test_kill_exercises_failover_and_rescues_the_frame(twin):
    qos = twin.failover.run.qos
    assert qos.extras["fleet.failovers"] >= 1.0
    assert qos.extras["fleet.edge0.failed_over_out"] >= 1.0
    # the rescued frames landed somewhere healthy
    moved_in = sum(
        qos.extras[f"fleet.{s}.failed_over_in"] for s in DEFAULT_SERVERS[1:]
    )
    assert moved_in == qos.extras["fleet.edge0.failed_over_out"]
    # with failover on, the ejection happens at the kill instant, before
    # any data-path timeout can be charged to edge0
    assert qos.extras["fleet.edge0.failures"] == 0.0


def test_killed_server_ejected_and_readmitted(twin):
    qos = twin.failover.run.qos
    assert qos.extras["fleet.edge0.ejections"] == 1.0
    assert qos.extras["fleet.edge0.readmissions"] == 1.0
    assert qos.extras["fleet.mttr_count"] == 1.0
    # MTTR >= the kill window: the server cannot be back before it heals
    assert qos.extras["fleet.mttr_mean"] >= DEFAULT_KILL[2]


def test_failover_strictly_beats_ablation(twin):
    v_on = twin.failover.run.qos.mean_violation_rate
    v_off = twin.no_failover.run.qos.mean_violation_rate
    assert v_on < v_off
    # the ablation takes the kill on the chin: silence -> timeouts
    assert twin.no_failover.run.qos.timeouts > twin.failover.run.qos.timeouts


def test_ablation_routes_blind_into_the_dead_server(twin):
    qos = twin.no_failover.run.qos
    # failover off: no ejection, edge0 keeps receiving and failing
    assert qos.extras["fleet.edge0.ejections"] == 0.0
    assert qos.extras["fleet.edge0.failures"] > 0.0
    assert qos.extras["fleet.failovers"] == 0.0


def test_named_kill_is_not_a_total_failure(twin):
    # a one-member kill must not trigger the blackout invariants the
    # single-server chaos runner asserts on total_failure windows
    assert twin.failover.invariants == []
    assert twin.failover.all_invariants_hold


def test_unknown_server_name_fails_at_install():
    chaos = fleet_chaos_scenario(kill=("edge9", 8.0, 2.0))
    with pytest.raises(ValueError, match="unknown server 'edge9'"):
        run_chaos(chaos)


def test_to_dict_shape(twin):
    doc = twin.to_dict()
    assert doc["mode"] == "fleet"
    assert doc["verdict"] == "PASS"
    assert set(doc) == {"mode", "failover", "no_failover", "fleet_invariants", "verdict"}
    for key in ("failover", "no_failover"):
        assert "fleet" in doc[key]
        assert "dropped_local" in doc[key]["qos"]
