"""Tests for the resilient socket client (breaker, probes, taxonomy).

The client is :mod:`repro.resilience` on real sockets; these tests
drive it against a real gateway (and a dead port) and assert the same
contracts the simulator's resilience layer carries: closed accounting,
breaker trip/fallback/re-close, and shared taxonomy counters.
"""

import asyncio
import socket

import pytest

from repro.metrics.taxonomy import FailureKind
from repro.realtime.client import FrameOutcome, ResilientSocketRemote
from repro.realtime.gateway import GatewayConfig, InferenceGateway
from repro.resilience.config import ResilienceConfig


def run(coro):
    return asyncio.run(coro)


def dead_address():
    """An address nothing listens on (bind, read the port, close)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


def test_constructor_validation():
    with pytest.raises(ValueError):
        ResilientSocketRemote(("127.0.0.1", 1), deadline=0.0)
    with pytest.raises(ValueError):
        ResilientSocketRemote(("127.0.0.1", 1), frame_bytes=0)


def test_completed_round_trip_and_submit_bool():
    async def scenario():
        async with InferenceGateway(GatewayConfig()) as gateway:
            remote = ResilientSocketRemote(
                gateway.address, deadline=0.5, frame_bytes=128
            )
            assert await remote.submit_frame() is FrameOutcome.COMPLETED
            assert await remote.submit() is True
            await remote.close()
            assert remote.submitted == 2
            assert remote.counts[FrameOutcome.COMPLETED] == 2
            assert remote.accounting_closed

    run(scenario())


def test_breaker_trips_to_local_fallback_on_dead_address():
    async def scenario():
        config = ResilienceConfig.wallclock()
        remote = ResilientSocketRemote(
            dead_address(), deadline=0.05, config=config, frame_bytes=64
        )
        outcomes = [await remote.submit_frame() for _ in range(config.trip_threshold + 3)]
        await remote.close()
        # first trip_threshold attempts fail fast (connection refused),
        # then the breaker opens and frames divert locally, unsent
        assert outcomes[: config.trip_threshold] == (
            [FrameOutcome.TIMEOUT] * config.trip_threshold
        )
        assert FrameOutcome.FALLBACK_LOCAL in outcomes
        assert remote.breaker.is_open
        assert remote.accounting_closed
        taxonomy = remote.taxonomy.as_dict()
        assert taxonomy[FailureKind.BREAKER_FALLBACK.value] >= 1
        assert taxonomy[FailureKind.SILENT_TIMEOUT.value] >= config.trip_threshold

    run(scenario())


def test_overload_pushback_is_classified_not_timed_out():
    async def scenario():
        gw_config = GatewayConfig(tenant_rate=1.0, tenant_burst=1.0)
        async with InferenceGateway(gw_config) as gateway:
            remote = ResilientSocketRemote(
                gateway.address, deadline=0.5, tenant="greedy", frame_bytes=64
            )
            first = await remote.submit_frame()
            second = await remote.submit_frame()
            await remote.close()
            assert first is FrameOutcome.COMPLETED
            assert second is FrameOutcome.OVERLOADED
            assert remote.taxonomy.as_dict()[FailureKind.OVERLOADED.value] == 1
            assert remote.accounting_closed

    run(scenario())


def test_probe_recovers_breaker_when_gateway_returns():
    async def scenario():
        config = ResilienceConfig.wallclock()
        gateway = await InferenceGateway(GatewayConfig()).start()
        port = gateway.address[1]
        remote = ResilientSocketRemote(
            gateway.address, deadline=0.2, config=config, frame_bytes=64
        )
        assert await remote.submit_frame() is FrameOutcome.COMPLETED
        # outage: kill the gateway, drive the breaker open
        await gateway.stop(abort=True)
        for _ in range(config.trip_threshold):
            assert await remote.submit_frame() in (
                FrameOutcome.TIMEOUT,
                FrameOutcome.REJECTED,
            )
        assert remote.breaker.is_open
        assert await remote.submit_frame() is FrameOutcome.FALLBACK_LOCAL
        # recovery: rebind the same port, wait out the probe backoff
        revived = await InferenceGateway(GatewayConfig(port=port)).start()
        try:
            await asyncio.sleep(config.backoff_initial + 0.05)
            probe = await remote.submit_frame()
            assert probe is FrameOutcome.COMPLETED
            assert remote.breaker.is_closed  # close_after=1 in wallclock preset
            assert await remote.submit_frame() is FrameOutcome.COMPLETED
        finally:
            await remote.close()
            await revived.stop()
        assert remote.accounting_closed

    run(scenario())
