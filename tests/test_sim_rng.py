"""Unit tests for the deterministic RNG registry."""

import numpy as np

from repro.sim import RngRegistry


def test_same_name_same_instance():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_same_seed_same_draws():
    a = RngRegistry(seed=42).stream("link").random(10)
    b = RngRegistry(seed=42).stream("link").random(10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("link").random(10)
    b = RngRegistry(seed=2).stream("link").random(10)
    assert not np.array_equal(a, b)


def test_different_names_are_independent():
    reg = RngRegistry(seed=0)
    a = reg.stream("uplink").random(10)
    b = reg.stream("downlink").random(10)
    assert not np.array_equal(a, b)


def test_stream_identity_independent_of_creation_order():
    """Adding a new consumer must not perturb existing streams."""
    reg1 = RngRegistry(seed=7)
    reg1.stream("x")
    vals1 = reg1.stream("target").random(5)

    reg2 = RngRegistry(seed=7)
    vals2 = reg2.stream("target").random(5)  # no "x" created first
    assert np.array_equal(vals1, vals2)


def test_contains_and_names():
    reg = RngRegistry(seed=0)
    assert "a" not in reg
    reg.stream("a")
    reg.stream("b")
    assert "a" in reg
    assert reg.names() == ["a", "b"]


def test_reset_recreates_fresh_streams():
    reg = RngRegistry(seed=3)
    first = reg.stream("s").random(4)
    reg.reset()
    again = reg.stream("s").random(4)
    assert np.array_equal(first, again)
