"""Oracle feasibility consistency (ISSUE 6 satellite).

The search's contract: a scenario is only ever reported as a *finding*
if it is winnable — the analytic model calls it serviceable AND the
clairvoyant oracle, run operationally at the same seed, actually
achieves low violations and a minimum success fraction.  These tests
pin the two halves to each other: the analytic verdict must never be
contradicted later by the oracle run for specs the pipeline certifies,
and specs the analytic model refuses (process kills, blackouts) must
never spend an oracle run at all.
"""

import pytest

from repro.search import (
    EvalParams,
    ScenarioSpec,
    SearchConfig,
    analyze_feasibility,
    evaluate_spec,
    run_search,
)
from repro.search.feasibility import UNANALYZED_KINDS

PARAMS = EvalParams()

#: fault-bearing specs spanning every analyzed fault category
FAULT_SPECS = [
    {"device": {"total_frames": 450},
     "faults": [{"kind": "bandwidth_collapse", "factor": 0.4,
                 "windows": [[4.0, 3.0]]}]},
    {"device": {"total_frames": 450},
     "faults": [{"kind": "burst_loss", "loss": 0.2, "burst": 4.0,
                 "windows": [[4.0, 2.0]]}]},
    {"device": {"total_frames": 450},
     "faults": [{"kind": "server_slowdown", "factor": 2.0,
                 "windows": [[4.0, 3.0]]}]},
    {"device": {"total_frames": 450},
     "faults": [{"kind": "gpu_contention", "mean_factor": 2.0, "sigma": 0.1,
                 "windows": [[4.0, 3.0]]}]},
    {"device": {"total_frames": 450},
     "faults": [{"kind": "cpu_throttle", "factor": 2.0,
                 "windows": [[4.0, 3.0]]}]},
    {"device": {"total_frames": 450},
     "faults": [{"kind": "camera_stall", "windows": [[4.0, 3.0]]}]},
    {"device": {"total_frames": 450},
     "faults": [{"kind": "server_crash", "windows": [[4.0, 1.0]]}]},
]


@pytest.mark.parametrize("data", FAULT_SPECS,
                         ids=[d["faults"][0]["kind"] for d in FAULT_SPECS])
def test_certified_feasibility_is_operationally_consistent(data):
    """If the pipeline reports feasible, the oracle witnessed it."""
    spec = ScenarioSpec.from_dict(data)
    result = evaluate_spec(spec, PARAMS)
    analytic = analyze_feasibility(spec, feasible_frac=PARAMS.feasible_frac,
                                   blackout_limit=PARAMS.blackout_limit)
    if result.feasible:
        # feasible verdicts always carry the operational oracle witness
        assert result.oracle_qos is not None
        assert result.oracle_qos["mean_violation_rate"] <= PARAMS.oracle_violation_limit
        assert result.oracle_qos["success_fraction"] >= PARAMS.oracle_success_floor
    if not analytic.feasible:
        # analytically-refused specs never spend an oracle run, and can
        # never surface as feasible
        assert result.oracle_qos is None
        assert not result.feasible


@pytest.mark.parametrize("kind", sorted(UNANALYZED_KINDS))
def test_process_kills_are_never_certified(kind):
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 300},
         "faults": [{"kind": kind, "windows": [[3.0, 1.0]]}]}
    )
    report = analyze_feasibility(spec)
    assert not report.feasible
    assert kind in report.detail


def test_whole_run_blackout_is_analytically_refused():
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 450},
         "faults": [{"kind": "bandwidth_collapse", "factor": 0.01,
                     "windows": [[0.0, 15.0]]}]}
    )
    report = analyze_feasibility(spec)
    assert not report.feasible
    assert report.serviceable_frac < PARAMS.feasible_frac


def test_benign_default_scenario_is_feasible_and_witnessed():
    spec = ScenarioSpec.from_dict({"device": {"total_frames": 450}})
    report = analyze_feasibility(spec)
    assert report.feasible
    assert report.blackout_frac == 0.0
    result = evaluate_spec(spec, PARAMS)
    assert result.feasible
    assert result.oracle_qos["mean_violation_rate"] <= PARAMS.oracle_violation_limit


def test_search_never_reports_an_unwitnessed_feasible_candidate():
    """End-to-end: every feasible evaluation in a search run carries a
    consistent oracle witness at the candidate's own seed."""
    result = run_search(SearchConfig(seed=1, budget=8, round_size=4, workers=1))
    assert result.evaluations, "search evaluated nothing"
    for e in result.evaluations:
        if e.feasible:
            assert e.oracle_qos is not None
            assert e.oracle_qos["mean_violation_rate"] <= PARAMS.oracle_violation_limit
            assert e.oracle_qos["success_fraction"] >= PARAMS.oracle_success_floor
        if e.failing(result.config.params):
            assert e.feasible


def test_feasibility_report_serializes_rounded():
    spec = ScenarioSpec.from_dict({"device": {"total_frames": 300}})
    d = analyze_feasibility(spec).as_dict()
    assert set(d) >= {"feasible", "serviceable_frac", "blackout_frac"}
    assert d["serviceable_frac"] == round(d["serviceable_frac"], 9)
