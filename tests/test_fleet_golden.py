"""Golden regression for ``repro chaos --fleet --json``.

The committed golden is the exact CLI stdout of the fleet chaos twin
run (failover on vs. off, identical kill schedule) at the default
seed/length.  Tested byte-exact on both kernels via subprocess, plus a
semantic layer asserting the PR's acceptance criteria hold *in the
committed artifact* — so a regenerated golden that quietly stops
exercising failover fails review here, not in production.

Intentional-change workflow::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_fleet_golden.py
    git diff tests/goldens/fleet_chaos.json
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

GOLDEN = Path(__file__).parent / "goldens" / "fleet_chaos.json"
REPO = Path(__file__).parent.parent


def _cli_stdout(slowpath: bool) -> str:
    env = dict(os.environ, PYTHONPATH="src")
    if slowpath:
        env["REPRO_SIM_SLOWPATH"] = "1"
    else:
        env.pop("REPRO_SIM_SLOWPATH", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "chaos", "--fleet", "--json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc.stdout


@pytest.mark.parametrize("slowpath", [False, True], ids=["fast", "slow"])
def test_cli_fleet_json_matches_golden(slowpath):
    fresh = _cli_stdout(slowpath)
    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        if not slowpath:
            GOLDEN.write_text(fresh)
        pytest.fail(
            f"golden {GOLDEN.name} regenerated (REPRO_UPDATE_GOLDENS=1); "
            "review with `git diff tests/goldens/` and commit"
        )
    assert GOLDEN.exists(), (
        f"missing golden {GOLDEN}; generate with REPRO_UPDATE_GOLDENS=1"
    )
    assert GOLDEN.read_text() == fresh


def test_golden_meets_acceptance_criteria():
    """The committed artifact itself must witness the PR's claims."""
    doc = json.loads(GOLDEN.read_text())
    assert doc["mode"] == "fleet"
    assert doc["verdict"] == "PASS"
    assert all(c["passed"] for c in doc["fleet_invariants"])

    on, off = doc["failover"], doc["no_failover"]
    # a mid-run ServerKill loses zero frames to accounting
    for run in (on, off):
        q = run["qos"]
        assert (
            q["successful"] + q["timeouts"] + q["dropped_local"]
            == q["total_frames"]
        )
        assert run["fleet"]["fleet.outstanding"] == 0.0
    # the kill was live: in-flight frames actually moved
    assert on["fleet"]["fleet.failovers"] >= 1.0
    assert on["fleet"]["fleet.edge0.ejections"] == 1.0
    assert on["fleet"]["fleet.mttr_count"] == 1.0
    # deadline-violation rate strictly lower with failover enabled
    assert (
        on["qos"]["mean_violation_rate"] < off["qos"]["mean_violation_rate"]
    )


def test_golden_is_canonical_json():
    text = GOLDEN.read_text()
    assert text.endswith("\n")
    doc = json.loads(text)
    assert text == json.dumps(doc, indent=1, sort_keys=True) + "\n"
