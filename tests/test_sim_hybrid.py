"""Hybrid fluid/frame kernel validation (ISSUE 8).

Three layers of correctness, matching docs/performance.md:

* **Boundary exactness** — a fluid window may never straddle a
  transient: property tests pin ``FluidRegime.open_window`` to end
  *byte-for-byte* on the earliest pinned edge / measure tick, and the
  degenerate hybrid (``min_window`` beyond the run length) must
  reproduce the exact kernel's transcript bit-identically.
* **Traced runs are exact runs** — the tracer vetoes fluid advance, so
  every committed golden trace replays byte-exact under
  ``REPRO_KERNEL=hybrid`` on both the fast and slow kernels.
* **Fluid regions are statistically equivalent** — paired same-seed
  sweeps of the Fig. 3 scenario must land inside a bootstrap
  equivalence margin on QoS (:func:`repro.analysis.significance
  .equivalent_within`), while the hybrid run actually engages windows.
"""

import dataclasses
import json
import struct
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.fluid as fluid_mod
from repro.analysis.significance import bootstrap_mean_diff_ci, equivalent_within
from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.chaos import RecordingController
from repro.experiments.scenario import Scenario, build_runtime, run_scenario
from repro.netem.link import LinkConditions
from repro.sim import Environment
from repro.sim.core import capture_env_stats
from repro.sim.fluid import FluidRegime
from repro.workloads.schedules import steady_schedule, table_v_schedule

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _pack(x: float) -> bytes:
    return struct.pack("<d", x)


# ----------------------------------------------------------------------
# boundary exactness: the handoff lands ON the transient
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    now=st.floats(0.0, 1000.0),
    gaps=st.lists(st.floats(1e-3, 30.0), min_size=1, max_size=6),
)
def test_window_ends_byte_exactly_on_first_pinned_edge(now, gaps):
    """Fault/schedule boundaries bind as the *identical* float."""
    env = Environment()
    env._now = now
    regime = FluidRegime(env, min_window=1e-9, max_window=1e9)
    edges, t = [], now
    for g in gaps:
        t = t + g
        edges.append(t)
    regime.pin_edges(edges)
    t1 = regime.open_window(now)
    first = min(e for e in edges if e > now + 1e-12)
    assert t1 is not None
    assert _pack(t1) == _pack(first)


@settings(max_examples=60, deadline=None)
@given(
    now=st.floats(0.0, 1000.0),
    tick_gap=st.floats(0.3, 5.0),
    gaps=st.lists(st.floats(1e-3, 30.0), min_size=0, max_size=4),
    max_window=st.floats(0.5, 20.0),
)
def test_window_ends_byte_exactly_on_earliest_transient(
    now, tick_gap, gaps, max_window
):
    """Measure tick vs pinned edges vs max_window: earliest wins, exactly."""
    env = Environment()
    env._now = now
    regime = FluidRegime(env, min_window=1e-9, max_window=max_window)
    edges, t = [], now
    for g in gaps:
        t = t + g
        edges.append(t)
    regime.pin_edges(edges)
    hard_edge = now + tick_gap
    candidates = [hard_edge, now + max_window]
    candidates += [e for e in edges if e > now + 1e-12]
    expected = min(candidates)
    t1 = regime.open_window(now, hard_edge=hard_edge)
    if t1 is None:
        # only a sub-min_window candidate may veto
        assert expected - now < regime.min_window + 1e-12
        assert regime.forced_exact["short-window"] == 1
    else:
        assert _pack(t1) == _pack(expected)
        assert t1 - now >= regime.min_window


@settings(max_examples=40, deadline=None)
@given(now=st.floats(0.0, 1000.0), tick_gap=st.floats(1e-6, 0.2))
def test_sub_minimum_window_degenerates_to_exact(now, tick_gap):
    """A zero-length/short window is refused: the run stays exact DES."""
    env = Environment()
    env._now = now
    regime = FluidRegime(env)  # default min_window=0.25 > tick_gap
    assert regime.open_window(now, hard_edge=now + tick_gap) is None
    assert regime.forced_exact["short-window"] == 1
    assert regime.windows_entered == 0


def test_tracer_vetoes_fluid_advance():
    env = Environment()
    env.tracer = object()  # any attached tracer pins exact
    regime = FluidRegime(env)
    assert regime.open_window(0.0, hard_edge=100.0) is None
    assert regime.forced_exact["tracer"] == 1


# ----------------------------------------------------------------------
# scenario-level: degenerate hybrid == exact, bit for bit
# ----------------------------------------------------------------------
def _fig3_snapshot(kernel: str, seed: int = 0, total_frames: int = 600) -> bytes:
    device = DeviceConfig(total_frames=total_frames)
    rec = {}

    def factory(cfg):
        rec["c"] = RecordingController(FrameFeedbackController(cfg.frame_rate))
        return rec["c"]

    result = run_scenario(
        Scenario(
            controller_factory=factory,
            device=device,
            network=table_v_schedule(),
            duration=device.stream_duration + 1.0,
            seed=seed,
            kernel=kernel,
        )
    )
    return json.dumps(
        {
            "transcript": rec["c"].transcript(device.frame_rate),
            "qos": dataclasses.asdict(result.qos),
        },
        sort_keys=True,
    ).encode()


def test_unknown_kernel_rejected():
    scenario = Scenario(
        controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
        device=DeviceConfig(total_frames=30),
        kernel="bogus",
    )
    with pytest.raises(ValueError, match="bogus"):
        build_runtime(scenario)


def test_degenerate_hybrid_is_byte_identical_to_exact(monkeypatch):
    """min_window beyond the run length => pure exact DES, same bytes."""
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    exact = _fig3_snapshot("exact")

    class Degenerate(FluidRegime):
        def __init__(self, env, **kwargs):
            kwargs["min_window"] = 1e12
            kwargs["max_window"] = 1e12
            super().__init__(env, **kwargs)

    monkeypatch.setattr(fluid_mod, "FluidRegime", Degenerate)
    assert _fig3_snapshot("hybrid") == exact


# ----------------------------------------------------------------------
# scenario-level: the real hybrid engages and stays equivalent
# ----------------------------------------------------------------------
def _steady_scenario(kernel: str, seed: int, total_frames: int) -> Scenario:
    device = DeviceConfig(total_frames=total_frames)
    return Scenario(
        controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
        device=device,
        network=steady_schedule(LinkConditions(bandwidth=10.0, loss=0.0)),
        duration=device.stream_duration + 1.0,
        seed=seed,
        kernel=kernel,
    )


def test_hybrid_engages_fluid_windows(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    sink: list = []
    capture_env_stats(sink)
    try:
        run_scenario(_steady_scenario("hybrid", seed=0, total_frames=900))
    finally:
        capture_env_stats(None)
    stats = sink[-1]
    assert stats.fluid_windows > 0
    assert stats.fluid_frames > 0
    # the analytic windows must carry the bulk of a steady run
    assert stats.fluid_frames > 450


def test_hybrid_hits_every_measure_tick(monkeypatch):
    """Windows end on the controller's measure tick: no tick is ever
    skipped or displaced, so both kernels record the same number of
    control steps (the transient itself is always event-stepped)."""
    monkeypatch.delenv("REPRO_KERNEL", raising=False)

    def steps(kernel: str) -> int:
        rec = {}

        def factory(cfg):
            rec["c"] = RecordingController(
                FrameFeedbackController(cfg.frame_rate)
            )
            return rec["c"]

        device = DeviceConfig(total_frames=900)
        run_scenario(
            Scenario(
                controller_factory=factory,
                device=device,
                network=steady_schedule(
                    LinkConditions(bandwidth=10.0, loss=0.0)
                ),
                duration=device.stream_duration + 1.0,
                seed=0,
                kernel=kernel,
            )
        )
        return len(rec["c"].steps)

    assert steps("hybrid") == steps("exact")


def test_hybrid_qos_statistically_equivalent_to_exact(monkeypatch):
    """Paired seed sweep: QoS inside a bootstrap equivalence margin."""
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    seeds = [0, 1, 2, 3, 4]
    exact_ok, hybrid_ok, exact_t, hybrid_t = [], [], [], []
    for seed in seeds:
        qe = run_scenario(_fig3_like(seed, "exact")).qos
        qh = run_scenario(_fig3_like(seed, "hybrid")).qos
        exact_ok.append(qe.successful)
        hybrid_ok.append(qh.successful)
        exact_t.append(qe.mean_violation_rate)
        hybrid_t.append(qh.mean_violation_rate)
    # success count: equivalent within 3 % of the exact mean
    margin_ok = 0.03 * (sum(exact_ok) / len(exact_ok))
    assert equivalent_within(exact_ok, hybrid_ok, margin=margin_ok), (
        exact_ok,
        hybrid_ok,
        bootstrap_mean_diff_ci(exact_ok, hybrid_ok),
    )
    # violation rate T: equivalent within 0.5 violations/s
    assert equivalent_within(exact_t, hybrid_t, margin=0.5), (
        exact_t,
        hybrid_t,
        bootstrap_mean_diff_ci(exact_t, hybrid_t),
    )


def _fig3_like(seed: int, kernel: str, total_frames: int = 1200) -> Scenario:
    device = DeviceConfig(total_frames=total_frames)
    return Scenario(
        controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
        device=device,
        network=table_v_schedule(),
        duration=device.stream_duration + 1.0,
        seed=seed,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# traced runs: goldens replay byte-exact under the hybrid kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario", ["fig3", "chaos", "fleet"])
def test_trace_golden_replays_under_hybrid(scenario, monkeypatch):
    from repro.trace import dumps_trace, run_trace_scenario

    monkeypatch.setenv("REPRO_KERNEL", "hybrid")
    fresh = dumps_trace(run_trace_scenario(scenario))
    golden = (GOLDEN_DIR / f"trace_{scenario}.json").read_text()
    assert fresh == golden


def test_trace_golden_replays_under_hybrid_slowpath(monkeypatch):
    from repro.trace import dumps_trace, run_trace_scenario

    monkeypatch.setenv("REPRO_KERNEL", "hybrid")
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    fresh = dumps_trace(run_trace_scenario("fig3"))
    golden = (GOLDEN_DIR / "trace_fig3.json").read_text()
    assert fresh == golden


# ----------------------------------------------------------------------
# fleet: multi-server pools veto fluid, so hybrid == exact exactly
# ----------------------------------------------------------------------
def test_fleet_chaos_under_hybrid_matches_exact(monkeypatch):
    from repro.experiments.chaos import run_chaos
    from repro.fleet.chaos import fleet_chaos_scenario

    def snapshot() -> bytes:
        result = run_chaos(
            fleet_chaos_scenario(
                seed=0, total_frames=300, kill=("edge0", 3.14, 2.0)
            )
        )
        return json.dumps(
            {
                "transcript": result.transcript,
                "qos": dataclasses.asdict(result.run.qos),
            },
            sort_keys=True,
            default=str,
        ).encode()

    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    exact = snapshot()
    monkeypatch.setenv("REPRO_KERNEL", "hybrid")
    assert snapshot() == exact
