"""Unit + property tests for the FrameFeedback controller (Eqs. 3–5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.base import Measurement
from repro.control.framefeedback import (
    PAPER_SETTINGS,
    FrameFeedbackController,
    FrameFeedbackSettings,
)

FS = 30.0


def measure(target, t_rate, time=0.0):
    return Measurement(
        time=time,
        frame_rate=FS,
        offload_target=target,
        offload_rate=target,
        offload_success_rate=max(0.0, target - t_rate),
        timeout_rate=t_rate,
        timeout_rate_last=t_rate,
        local_rate=13.0,
        throughput=13.0 + max(0.0, target - t_rate),
    )


def controller(**kwargs):
    settings_kwargs = {**kwargs}
    return FrameFeedbackController(FS, FrameFeedbackSettings(**settings_kwargs))


# ----------------------------------------------------------------------
# Table IV defaults
# ----------------------------------------------------------------------
def test_paper_settings_table4_verbatim():
    s = PAPER_SETTINGS
    assert s.kp == 0.2
    assert s.ki == 0.0
    assert s.kd == 0.26
    assert s.update_min_frac == -0.5
    assert s.update_max_frac == 0.1
    assert s.measure_period == 1.0


def test_settings_validation():
    with pytest.raises(ValueError):
        FrameFeedbackSettings(update_min_frac=0.1)
    with pytest.raises(ValueError):
        FrameFeedbackSettings(t_threshold_frac=0.0)
    with pytest.raises(ValueError):
        FrameFeedbackSettings(measure_period=0.0)


def test_frame_rate_must_be_positive():
    with pytest.raises(ValueError):
        FrameFeedbackController(0.0)


# ----------------------------------------------------------------------
# Eq. 5 error branches
# ----------------------------------------------------------------------
def test_error_no_timeouts_is_fs_minus_po():
    c = controller()
    c._target = 12.0
    assert c.error(measure(12.0, 0.0)) == pytest.approx(FS - 12.0)


def test_error_with_timeouts_is_threshold_minus_t():
    c = controller()
    c._target = 12.0
    assert c.error(measure(12.0, 7.0)) == pytest.approx(0.1 * FS - 7.0)


def test_error_zero_exactly_at_threshold():
    """e(t) = 0 when T = 0.1 F_s (the paper's standing-probe fixed point)."""
    c = controller()
    assert c.error(measure(10.0, 0.1 * FS)) == 0.0


# ----------------------------------------------------------------------
# update dynamics
# ----------------------------------------------------------------------
def test_ramp_up_capped_at_tenth_of_fs():
    """From P_o=0 with T=0, each step adds at most 0.1 F_s, and the
    proportional law closes most of the gap to F_s within ~20 steps."""
    c = controller()
    prev = 0.0
    for step in range(20):
        new = c.update(measure(prev, 0.0, time=float(step)))
        assert new - prev <= 0.1 * FS + 1e-9
        prev = new
    assert prev > 0.9 * FS


def test_backoff_can_cut_half_fs_per_step():
    """When the error plunges, P + D exceed the clamp and the update
    saturates at the Table IV minimum of -0.5 F_s."""
    c = controller()
    c._target = 0.0
    c.update(measure(0.0, 0.0))  # prime: e = +F_s
    c._target = FS
    new = c.update(measure(FS, FS))  # e = -0.9 F_s, de/dt huge
    assert FS - new == pytest.approx(0.5 * FS)


def test_target_clamped_to_valid_range():
    c = controller()
    c._target = 1.0
    new = c.update(measure(1.0, FS))  # huge negative error
    assert new == 0.0
    c2 = controller()
    c2._target = FS
    assert c2.update(measure(FS, 0.0)) == FS


def test_total_failure_converges_to_probe_rate():
    """With offloading always failing (T == attempted P_o), the
    *windowed* T the device actually feeds the controller drives P_o
    to the 0.1 F_s standing-probe fixed point (§III-A.1)."""
    from collections import deque

    c = controller()
    target = c.initial_target(FS)
    window = deque([0.0] * 3, maxlen=3)
    history = []
    for step in range(80):
        window.append(target)  # every attempted frame times out
        t_avg = sum(window) / len(window)
        target = c.update(measure(target, t_rate=t_avg, time=float(step)))
        history.append(target)
    tail_mean = sum(history[-20:]) / 20
    assert tail_mean == pytest.approx(0.1 * FS, abs=1.5)
    assert max(history[-20:]) < 0.3 * FS  # never drifts back to flooding


def test_perfect_conditions_converge_to_fs():
    c = controller()
    target = 0.0
    for step in range(60):
        target = c.update(measure(target, 0.0, time=float(step)))
    assert target == pytest.approx(FS, abs=0.5)


def test_recovery_after_outage_ramps_immediately():
    """§III-A: 'when good conditions return, offloading will
    immediately begin to increase'."""
    c = controller()
    target = 0.0
    for step in range(20):  # outage: everything times out
        target = c.update(measure(target, t_rate=max(target, 6.0), time=float(step)))
    low = target
    target = c.update(measure(target, 0.0, time=21.0))
    assert target > low


def test_reset_restores_initial_state():
    c = controller()
    c.update(measure(0.0, 0.0))
    c.reset()
    assert c.target == 0.0
    assert c.last_error == 0.0


def test_derivative_term_reacts_to_t_spike():
    """A sudden T spike produces a stronger (more negative) update
    with K_D > 0 than without."""
    with_kd = controller(kp=0.2, kd=0.26)
    no_kd = controller(kp=0.2, kd=0.0)
    for c in (with_kd, no_kd):
        c._target = 20.0
        c.update(measure(20.0, 0.0))  # prime previous error (e = 10)
        c._target = 20.0
    u_with = with_kd.update(measure(20.0, 9.0)) - 20.0
    u_without = no_kd.update(measure(20.0, 9.0)) - 20.0
    assert u_with < u_without


@given(
    t_rates=st.lists(
        st.floats(min_value=0.0, max_value=FS), min_size=1, max_size=100
    )
)
@settings(max_examples=100, deadline=None)
def test_target_always_in_bounds_and_rate_limited(t_rates):
    """Invariants: 0 <= P_o <= F_s; per-step change within clamps."""
    c = controller()
    prev = c.initial_target(FS)
    for i, t in enumerate(t_rates):
        new = c.update(measure(prev, t, time=float(i)))
        assert 0.0 <= new <= FS
        assert new - prev <= 0.1 * FS + 1e-9
        assert prev - new <= 0.5 * FS + 1e-9
        prev = new


@given(ki=st.floats(min_value=0.01, max_value=0.2))
@settings(max_examples=20, deadline=None)
def test_integral_variant_still_bounded(ki):
    """The K_I ablation keeps all safety invariants."""
    c = FrameFeedbackController(FS, FrameFeedbackSettings(ki=ki))
    target = 0.0
    for step in range(50):
        t = FS if step % 7 == 0 else 0.0
        target = c.update(measure(target, t, time=float(step)))
        assert 0.0 <= target <= FS


# ----------------------------------------------------------------------
# degraded-input hardening (supervision layer)
# ----------------------------------------------------------------------
def test_nan_timeout_rate_is_clamped_not_propagated():
    """Regression: update() must never let NaN reach the PID.

    Before the input guard, a NaN timeout_rate poisoned the error, the
    PID history and the target — silently, forever.
    """
    c = controller()
    c._target = 15.0
    new = c.update(measure(15.0, float("nan"), time=1.0))
    assert math.isfinite(new)
    assert 0.0 <= new <= FS
    assert math.isfinite(c.last_error) and math.isfinite(c.last_update)
    assert c.degraded_inputs == 1
    assert c.last_input_validity is not None


def test_negative_timeout_rate_clamped_to_zero():
    clean, dirty = controller(), controller()
    clean._target = dirty._target = 15.0
    expect = clean.update(measure(15.0, 0.0, time=1.0))
    got = dirty.update(measure(15.0, -4.0, time=1.0))
    assert got == pytest.approx(expect)  # treated exactly as T = 0
    assert dirty.degraded_inputs == 1
    assert clean.degraded_inputs == 0


def test_excessive_timeout_rate_clamped_to_frame_rate():
    clean, dirty = controller(), controller()
    clean._target = dirty._target = 15.0
    expect = clean.update(measure(15.0, FS, time=1.0))
    got = dirty.update(measure(15.0, 1e6, time=1.0))
    assert got == pytest.approx(expect)
    assert dirty.degraded_inputs == 1


def test_valid_input_leaves_degraded_counter_alone():
    c = controller()
    for i in range(5):
        c.update(measure(c.target, 1.0, time=float(i)))
    assert c.degraded_inputs == 0
    assert c.last_input_validity is None


def test_degraded_input_recorded_in_transcript():
    from repro.experiments.chaos import RecordingController

    rec = RecordingController(controller())
    rec.update(measure(0.0, 0.0, time=1.0))
    rec.update(measure(3.0, float("nan"), time=2.0))
    rec.update(measure(6.0, 0.0, time=3.0))
    steps = rec.transcript(FS)["steps"]
    assert "degraded_input" not in steps[0]  # clean steps stay byte-stable
    assert steps[1]["degraded_input"] == "nan_timeout_rate"
    assert "degraded_input" not in steps[2]
