"""Smoke tests for the fig3/fig4 renderers on miniature runs."""

import pytest

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.report import render_fig3, render_fig4


@pytest.fixture(scope="module")
def tiny_fig3():
    # 40 s covers the first two Table V phases; enough for rendering
    return run_fig3(seed=0, total_frames=1200)


@pytest.fixture(scope="module")
def tiny_fig4():
    return run_fig4(seed=0, total_frames=1200)


def test_render_fig3_contains_all_series(tiny_fig3):
    out = render_fig3(tiny_fig3)
    for name in ("FrameFeedback", "LocalOnly", "AlwaysOffload", "AllOrNothing"):
        assert name in out
    assert "FF P_o (target)" in out
    assert "winner" in out


def test_render_fig3_phase_rows(tiny_fig3):
    out = render_fig3(tiny_fig3)
    assert "bw=10 loss=0" in out
    assert "bw=4  loss=0" in out


def test_render_fig4_contains_load_phases(tiny_fig4):
    out = render_fig4(tiny_fig4)
    assert "load=0/s" in out
    assert "load=90/s" in out
    assert "Table VI" in out


def test_fig3_result_accessors(tiny_fig3):
    assert set(tiny_fig3.throughput) == set(tiny_fig3.runs)
    assert len(tiny_fig3.framefeedback_offload) > 10


def test_fig4_result_accessors(tiny_fig4):
    assert set(tiny_fig4.throughput) == set(tiny_fig4.runs)
    assert len(tiny_fig4.framefeedback_offload) > 10
