"""Chaos runs are bit-reproducible: same seed, same transcript."""

import json

from repro.control import transcript as transcript_mod
from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.chaos import ChaosScenario, run_chaos
from repro.experiments.scenario import Scenario
from repro.faults import (
    BandwidthCollapse,
    FaultTimeline,
    GpuContention,
    ServerCrash,
)


def _chaos(seed: int) -> ChaosScenario:
    """A small cross-layer scenario: crash + collapse + seeded contention."""
    return ChaosScenario(
        base=Scenario(
            controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
            device=DeviceConfig(total_frames=1200),  # 40 s stream
            seed=seed,
        ),
        injectors=[
            ServerCrash(FaultTimeline.from_rows([(8.0, 6.0)])),
            GpuContention(FaultTimeline.from_rows([(18.0, 4.0)]), mean_factor=3.0),
            BandwidthCollapse(FaultTimeline.from_rows([(26.0, 5.0)]), factor=0.05),
        ],
    )


def test_same_seed_byte_identical_transcripts():
    a = run_chaos(_chaos(seed=3))
    b = run_chaos(_chaos(seed=3))
    assert transcript_mod.dumps(a.transcript) == transcript_mod.dumps(b.transcript)
    # and not merely the serialization: the full structures agree
    assert a.transcript == b.transcript
    assert len(a.transcript["steps"]) > 30


def test_different_seed_different_transcript():
    a = run_chaos(_chaos(seed=3))
    b = run_chaos(_chaos(seed=4))
    assert transcript_mod.dumps(a.transcript) != transcript_mod.dumps(b.transcript)


def test_transcript_replays_through_fresh_controller():
    """The captured transcript satisfies the control-layer purity
    contract: a fresh controller re-driven through the recorded
    measurements reproduces every target."""
    result = run_chaos(_chaos(seed=3))
    transcript_mod.replay(
        lambda: FrameFeedbackController(30.0), result.transcript
    )


def test_transcript_round_trips_through_json():
    result = run_chaos(_chaos(seed=5))
    text = transcript_mod.dumps(result.transcript)
    assert transcript_mod.loads(text) == json.loads(text) == result.transcript
