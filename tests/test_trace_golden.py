"""Golden-trace regression tests (ISSUE 5, satellite 2).

Each committed golden in ``tests/goldens/`` is the canonical trace of
one scenario at its default seed/length.  The test regenerates the
trace from scratch and compares **bytes**; on mismatch it reports the
first structurally diverging span via :func:`first_divergence` so the
failure says *which frame changed how*, not just "files differ".

Intentional-change workflow::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_trace_golden.py
    git diff tests/goldens/   # review the semantic change
    git add tests/goldens/

The update path rewrites the files and fails the run (so a stale
``REPRO_UPDATE_GOLDENS`` in CI can never silently bless a regression).
"""

import json
import os
from pathlib import Path

import pytest

from repro.trace import (
    TRACE_SCENARIOS,
    TRACE_VERSION,
    diff_traces,
    dumps_trace,
    load_trace,
    run_trace_scenario,
    terminal_counts,
)

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"trace_{name}.json"


@pytest.mark.parametrize("scenario", sorted(TRACE_SCENARIOS))
def test_trace_matches_committed_golden(scenario):
    fresh = run_trace_scenario(scenario)
    fresh_bytes = dumps_trace(fresh)
    path = _golden_path(scenario)

    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        path.write_text(fresh_bytes)
        pytest.fail(
            f"golden {path.name} regenerated (REPRO_UPDATE_GOLDENS=1); "
            "review with `git diff tests/goldens/` and commit, then rerun "
            "without the flag"
        )

    assert path.exists(), (
        f"missing golden {path}; generate it with REPRO_UPDATE_GOLDENS=1"
    )
    golden = load_trace(path)
    divergence = diff_traces(golden, fresh)
    assert divergence is None, divergence
    # byte-level check on top of the structural one: catches formatting
    # drift (indent, key order, float repr) that diff_traces forgives
    assert path.read_text() == fresh_bytes


@pytest.mark.parametrize("scenario", sorted(TRACE_SCENARIOS))
def test_golden_is_well_formed(scenario):
    doc = load_trace(_golden_path(scenario))
    assert doc["version"] == TRACE_VERSION
    assert doc["meta"]["scenario"] == scenario
    assert doc["frames"], "golden holds no frames"
    counts = terminal_counts(doc)
    assert sum(counts.values()) == len(doc["frames"])
    # every scenario must exercise both completion routes
    assert counts.get("completed-local", 0) > 0
    assert counts.get("completed-offload", 0) > 0


def test_goldens_are_newline_terminated_canonical_json():
    """Committed files must round-trip through the canonical dumper."""
    for scenario in sorted(TRACE_SCENARIOS):
        raw = _golden_path(scenario).read_text()
        assert raw.endswith("\n")
        assert dumps_trace(json.loads(raw)) == raw


def test_perturbed_golden_reports_precise_divergence():
    golden = load_trace(_golden_path("fig3"))
    perturbed = json.loads(json.dumps(golden))
    target = perturbed["frames"][37]["span"]
    target["status"] = "timeout" if target["status"] != "timeout" else "rejected"
    report = diff_traces(golden, perturbed)
    assert report is not None
    assert "frames[" in report and "status" in report
