"""Tests for the multi-seed statistics harness."""

import pytest

from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario
from repro.experiments.seeds import (
    MetricSummary,
    compare_across_seeds,
    run_across_seeds,
    win_rate,
)
from repro.experiments.standard import framefeedback_factory
from repro.netem.profiles import CONGESTED
from repro.workloads.schedules import steady_schedule


def test_metric_summary_statistics():
    s = MetricSummary.from_values("x", [10.0, 12.0, 14.0])
    assert s.mean == pytest.approx(12.0)
    assert s.std == pytest.approx(2.0)
    assert s.ci_half_width > 0
    assert s.lo < s.mean < s.hi


def test_metric_summary_single_value_has_zero_ci():
    s = MetricSummary.from_values("x", [5.0])
    assert s.std == 0.0
    assert s.ci_half_width == 0.0


def test_metric_summary_empty_rejected():
    with pytest.raises(ValueError):
        MetricSummary.from_values("x", [])


def test_run_across_seeds_requires_seeds():
    scenario = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=300),
    )
    with pytest.raises(ValueError):
        run_across_seeds(scenario, seeds=[])


def test_run_across_seeds_summarizes_metric():
    scenario = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=600),
        network=steady_schedule(CONGESTED),
    )
    summary = run_across_seeds(scenario, seeds=(0, 1, 2))
    assert len(summary.values) == 3
    assert 10.0 < summary.mean < 30.0


def test_compare_and_win_rate():
    scenario = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=600),
        network=steady_schedule(CONGESTED),
    )
    from repro.control.baselines import LocalOnlyController

    summaries = compare_across_seeds(
        scenario,
        {
            "FrameFeedback": framefeedback_factory(),
            "LocalOnly": lambda c: LocalOnlyController(),
        },
        seeds=(0, 1),
    )
    assert set(summaries) == {"FrameFeedback", "LocalOnly"}
    rate = win_rate(summaries, "FrameFeedback", "LocalOnly")
    assert rate == 1.0


def test_win_rate_mismatched_seed_sets_rejected():
    a = MetricSummary.from_values("a", [1.0, 2.0])
    b = MetricSummary.from_values("b", [1.0])
    with pytest.raises(ValueError):
        win_rate({"a": a, "b": b}, "a", "b")
