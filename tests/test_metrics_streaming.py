"""Unit + property tests for the streaming histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.streaming import StreamingHistogram


def test_validation():
    with pytest.raises(ValueError):
        StreamingHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        StreamingHistogram(min_value=1.0, max_value=0.5)
    with pytest.raises(ValueError):
        StreamingHistogram(growth=1.0)
    h = StreamingHistogram()
    with pytest.raises(ValueError):
        h.record(-1.0)
    with pytest.raises(ValueError):
        h.record(float("inf"))
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_empty_histogram():
    h = StreamingHistogram()
    assert np.isnan(h.mean)
    assert np.isnan(h.quantile(0.5))
    assert h.fraction_above(0.1) == 0.0


def test_mean_is_exact():
    h = StreamingHistogram()
    values = [0.01, 0.02, 0.05, 0.2]
    h.record_many(values)
    assert h.mean == pytest.approx(np.mean(values))
    assert h.count == 4


def test_quantile_within_relative_error():
    rng = np.random.default_rng(0)
    values = rng.lognormal(mean=np.log(0.1), sigma=0.5, size=20_000)
    h = StreamingHistogram(min_value=1e-4, max_value=10.0, growth=1.05)
    h.record_many(values)
    for q in (0.5, 0.9, 0.95, 0.99):
        exact = float(np.quantile(values, q))
        approx = h.quantile(q)
        assert approx == pytest.approx(exact, rel=0.06), q


def test_out_of_range_values_clamp_to_edges():
    h = StreamingHistogram(min_value=0.01, max_value=1.0)
    h.record(1e-9)
    h.record(100.0)
    assert h.quantile(0.0) == pytest.approx(0.01)
    assert h.quantile(1.0) == pytest.approx(1.0)


def test_fraction_above_threshold():
    h = StreamingHistogram()
    h.record_many([0.1] * 90 + [1.0] * 10)
    assert h.fraction_above(0.5) == pytest.approx(0.1, abs=0.02)


def test_merge():
    a = StreamingHistogram()
    b = StreamingHistogram()
    a.record_many([0.1] * 50)
    b.record_many([0.2] * 50)
    a.merge(b)
    assert a.count == 100
    assert a.mean == pytest.approx(0.15)
    with pytest.raises(ValueError):
        a.merge(StreamingHistogram(growth=1.2))


def test_memory_is_bounded():
    h = StreamingHistogram(min_value=1e-4, max_value=10.0, growth=1.05)
    assert h.memory_bins < 300
    for v in np.random.default_rng(1).uniform(0, 5, 10_000):
        h.record(float(v))
    assert h.memory_bins < 300  # unchanged: O(1) per insert


@given(
    values=st.lists(
        st.floats(min_value=1e-4, max_value=9.9), min_size=1, max_size=300
    )
)
@settings(max_examples=100, deadline=None)
def test_quantiles_monotone_and_bounded(values):
    h = StreamingHistogram()
    h.record_many(values)
    qs = h.quantiles([0.0, 0.25, 0.5, 0.75, 1.0])
    assert all(a <= b + 1e-12 for a, b in zip(qs, qs[1:]))
    assert qs[0] >= h.min_value * 0.99
    assert qs[-1] <= h.max_value * 1.01
    # median within the histogram's guaranteed relative error of the
    # nearest-rank definition (the histogram does not interpolate)
    exact = float(np.quantile(np.asarray(values), 0.5, method="lower"))
    assert h.quantile(0.5) == pytest.approx(exact, rel=0.08, abs=1e-4)
