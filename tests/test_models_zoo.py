"""Unit tests for the model zoo and device profiles (Tables II/III)."""

import pytest

from repro.models import (
    DEVICE_PROFILES,
    EFFICIENTNET_B0,
    EFFICIENTNET_B4,
    MOBILENET_V3_LARGE,
    MOBILENET_V3_SMALL,
    MODEL_ZOO,
    PI_3B_1_2,
    PI_4B_1_2,
    PI_4B_1_4,
    get_model,
    local_rate,
)


def test_zoo_has_all_four_paper_models():
    assert set(MODEL_ZOO) == {
        "mobilenet_v3_small",
        "mobilenet_v3_large",
        "efficientnet_b0",
        "efficientnet_b4",
    }


def test_table3_accuracies_verbatim():
    assert EFFICIENTNET_B0.top1_accuracy == pytest.approx(0.771)
    assert EFFICIENTNET_B4.top1_accuracy == pytest.approx(0.829)
    assert MOBILENET_V3_SMALL.top1_accuracy == pytest.approx(0.674)
    assert MOBILENET_V3_LARGE.top1_accuracy == pytest.approx(0.752)


def test_input_resolutions_match_paper():
    """§II-D: all 224x224 except EfficientNetB4 at 380x380."""
    assert MOBILENET_V3_SMALL.input_resolution == 224
    assert MOBILENET_V3_LARGE.input_resolution == 224
    assert EFFICIENTNET_B0.input_resolution == 224
    assert EFFICIENTNET_B4.input_resolution == 380


def test_get_model_by_key_and_display_name():
    assert get_model("mobilenet_v3_small") is MOBILENET_V3_SMALL
    assert get_model("MobileNetV3Small") is MOBILENET_V3_SMALL
    with pytest.raises(KeyError):
        get_model("resnet50")


def test_compute_cost_ordering_matches_table2():
    """EfficientNetB0 is ~5.2x MobileNetV3Small (13 / 2.5 on 4B r1.2)."""
    assert EFFICIENTNET_B0.compute_cost == pytest.approx(13.0 / 2.5, rel=0.01)
    assert MOBILENET_V3_SMALL.compute_cost == 1.0
    assert EFFICIENTNET_B4.compute_cost > EFFICIENTNET_B0.compute_cost


def test_table2_measured_rates_verbatim():
    assert local_rate(PI_3B_1_2, MOBILENET_V3_SMALL) == pytest.approx(5.5)
    assert local_rate(PI_4B_1_2, MOBILENET_V3_SMALL) == pytest.approx(13.0)
    assert local_rate(PI_4B_1_4, MOBILENET_V3_SMALL) == pytest.approx(13.4)
    assert local_rate(PI_3B_1_2, EFFICIENTNET_B0) == pytest.approx(1.8)
    assert local_rate(PI_4B_1_2, EFFICIENTNET_B0) == pytest.approx(2.5)
    assert local_rate(PI_4B_1_4, EFFICIENTNET_B0) == pytest.approx(4.2)


def test_table2_hardware_columns_verbatim():
    assert (PI_3B_1_2.cpus, PI_3B_1_2.cpu_mhz) == (4, 1200)
    assert (PI_4B_1_2.cpus, PI_4B_1_2.cpu_mhz) == (4, 1500)
    assert (PI_4B_1_4.cpus, PI_4B_1_4.cpu_mhz) == (4, 1800)


def test_unmeasured_pair_extrapolates_below_anchor():
    """MobileNetV3Large wasn't measured: rate scales down from Small."""
    rate = local_rate(PI_4B_1_2, MOBILENET_V3_LARGE)
    assert 0 < rate < 13.0
    # heavier than Large: B4 must be slower still
    assert local_rate(PI_4B_1_2, EFFICIENTNET_B4) < rate


def test_local_rate_accepts_string_names():
    assert local_rate(PI_4B_1_2, "mobilenet_v3_small") == pytest.approx(13.0)


def test_device_profiles_registry():
    assert set(DEVICE_PROFILES) == {"pi3b_r1_2", "pi4b_r1_2", "pi4b_r1_4"}
    assert PI_4B_1_2.relative_speed == pytest.approx(1.0)
    assert PI_3B_1_2.relative_speed < 1.0 < PI_4B_1_4.relative_speed
