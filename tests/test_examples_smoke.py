"""Every example script must run to completion — they are the
load-bearing documentation.

Fast simulation examples run on every ``pytest``; the longer sweeps
and the wall-clock/socket demos are ``-m slow`` (they take real
seconds by design).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 180.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


def test_examples_directory_complete():
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in found
    assert len(found) >= 10


def test_quickstart():
    out = run_example("quickstart.py")
    assert "FrameFeedback" in out
    assert "per-second throughput" in out


def test_adaptive_quality():
    out = run_example("adaptive_quality.py")
    assert "mean quality" in out


def test_surveillance_camera():
    out = run_example("surveillance_camera.py")
    assert "rush hour" in out
    assert "FrameFeedback delivered" in out


def test_chaos_supervision():
    out = run_example("chaos_supervision.py")
    assert "warm-beats-cold" in out
    assert "verdict: PASS" in out


def test_chaos_fleet():
    out = run_example("chaos_fleet.py")
    assert "failover rescued" in out
    assert "failover-beats-none" in out
    assert "verdict: PASS" in out


@pytest.mark.slow
def test_drone_fleet():
    out = run_example("drone_fleet_multitenancy.py")
    assert "batch policy = fair" in out


@pytest.mark.slow
def test_accuracy_tradeoff():
    out = run_example("accuracy_bandwidth_tradeoff.py")
    assert "correct/s" in out


@pytest.mark.slow
def test_capacity_planning():
    out = run_example("capacity_planning.py")
    assert "planning answer" in out


@pytest.mark.slow
def test_day_in_the_life(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "day_in_the_life.py"), str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert (tmp_path / "traces.csv").exists()


@pytest.mark.slow
def test_controller_tuning_example():
    out = run_example("controller_tuning.py", timeout=300)
    assert "tuned gains" in out


@pytest.mark.slow
def test_realtime_demo():
    out = run_example("realtime_demo.py", timeout=120)
    assert "backed off" in out


@pytest.mark.slow
def test_socket_offload():
    out = run_example("socket_offload.py", timeout=120)
    assert "server totals" in out
