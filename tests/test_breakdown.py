"""Tests for latency breakdown and T_n/T_l attribution."""

import pytest

from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory, standard_controllers
from repro.metrics.breakdown import (
    BreakdownCollector,
    ComponentStats,
    LatencySample,
    TimeoutCause,
)
from repro.netem.profiles import SEVERE
from repro.workloads.schedules import steady_schedule, table_vi_schedule


# ----------------------------------------------------------------------
# unit: the collector
# ----------------------------------------------------------------------
def sample(uplink=0.05, server=0.05, downlink=0.01, ok=True):
    return LatencySample(
        sent_at=0.0, uplink=uplink, server=server, downlink=downlink, ok=ok
    )


def test_sample_total_and_dominance():
    s = sample(uplink=0.10, server=0.05, downlink=0.02)
    assert s.total == pytest.approx(0.17)
    assert s.dominant_component() is TimeoutCause.NETWORK
    s2 = sample(uplink=0.02, server=0.20, downlink=0.01)
    assert s2.dominant_component() is TimeoutCause.LOAD


def test_ok_sample_records_no_violation():
    c = BreakdownCollector()
    c.record_response(sample(ok=True), at=1.0)
    assert c.total_violations == 0
    assert len(c.samples) == 1


def test_late_sample_attributed_by_dominant_component():
    c = BreakdownCollector()
    c.record_response(sample(uplink=0.02, server=0.30, ok=False), at=2.0)
    assert c.cause_counts()[TimeoutCause.LOAD] == 1


def test_silent_timeout_is_network():
    c = BreakdownCollector()
    c.record_silent_timeout(at=3.0)
    assert c.cause_counts()[TimeoutCause.NETWORK] == 1


def test_rejection_is_load():
    c = BreakdownCollector()
    c.record_rejection(at=3.0)
    assert c.cause_counts()[TimeoutCause.LOAD] == 1


def test_cause_rates_windowed():
    c = BreakdownCollector()
    c.record_silent_timeout(at=1.0)
    c.record_silent_timeout(at=5.0)
    c.record_rejection(at=5.5)
    rates = c.cause_rates(4.0, 6.0)
    assert rates["T_n"] == pytest.approx(0.5)
    assert rates["T_l"] == pytest.approx(0.5)
    with pytest.raises(ValueError):
        c.cause_rates(6.0, 4.0)


def test_component_stats_quantiles():
    c = BreakdownCollector()
    for i in range(1, 101):
        c.record_response(sample(uplink=i / 1000.0), at=float(i))
    stats = c.component_stats()
    assert stats["uplink"].mean == pytest.approx(0.0505)
    assert stats["uplink"].p95 == pytest.approx(0.095, abs=0.002)
    assert stats["uplink"].maximum == pytest.approx(0.1)


def test_component_stats_empty_is_nan():
    stats = BreakdownCollector().component_stats()
    import math

    assert math.isnan(stats["total"].mean)


# ----------------------------------------------------------------------
# integration: attribution matches the injected stressor
# ----------------------------------------------------------------------
def test_network_stress_attributed_to_tn():
    result = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=1200),
            network=steady_schedule(SEVERE),
            seed=0,
        )
    )
    rates = result.breakdown.cause_rates(0.0, result.elapsed)
    assert rates["T_n"] > 0.5
    assert rates["T_l"] == pytest.approx(0.0, abs=0.1)


def test_load_stress_attributed_to_tl():
    result = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=1800),
            load=table_vi_schedule(),
            seed=0,
        )
    )
    rates = result.breakdown.cause_rates(0.0, result.elapsed)
    assert rates["T_l"] > 1.0
    assert rates["T_l"] > 5 * max(rates["T_n"], 0.01)


def test_attribution_total_matches_device_timeouts():
    """Every device-visible violation gets exactly one attribution."""
    result = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=1200),
            network=steady_schedule(SEVERE),
            seed=1,
            # leave drain time so grace-period attributions settle
            duration=45.0,
        )
    )
    assert result.breakdown.total_violations == result.qos.timeouts


def test_clean_run_has_no_violations():
    result = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=900),
            seed=0,
        )
    )
    assert result.breakdown.total_violations == result.qos.timeouts
    stats = result.breakdown.component_stats()
    # wiring sanity: components sum to total
    assert stats["total"].mean == pytest.approx(
        stats["uplink"].mean + stats["server"].mean + stats["downlink"].mean,
        rel=0.01,
    )