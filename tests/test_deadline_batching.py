"""Tests for the DEADLINE_AWARE batch policy."""

import numpy as np
import pytest

from repro.server.batching import AdaptiveBatcher, BatchPolicy
from repro.server.requests import InferenceRequest


def req(deadline_at=None, tenant="t"):
    return InferenceRequest(
        tenant=tenant,
        model_name="mobilenet_v3_small",
        sent_at=0.0,
        payload_bytes=100,
        respond=lambda r: None,
        deadline_at=deadline_at,
    )


def test_expired_requests_shed_before_cap():
    b = AdaptiveBatcher(batch_limit=3, policy=BatchPolicy.DEADLINE_AWARE)
    fresh = [req(deadline_at=10.0) for _ in range(2)]
    stale = [req(deadline_at=1.0) for _ in range(2)]
    for r in stale + fresh:
        b.enqueue(r)
    batch, rejected = b.form_batch(now=5.0)
    assert batch == fresh
    assert set(map(id, rejected)) == set(map(id, stale))


def test_requests_without_deadline_never_shed():
    b = AdaptiveBatcher(batch_limit=5, policy=BatchPolicy.DEADLINE_AWARE)
    rs = [req(deadline_at=None) for _ in range(3)]
    for r in rs:
        b.enqueue(r)
    batch, rejected = b.form_batch(now=1e9)
    assert batch == rs
    assert rejected == []


def test_shedding_frees_slots_for_live_requests():
    """The point of the policy: stale frames must not displace live ones."""
    b_fifo = AdaptiveBatcher(batch_limit=2, policy=BatchPolicy.FIFO)
    b_aware = AdaptiveBatcher(batch_limit=2, policy=BatchPolicy.DEADLINE_AWARE)
    for b in (b_fifo, b_aware):
        b.enqueue(req(deadline_at=1.0))  # stale, at queue head
        b.enqueue(req(deadline_at=1.0))
        b.enqueue(req(deadline_at=99.0))  # live, at queue tail
        b.enqueue(req(deadline_at=99.0))
    fifo_batch, _ = b_fifo.form_batch(now=5.0)
    aware_batch, _ = b_aware.form_batch(now=5.0)
    assert all(r.deadline_at == 1.0 for r in fifo_batch)  # wastes the GPU
    assert all(r.deadline_at == 99.0 for r in aware_batch)  # serves the living


def test_without_now_behaves_like_fifo():
    b = AdaptiveBatcher(batch_limit=1, policy=BatchPolicy.DEADLINE_AWARE)
    first, second = req(deadline_at=0.0), req(deadline_at=0.0)
    b.enqueue(first)
    b.enqueue(second)
    batch, rejected = b.form_batch()  # no clock: no shedding possible
    assert batch == [first]
    assert rejected == [second]


def test_end_to_end_goodput_improvement_under_overload():
    """Against a bursty overload, deadline-aware batching converts
    doomed GPU work into live goodput."""
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.workloads.loadgen import LoadSchedule

    # alternating load bursts keep the queue full of soon-stale frames
    bursts = LoadSchedule.from_rows(
        [(0, 0)] + [(5 * i, 200 if i % 2 else 40) for i in range(1, 12)]
    )

    def run(policy):
        return run_scenario(
            Scenario(
                controller_factory=framefeedback_factory(),
                device=DeviceConfig(total_frames=1800),
                load=bursts,
                batch_policy=policy,
                seed=0,
            )
        )

    fifo = run(BatchPolicy.FIFO)
    aware = run(BatchPolicy.DEADLINE_AWARE)
    assert aware.qos.mean_throughput >= fifo.qos.mean_throughput - 0.3
    # the shed work shows up as rejections, not silent waste
    assert aware.server_stats.rejected >= fifo.server_stats.rejected