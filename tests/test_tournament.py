"""Unit tests for the tournament runner and its report artifact."""

import json

import pytest

from repro.cli import main
from repro.experiments.tournament import (
    ORACLE,
    TournamentConfig,
    builtin_scenarios,
    default_lineup,
    dumps_report,
    load_scenario_dir,
    render_report,
    report_document,
    run_tournament,
)

SMALL = TournamentConfig(
    frames=60,
    controllers=("FrameFeedback", "LocalOnly"),
    scenarios=("lossy_link", "degraded_bandwidth"),
    workers=1,
)


# ----------------------------------------------------------------------
# matrix construction
# ----------------------------------------------------------------------
def test_builtin_matrix_has_six_scenarios():
    specs = builtin_scenarios()
    assert len(specs) >= 6
    kinds = set(specs)
    assert {"degraded_bandwidth", "lossy_link", "server_load",
            "combined_stress", "chaos_outage", "fleet_failover"} <= kinds


def test_builtin_scenarios_are_hybrid_safe():
    """Every phase is lossy, or the spec is multi-server: the hybrid
    kernel's fluid regime must veto on every built-in (that is what
    makes the committed golden replay byte-exact across kernels)."""
    for name, spec in builtin_scenarios().items():
        topo = spec.data.get("topology")
        if topo and len(topo["servers"]) > 1:
            continue
        network = spec.data.get("network")
        assert network, f"{name}: neither lossy network nor multi-server"
        assert all(row[2] > 0.0 for row in network), (
            f"{name}: a zero-loss phase would let the fluid regime engage"
        )


def test_builtin_windows_scale_with_frames():
    for frames in (300, 900, 2400):
        horizon = frames / 30.0
        for name, spec in builtin_scenarios(frames=frames).items():
            for fault in spec.faults:
                for start, duration in fault["windows"]:
                    assert start + duration <= horizon + 1e-9, (
                        f"{name}@{frames}: window [{start}, {duration}] "
                        f"falls off the {horizon}s horizon"
                    )


def test_unknown_scenario_filter_is_an_error():
    with pytest.raises(ValueError, match="no_such_scenario"):
        TournamentConfig(scenarios=("no_such_scenario",)).matrix()


def test_scenario_dir_accepts_search_golden_documents(tmp_path):
    doc = {
        "name": "x",
        "scenario": {"device": {"total_frames": 60}, "seed": 3},
    }
    (tmp_path / "finding.json").write_text(json.dumps(doc))
    specs = load_scenario_dir(tmp_path)
    assert list(specs) == ["finding"]
    assert specs["finding"].seed == 3


def test_default_lineup_is_the_zoo_without_oracle():
    lineup = default_lineup()
    assert len(lineup) >= 4
    assert ORACLE not in lineup
    assert "TokenBucket" in lineup and "RateLimitedMDP" in lineup


# ----------------------------------------------------------------------
# scoring and ranking
# ----------------------------------------------------------------------
def test_small_tournament_scores_every_cell():
    result = run_tournament(SMALL)
    assert len(result.cells) == 4  # 2 controllers x 2 scenarios
    assert set(result.oracle_qos) == {"lossy_link", "degraded_bandwidth"}
    for cell in result.cells:
        oracle = result.oracle_qos[cell.scenario]["mean_violation_rate"]
        assert cell.regret == round(
            cell.qos["mean_violation_rate"] - oracle, 9
        )


def test_ranking_is_sorted_by_mean_regret_then_name():
    result = run_tournament(SMALL)
    keys = [(s.mean_regret, s.controller) for s in result.ranking]
    assert keys == sorted(keys)
    assert {s.controller for s in result.ranking} == set(SMALL.lineup())
    total_wins = sum(s.wins for s in result.ranking)
    assert total_wins >= len(result.oracle_qos)  # ties all count as wins


def test_report_document_is_byte_deterministic():
    a = dumps_report(report_document(run_tournament(SMALL)))
    b = dumps_report(report_document(run_tournament(SMALL)))
    assert a == b
    doc = json.loads(a)
    assert doc["version"] == 1
    assert sorted(doc["scenarios"]) == ["degraded_bandwidth", "lossy_link"]


def test_render_report_carries_ranking_and_matrix():
    result = run_tournament(SMALL)
    text = render_report(result)
    assert "# Controller tournament" in text
    assert "| rank | controller |" in text
    for name in SMALL.lineup():
        assert name in text


def test_empty_lineup_or_matrix_is_an_error():
    with pytest.raises(ValueError, match="controller"):
        run_tournament(TournamentConfig(controllers=(ORACLE,)))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_tournament_json_is_canonical(capsys):
    argv = ["tournament", "--lineup", "FrameFeedback,LocalOnly",
            "--matrix", "lossy_link", "--frames", "60",
            "--scenario-dir", "", "--workers", "1", "--json"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    doc = json.loads(out)
    assert doc["controllers"] == ["FrameFeedback", "LocalOnly"]
    assert list(doc["scenarios"]) == ["lossy_link"]


def test_cli_tournament_markdown(capsys):
    argv = ["tournament", "--lineup", "FrameFeedback,LocalOnly",
            "--matrix", "lossy_link", "--frames", "60",
            "--scenario-dir", "", "--workers", "1"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "# Controller tournament" in out
    assert "LocalOnly" in out
