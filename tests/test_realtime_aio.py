"""Tests for the asyncio runtime (kept short: real seconds elapse)."""

import asyncio

import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.realtime.aio import AsyncFakeRemote, AsyncRealTimeLoop
from repro.realtime.fakework import RemoteConditions


def run(coro):
    return asyncio.run(coro)


def test_validation():
    with pytest.raises(ValueError):
        AsyncRealTimeLoop(FrameFeedbackController(30.0), None, frame_rate=0.0)


def test_async_remote_failure_probability():
    remote = AsyncFakeRemote(seed=0)
    remote.conditions = RemoteConditions(
        latency=0.0, jitter=0.0, failure_probability=1.0
    )
    assert run(remote.submit()) is False
    remote.conditions = RemoteConditions(
        latency=0.0, jitter=0.0, failure_probability=0.0
    )
    assert run(remote.submit()) is True


def test_framefeedback_ramps_on_asyncio():
    remote = AsyncFakeRemote(seed=1)
    remote.conditions = RemoteConditions(
        latency=0.02, jitter=0.002, failure_probability=0.0
    )
    loop = AsyncRealTimeLoop(
        FrameFeedbackController(30.0), remote.submit, local_latency=0.02
    )
    result = run(loop.run(duration=5.0))
    assert len(result.times) >= 4
    assert result.offload_target[-1] >= 9.0


def test_framefeedback_backs_off_on_asyncio():
    remote = AsyncFakeRemote(seed=2)
    remote.conditions = RemoteConditions(
        latency=0.02, jitter=0.002, failure_probability=1.0
    )
    loop = AsyncRealTimeLoop(
        FrameFeedbackController(30.0), remote.submit, local_latency=0.02
    )
    result = run(loop.run(duration=6.0))
    assert result.offload_target[-1] <= 9.0
    assert max(result.timeout_rate) > 0


def test_mid_run_degradation_triggers_backoff():
    async def scenario():
        remote = AsyncFakeRemote(seed=3)
        remote.conditions = RemoteConditions(
            latency=0.02, jitter=0.0, failure_probability=0.0
        )
        loop = AsyncRealTimeLoop(
            FrameFeedbackController(30.0), remote.submit, local_latency=0.02
        )

        async def degrade():
            await asyncio.sleep(4.0)
            remote.conditions = RemoteConditions(
                latency=0.3, jitter=0.05, failure_probability=0.4
            )

        task = asyncio.create_task(degrade())
        result = await loop.run(duration=8.0)
        await task
        return result

    result = run(scenario())
    peak = max(result.offload_target[:5])
    final = result.offload_target[-1]
    assert final < peak  # backed off after the degradation
