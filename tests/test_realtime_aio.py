"""Tests for the asyncio runtime (kept short: real seconds elapse)."""

import asyncio

import pytest

from repro.control.base import Controller
from repro.control.framefeedback import FrameFeedbackController
from repro.realtime.aio import AsyncFakeRemote, AsyncRealTimeLoop
from repro.realtime.client import FrameOutcome
from repro.realtime.fakework import RemoteConditions


def run(coro):
    return asyncio.run(coro)


class PinController(Controller):
    """Offload everything, forever (makes routing deterministic)."""

    name = "pin"

    def initial_target(self, frame_rate: float) -> float:
        return frame_rate

    def update(self, measurement) -> float:
        return measurement.frame_rate


class StubResilientRemote:
    """Scripted ``submit_frame`` outcomes (client-layer stand-in)."""

    def __init__(self, outcomes):
        self._outcomes = list(outcomes)

    async def submit_frame(self):
        return self._outcomes.pop(0)

    async def submit(self):
        return (await self.submit_frame()) is FrameOutcome.COMPLETED


def test_validation():
    with pytest.raises(ValueError):
        AsyncRealTimeLoop(FrameFeedbackController(30.0), None, frame_rate=0.0)


def test_async_remote_failure_probability():
    remote = AsyncFakeRemote(seed=0)
    remote.conditions = RemoteConditions(
        latency=0.0, jitter=0.0, failure_probability=1.0
    )
    assert run(remote.submit()) is False
    remote.conditions = RemoteConditions(
        latency=0.0, jitter=0.0, failure_probability=0.0
    )
    assert run(remote.submit()) is True


def test_framefeedback_ramps_on_asyncio():
    remote = AsyncFakeRemote(seed=1)
    remote.conditions = RemoteConditions(
        latency=0.02, jitter=0.002, failure_probability=0.0
    )
    loop = AsyncRealTimeLoop(
        FrameFeedbackController(30.0), remote.submit, local_latency=0.02
    )
    result = run(loop.run(duration=5.0))
    assert len(result.times) >= 4
    assert result.offload_target[-1] >= 9.0


def test_framefeedback_backs_off_on_asyncio():
    remote = AsyncFakeRemote(seed=2)
    remote.conditions = RemoteConditions(
        latency=0.02, jitter=0.002, failure_probability=1.0
    )
    loop = AsyncRealTimeLoop(
        FrameFeedbackController(30.0), remote.submit, local_latency=0.02
    )
    result = run(loop.run(duration=6.0))
    assert result.offload_target[-1] <= 9.0
    assert max(result.timeout_rate) > 0


def test_mid_run_degradation_triggers_backoff():
    async def scenario():
        remote = AsyncFakeRemote(seed=3)
        remote.conditions = RemoteConditions(
            latency=0.02, jitter=0.0, failure_probability=0.0
        )
        loop = AsyncRealTimeLoop(
            FrameFeedbackController(30.0), remote.submit, local_latency=0.02
        )

        async def degrade():
            await asyncio.sleep(4.0)
            remote.conditions = RemoteConditions(
                latency=0.3, jitter=0.05, failure_probability=0.4
            )

        task = asyncio.create_task(degrade())
        result = await loop.run(duration=8.0)
        await task
        return result

    result = run(scenario())
    peak = max(result.offload_target[:5])
    final = result.offload_target[-1]
    assert final < peak  # backed off after the degradation


def test_requires_submit_or_remote():
    with pytest.raises(ValueError):
        AsyncRealTimeLoop(FrameFeedbackController(30.0))


def test_remote_wiring_routes_outcomes():
    async def scenario():
        stub = StubResilientRemote(
            [
                FrameOutcome.COMPLETED,
                FrameOutcome.FALLBACK_LOCAL,
                FrameOutcome.TIMEOUT,
                FrameOutcome.OVERLOADED,
            ]
        )
        loop = AsyncRealTimeLoop(
            PinController(), remote=stub, local_latency=0.001
        )
        for _ in range(4):
            await loop._offload_one()
        # completed -> success; fallback -> saved on the local pipeline
        # (NOT a timeout); timeout/overloaded -> timeouts the controller
        # will see
        assert loop._counts["success"] == 1
        assert loop._counts["local"] == 1
        assert loop._counts["timeouts"] == 2
        assert loop._counts["fallback_dropped"] == 0

    run(scenario())


def test_remote_fallback_dropped_when_local_busy():
    async def scenario():
        stub = StubResilientRemote([FrameOutcome.FALLBACK_LOCAL])
        loop = AsyncRealTimeLoop(PinController(), remote=stub)
        loop._local_busy = True  # local pipeline mid-frame
        await loop._offload_one()
        assert loop._counts["fallback_dropped"] == 1
        assert loop._counts["local"] == 0

    run(scenario())


def test_measure_step_accounting_and_reset():
    loop = AsyncRealTimeLoop(
        PinController(),
        submit=AsyncFakeRemote(seed=0).submit,
        frame_rate=10.0,
        measure_period=2.0,
    )
    from repro.realtime.aio import AsyncLoopResult

    loop._counts.update(attempts=8, success=6, timeouts=2, local=4)
    loop._t_window.record(2)
    result = AsyncLoopResult()
    loop._measure_step(result, now=2.0)
    # rates are per-second over the period; throughput counts both paths
    assert result.throughput == [pytest.approx((6 + 4) / 2.0)]
    assert result.timeout_rate == [pytest.approx(2 / 2.0)]
    assert result.offload_target == [10.0]  # PinController holds at P
    # the bucket closed and every counter reset for the next period
    assert all(v == 0 for v in loop._counts.values())


def test_ticker_keeps_cadence_when_remote_stalls():
    async def scenario():
        started = {"n": 0}
        cancelled = {"n": 0}

        async def wedged_submit() -> bool:
            started["n"] += 1
            try:
                await asyncio.sleep(30.0)  # never answers on its own
            except asyncio.CancelledError:
                cancelled["n"] += 1
                raise
            return True

        loop = AsyncRealTimeLoop(
            PinController(),
            submit=wedged_submit,
            frame_rate=20.0,
            deadline=0.1,
            measure_period=0.5,
        )
        result = await loop.run(duration=1.2)
        return result, started["n"], cancelled["n"]

    result, started, cancelled = run(scenario())
    # a wedged remote must not stall the frame clock: ~20 fps for 1.2 s
    # means >= 15 offload attempts even with scheduling slop
    assert started >= 15
    # each attempt hit the watchdog deadline and was counted against T
    assert max(result.timeout_rate) > 0
    # every wedged attempt was reaped (watchdog or teardown), none leaked
    assert cancelled >= 1
