"""Property tests for the tracing invariants (ISSUE 5, satellite 1).

Three invariants hold for *every* seed, not just the committed goldens:

1. every captured frame reaches exactly one terminal span state;
2. span intervals nest within their parents, recursively;
3. canonical serialization is byte-identical across seeds-equal runs
   and across the ``REPRO_SIM_SLOWPATH`` fast/slow kernel pair.

Scenario runs dominate the cost, so the frame counts are scaled down
(120 frames / 4 simulated seconds — enough to reach the first crash
injector windows) and ``max_examples`` kept small — the point is seed
coverage beyond the goldens, not volume.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.trace import TERMINAL_STATUSES, dumps_trace, run_trace_scenario
from repro.trace.spans import OPEN_STATUS

_SCENARIOS = ("fig3", "chaos", "supervision")
_FEW = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _small(name, seed):
    return run_trace_scenario(name, seed=seed, frames=120)


def _assert_nested(node, lo=None, hi=None):
    start, end = node["start"], node["end"]
    assert end >= start, node["name"]
    if lo is not None:
        assert start >= lo and end <= hi, node["name"]
    for child in node["children"]:
        _assert_nested(child, start, end)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scenario=st.sampled_from(_SCENARIOS),
)
@_FEW
def test_every_frame_reaches_exactly_one_terminal_state(seed, scenario):
    doc = _small(scenario, seed)
    assert doc["frames"], "scenario produced no frames"
    for frame in doc["frames"]:
        status = frame["span"]["status"]
        # One status slot + first-status-wins finish() = at most one
        # terminal classification; here we assert it is also reached.
        # The lone exception is a frame in flight when a crash injector
        # destroys the server queue: its span stays open and must
        # serialize as the explicit OPEN_STATUS, never as a terminal.
        assert status in TERMINAL_STATUSES or status == OPEN_STATUS
        for child in frame["span"]["children"]:
            assert child["status"] not in TERMINAL_STATUSES or child["name"] in (
                "local",
                "offload",
            )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scenario=st.sampled_from(_SCENARIOS),
)
@_FEW
def test_span_intervals_nest_within_parents(seed, scenario):
    doc = _small(scenario, seed)
    for frame in doc["frames"]:
        _assert_nested(frame["span"])


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_seeds_equal_runs_are_byte_identical(seed):
    a = dumps_trace(_small("fig3", seed))
    b = dumps_trace(_small("fig3", seed))
    assert a == b


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scenario=st.sampled_from(_SCENARIOS),
)
@settings(max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fast_and_slow_kernels_trace_identically(seed, scenario):
    """REPRO_SIM_SLOWPATH must be unobservable in the trace bytes."""
    prior = os.environ.pop("REPRO_SIM_SLOWPATH", None)
    try:
        fast = dumps_trace(_small(scenario, seed))
        os.environ["REPRO_SIM_SLOWPATH"] = "1"
        slow = dumps_trace(_small(scenario, seed))
    finally:
        if prior is None:
            os.environ.pop("REPRO_SIM_SLOWPATH", None)
        else:
            os.environ["REPRO_SIM_SLOWPATH"] = prior
    assert fast == slow
