"""Integration tests for the full EdgeDevice measurement/control loop."""

import numpy as np
import pytest

from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    LocalOnlyController,
)
from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.netem.profiles import CONGESTED, DEAD, IDEAL
from repro.workloads.schedules import steady_schedule


def run(controller_factory, conditions=IDEAL, seconds=30, seed=0, **scenario_kw):
    scenario = Scenario(
        controller_factory=controller_factory,
        device=DeviceConfig(total_frames=int(seconds * 30)),
        network=steady_schedule(conditions),
        seed=seed,
        **scenario_kw,
    )
    return run_scenario(scenario)


def test_measurement_loop_runs_once_per_second():
    r = run(lambda c: LocalOnlyController(), seconds=10)
    times = r.traces.throughput.times
    assert len(times) == pytest.approx(10, abs=2)
    assert np.allclose(np.diff(times), 1.0)


def test_local_only_throughput_is_pl():
    r = run(lambda c: LocalOnlyController(), seconds=40)
    steady = r.traces.throughput.values[5:]
    assert steady.mean() == pytest.approx(13.0, rel=0.08)
    assert r.qos.timeouts == 0
    assert r.traces.offload_rate.values.max() == 0.0


def test_always_offload_ideal_reaches_source_rate():
    r = run(lambda c: AlwaysOffloadController(), seconds=40)
    steady = r.traces.throughput.values[5:]
    assert steady.mean() > 27.5  # ~F_s minus occasional jitter timeouts
    # nothing processed locally when everything offloads
    assert r.qos.extras["local_successes"] == 0


def test_framefeedback_ramps_then_saturates_on_ideal_link():
    r = run(lambda c: FrameFeedbackController(c.frame_rate), seconds=40)
    po = r.traces.offload_target.values
    assert po[0] <= 3.0 + 1e-9  # starts near zero (first update)
    assert po[-5:].mean() == pytest.approx(30.0, abs=1.0)
    # ramp rate bounded by Table IV max update
    assert np.diff(po).max() <= 3.0 + 1e-9


def test_framefeedback_settles_at_probe_rate_on_dead_link():
    r = run(lambda c: FrameFeedbackController(c.frame_rate), conditions=DEAD, seconds=60)
    po_tail = r.traces.offload_target.values[-20:]
    assert po_tail.mean() == pytest.approx(3.0, abs=1.5)
    # QoS not hurt vs local-only: throughput stays ~ P_l
    assert r.traces.throughput.values[-20:].mean() == pytest.approx(13.0, abs=1.5)


def test_framefeedback_finds_partial_rate_on_congested_link():
    r = run(
        lambda c: FrameFeedbackController(c.frame_rate), conditions=CONGESTED, seconds=60
    )
    po_tail = r.traces.offload_target.values[-20:]
    assert 5.0 < po_tail.mean() < 16.0  # partial: not 0, not 30
    p_tail = r.traces.throughput.values[-20:]
    assert p_tail.mean() > 14.0  # beats local-only


def test_controller_never_violates_p_geq_pl_badly():
    """§II-A.5: 'the controller should always strive to keep P >= P_l'."""
    r = run(lambda c: FrameFeedbackController(c.frame_rate), conditions=DEAD, seconds=60)
    tail = r.traces.throughput.values[10:]
    assert tail.mean() >= 13.0 * 0.85


def test_all_or_nothing_probe_traffic_present():
    r = run(lambda c: AllOrNothingController(), conditions=DEAD, seconds=20)
    # probes were sent every second even while local
    assert r.uplink_stats.frames_sent >= 15


def test_timeout_accounting_consistent():
    r = run(lambda c: AlwaysOffloadController(), conditions=DEAD, seconds=20)
    assert r.qos.timeouts > 0
    assert r.qos.successful + r.qos.timeouts <= r.qos.total_frames + 5
    assert r.qos.success_fraction < 0.2


def test_cpu_trace_tracks_policy():
    local = run(lambda c: LocalOnlyController(), seconds=30)
    offload = run(lambda c: AlwaysOffloadController(), seconds=30)
    assert (
        local.traces.cpu_utilization.values[5:].mean()
        > offload.traces.cpu_utilization.values[5:].mean()
    )


def test_run_is_deterministic_per_seed():
    a = run(lambda c: FrameFeedbackController(c.frame_rate), CONGESTED, 30, seed=3)
    b = run(lambda c: FrameFeedbackController(c.frame_rate), CONGESTED, 30, seed=3)
    assert np.array_equal(a.traces.throughput.values, b.traces.throughput.values)
    assert np.array_equal(a.traces.offload_target.values, b.traces.offload_target.values)
    assert a.qos.successful == b.qos.successful


def test_different_seeds_differ():
    a = run(lambda c: FrameFeedbackController(c.frame_rate), CONGESTED, 30, seed=1)
    b = run(lambda c: FrameFeedbackController(c.frame_rate), CONGESTED, 30, seed=2)
    assert not np.array_equal(a.traces.throughput.values, b.traces.throughput.values)


def test_qos_report_fields_populated():
    r = run(lambda c: FrameFeedbackController(c.frame_rate), seconds=20)
    q = r.qos
    assert q.name == "FrameFeedback"
    assert q.total_frames == 600
    assert q.mean_throughput > 0
    assert "offload_successes" in q.extras
    assert "mean_cpu_utilization" in q.extras
