"""Tests for the paired permutation test and effect size."""

import numpy as np
import pytest

from repro.analysis.significance import (
    bootstrap_mean_diff_ci,
    effect_size,
    equivalent_within,
    paired_permutation_test,
)


def test_bootstrap_ci_brackets_true_mean_difference():
    rng = np.random.default_rng(1)
    base = rng.normal(10.0, 1.0, 30)
    lo, hi = bootstrap_mean_diff_ci(base + 0.5, base, rng=rng)
    assert lo <= 0.5 <= hi
    assert hi - lo < 0.5  # paired noise cancels: tight interval


def test_bootstrap_ci_rejects_bad_inputs():
    with pytest.raises(ValueError):
        bootstrap_mean_diff_ci([], [])
    with pytest.raises(ValueError):
        bootstrap_mean_diff_ci([1.0], [1.0], confidence=1.5)


def test_equivalent_within_accepts_matched_and_rejects_shifted():
    rng = np.random.default_rng(2)
    base = rng.normal(100.0, 5.0, 20)
    noise = rng.normal(0.0, 0.2, 20)
    assert equivalent_within(base, base + noise, margin=1.0, rng=rng)
    assert not equivalent_within(base, base + 5.0, margin=1.0, rng=rng)
    with pytest.raises(ValueError):
        equivalent_within(base, base, margin=0.0)


def test_equivalence_needs_ci_inside_margin_not_just_small_mean():
    # differences averaging ~0 but wildly spread: not equivalent
    a = [0.0, 0.0, 0.0, 0.0]
    b = [10.0, -10.0, 12.0, -12.0]
    assert not equivalent_within(a, b, margin=1.0)


def test_identical_samples_p_one():
    assert paired_permutation_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        paired_permutation_test([], [])


def test_consistent_difference_is_significant():
    a = [10.0 + i * 0.1 for i in range(10)]
    b = [x - 1.0 for x in a]  # b always exactly 1 lower
    p = paired_permutation_test(a, b)
    # exact test: all-same-sign diffs -> p = 2 / 2^10
    assert p == pytest.approx(2 / 1024)


def test_noise_is_not_significant():
    rng = np.random.default_rng(0)
    a = rng.normal(10, 1, size=12)
    b = rng.normal(10, 1, size=12)
    assert paired_permutation_test(a, b) > 0.05


def test_monte_carlo_branch_agrees_with_exact_direction():
    rng = np.random.default_rng(1)
    a = rng.normal(10, 0.5, size=30) + 2.0
    b = rng.normal(10, 0.5, size=30)
    p = paired_permutation_test(a, b, n_resamples=2000, rng=np.random.default_rng(2))
    assert p < 0.01


def test_effect_size_signs_and_magnitude():
    a = [5.0, 6.0, 7.0, 8.0]
    b = [4.0, 5.0, 6.0, 7.0]  # constant +1, zero variance in diffs
    assert effect_size(a, b) == float("inf")
    rng = np.random.default_rng(3)
    x = rng.normal(0, 1, 50)
    assert effect_size(x + 1.0, x - (rng.normal(0, 0.5, 50))) > 0.5
    with pytest.raises(ValueError):
        effect_size([1.0], [2.0])


def test_framefeedback_vs_baselines_significant_across_seeds():
    """The Fig 3 win is statistically real, not seed luck."""
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario
    from repro.experiments.seeds import compare_across_seeds
    from repro.experiments.standard import standard_controllers

    scenario = Scenario(
        controller_factory=lambda c: None,
        device=DeviceConfig(total_frames=1200),
        network=__import__(
            "repro.workloads.schedules", fromlist=["table_v_schedule"]
        ).table_v_schedule(),
    )
    controllers = standard_controllers()
    summaries = compare_across_seeds(
        scenario,
        {k: controllers[k] for k in ("FrameFeedback", "AllOrNothing")},
        seeds=(0, 1, 2, 3, 4, 5),
    )
    p = paired_permutation_test(
        summaries["FrameFeedback"].values, summaries["AllOrNothing"].values
    )
    assert p < 0.05
