"""Tests for result export and scenario serialization."""

import json

import numpy as np
import pytest

from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.io import (
    export_run,
    load_timeseries_csv,
    qos_to_dict,
    scenario_from_dict,
    scenario_to_dict,
    timeseries_to_csv,
)
from repro.io.export import traces_to_csv
from repro.metrics.timeseries import TimeSeries
from repro.netem.profiles import CONGESTED
from repro.workloads.schedules import steady_schedule, table_v_schedule


def _series(name, pairs):
    s = TimeSeries(name)
    for t, v in pairs:
        s.append(t, v)
    return s


# ----------------------------------------------------------------------
# CSV round trips
# ----------------------------------------------------------------------
def test_single_series_csv_round_trip():
    s = _series("p", [(0.0, 1.5), (1.0, 2.5)])
    text = timeseries_to_csv(s, value_name="p")
    back = load_timeseries_csv(text)
    assert list(back["p"].times) == [0.0, 1.0]
    assert list(back["p"].values) == [1.5, 2.5]


def test_wide_csv_round_trip():
    a = _series("a", [(0.0, 1.0), (1.0, 2.0)])
    b = _series("b", [(0.0, 3.0), (1.0, 4.0)])
    back = load_timeseries_csv(traces_to_csv({"a": a, "b": b}))
    assert list(back["b"].values) == [3.0, 4.0]


def test_wide_csv_rejects_misaligned_series():
    a = _series("a", [(0.0, 1.0)])
    b = _series("b", [(0.0, 3.0), (1.0, 4.0)])
    with pytest.raises(ValueError):
        traces_to_csv({"a": a, "b": b})


def test_load_rejects_garbage():
    with pytest.raises(ValueError):
        load_timeseries_csv("nonsense,header\n1,2\n")


# ----------------------------------------------------------------------
# full run export
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def run_result():
    return run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=600),
            network=steady_schedule(CONGESTED),
            seed=0,
        )
    )


def test_export_run_writes_artifacts(run_result, tmp_path):
    paths = export_run(run_result, tmp_path / "out")
    assert paths["traces"].exists()
    assert paths["qos"].exists()

    traces = load_timeseries_csv(paths["traces"].read_text())
    assert "throughput" in traces and "offload_target" in traces
    assert np.allclose(
        traces["throughput"].values, run_result.traces.throughput.values
    )

    qos = json.loads(paths["qos"].read_text())
    assert qos["controller"] == "FrameFeedback"
    assert qos["qos"]["total_frames"] == 600
    assert "timeout_attribution" in qos


def test_qos_to_dict_fields(run_result):
    d = qos_to_dict(run_result.qos)
    assert d["name"] == "FrameFeedback"
    assert 0.0 <= d["success_fraction"] <= 1.0


def test_qos_to_dict_is_strict_json():
    """NaN extras (e.g. RTT quantiles of a never-offloading run) must
    serialize as null, not as invalid-JSON NaN tokens."""
    from repro.metrics.qos import QosReport

    q = QosReport(name="x", extras={"rtt_p50": float("nan")})
    text = json.dumps(qos_to_dict(q), allow_nan=False)  # raises if NaN
    assert json.loads(text)["extras"]["rtt_p50"] is None


# ----------------------------------------------------------------------
# scenario config round trip
# ----------------------------------------------------------------------
def test_scenario_round_trip_preserves_run():
    original = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=600),
        network=table_v_schedule(),
        seed=7,
    )
    data = scenario_to_dict(original, "FrameFeedback")
    rebuilt = scenario_from_dict(json.loads(json.dumps(data)))
    a = run_scenario(original)
    b = run_scenario(rebuilt)
    assert np.array_equal(a.traces.throughput.values, b.traces.throughput.values)
    assert a.qos.successful == b.qos.successful


def test_scenario_dict_contents():
    s = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=100),
        network=table_v_schedule(),
        seed=1,
    )
    d = scenario_to_dict(s, "FrameFeedback")
    assert d["controller"] == "FrameFeedback"
    assert d["device"]["total_frames"] == 100
    assert d["network"][0] == [0.0, 10.0, 0.0]
    assert "load" not in d


def test_unknown_controller_rejected_both_ways():
    s = Scenario(
        controller_factory=framefeedback_factory(),
        device=DeviceConfig(total_frames=100),
    )
    with pytest.raises(ValueError):
        scenario_to_dict(s, "NotAController")
    with pytest.raises(ValueError):
        scenario_from_dict({"controller": "NotAController"})


def test_minimal_config_uses_defaults():
    scenario = scenario_from_dict({})
    assert scenario.device.frame_rate == 30.0
    assert scenario.device.total_frames == 4000
    assert scenario.network is None


# ----------------------------------------------------------------------
# unknown keys are errors, never silent no-ops (ISSUE 6 satellite)
# ----------------------------------------------------------------------
def test_unknown_top_level_key_raises_and_names_valid_fields():
    with pytest.raises(ValueError) as err:
        scenario_from_dict({"controler": "FrameFeedback", "seed": 3})
    msg = str(err.value)
    assert "controler" in msg
    assert "valid fields" in msg
    assert "controller" in msg  # the fix the author needs is in the message


def test_unknown_device_key_raises():
    with pytest.raises(ValueError, match=r"device field\(s\) \['frame_rat'\]"):
        scenario_from_dict({"device": {"frame_rat": 15.0}})


def test_unknown_gpu_key_raises():
    with pytest.raises(ValueError, match=r"gpu field\(s\) \['base_latencyy'\]"):
        scenario_from_dict({"gpu": {"base_latencyy": 0.01}})


def test_extended_language_keys_are_rejected_by_the_base_format():
    """`faults` belongs to the repro.search language, not the base
    format — passing it here must fail loudly, not silently drop the
    fault plan."""
    with pytest.raises(ValueError, match="faults"):
        scenario_from_dict(
            {"faults": [{"kind": "server_crash", "windows": [[1.0, 1.0]]}]}
        )


def test_typo_no_longer_silently_falls_back_to_default():
    """The regression this satellite fixes: a typoed total_frames used
    to be dropped, silently running the 4000-frame default."""
    with pytest.raises(ValueError):
        scenario_from_dict({"device": {"total_frame": 100}})


# ----------------------------------------------------------------------
# generator dicts lower through the scenario compiler
# ----------------------------------------------------------------------
def test_network_generator_dict_is_lowered():
    scenario = scenario_from_dict(
        {"duration": 20.0,
         "network": {"kind": "diurnal", "period": 20.0, "base_bandwidth": 10.0,
                     "dip": 6.0, "step": 5.0}}
    )
    assert scenario.network is not None
    assert len(scenario.network.phases) == 4
    assert scenario.network.phases[0].conditions.bandwidth == 10.0


def test_load_generator_dict_is_lowered():
    scenario = scenario_from_dict(
        {"duration": 30.0,
         "load": {"kind": "flash_crowd", "peak_rate": 90.0, "at": 5.0}}
    )
    assert scenario.load is not None
    assert scenario.load.rate_at(0.0) == 0.0
    assert max(p.rate for p in scenario.load.phases) == 90.0


def test_bad_generator_field_raises():
    with pytest.raises(ValueError, match="unknown generator kind"):
        scenario_from_dict({"network": {"kind": "diurnals"}})
    with pytest.raises(ValueError, match="network"):
        scenario_from_dict({"network": {"kind": "diurnal", "perod": 10.0}})
