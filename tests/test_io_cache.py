"""Tests for the content-addressed result cache."""

import numpy as np
import pytest

from repro.io.cache import ResultCache, config_key

BASE = {
    "controller": "FrameFeedback",
    "seed": 0,
    "device": {"total_frames": 300},
    "network": [[0, 4, 0]],
}


def test_key_is_stable_and_order_insensitive():
    a = {"x": 1, "y": 2}
    b = {"y": 2, "x": 1}
    assert config_key(a) == config_key(b)
    assert config_key(a) != config_key({"x": 1, "y": 3})
    assert config_key(a, ("throughput",)) != config_key(a)


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    first = cache.run(BASE, trace_names=("throughput",))
    assert (cache.hits, cache.misses) == (0, 1)
    second = cache.run(BASE, trace_names=("throughput",))
    assert (cache.hits, cache.misses) == (1, 1)
    assert second.mean_throughput == first.mean_throughput
    assert np.array_equal(second.traces["throughput"], first.traces["throughput"])


def test_cached_result_matches_fresh_execution(tmp_path):
    from repro.experiments.parallel import execute_config

    cache = ResultCache(tmp_path)
    cached = cache.run(BASE)
    fresh = execute_config(BASE)
    assert cached.mean_throughput == fresh.mean_throughput
    assert cached.successful == fresh.successful


def test_different_configs_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    a = cache.run(BASE)
    b = cache.run({**BASE, "seed": 1})
    assert cache.misses == 2
    assert a.seed != b.seed


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.run(BASE)
    assert cache.clear() == 1
    assert cache.get(BASE) is None
