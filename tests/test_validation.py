"""CI gate: every reproduction claim must hold (reduced scale here;
full scale via `framefeedback validate`)."""

import pytest

from repro.experiments.validation import CLAIMS, render_results, validate_all


@pytest.fixture(scope="module")
def results():
    # 2400 frames (~80 s) covers the phases every claim measures while
    # keeping the whole gate under ~30 s
    return validate_all(frames=2400)


def test_every_claim_holds(results):
    failing = [r for r in results if not r.passed]
    assert not failing, render_results(failing)


def test_all_claims_were_run(results):
    assert len(results) == len(CLAIMS)
    assert len({r.claim_id for r in results}) == len(results)


def test_render_marks_verdicts(results):
    text = render_results(results)
    assert "PASS" in text
    assert f"{len(results)}/{len(results)} claims hold" in text


def test_claims_have_statements():
    for claim in CLAIMS:
        assert claim.statement
        assert claim.claim_id
