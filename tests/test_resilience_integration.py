"""Integration tests for the resilient offload path.

Client-level: deadline-budgeted hedged retransmission, budget
exhaustion, overload pushback classification, and the late-response
attribution grace.  Device-level: the circuit breaker under a server
blackout — trip latency, local fallback routing, the parked standing
probe, exponential half-open backoff, bounded re-close — plus the
same-seed regression showing resilience strictly reduces deadline
violations during the outage.
"""

import numpy as np
import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.device.camera import Frame
from repro.device.config import DeviceConfig
from repro.device.offload import OffloadClient
from repro.experiments.chaos import ChaosScenario, run_chaos
from repro.experiments.scenario import Scenario
from repro.faults import FaultTimeline, ServerCrash
from repro.metrics.breakdown import BreakdownCollector, TimeoutCause
from repro.metrics.taxonomy import FailureKind
from repro.models.latency import GpuBatchModel
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.resilience import BreakerState, ResilienceConfig, ResilienceLayer
from repro.server.server import EdgeServer
from repro.sim import Environment

FRAME_RATE = 30.0


class Harness:
    """Offload path with injectable link/server/resilience behaviour."""

    def __init__(
        self,
        conditions=None,
        gpu=None,
        deadline=0.25,
        seed=0,
        resilience=None,
        pushback=False,
        batch_limit=None,
        breakdown=False,
    ):
        self.env = Environment()
        self.box = ConditionBox(conditions or LinkConditions(jitter_sigma=0.0))
        self.uplink = Link(self.env, np.random.default_rng(seed), self.box, "up")
        self.downlink = Link(self.env, np.random.default_rng(seed + 1), self.box, "down")
        server_kw = {} if batch_limit is None else {"batch_limit": batch_limit}
        self.server = EdgeServer(
            self.env,
            np.random.default_rng(seed + 2),
            cost_model=gpu or GpuBatchModel(jitter_sigma=0.0),
            pushback=pushback,
            **server_kw,
        )
        self.resilience = (
            ResilienceLayer(resilience, frame_rate=FRAME_RATE) if resilience else None
        )
        self.breakdown = BreakdownCollector() if breakdown else None
        self.successes = []
        self.timeouts = []
        self.client = OffloadClient(
            self.env,
            uplink=self.uplink,
            downlink=self.downlink,
            server=self.server,
            tenant="pi",
            model_name="mobilenet_v3_small",
            deadline=deadline,
            response_bytes=160,
            on_success=lambda f, rtt: self.successes.append((f.frame_id, rtt)),
            on_timeout=lambda f, why: self.timeouts.append((f.frame_id, why)),
            breakdown=self.breakdown,
            resilience=self.resilience,
        )

    def send(self, frame_id=0, nbytes=11_700):
        self.client.send(Frame(frame_id, self.env.now, nbytes))

    def heal_at(self, t, conditions=None):
        def proc(env):
            yield env.timeout(t)
            self.box.set(conditions or LinkConditions(jitter_sigma=0.0))

        self.env.process(proc(self.env))

    def taxonomy(self, kind):
        return self.resilience.taxonomy.total(kind)


FAST_GPU = dict(base_latency=0.02, per_item=0.001, jitter_sigma=0.0)


# ----------------------------------------------------------------------
# hedged retransmission
# ----------------------------------------------------------------------
def test_hedged_retry_recovers_frame_after_midflight_heal():
    """Original copy lost to a 1 s propagation black hole; the link
    heals before the hedge timer, and the retransmission makes the
    deadline the original never could."""
    h = Harness(
        conditions=LinkConditions(propagation_delay=1.0, jitter_sigma=0.0),
        gpu=GpuBatchModel(**FAST_GPU),
        resilience=ResilienceConfig(),
    )
    # heal before the hedge fires at retry_after_frac * deadline = 0.125
    h.heal_at(0.1)
    h.send(frame_id=42)
    h.env.run(until=3.0)
    assert h.timeouts == []
    assert len(h.successes) == 1
    fid, rtt = h.successes[0]
    assert fid == 42
    assert rtt < 0.25  # still within the *original* budget
    assert h.client.retries == 1
    assert h.taxonomy(FailureKind.RETRY_SENT) == 1


def test_retry_budget_exhaustion_denies_further_hedges():
    """One token in the bucket: only the first dead frame gets a hedge,
    the rest are classified RETRY_DENIED."""
    h = Harness(
        conditions=LinkConditions(propagation_delay=1.0, jitter_sigma=0.0),
        resilience=ResilienceConfig(retry_budget_rate=0.001, retry_budget_burst=1.0),
    )

    def feeder(env):
        for i in range(3):
            h.send(frame_id=i)
            yield env.timeout(0.05)

    h.env.process(feeder(h.env))
    h.env.run(until=3.0)
    assert h.taxonomy(FailureKind.RETRY_SENT) == 1
    assert h.taxonomy(FailureKind.RETRY_DENIED) == 2
    assert h.client.retries == 1
    assert [why for _, why in h.timeouts] == ["deadline"] * 3


def test_retry_window_closed_when_no_useful_reply_possible():
    """A hedge that cannot land min_reply_frac of the budget before
    the deadline is pointless and recorded as such."""
    h = Harness(
        conditions=LinkConditions(propagation_delay=1.0, jitter_sigma=0.0),
        resilience=ResilienceConfig(retry_after_frac=0.8, min_reply_frac=0.3),
    )
    h.send(frame_id=0)
    h.env.run(until=2.0)
    assert h.client.retries == 0
    assert h.taxonomy(FailureKind.RETRY_SENT) == 0
    assert h.taxonomy(FailureKind.RETRY_WINDOW_CLOSED) == 1


# ----------------------------------------------------------------------
# overload pushback
# ----------------------------------------------------------------------
def test_overload_pushback_fast_fails_doomed_frames():
    """Admission shed during a stall: the frame is classified
    'overloaded' the moment the pushback response arrives instead of
    burning the rest of the deadline in silence."""
    h = Harness(
        gpu=GpuBatchModel(**FAST_GPU),
        # max_retries=0: no hedging, so the counts below are exact
        resilience=ResilienceConfig(max_retries=0),
        pushback=True,
        batch_limit=1,  # admission_limit defaults to 4
    )
    h.server.pause(2.0)
    for i in range(6):
        h.send(frame_id=i)
    h.env.run(until=3.0)
    # frames 4 and 5 arrive with 4 already pending -> shed at submit
    assert h.client.overloads == 2
    assert h.server.stats.overloaded == 2
    reasons = [why for _, why in h.timeouts]
    assert reasons.count("overloaded") == 2
    assert reasons.count("deadline") == 4
    assert h.taxonomy(FailureKind.OVERLOADED) == 2
    assert h.resilience.last_retry_after is not None
    assert h.resilience.last_retry_after > 0.0
    # at the resume the batch takes the (expired) head frame and the
    # three overflow frames — long expired — are classified as plain
    # rejections at batch formation, not overload pushback
    assert h.server.stats.rejected == 3
    assert h.server.stats.completed == 1  # late completion, discarded


def test_overload_retry_honors_hint_and_recovers():
    """With a budget that outlives the stall, the overloaded frames are
    re-sent after the server's retry-after hint and still succeed."""
    h = Harness(
        gpu=GpuBatchModel(**FAST_GPU),
        deadline=2.0,
        resilience=ResilienceConfig(retry_after_frac=0.9, min_reply_frac=0.1),
        pushback=True,
        batch_limit=1,
    )
    h.server.pause(0.5)
    for i in range(6):
        h.send(frame_id=i)
    h.env.run(until=5.0)
    # frames 4-5 shed at admission; 1-3 overflow batch formation at the
    # resume (batch_limit=1 takes only frame 0) — all five get pushback
    # with a hint, retry after it, and still make the 2 s budget
    assert h.taxonomy(FailureKind.OVERLOADED) == 5
    assert h.taxonomy(FailureKind.RETRY_SENT) == 5
    assert h.client.retries == 5
    assert h.timeouts == []
    assert sorted(fid for fid, _ in h.successes) == list(range(6))


# ----------------------------------------------------------------------
# late-response attribution grace (the settle-immediately fix)
# ----------------------------------------------------------------------
def test_attribution_grace_settles_when_late_response_arrives():
    h = Harness(
        gpu=GpuBatchModel(base_latency=0.5, per_item=0.0, jitter_sigma=0.0),
        breakdown=True,
    )
    h.send(frame_id=0)
    h.env.run(until=0.3)
    assert [why for _, why in h.timeouts] == ["deadline"]
    assert len(h.client._late_pending) == 1  # attribution still open
    h.env.run(until=0.8)
    # the late response resolved attribution immediately — no lingering
    # grace entry, and the violation is attributed to the server (LOAD)
    assert h.client._late_pending == {}
    assert h.breakdown.cause_counts() == {
        TimeoutCause.NETWORK: 0,
        TimeoutCause.LOAD: 1,
    }
    # and the grace timer firing later must not double-count
    h.env.run(until=5.0)
    assert len(h.breakdown.violations) == 1


def test_attribution_grace_still_times_out_on_true_silence():
    h = Harness(
        conditions=LinkConditions(propagation_delay=9.0, jitter_sigma=0.0),
        breakdown=True,
    )
    h.send(frame_id=0)
    h.env.run(until=2.0)
    assert h.client._late_pending == {}  # grace expired
    assert h.breakdown.cause_counts()[TimeoutCause.NETWORK] == 1


# ----------------------------------------------------------------------
# device-level: breaker under a server blackout
# ----------------------------------------------------------------------
OUTAGE = (20.0, 25.0)  # total-failure window [20, 45)


def _chaos(resilience=None):
    return ChaosScenario(
        base=Scenario(
            controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
            device=DeviceConfig(total_frames=2400),
            seed=7,
        ),
        injectors=[ServerCrash(FaultTimeline.from_rows([OUTAGE]))],
        reconverge_periods=25,
        resilience=resilience,
    )


@pytest.fixture(scope="module")
def resilient_crash():
    return run_chaos(_chaos(ResilienceConfig()))


@pytest.fixture(scope="module")
def bare_crash():
    return run_chaos(_chaos())


def _open_time(result):
    opens = [t for t, s in result.breaker_transitions if s is BreakerState.OPEN]
    in_window = [t for t in opens if OUTAGE[0] <= t]
    assert in_window, "breaker never opened during the outage"
    return in_window[0]


def test_breaker_trips_within_three_control_periods(resilient_crash):
    checks = [c for c in resilient_crash.invariants if c.name == "breaker-trip"]
    assert len(checks) == 1
    assert checks[0].passed, checks[0].detail
    assert checks[0].observed <= 3.0
    assert _open_time(resilient_crash) - OUTAGE[0] <= 3.0


def test_open_window_routes_every_frame_locally(resilient_crash):
    """Once open, the splitter is bypassed: zero real offload attempts
    until the post-heal close, with the local pipeline carrying load."""
    traces = resilient_crash.run.traces
    t0 = _open_time(resilient_crash) + 2.0  # skip the partial bucket
    heal = OUTAGE[0] + OUTAGE[1]
    offload = [
        v for t, v in zip(traces.offload_rate.times, traces.offload_rate.values)
        if t0 <= t < heal
    ]
    assert offload and max(offload) == 0.0
    assert traces.local_rate.mean_over(t0, heal) > 5.0
    # and the taxonomy accounts for the fallback routing
    assert resilient_crash.failure_taxonomy["breaker_fallback"] > 0


def test_open_window_parks_target_at_standing_probe(resilient_crash):
    """The frozen controller's splitter parks at 0.1 * F_s exactly."""
    traces = resilient_crash.run.traces
    t0 = _open_time(resilient_crash) + 2.0
    heal = OUTAGE[0] + OUTAGE[1]
    targets = [
        v for t, v in zip(traces.offload_target.times, traces.offload_target.values)
        if t0 <= t < heal
    ]
    assert targets
    assert targets == pytest.approx([0.1 * FRAME_RATE] * len(targets))


def test_half_open_probe_gaps_grow_exponentially(resilient_crash):
    probes = [
        t for t, s in resilient_crash.breaker_transitions
        if s is BreakerState.HALF_OPEN and OUTAGE[0] <= t < OUTAGE[0] + OUTAGE[1]
    ]
    assert len(probes) >= 5
    gaps = [b - a for a, b in zip(probes, probes[1:])]
    for earlier, later in zip(gaps[:3], gaps[1:4]):
        assert later > earlier * 1.5  # doubling backoff dominates the gap


def test_breaker_recloses_bounded_after_heal(resilient_crash):
    checks = [c for c in resilient_crash.invariants if c.name == "breaker-reclose"]
    assert len(checks) == 1
    assert checks[0].passed, checks[0].detail
    closes = [t for t, s in resilient_crash.breaker_transitions if s is BreakerState.CLOSED]
    heal = OUTAGE[0] + OUTAGE[1]
    assert any(heal <= t <= heal + checks[0].expected for t in closes)


def test_all_invariants_hold_with_resilience(resilient_crash):
    names = [c.name for c in resilient_crash.invariants]
    assert "standing-probe" in names
    assert "re-convergence" in names
    assert "breaker-trip" in names
    assert "breaker-reclose" in names
    assert resilient_crash.all_invariants_hold, [
        c.detail for c in resilient_crash.invariants if not c.passed
    ]


def test_resilience_strictly_reduces_outage_violations(resilient_crash, bare_crash):
    """Same seed, same fault plan: the defense stack must lower the
    deadline-violation rate during the outage — the ISSUE's acceptance
    criterion — not just shuffle failures around."""
    heal = OUTAGE[0] + OUTAGE[1]
    bare_t = bare_crash.run.traces.timeout_rate.mean_over(OUTAGE[0], heal)
    res_t = resilient_crash.run.traces.timeout_rate.mean_over(OUTAGE[0], heal)
    assert res_t < bare_t
    assert resilient_crash.run.qos.timeouts < bare_crash.run.qos.timeouts
    # the saved frames went somewhere: local throughput during the
    # outage is higher with the breaker routing everything locally
    bare_p = bare_crash.run.traces.throughput.mean_over(OUTAGE[0], heal)
    res_p = resilient_crash.run.traces.throughput.mean_over(OUTAGE[0], heal)
    assert res_p >= bare_p
