"""Tests for the ASCII chart renderer."""

import pytest

from repro.metrics.timeseries import TimeSeries
from repro.viz import histogram, line_chart


def _series(name, pairs):
    s = TimeSeries(name)
    for t, v in pairs:
        s.append(float(t), float(v))
    return s


def test_line_chart_basic_structure():
    s = _series("p", [(t, t) for t in range(30)])
    out = line_chart({"p": s}, width=40, height=10, title="ramp")
    lines = out.splitlines()
    assert lines[0] == "ramp"
    assert len(lines) == 1 + 10 + 3  # title + rows + axis + xlabels + legend
    assert "o=p" in lines[-1]
    assert "+----" in lines[-3]


def test_line_chart_ramp_is_monotone_diagonal():
    s = _series("p", [(t, t) for t in range(40)])
    out = line_chart({"p": s}, width=40, height=10)
    rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
    # first column's marker is in the bottom row, last column's on top
    assert rows[-1][0] == "o"
    assert rows[0][-1] == "o"


def test_line_chart_multiple_series_distinct_markers():
    a = _series("a", [(t, 5) for t in range(10)])
    b = _series("b", [(t, 25) for t in range(10)])
    out = line_chart({"a": a, "b": b}, width=30, height=8, y_max=30)
    assert "o=a" in out and "*=b" in out
    body = "\n".join(line for line in out.splitlines() if "|" in line)
    assert "o" in body and "*" in body


def test_line_chart_y_max_clips():
    s = _series("p", [(t, 1000.0) for t in range(10)])
    out = line_chart({"p": s}, width=20, height=6, y_max=30.0)
    rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
    assert "o" in rows[0]  # clipped to the top row, no crash


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({})
    s = _series("p", [(0, 1)])
    with pytest.raises(ValueError):
        line_chart({"p": s}, width=5)
    with pytest.raises(ValueError):
        line_chart({f"s{i}": s for i in range(9)})


def test_line_chart_empty_series_ok():
    out = line_chart({"empty": TimeSeries("empty")}, width=20, height=6)
    assert "o=empty" in out


def test_histogram_counts_sum():
    out = histogram([1, 1, 2, 3, 3, 3], bins=3, title="h")
    assert out.splitlines()[0] == "h"
    # the counts appear at line ends
    counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()[1:]]
    assert sum(counts) == 6
    assert max(counts) == 3


def test_histogram_validation():
    with pytest.raises(ValueError):
        histogram([])
    with pytest.raises(ValueError):
        histogram([1.0], bins=0)
