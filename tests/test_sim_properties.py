"""Property-based tests (hypothesis) for the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_completion_order_matches_sorted_delays(delays):
    """Processes waiting arbitrary delays complete in sorted order."""
    env = Environment()
    completions = []

    def waiter(env, idx, delay):
        yield env.timeout(delay)
        completions.append((env.now, idx))

    for idx, delay in enumerate(delays):
        env.process(waiter(env, idx, delay))
    env.run()

    times = [t for t, _ in completions]
    assert times == sorted(times)
    # equal delays must preserve spawn order (determinism)
    expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert [i for _, i in completions] == expected


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_clock_never_goes_backwards(delays):
    env = Environment()
    observed = []

    def waiter(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    def nested(env, delay):
        yield env.timeout(delay / 2.0)
        observed.append(env.now)
        yield env.timeout(delay / 2.0)
        observed.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
        env.process(nested(env, delay))
    env.run()
    assert observed == sorted(observed)


@given(
    seed_items=st.lists(st.integers(), min_size=0, max_size=40),
    capacity=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_store_conserves_items(seed_items, capacity):
    """Everything put into a Store comes out exactly once, in order."""
    env = Environment()
    store = Store(env, capacity=capacity)
    out = []

    def producer(env, store):
        for item in seed_items:
            yield store.put(item)

    def consumer(env, store):
        for _ in range(len(seed_items)):
            item = yield store.get()
            out.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert out == seed_items


@given(
    n_events=st.integers(min_value=1, max_value=30),
    horizon=st.floats(min_value=0.5, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_run_until_stops_exactly_at_horizon(n_events, horizon):
    env = Environment()
    fired = []

    def ticker(env):
        while True:
            yield env.timeout(horizon / n_events)
            fired.append(env.now)

    env.process(ticker(env))
    env.run(until=horizon)
    assert env.now == horizon
    assert all(t <= horizon for t in fired)


@given(values=st.lists(st.integers(), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_process_return_values_round_trip(values):
    """Fork/join preserves each child's return value."""
    env = Environment()

    def child(env, v):
        yield env.timeout(1.0)
        return v

    def parent(env):
        children = [env.process(child(env, v)) for v in values]
        results = []
        for c in children:
            results.append((yield c))
        return results

    p = env.process(parent(env))
    assert env.run(until=p) == values
