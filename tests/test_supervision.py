"""Unit tests for the supervision layer.

Checkpoint format round-trip, the measurement validity taxonomy,
heartbeats, process crash/restart on each component, and the
supervisor's warm/cold restore paths — each exercised on the real
wired testbed where it matters.
"""

import math

import pytest

from repro.control import (
    MeasurementGuard,
    MeasurementValidity,
    sanitize_timeout_rate,
)
from repro.control.base import Measurement
from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, build_runtime
from repro.experiments.standard import framefeedback_factory
from repro.resilience.breaker import CircuitBreaker
from repro.supervision import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    ControllerCheckpoint,
    Heartbeat,
    SupervisionConfig,
    Supervisor,
)

FS = 30.0


def measurement(time=1.0, t_rate=0.0):
    return Measurement(
        time=time,
        frame_rate=FS,
        offload_target=12.0,
        offload_rate=12.0,
        offload_success_rate=max(0.0, 12.0 - t_rate),
        timeout_rate=t_rate,
        timeout_rate_last=t_rate,
        local_rate=13.0,
        throughput=13.0 + max(0.0, 12.0 - t_rate),
    )


def runtime(total_frames=600, supervision=None):
    rt = build_runtime(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=total_frames),
            seed=0,
        )
    )
    supervisor = None
    if supervision is not None:
        supervisor = Supervisor(rt.env, rt.device, rt.server, supervision)
        rt.supervisor = supervisor
    return rt, supervisor


# ----------------------------------------------------------------------
# checkpoint format
# ----------------------------------------------------------------------
def test_checkpoint_round_trips_through_dict():
    cp = ControllerCheckpoint(
        time=61.0,
        target=28.9,
        controller_state={"target": 28.9, "pid": {"integral": 0.0}},
        breaker_state={"state": "closed"},
    )
    back = ControllerCheckpoint.from_dict(cp.to_dict())
    assert back == cp
    assert cp.to_dict()["version"] == CHECKPOINT_VERSION


def test_checkpoint_rejects_unknown_version():
    bad = ControllerCheckpoint(1.0, 2.0, {}).to_dict()
    bad["version"] = CHECKPOINT_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        ControllerCheckpoint.from_dict(bad)


def test_checkpoint_store_is_latest_wins():
    store = CheckpointStore()
    assert store.latest is None
    store.save(ControllerCheckpoint(1.0, 10.0, {}))
    store.save(ControllerCheckpoint(2.0, 20.0, {}))
    assert store.latest.target == 20.0
    assert store.saved == 2
    store.clear()
    assert store.latest is None


def test_framefeedback_snapshot_restore_resumes_identically():
    a = FrameFeedbackController(FS)
    for i in range(5):
        a.update(measurement(time=float(i + 1)))
    snap = a.snapshot_state()
    b = FrameFeedbackController(FS)
    b.restore_state(snap)
    m = measurement(time=6.0, t_rate=4.0)
    assert b.update(m) == pytest.approx(a.update(m))


def test_breaker_snapshot_restore_round_trip():
    br = CircuitBreaker()
    br.record_failure(1.0)
    snap = br.snapshot()
    fresh = CircuitBreaker()
    fresh.restore(snap, now=2.0)
    assert fresh.snapshot() == snap


# ----------------------------------------------------------------------
# measurement validity taxonomy
# ----------------------------------------------------------------------
def test_sanitize_timeout_rate_taxonomy():
    assert sanitize_timeout_rate(5.0, FS) == (5.0, None)
    assert sanitize_timeout_rate(float("nan"), FS) == (
        0.0,
        MeasurementValidity.NAN_TIMEOUT_RATE,
    )
    assert sanitize_timeout_rate(-2.0, FS) == (
        0.0,
        MeasurementValidity.NEGATIVE_TIMEOUT_RATE,
    )
    assert sanitize_timeout_rate(99.0, FS) == (
        FS,
        MeasurementValidity.EXCESSIVE_TIMEOUT_RATE,
    )


def test_guard_rejects_duplicate_and_out_of_order_windows():
    guard = MeasurementGuard(frame_rate=FS)
    assert guard.admit(measurement(time=1.0)).admitted
    dup = guard.admit(measurement(time=1.0))
    assert not dup.admitted
    assert MeasurementValidity.DUPLICATE in dup.flags
    late = guard.admit(measurement(time=0.5))
    assert not late.admitted
    assert MeasurementValidity.OUT_OF_ORDER in late.flags
    # ordering state is pinned to the last *admitted* window
    assert guard.admit(measurement(time=2.0)).admitted


def test_guard_tags_stale_but_still_admits():
    guard = MeasurementGuard(frame_rate=FS, measure_period=1.0, stale_after_periods=3.0)
    assert guard.admit(measurement(time=1.0)).flags == (MeasurementValidity.VALID,)
    stale = guard.admit(measurement(time=9.0))
    assert stale.admitted
    assert MeasurementValidity.STALE in stale.flags


def test_guard_repairs_nan_and_counts_degraded():
    guard = MeasurementGuard(frame_rate=FS)
    decision = guard.admit(measurement(time=1.0, t_rate=float("nan")))
    assert decision.admitted
    assert decision.measurement.timeout_rate == 0.0
    assert guard.degraded_counts() == {"nan_timeout_rate": 1}


# ----------------------------------------------------------------------
# heartbeat
# ----------------------------------------------------------------------
def test_heartbeat_staleness_from_t0_and_after_beats():
    hb = Heartbeat("controller", interval=1.0)
    assert hb.is_stale(3.5, grace_periods=3.0)  # never beat: judged from t=0
    hb.beat(4.0)
    assert not hb.is_stale(6.0, grace_periods=3.0)
    assert hb.is_stale(7.5, grace_periods=3.0)
    assert hb.age(6.0) == 2.0


# ----------------------------------------------------------------------
# component crash/restart on the wired testbed
# ----------------------------------------------------------------------
def test_camera_crash_restart_keeps_frame_ids_continuous():
    rt, _ = runtime()
    rt.env.run(until=5.0)
    source = rt.device.source
    assert source.alive
    source.crash()
    assert not source.alive
    emitted_at_crash = source._next_id
    rt.env.run(until=8.0)
    assert source._next_id == emitted_at_crash  # nothing emitted while dead
    source.restart()
    assert source.alive
    result = rt.run(until=rt.scenario.run_duration + 4.0)  # 3 s downtime slack
    # the stream's tail is deferred past the downtime, never dropped
    assert result.qos.total_frames == rt.device.config.total_frames


def test_server_crash_drops_queue_and_submissions_silently():
    rt, _ = runtime()
    rt.env.run(until=5.0)
    server = rt.server
    assert server.service_alive
    server.crash()
    assert not server.service_alive
    before = server.stats.dropped_on_crash
    rt.env.run(until=8.0)
    assert server.stats.dropped_on_crash > before  # arrivals land on a dead host
    server.restart()
    assert server.service_alive
    rt.run()


def test_abort_inflight_cancels_pending_timers():
    rt, _ = runtime()
    env = rt.env
    stats = env.enable_stats()
    env.run(until=10.0)
    offload = rt.device.offload
    assert offload._outstanding  # frames genuinely in flight at 30 fps
    before = stats.events_cancelled
    dropped = offload.abort_inflight()
    assert dropped > 0
    assert offload.aborted == dropped
    assert not offload._outstanding
    assert stats.events_cancelled > before  # watchdog timers retired
    rt.run()  # late responses to settled records must be harmless


# ----------------------------------------------------------------------
# supervisor: checkpoints, warm vs cold restore
# ----------------------------------------------------------------------
def test_supervisor_checkpoints_every_measure_tick():
    rt, sup = runtime(supervision=SupervisionConfig())
    rt.env.run(until=10.5)
    assert sup.stats.checkpoints_saved >= 9
    assert sup.store.latest is not None
    assert sup.store.latest.target == pytest.approx(rt.device.splitter.target)


def test_warm_restart_restores_checkpointed_target():
    rt, sup = runtime(total_frames=1200, supervision=SupervisionConfig())
    env = rt.env
    env.run(until=20.0)
    pre = rt.device.splitter.target
    rt.device.crash_measure_loop()
    assert not rt.device.measure_alive
    env.run(until=24.0)
    assert sup.restart_controller() is True
    assert rt.device.measure_alive
    assert rt.device.splitter.target == pytest.approx(sup.store.latest.target)
    assert abs(rt.device.splitter.target - pre) <= 1.0
    assert sup.stats.warm_restarts == 1
    assert sup.restart_controller() is False  # already alive: no-op


def test_cold_restart_falls_back_to_initial_target():
    rt, sup = runtime(
        total_frames=1200, supervision=SupervisionConfig(checkpoint_enabled=False)
    )
    env = rt.env
    env.run(until=20.0)
    assert rt.device.splitter.target > 10.0  # climbed well away from 0
    rt.device.crash_measure_loop()
    env.run(until=24.0)
    assert sup.restart_controller() is True
    assert rt.device.splitter.target == pytest.approx(
        rt.controller.initial_target(FS)
    )
    assert sup.stats.cold_restarts == 1


def test_watchdog_detects_crash_and_records_mttr_on_recovery():
    rt, sup = runtime(total_frames=1200, supervision=SupervisionConfig())
    env = rt.env
    env.run(until=20.0)
    rt.device.crash_measure_loop()
    env.run(until=25.0)
    assert sup.stats.crashes.get("controller") == 1
    sup.restart_controller()
    env.run(until=30.0)
    assert sup.stats.mttr.get("controller")  # settled after the restart
    assert sup.stats.missed_windows >= 1


def test_degraded_telemetry_decays_toward_standing_probe():
    cfg = SupervisionConfig(stale_after_periods=3.0, hold_periods=2.0)
    rt, sup = runtime(total_frames=1800, supervision=cfg)
    env = rt.env
    env.run(until=20.0)
    held = rt.device.splitter.target
    rt.device.crash_measure_loop()
    # silence > stale_after + hold: the decay policy must have acted
    env.run(until=20.0 + 9.0)
    probe = cfg.probe_frac * FS
    assert sup.stats.stale_detections == 1
    assert sup.stats.decay_steps >= 1
    assert probe <= rt.device.splitter.target < held
    # and with enough silence it parks exactly at the probe floor
    env.run(until=60.0)
    assert rt.device.splitter.target == pytest.approx(probe)
