"""Tests for synthetic network trace generators."""

import numpy as np
import pytest

from repro.netem.traces import from_trace, random_walk_schedule, sawtooth_schedule


# ----------------------------------------------------------------------
# from_trace
# ----------------------------------------------------------------------
def test_from_trace_basic():
    sched = from_trace([0.0, 5.0, 10.0], [10.0, 4.0, 1.0], [0.0, 0.07, 0.0])
    assert sched.at(0.0).bandwidth == 10.0
    assert sched.at(7.0).loss == pytest.approx(0.07)
    assert sched.at(12.0).bandwidth == 1.0


def test_from_trace_validation():
    with pytest.raises(ValueError):
        from_trace([0.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        from_trace([0.0], [1.0], [0.0, 0.1])
    with pytest.raises(ValueError):
        from_trace([], [])


# ----------------------------------------------------------------------
# random walk
# ----------------------------------------------------------------------
def test_random_walk_stays_in_range():
    sched = random_walk_schedule(
        duration=300.0,
        rng=np.random.default_rng(0),
        bandwidth_range=(1.0, 10.0),
        volatility=0.5,
    )
    for phase in sched.phases:
        assert 1.0 <= phase.conditions.bandwidth <= 10.0
        assert phase.conditions.loss in (0.0, 0.07)


def test_random_walk_actually_moves():
    sched = random_walk_schedule(duration=200.0, rng=np.random.default_rng(1))
    bws = {p.conditions.bandwidth for p in sched.phases}
    assert len(bws) > 10


def test_random_walk_step_spacing():
    sched = random_walk_schedule(
        duration=20.0, rng=np.random.default_rng(2), step_period=2.0
    )
    starts = sched.change_times
    assert starts == [i * 2.0 for i in range(10)]


def test_random_walk_deterministic_per_seed():
    a = random_walk_schedule(60.0, np.random.default_rng(5))
    b = random_walk_schedule(60.0, np.random.default_rng(5))
    assert [p.conditions for p in a.phases] == [p.conditions for p in b.phases]


def test_random_walk_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        random_walk_schedule(0.0, rng)
    with pytest.raises(ValueError):
        random_walk_schedule(10.0, rng, bandwidth_range=(5.0, 2.0))
    with pytest.raises(ValueError):
        random_walk_schedule(10.0, rng, volatility=-1.0)


def test_random_walk_loss_episodes_occur():
    sched = random_walk_schedule(
        duration=600.0,
        rng=np.random.default_rng(3),
        loss_episode_rate=0.1,
    )
    lossy = sum(1 for p in sched.phases if p.conditions.loss > 0)
    assert lossy > 10


# ----------------------------------------------------------------------
# sawtooth
# ----------------------------------------------------------------------
def test_sawtooth_hits_high_and_low():
    sched = sawtooth_schedule(duration=60.0, period=30.0, high=10.0, low=2.0)
    bws = [p.conditions.bandwidth for p in sched.phases]
    assert max(bws) == pytest.approx(10.0)
    assert min(bws) == pytest.approx(2.0, abs=1.7)  # one step above the floor


def test_sawtooth_is_periodic():
    sched = sawtooth_schedule(duration=60.0, period=30.0, steps_per_ramp=3)
    assert sched.at(5.0).bandwidth == pytest.approx(sched.at(35.0).bandwidth)


def test_sawtooth_validation():
    with pytest.raises(ValueError):
        sawtooth_schedule(0.0)
    with pytest.raises(ValueError):
        sawtooth_schedule(10.0, steps_per_ramp=0)
    with pytest.raises(ValueError):
        sawtooth_schedule(10.0, high=1.0, low=5.0)


# ----------------------------------------------------------------------
# end-to-end: controllers on a drifting network
# ----------------------------------------------------------------------
def test_framefeedback_tracks_random_walk():
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory

    sched = random_walk_schedule(
        60.0, np.random.default_rng(7), bandwidth_range=(2.0, 10.0), volatility=0.3
    )
    result = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=1800),
            network=sched,
            seed=0,
        )
    )
    # stays above the local floor throughout the drift
    assert result.qos.mean_throughput > 12.0
    # and actually uses the good periods (beats local-only on average)
    assert result.qos.mean_throughput > 14.0
