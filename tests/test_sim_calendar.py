"""Calendar-queue prototype (``REPRO_SIM_CALENDAR=1``): same results.

The bucketed calendar queue must be a pure data-structure swap: event
ordering is the exact ``(time, priority, seq)`` key of the binary
heap, so a same-seed run on either structure produces *byte-identical*
transcripts and QoS.  Pinned for the Fig. 3 scenario and the PR-1
chaos scenario (the same pair the fast-vs-slowpath determinism tests
use), plus unit coverage of the calendar's own mechanics: cross-bucket
ordering, lazy cancellation, and compaction.
"""

import heapq

import pytest

from repro.sim import Environment
from repro.sim.calendar import CalendarEnvironment
from repro.sim.events import EventPriority

from tests.test_sim_determinism import _chaos_snapshot, _fig3_snapshot


def test_calendar_flag_reaches_new_environments(monkeypatch):
    assert type(Environment()) is Environment
    monkeypatch.setenv("REPRO_SIM_CALENDAR", "1")
    assert type(Environment()) is CalendarEnvironment
    # explicit construction never depends on the flag
    monkeypatch.delenv("REPRO_SIM_CALENDAR")
    assert type(CalendarEnvironment()) is CalendarEnvironment


def test_fig3_heap_vs_calendar_bit_identical(monkeypatch):
    heap_run = _fig3_snapshot()
    monkeypatch.setenv("REPRO_SIM_CALENDAR", "1")
    calendar_run = _fig3_snapshot()
    assert heap_run == calendar_run


def test_chaos_heap_vs_calendar_bit_identical(monkeypatch):
    heap_run = _chaos_snapshot()
    monkeypatch.setenv("REPRO_SIM_CALENDAR", "1")
    calendar_run = _chaos_snapshot()
    assert heap_run == calendar_run


def test_ordering_matches_heap_kernel_exactly():
    """Pops come out in the heap's (time, priority, seq) order.

    The same workload — ties at one instant, zero-delay re-arms, and
    events far beyond one bucket width — runs on both structures; the
    observed (time, label) sequences must match element-for-element.
    """
    width = CalendarEnvironment.BUCKET_WIDTH

    def workload(env):
        order = []
        env.call_later(5 * width, lambda *_: order.append((env.now, "far")))
        env.call_later(0.5 * width, lambda *_: order.append((env.now, "near")))

        def ticker(env, label):
            yield env.timeout(2 * width)
            order.append((env.now, f"{label}-a"))
            yield env.timeout(0.0)
            order.append((env.now, f"{label}-b"))

        env.process(ticker(env, "first"))
        env.process(ticker(env, "second"))
        env.run()
        return order

    assert workload(CalendarEnvironment()) == workload(Environment())


def test_lazy_cancellation_and_queue_size():
    env = CalendarEnvironment()
    timers = [env.timeout(0.05 * i) for i in range(10)]
    assert env.queue_size() == 10
    for t in timers[::2]:
        t.cancel()
    assert env.queue_size() == 5
    env.run()
    assert env.queue_size() == 0
    # only the live half advanced the clock
    assert env.now == pytest.approx(0.45)


def test_compaction_rebuilds_buckets():
    from repro.sim.core import _COMPACT_DEAD_MIN

    env = CalendarEnvironment()
    n = _COMPACT_DEAD_MIN + 200
    doomed = [env.timeout(1.0 + 0.001 * i) for i in range(n)]
    keeper = env.timeout(5.0)
    for t in doomed:
        t.cancel()
    # the threshold crossing compacted at least once: most tombstones
    # are gone, and the structure's books are consistent
    assert env._dead < n
    assert env.queue_size() == 1
    assert sum(len(b) for b in env._buckets.values()) == env._count
    # an explicit compaction removes the post-threshold stragglers
    env._compact()
    assert env._dead == 0
    assert sum(len(b) for b in env._buckets.values()) == 1
    assert env.peek() == pytest.approx(5.0)
    env.run()
    assert keeper.triggered
    assert env.now == pytest.approx(5.0)


def test_peek_skips_dead_entries_at_front():
    env = CalendarEnvironment()
    first = env.timeout(0.1)
    env.timeout(0.2)
    first.cancel()
    assert env.peek() == pytest.approx(0.2)
    assert env.queue_size() == 1


def test_bucket_heap_invariant_under_reuse():
    """Draining and refilling the same bucket index keeps order sound."""
    env = CalendarEnvironment()
    seen = []

    def pulse(env):
        for i in range(50):
            yield env.timeout(0.001)  # all land in a handful of buckets
            seen.append(round(env.now, 6))

    env.process(pulse(env))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == 50
    assert not env._buckets and not env._bucket_heap


def test_scheduling_twice_is_rejected():
    env = CalendarEnvironment()
    ev = env.timeout(0.1)
    with pytest.raises(RuntimeError):
        env.schedule(ev, priority=EventPriority.NORMAL, delay=0.2)
