"""Integration tests for the experiment harness: shapes of every
table/figure at reduced scale (full scale runs in benchmarks/)."""

import numpy as np
import pytest

from repro.experiments.combined import run_additivity_check, stretched_table_vi
from repro.experiments.energy import run_energy
from repro.experiments.fig2 import gain_label, run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3, run_tradeoff_sweep
from repro.experiments.table4 import ablation_grid, paper_settings_rows, run_table4_ablation


# ----------------------------------------------------------------------
# Fig 2
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig2():
    return run_fig2(duration=60.0, seed=0)


def test_fig2_produces_trace_per_gain(fig2):
    assert len(fig2.traces) == 4
    assert gain_label(0.2, 0.26) in fig2.traces


def test_fig2_paper_gains_backoff_after_loss(fig2):
    """After the 7% loss hits, the tuned controller reduces P_o."""
    trace = fig2.traces[gain_label(0.2, 0.26)]
    before = trace.mean_over(20.0, 27.0)
    after = trace.mean_over(35.0, 60.0)
    assert after < before * 0.75


def test_fig2_paper_gains_reach_fs_before_loss(fig2):
    trace = fig2.traces[gain_label(0.2, 0.26)]
    assert trace.max_over(0.0, 27.0) > 28.0


def test_fig2_sluggish_gains_never_reach_fs(fig2):
    trace = fig2.traces[gain_label(0.05, 0.26)]
    assert trace.max_over(0.0, 27.0) < 25.0


def test_fig2_hot_gains_swing_harder_than_paper_gains(fig2):
    hot = fig2.reports[gain_label(0.4, 0.26)]
    tuned = fig2.reports[gain_label(0.2, 0.26)]
    assert hot.overshoot > tuned.overshoot


def test_fig2_derivative_damps_overshoot(fig2):
    """§III-B: K_D decreases overshoot and improves stability."""
    no_kd = fig2.reports[gain_label(0.2, 0.0)]
    tuned = fig2.reports[gain_label(0.2, 0.26)]
    assert tuned.overshoot <= no_kd.overshoot
    assert tuned.std <= no_kd.std


# ----------------------------------------------------------------------
# Fig 3 (reduced: 1200 frames = 40 s covers first two phases; use full
# schedule timing with a shorter tail via frames)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig3():
    return run_fig3(seed=0, total_frames=4000)


def test_fig3_all_controllers_present(fig3):
    assert set(fig3.runs) == {
        "FrameFeedback",
        "LocalOnly",
        "AlwaysOffload",
        "AllOrNothing",
    }


def test_fig3_good_network_all_offloaders_equal(fig3):
    """Paper: 'Under very high or low network quality periods,
    FrameFeedback and all-or-nothing intervals have equivalent
    throughput.'  (First bw=10 phase, ignoring FF's initial ramp.)"""
    ph = fig3.phases[3]  # the 60-90 s bw=10 recovery phase
    ff = ph.mean_throughput["FrameFeedback"]
    aon = ph.mean_throughput["AllOrNothing"]
    assert ff == pytest.approx(aon, rel=0.15)


def test_fig3_intermediate_network_framefeedback_wins(fig3):
    """Paper: 'under intermediate network conditions, FrameFeedback has
    a higher throughput' — by 50% up to 3x over all-or-nothing."""
    for idx in (1, 4, 5):  # bw=4, bw=10+loss, bw=4+loss
        ph = fig3.phases[idx]
        advantage = ph.advantage_over("FrameFeedback", "AllOrNothing")
        assert advantage > 1.3, f"phase {ph.label}: advantage {advantage}"
        assert ph.winner() == "FrameFeedback"


def test_fig3_dead_network_ff_equals_local(fig3):
    ph = fig3.phases[2]  # bw=1
    assert ph.mean_throughput["FrameFeedback"] == pytest.approx(
        ph.mean_throughput["LocalOnly"], rel=0.1
    )
    assert ph.mean_throughput["AlwaysOffload"] < 2.0


def test_fig3_always_offload_suboptimal_overall(fig3):
    """Paper: 'Clearly, the only-offloading strategy is suboptimal.'"""
    total_ff = fig3.runs["FrameFeedback"].qos.mean_throughput
    total_always = fig3.runs["AlwaysOffload"].qos.mean_throughput
    assert total_ff > total_always


def test_fig3_ff_beats_every_baseline_overall(fig3):
    qos = {name: run.qos.mean_throughput for name, run in fig3.runs.items()}
    best_baseline = max(v for k, v in qos.items() if k != "FrameFeedback")
    assert qos["FrameFeedback"] > best_baseline


# ----------------------------------------------------------------------
# Fig 4
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig4():
    return run_fig4(seed=0, total_frames=4000)


def test_fig4_unloaded_phases_offloaders_saturate(fig4):
    first = fig4.phases[0]
    assert first.mean_throughput["AlwaysOffload"] > 27.0
    last = fig4.phases[-1]
    assert last.mean_throughput["FrameFeedback"] > 25.0


def test_fig4_ff_wins_every_loaded_phase(fig4):
    for ph in fig4.phases[1:-1]:
        assert ph.winner() == "FrameFeedback", f"phase {ph.label}"


def test_fig4_ff_degrades_gracefully_to_local(fig4):
    """At the 150 req/s peak FF holds ~P_l; AlwaysOffload collapses."""
    peak = fig4.phases[4]
    assert peak.mean_throughput["FrameFeedback"] == pytest.approx(13.0, abs=2.5)
    assert peak.mean_throughput["AlwaysOffload"] < 6.0


def test_fig4_ff_fits_offloading_below_saturation(fig4):
    """§IV-E: below saturation the Pi 'can fit in some offloading'."""
    ph90 = fig4.phases[1]
    assert ph90.mean_throughput["FrameFeedback"] > 16.0


def test_fig4_load_ramp_down_recovers(fig4):
    ramp_up_90 = fig4.phases[1].mean_throughput["FrameFeedback"]
    ramp_down_90 = fig4.phases[7].mean_throughput["FrameFeedback"]
    assert ramp_down_90 > 14.0
    assert ramp_up_90 > 14.0


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def test_table2_roundtrip_within_five_percent():
    cells = run_table2(duration=60.0)
    assert len(cells) == 6
    for cell in cells:
        assert cell.relative_error < 0.05, (
            f"{cell.device.display_name}/{cell.model.display_name}: "
            f"{cell.measured_rate} vs {cell.paper_rate}"
        )


def test_table3_rows_in_paper_order():
    rows = run_table3()
    assert [r.display_name for r in rows] == [
        "EfficientNetB0",
        "EfficientNetB4",
        "MobileNetV3Small",
        "MobileNetV3Large",
    ]
    assert rows[0].top1 == pytest.approx(0.771)


def test_table3_tradeoff_monotone():
    sweep = run_tradeoff_sweep()
    by_key = {(p.resolution, p.jpeg_quality): p for p in sweep}
    # more quality at fixed resolution: accuracy and bytes both rise
    lo, hi = by_key[(224, 30.0)], by_key[(224, 95.0)]
    assert hi.estimated_accuracy > lo.estimated_accuracy
    assert hi.bytes_per_frame > lo.bytes_per_frame


def test_table4_settings_rows():
    rows = dict(paper_settings_rows())
    assert rows["K_P"] == "0.2"
    assert rows["K_D"] == "0.26"
    assert rows["K_I"] == "0"


def test_table4_ablation_grid_covers_design_choices():
    grid = ablation_grid()
    assert "paper (Table IV)" in grid
    assert any("integral" in k for k in grid)
    assert any("clamp" in k for k in grid)


@pytest.mark.slow
def test_table4_ablation_paper_settings_competitive():
    rows = run_table4_ablation(seed=0, total_frames=1500)
    by_label = {r.label: r for r in rows}
    paper = by_label["paper (Table IV)"]
    # paper settings within 15% of the best ablation (they were tuned)
    best = max(r.mean_throughput for r in rows)
    assert paper.mean_throughput > 0.85 * best


# ----------------------------------------------------------------------
# energy + combined
# ----------------------------------------------------------------------
def test_energy_reproduces_paper_cpu_numbers():
    res = run_energy(seed=0, total_frames=900)
    assert res.local_cpu == pytest.approx(0.502, abs=0.05)
    assert res.offload_cpu == pytest.approx(0.223, abs=0.05)
    assert res.drop > 0.2


def test_stretched_table_vi_scales_times():
    s = stretched_table_vi(2.0)
    assert s.rate_at(19.9) == 0.0
    assert s.rate_at(20.0) == 90.0
    with pytest.raises(ValueError):
        stretched_table_vi(0.0)


@pytest.mark.slow
def test_combined_stress_additivity():
    """§IV-C: combined stressors 'largely work additively'."""
    t = run_additivity_check(seed=0, total_frames=1500)
    assert t["both"] >= max(t["network"], t["load"]) * 0.8
