"""Kernel fast-path tests: cancellation, sleep reuse, EnvStats, teardown.

These pin the PR-3 optimizations' *semantics*; the determinism of whole
runs under the fast path is pinned separately in
``test_sim_determinism.py``, and throughput in ``BENCH_kernel.json``.
"""

import pytest

from repro.sim import Environment, EnvStats, Interrupt
from repro.sim.core import _COMPACT_DEAD_MIN
from repro.sim.process import _SleepEvent


# ----------------------------------------------------------------------
# Event.cancel + lazy heap deletion
# ----------------------------------------------------------------------
def test_cancelled_timeout_never_fires():
    env = Environment()
    fired = []
    t = env.timeout(1.0)
    t.add_callback(lambda ev: fired.append(ev))
    assert t.cancel() is True
    assert t.cancelled
    env.run()
    assert fired == []
    assert env.now == 0.0  # the dead entry must not advance the clock


def test_cancel_is_idempotent_and_reports_false_after_first():
    env = Environment()
    t = env.timeout(1.0)
    assert t.cancel() is True
    assert t.cancel() is False


def test_cancel_after_processing_returns_false():
    env = Environment()
    t = env.timeout(1.0)
    env.run()
    assert t.processed
    assert t.cancel() is False


def test_cancel_unscheduled_event_is_error():
    env = Environment()
    with pytest.raises(RuntimeError, match="not scheduled"):
        env.event().cancel()


def test_queue_size_counts_only_live_events():
    env = Environment()
    keep = env.timeout(2.0)
    dead = [env.timeout(1.0) for _ in range(5)]
    assert env.queue_size() == 6
    for t in dead:
        t.cancel()
    assert env.queue_size() == 1
    env.run()
    assert keep.processed


def test_peek_skips_cancelled_heads():
    env = Environment()
    dead = env.timeout(1.0)
    env.timeout(3.0)
    dead.cancel()
    assert env.peek() == pytest.approx(3.0)
    assert env.queue_size() == 1  # peek pruned the tombstone


def test_heap_compaction_drops_dead_entries():
    env = Environment(stats=True)
    n = _COMPACT_DEAD_MIN + 10
    timers = [env.timeout(10.0) for _ in range(n)]
    env.timeout(1.0)  # one live event so the heap is never empty
    for t in timers:
        t.cancel()
    assert env.stats.heap_compactions >= 1
    assert env.queue_size() == 1
    # Compaction fired at the threshold crossing; only the handful of
    # cancels after it linger as tombstones, not the full n.
    assert len(env._queue) < 20
    env.run()
    assert env.now == pytest.approx(1.0)


def test_no_compaction_at_exactly_threshold_tombstones():
    """The trigger is strictly ``dead > _COMPACT_DEAD_MIN``: exactly 512
    tombstones must NOT compact; the 513th cancel must."""
    env = Environment(stats=True)
    timers = [env.timeout(10.0) for _ in range(_COMPACT_DEAD_MIN + 1)]
    env.timeout(1.0)  # one live event
    for t in timers[:_COMPACT_DEAD_MIN]:
        t.cancel()
    assert env._dead == _COMPACT_DEAD_MIN
    assert env.stats.heap_compactions == 0
    assert len(env._queue) == _COMPACT_DEAD_MIN + 2  # tombstones linger

    timers[_COMPACT_DEAD_MIN].cancel()  # 513th: crosses the strict bound
    assert env.stats.heap_compactions == 1
    assert env._dead == 0
    assert len(env._queue) == 1  # only the live event survived


def test_no_compaction_while_live_events_dominate_half_heap():
    """Second guard: dead entries must also outnumber the live half
    (``dead * 2 > len(queue)``), so a mostly-live heap is never
    re-heapified early.  600 live + 601 cancellable sits exactly on the
    edge: 600 cancels give ``1200 > 1201`` (False), the 601st gives
    ``1202 > 1201`` (True) and compacts exactly once."""
    live_n = 600
    env = Environment(stats=True)
    doomed = [env.timeout(10.0) for _ in range(live_n + 1)]
    for i in range(live_n):
        env.timeout(1.0 + i * 1e-6)
    for t in doomed[:live_n]:
        t.cancel()
    # 600 dead > 512, yet 600*2 == 1200 is not > 1201 entries: no compact
    assert env._dead == live_n
    assert env.stats.heap_compactions == 0
    assert len(env._queue) == 2 * live_n + 1

    doomed[live_n].cancel()
    assert env.stats.heap_compactions == 1
    assert env._dead == 0
    assert len(env._queue) == live_n
    assert env.queue_size() == live_n
    env.run()
    assert env.stats.events_processed == live_n


def test_events_interleave_correctly_around_cancellations():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(env, 1.0, "a"))
    doomed = env.timeout(1.5)
    env.process(waiter(env, 2.0, "b"))
    doomed.cancel()
    env.run()
    assert order == ["a", "b"]


# ----------------------------------------------------------------------
# call_later
# ----------------------------------------------------------------------
def test_call_later_runs_callback_with_value():
    env = Environment()
    got = []
    env.call_later(2.0, lambda ev: got.append((env.now, ev.value)), value="x")
    env.run()
    assert got == [(2.0, "x")]


def test_call_later_cancel_before_fire():
    env = Environment()
    got = []
    handle = env.call_later(2.0, lambda ev: got.append(ev.value), value="x")
    assert handle.cancel() is True
    env.run()
    assert got == []


def test_call_later_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.call_later(-0.1, lambda ev: None)


# ----------------------------------------------------------------------
# sleep fast path
# ----------------------------------------------------------------------
def test_sleep_behaves_like_timeout():
    env = Environment()
    ticks = []

    def ticker(env):
        for _ in range(5):
            yield env.sleep(0.5)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run()
    assert ticks == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5])


def test_sleep_reuses_one_event_object():
    env = Environment()
    seen = []

    def ticker(env):
        for _ in range(4):
            ev = env.sleep(1.0)
            seen.append(id(ev))
            yield ev

    env.process(ticker(env))
    env.run()
    assert len(set(seen)) == 1  # allocation-free steady state


def test_sleep_outside_process_degrades_to_timeout():
    env = Environment()
    t = env.sleep(1.0)
    env.run()
    assert t.processed
    assert env.now == pytest.approx(1.0)


def test_sleep_event_rejects_extra_waiters():
    env = Environment()

    def sleeper(env):
        ev = env.sleep(1.0)
        with pytest.raises(RuntimeError, match="single-waiter"):
            ev.add_callback(lambda e: None)
        yield ev

    p = env.process(sleeper(env))
    env.run(until=p)


def test_interrupt_during_sleep_cancels_and_allows_resleep():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.sleep(100.0)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.sleep(1.0)  # a fresh timer must replace the tombstone
        log.append(("woke", env.now))

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [("interrupted", 2.0), ("woke", 3.0)]
    assert env.queue_size() == 0


def test_slowpath_env_var_disables_fast_paths(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    env = Environment()
    assert env.slowpath

    def sleeper(env):
        ev = env.sleep(1.0)
        assert type(ev) is not _SleepEvent
        yield ev

    p = env.process(sleeper(env))
    env.run(until=p)
    assert env.now == pytest.approx(1.0)


# ----------------------------------------------------------------------
# run(until=...) teardown + remove_callback identity semantics
# ----------------------------------------------------------------------
def test_tight_run_until_loop_does_not_grow_callback_lists():
    """ScenarioRuntime steps the world one control period at a time."""
    env = Environment()

    def ticker(env):
        while True:
            yield env.sleep(0.1)

    p = env.process(ticker(env))
    for i in range(1, 200):
        env.run(until=i * 0.05)
    # the process is waiting on exactly its own resume callback; 200
    # abandoned stop events must not have left anything behind
    assert p.target is not None
    assert len(p.target.callbacks) == 1


def test_run_until_already_processed_event_returns_value():
    env = Environment()
    t = env.timeout(1.0, "v")
    env.run()
    assert t.processed
    assert env.run(until=t) == "v"


def test_run_until_already_failed_event_raises():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    ev.defuse()
    env.run()
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=ev)


def test_remove_callback_matches_identity():
    env = Environment()
    ev = env.event()
    calls = []

    def cb(event):
        calls.append(event)

    ev.add_callback(cb)
    ev.remove_callback(lambda e: None)  # foreign callable: no-op
    assert ev.callbacks == [cb]
    ev.remove_callback(cb)
    assert ev.callbacks == []


# ----------------------------------------------------------------------
# Condition incremental collection
# ----------------------------------------------------------------------
def test_condition_values_keep_construction_order():
    env = Environment()

    def proc(env):
        a = env.timeout(3.0, "a")  # fires last
        b = env.timeout(1.0, "b")
        c = env.timeout(2.0, "c")
        results = yield env.all_of([a, b, c])
        return list(results.values())

    p = env.process(proc(env))
    # construction order, not firing order (b, c, a)
    assert env.run(until=p) == ["a", "b", "c"]


def test_any_of_includes_preprocessed_events_in_order():
    env = Environment()

    def proc(env):
        early1 = env.timeout(1.0, "e1")
        early2 = env.timeout(1.5, "e2")
        yield env.timeout(2.0)  # both already processed now
        late = env.timeout(5.0, "late")
        results = yield env.any_of([late, early1, early2])
        return list(results.values())

    p = env.process(proc(env))
    # fires immediately; value covers *all* fired events, in
    # construction order of the condition's event list
    assert env.run(until=p) == ["e1", "e2"]
    assert env.now == pytest.approx(2.0)


def test_any_of_failed_event_propagates():
    env = Environment()

    def proc(env):
        ev = env.event()
        ev.fail(RuntimeError("inner"))
        with pytest.raises(RuntimeError, match="inner"):
            yield env.any_of([ev, env.timeout(5.0)])
        return "handled"

    p = env.process(proc(env))
    assert env.run(until=p) == "handled"


# ----------------------------------------------------------------------
# EnvStats
# ----------------------------------------------------------------------
def test_stats_disabled_by_default():
    assert Environment().stats is None


def test_stats_counts_lifecycle():
    env = Environment(stats=True)

    def ticker(env):
        for _ in range(3):
            yield env.sleep(1.0)

    env.process(ticker(env), name="tick")
    doomed = env.timeout(10.0)
    doomed.cancel()
    env.run()
    s = env.stats
    assert isinstance(s, EnvStats)
    assert s.events_cancelled == 1
    assert s.events_skipped == 1
    assert s.events_processed == s.events_scheduled - 1  # the tombstone
    assert s.events_by_process["tick"] == 3
    assert s.peak_heap_size >= 1
    d = s.as_dict()
    assert d["events_cancelled"] == 1
    assert "tick" in d["events_by_process"]
    assert "processed" in s.summary()


def test_enable_stats_mid_life():
    env = Environment()
    assert env.stats is None
    s = env.enable_stats()
    assert env.stats is s
    assert env.enable_stats() is s
    env.timeout(1.0)
    env.run()
    assert s.events_processed == 1


def test_capture_env_stats_sink():
    from repro.sim import core as sim_core

    sink = []
    sim_core.capture_env_stats(sink)
    try:
        env = Environment()
        assert env.stats is not None
        env.timeout(1.0)
        env.run()
    finally:
        sim_core.capture_env_stats(None)
    assert len(sink) == 1
    assert sink[0].events_processed == 1
    assert Environment().stats is None  # sink cleared


def test_kernel_probe_tolerates_cancelled_heads():
    from repro.sim.debug import KernelProbe

    env = Environment()
    dead = env.timeout(0.5)
    env.timeout(1.0)
    dead.cancel()
    with KernelProbe(env) as probe:
        env.run()
    assert probe.stats.events_processed == 1
    assert probe.stats.by_type == {"Timeout": 1}
