"""Tests for the tc/NetEm command generator."""

import pytest

from repro.netem.commands import schedule_script, tc_commands, unit_equivalence_note
from repro.netem.link import LinkConditions
from repro.workloads.schedules import table_v_schedule


def test_rate_limit_reflects_bandwidth():
    cmds = tc_commands(LinkConditions(bandwidth=10.0), interface="eth0")
    assert len(cmds) == 2
    assert "tbf rate 3200kbit" in cmds[0]
    assert "dev eth0" in cmds[0]


def test_lossless_has_no_loss_clause():
    cmds = tc_commands(LinkConditions(loss=0.0))
    assert "loss" not in cmds[1]
    assert "delay 8.0ms" in cmds[1]


def test_iid_loss_clause():
    cmds = tc_commands(LinkConditions(loss=0.07))
    assert "loss 7%" in cmds[1]


def test_bursty_loss_uses_gemodel():
    cmds = tc_commands(LinkConditions(loss=0.07, loss_burst=10.0))
    assert "gemodel" in cmds[1]
    assert "10.000%" in cmds[1]  # p_bad_to_good = 1/burst


def test_jitter_renders_normal_distribution():
    cmds = tc_commands(LinkConditions(jitter_sigma=0.003))
    assert "3.0ms distribution normal" in cmds[1]
    flat = tc_commands(LinkConditions(jitter_sigma=0.0))
    assert "distribution" not in flat[1]


def test_replace_uses_change_verb():
    cmds = tc_commands(LinkConditions(), replace=True)
    assert all("qdisc change" in c for c in cmds)


def test_schedule_script_replays_table_v():
    script = schedule_script(table_v_schedule(), interface="wlan1")
    lines = script.splitlines()
    assert lines[0] == "#!/bin/sh"
    assert script.count("sleep") == 5  # six phases, five gaps
    assert "sleep 30" in script
    assert "sleep 15" in script
    assert "loss 7%" in script
    assert "dev wlan1" in script
    # first phase adds, later phases change
    assert script.count("qdisc add") == 2
    assert script.count("qdisc change") == 10


def test_unit_note_mentions_calibration():
    assert "320 kbit/s" in unit_equivalence_note()
