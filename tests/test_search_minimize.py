"""Delta-debugging minimizer tests (ISSUE 6 tentpole)."""

import pytest

from repro.search import EvalParams, ScenarioSpec, evaluate_spec, minimize

PARAMS = EvalParams()

#: a known controller-breaking flash crowd (from the committed goldens)
#: padded with incidental junk the minimizer should strip
PADDED = {
    "controller": "FrameFeedback",
    "seed": 52330,
    "device": {"total_frames": 675},
    "load": {"kind": "flash_crowd", "at": 17.399, "base_rate": 23.108,
             "decay": 6.209, "hold": 7.5, "peak_rate": 170.0, "ramp": 1.361},
    # incidental: a tiny camera stall long before the crowd arrives
    "faults": [{"kind": "camera_stall", "windows": [[1.0, 0.5]]}],
}


@pytest.fixture(scope="module")
def padded_finding():
    result = evaluate_spec(ScenarioSpec.from_dict(PADDED), PARAMS)
    assert result.failing(PARAMS), "fixture scenario must be a failing finding"
    return result


def test_minimize_strips_incidental_faults(padded_finding):
    mr = minimize(padded_finding, PARAMS)
    assert mr.minimized.failing(PARAMS)
    assert mr.minimized.spec.faults == [], (
        f"incidental fault survived minimization: {mr.steps}"
    )
    assert any("drop fault" in s for s in mr.steps)
    assert mr.evaluations > 0


def test_minimize_is_deterministic(padded_finding):
    first = minimize(padded_finding, PARAMS)
    second = minimize(padded_finding, PARAMS)
    assert first.minimized.spec.to_json() == second.minimized.spec.to_json()
    assert first.steps == second.steps
    assert first.evaluations == second.evaluations


def test_minimized_result_is_no_larger(padded_finding):
    mr = minimize(padded_finding, PARAMS)
    assert len(mr.minimized.spec.to_json()) <= len(padded_finding.spec.to_json())
    assert mr.original is padded_finding


def test_minimize_rejects_non_failing_input():
    benign = evaluate_spec(
        ScenarioSpec.from_dict({"device": {"total_frames": 300}}), PARAMS
    )
    assert not benign.failing(PARAMS)
    with pytest.raises(ValueError, match="failing"):
        minimize(benign, PARAMS)


def test_minimize_respects_evaluation_budget(padded_finding):
    mr = minimize(padded_finding, PARAMS, max_evaluations=2)
    assert mr.evaluations <= 2
    assert mr.minimized.failing(PARAMS)
