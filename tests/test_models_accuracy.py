"""Unit + property tests for the §II-D accuracy estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import MODEL_ZOO, AccuracyModel, estimate_accuracy
from repro.models.zoo import EFFICIENTNET_B4, MOBILENET_V3_SMALL


def test_native_point_returns_table3_value():
    for spec in MODEL_ZOO.values():
        est = estimate_accuracy(spec, resolution=spec.input_resolution, jpeg_quality=95)
        assert est == pytest.approx(spec.top1_accuracy, abs=1e-9)


def test_zero_resolution_means_native():
    est = estimate_accuracy(MOBILENET_V3_SMALL, resolution=0, jpeg_quality=95)
    assert est == pytest.approx(MOBILENET_V3_SMALL.top1_accuracy)


def test_larger_resolution_improves_accuracy():
    """§II-D: 'using a larger resolution ... could improve accuracy'."""
    base = estimate_accuracy(MOBILENET_V3_SMALL, 224, 95)
    bigger = estimate_accuracy(MOBILENET_V3_SMALL, 448, 95)
    assert bigger > base


def test_lighter_compression_improves_accuracy():
    """§II-D: 'Using lighter compression can improve accuracy.'"""
    heavy = estimate_accuracy(MOBILENET_V3_SMALL, 224, 20)
    light = estimate_accuracy(MOBILENET_V3_SMALL, 224, 90)
    assert light > heavy


def test_tiny_resolution_costs_a_lot():
    est = estimate_accuracy(MOBILENET_V3_SMALL, 56, 95)
    assert est < MOBILENET_V3_SMALL.top1_accuracy - 0.2


def test_quality_above_knee_is_free():
    a = estimate_accuracy(MOBILENET_V3_SMALL, 224, 80)
    b = estimate_accuracy(MOBILENET_V3_SMALL, 224, 100)
    assert a == pytest.approx(b)


def test_b4_native_resolution_is_380():
    est = estimate_accuracy(EFFICIENTNET_B4, 380, 95)
    assert est == pytest.approx(EFFICIENTNET_B4.top1_accuracy)


def test_invalid_inputs_rejected():
    model = AccuracyModel(MOBILENET_V3_SMALL)
    with pytest.raises(ValueError):
        model.estimate(resolution=8)
    with pytest.raises(ValueError):
        model.estimate(jpeg_quality=0)


@given(
    res=st.integers(min_value=16, max_value=2048),
    quality=st.floats(min_value=1, max_value=100),
)
@settings(max_examples=200, deadline=None)
def test_estimate_always_a_probability(res, quality):
    est = estimate_accuracy(MOBILENET_V3_SMALL, res, quality)
    assert 0.0 <= est <= 1.0


@given(
    res=st.integers(min_value=32, max_value=1024),
    q_lo=st.floats(min_value=1, max_value=99),
    dq=st.floats(min_value=0.1, max_value=50),
)
@settings(max_examples=200, deadline=None)
def test_estimate_monotone_in_quality(res, q_lo, dq):
    q_hi = min(q_lo + dq, 100.0)
    lo = estimate_accuracy(MOBILENET_V3_SMALL, res, q_lo)
    hi = estimate_accuracy(MOBILENET_V3_SMALL, res, q_hi)
    assert hi >= lo - 1e-12


@given(res=st.integers(min_value=16, max_value=1024))
@settings(max_examples=200, deadline=None)
def test_estimate_monotone_in_resolution(res):
    lo = estimate_accuracy(MOBILENET_V3_SMALL, res, 95)
    hi = estimate_accuracy(MOBILENET_V3_SMALL, res + 16, 95)
    assert hi >= lo - 1e-12
