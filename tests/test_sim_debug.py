"""Tests for the kernel introspection probe."""

import pytest

from repro.sim import Environment
from repro.sim.debug import KernelProbe


def workload(env, n=50):
    def proc(env):
        for _ in range(n):
            yield env.timeout(0.1)

    env.process(proc(env))


def test_probe_counts_events():
    env = Environment()
    workload(env)
    with KernelProbe(env) as probe:
        env.run()
    assert probe.stats.events_processed > 50
    assert probe.stats.by_type["Timeout"] >= 50
    assert probe.stats.max_heap_depth >= 1
    assert len(probe.stats.recent) > 0


def test_probe_detaches_cleanly():
    env = Environment()
    workload(env, n=5)
    with KernelProbe(env) as probe:
        env.run(until=0.25)
    counted = probe.stats.events_processed
    env.run()  # outside the probe: no further counting
    assert probe.stats.events_processed == counted


def test_double_attach_rejected():
    env = Environment()
    probe = KernelProbe(env)
    with probe:
        with pytest.raises(RuntimeError):
            probe.__enter__()


def test_summary_is_human_readable():
    env = Environment()
    workload(env, n=10)
    with KernelProbe(env) as probe:
        env.run()
    text = probe.stats.summary()
    assert "events" in text and "Timeout" in text


def test_probe_does_not_perturb_results():
    """Instrumentation must be observation-only."""

    def run(instrument):
        env = Environment()
        out = []

        def proc(env):
            for i in range(20):
                yield env.timeout(0.05)
                out.append((i, env.now))

        env.process(proc(env))
        if instrument:
            with KernelProbe(env):
                env.run()
        else:
            env.run()
        return out

    assert run(True) == run(False)
