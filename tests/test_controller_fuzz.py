"""Cross-controller fuzz: no controller may ever crash or emit an
out-of-range target, for ANY measurement sequence.

This is the safety net behind the device's ``splitter.set_target``
clamp: the clamp exists, but controllers should already be well
behaved, and a controller raising mid-run would kill the measurement
loop.

The lineup is drawn from the zoo registry
(:func:`repro.control.zoo.zoo_controllers`), not a hardcoded list, so
every controller added to the zoo is fuzzed automatically — a new
member silently escaping this net was exactly the staleness gap the
registry closes.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.base import Measurement
from repro.control.zoo import zoo_controllers
from repro.device.config import DeviceConfig

FS = 30.0
_CONFIG = DeviceConfig()
assert _CONFIG.frame_rate == FS

#: name -> zero-arg factory, one per registered zoo member
FACTORIES = {
    name: (lambda factory=factory: factory(_CONFIG))
    for name, factory in sorted(zoo_controllers().items())
}

measurement_strategy = st.builds(
    dict,
    t_avg=st.floats(min_value=0.0, max_value=FS),
    t_last=st.floats(min_value=0.0, max_value=FS),
    rate=st.floats(min_value=0.0, max_value=FS),
    rtt=st.one_of(st.none(), st.floats(min_value=0.0, max_value=2.0)),
    probe=st.one_of(st.none(), st.booleans()),
)


@given(
    name=st.sampled_from(sorted(FACTORIES)),
    raw=st.lists(measurement_strategy, min_size=1, max_size=60),
)
@settings(max_examples=200, deadline=None)
def test_any_measurement_sequence_yields_bounded_targets(name, raw):
    controller = FACTORIES[name]()
    target = controller.initial_target(FS)
    assert 0.0 <= target <= FS
    for i, r in enumerate(raw):
        m = Measurement(
            time=float(i),
            frame_rate=FS,
            offload_target=target,
            offload_rate=r["rate"],
            offload_success_rate=max(0.0, r["rate"] - r["t_last"]),
            timeout_rate=r["t_avg"],
            timeout_rate_last=r["t_last"],
            local_rate=13.0,
            throughput=13.0,
            probe_ok=r["probe"],
            rtt_mean=r["rtt"],
            rtt_p95=r["rtt"],
        )
        target = controller.update(m)
        assert isinstance(target, float) or isinstance(target, int)
        assert math.isfinite(target)
        assert 0.0 <= target <= FS + 1e-9


@given(
    name=st.sampled_from(sorted(FACTORIES)),
    raw=st.lists(measurement_strategy, min_size=1, max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_reset_restores_initial_behaviour(name, raw):
    """After reset(), a controller's first decisions repeat exactly."""
    factory = FACTORIES[name]

    def drive(controller):
        target = controller.initial_target(FS)
        out = []
        for i, r in enumerate(raw):
            m = Measurement(
                time=float(i),
                frame_rate=FS,
                offload_target=target,
                offload_rate=r["rate"],
                offload_success_rate=0.0,
                timeout_rate=r["t_avg"],
                timeout_rate_last=r["t_last"],
                local_rate=13.0,
                throughput=13.0,
                probe_ok=r["probe"],
                rtt_mean=r["rtt"],
                rtt_p95=r["rtt"],
            )
            target = controller.update(m)
            out.append(target)
        return out

    c = factory()
    first = drive(c)
    c.reset()
    second = drive(c)
    assert first == second
