"""Oracle regret edge cases (ISSUE 10 satellite).

The tournament's headline metric is deadline-violation regret against
the clairvoyant oracle at the same seed.  That metric is only
trustworthy at the edges:

* an **empty scenario** (zero-duration stream) must score, not crash,
  and carry an all-zero QoS;
* an **all-frames-infeasible** scenario (deadline far below any
  achievable end-to-end latency) must make the oracle offload nothing
  — zero timeouts, zero violation rate — so every probing controller
  shows non-negative regret against it;
* **oracle ties** — the oracle raced against itself must have regret
  *exactly* 0.0 (not merely small) at every seed, which is what makes
  same-seed scoring sound.
"""

import pytest

from repro.experiments.tournament import TournamentConfig, run_tournament
from repro.search.language import ScenarioSpec
from repro.search.runner import QOS_DECIMALS, qos_summary, run_spec

LOSSY = [[0.0, 10.0, 2.0]]


def _qos(spec: ScenarioSpec, controller: str):
    return qos_summary(run_spec(spec, controller=controller).run.qos)


# ----------------------------------------------------------------------
# empty scenario
# ----------------------------------------------------------------------
def test_empty_scenario_scores_all_zero():
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 30}, "duration": 0.0,
         "network": LOSSY, "seed": 0}
    )
    oracle = _qos(spec, "Oracle")
    controller = _qos(spec, "FrameFeedback")
    assert oracle["total_frames"] == 0
    assert oracle["mean_violation_rate"] == 0.0
    assert oracle["mean_throughput"] == 0.0
    # regret on the empty scenario is exactly zero for everyone
    assert controller["mean_violation_rate"] - oracle["mean_violation_rate"] == 0.0


# ----------------------------------------------------------------------
# all frames infeasible
# ----------------------------------------------------------------------
def test_infeasible_deadline_makes_oracle_abstain():
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 150, "deadline": 0.001},
         "network": LOSSY, "seed": 0}
    )
    oracle = _qos(spec, "Oracle")
    # clairvoyance means never attempting a frame that cannot land
    assert oracle["timeouts"] == 0
    assert oracle["mean_violation_rate"] == 0.0


@pytest.mark.parametrize("controller", ["FrameFeedback", "TokenBucket", "AIMD"])
def test_infeasible_deadline_regret_is_nonnegative(controller):
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 150, "deadline": 0.001},
         "network": LOSSY, "seed": 0}
    )
    oracle = _qos(spec, "Oracle")
    cell = _qos(spec, controller)
    regret = round(
        cell["mean_violation_rate"] - oracle["mean_violation_rate"],
        QOS_DECIMALS,
    )
    assert regret >= 0.0, (
        f"{controller}: negative regret {regret} against an abstaining oracle"
    )


# ----------------------------------------------------------------------
# oracle ties: regret vs itself is exactly 0 at every seed
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 7, 1234])
def test_oracle_regret_against_itself_is_exactly_zero(seed):
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 240}, "network": LOSSY, "seed": seed}
    )
    first = _qos(spec, "Oracle")
    second = _qos(spec, "Oracle")
    assert first == second
    assert first["mean_violation_rate"] - second["mean_violation_rate"] == 0.0


def test_tournament_never_ranks_the_oracle():
    """The scoring reference cannot be a contestant (it would tie at 0)."""
    config = TournamentConfig(
        frames=60,
        controllers=("Oracle", "FrameFeedback", "LocalOnly"),
        scenarios=("lossy_link",),
        workers=1,
    )
    assert config.lineup() == ["FrameFeedback", "LocalOnly"]
    result = run_tournament(config)
    assert all(s.controller != "Oracle" for s in result.ranking)
    assert set(result.oracle_qos) == {"lossy_link"}
