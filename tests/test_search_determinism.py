"""Search determinism (ISSUE 6 satellite).

``repro search --seed N --budget K`` is a pure function of its
arguments: running it twice must yield byte-identical best-scenario
JSON and identical violation scores — regardless of worker count,
because the process pool returns results in submission order and all
randomness flows from one seeded generator.
"""

import json

from repro import cli
from repro.search import SearchConfig, run_search

SMALL = dict(seed=5, budget=6, round_size=3, workers=1)


def test_run_search_twice_is_identical():
    first = run_search(SearchConfig(**SMALL))
    second = run_search(SearchConfig(**SMALL))
    assert [e.spec.to_json() for e in first.evaluations] == [
        e.spec.to_json() for e in second.evaluations
    ]
    assert [e.score for e in first.evaluations] == [
        e.score for e in second.evaluations
    ]
    assert [e.feasible for e in first.evaluations] == [
        e.feasible for e in second.evaluations
    ]
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )


def test_worker_count_does_not_change_the_result():
    serial = run_search(SearchConfig(**{**SMALL, "workers": 1}))
    pooled = run_search(SearchConfig(**{**SMALL, "workers": 3}))
    assert [e.spec.to_json() for e in serial.evaluations] == [
        e.spec.to_json() for e in pooled.evaluations
    ]
    assert [e.score for e in serial.evaluations] == [
        e.score for e in pooled.evaluations
    ]


def test_cli_search_output_is_byte_identical(capsys):
    argv = ["search", "--seed", "5", "--budget", "4", "--goldens", "1",
            "--workers", "1", "--json"]
    cli.main(argv)
    first = capsys.readouterr().out
    cli.main(argv)
    second = capsys.readouterr().out
    assert first == second
    doc = json.loads(first)
    assert doc["seed"] == 5 and doc["budget"] == 4
    assert doc["evaluated"] <= 4


def test_best_ordering_is_stable():
    result = run_search(SearchConfig(**SMALL))
    scores = [e.score for e in result.best]
    assert scores == sorted(scores, reverse=True)
    # failures are exactly the feasible evaluations over the threshold
    for e in result.failures:
        assert e.feasible
        assert e.score >= result.config.params.fail_threshold
