"""``Process.kill`` semantics: crash a sim process without cleanup.

The supervision layer's kernel primitive.  These pin the three things a
kill must guarantee: the pending sleep timer is *cancelled* (not
orphaned — EnvStats cancel counts stay exact and the tombstone can
never resume a dead process), joiners observe the death as a ``None``
result, and stray events addressed to the corpse are swallowed.  Both
the fast path and ``REPRO_SIM_SLOWPATH=1`` are covered.
"""

import pytest

from repro.sim import Environment


def sleeper(env, log):
    while True:
        yield env.sleep(1.0)
        log.append(env.now)


# ----------------------------------------------------------------------
# fast path: the reusable _SleepEvent is cancelled, counters exact
# ----------------------------------------------------------------------
def test_kill_cancels_pending_sleep_and_counts_it():
    env = Environment(stats=True)
    log = []
    p = env.process(sleeper(env, log))
    env.run(until=2.5)
    before = env.stats.events_cancelled
    p.kill()
    assert env.stats.events_cancelled == before + 1
    env.run(until=10.0)
    assert log == [1.0, 2.0]  # no tick after the kill
    assert p.triggered
    assert not p.is_alive


def test_killed_process_never_resumes_under_slowpath(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    env = Environment()
    assert env.slowpath
    log = []
    p = env.process(sleeper(env, log))
    env.run(until=2.5)
    p.kill()
    env.run(until=10.0)
    assert log == [1.0, 2.0]
    assert p.triggered
    assert not p.is_alive


def test_kill_mid_run_via_timer():
    """Killing from a call_later timer (the injector idiom) works."""
    env = Environment(stats=True)
    log = []
    p = env.process(sleeper(env, log))
    env.call_later(3.5, lambda ev: p.kill())
    env.run(until=10.0)
    assert log == [1.0, 2.0, 3.0]


# ----------------------------------------------------------------------
# joiners and value
# ----------------------------------------------------------------------
def test_kill_wakes_joiners_with_none():
    env = Environment()
    victim = env.process(sleeper(env, []))
    seen = []

    def joiner():
        seen.append((yield victim))

    env.process(joiner())
    env.call_later(1.5, lambda ev: victim.kill())
    env.run(until=5.0)
    assert seen == [None]


def test_kill_closes_generator_without_cleanup_handlers():
    """The generator is closed where it stands: GeneratorExit, no resume."""
    env = Environment()
    states = []

    def fragile():
        try:
            yield env.sleep(10.0)
            states.append("woke")
        except GeneratorExit:
            states.append("closed")
            raise

    p = env.process(fragile())
    env.call_later(1.0, lambda ev: p.kill())
    env.run(until=20.0)
    assert states == ["closed"]


# ----------------------------------------------------------------------
# error cases + stray events
# ----------------------------------------------------------------------
def test_kill_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.sleep(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError, match="terminated"):
        p.kill()


def test_kill_self_is_error():
    env = Environment()
    holder = {}
    failures = []

    def suicidal():
        yield env.sleep(1.0)
        try:
            holder["proc"].kill()
        except RuntimeError:
            failures.append("refused")
        yield env.sleep(1.0)

    holder["proc"] = env.process(suicidal())
    env.run()
    assert failures == ["refused"]


def test_stray_failed_event_to_killed_process_is_defused():
    """A failure dispatched to a corpse must not crash the kernel."""
    env = Environment()
    shared = env.event()

    def waiter():
        yield shared

    p = env.process(waiter())
    env.run(until=0.5)
    p.kill()
    boom = env.event()
    boom.fail(RuntimeError("late failure"))
    p._resume(boom)  # simulate an in-flight dispatch to the corpse
    assert boom._defused
    env.run(until=2.0)  # and the kernel keeps running


def test_kill_detaches_from_shared_event_without_cancelling_it():
    """Non-sleep targets may have other waiters: detach, don't cancel."""
    env = Environment()
    shared = env.timeout(2.0)
    woke = []

    def waiter(name):
        yield shared
        woke.append(name)

    p1 = env.process(waiter("a"))
    env.process(waiter("b"))
    env.run(until=1.0)
    p1.kill()
    env.run(until=5.0)
    assert woke == ["b"]  # survivor still woken by the shared event
