"""Tests for multi-device fleet scenarios."""

import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.fleet import (
    FleetMember,
    FleetScenario,
    homogeneous_fleet,
    run_fleet,
)
from repro.netem.link import LinkConditions
from repro.server.batching import BatchPolicy
from repro.workloads.loadgen import LoadSchedule


def ff_factory(config):
    return FrameFeedbackController(config.frame_rate)


def test_fleet_validation():
    with pytest.raises(ValueError):
        FleetScenario(members=[], controller_factory=ff_factory)
    dup = [
        FleetMember(DeviceConfig(name="same", total_frames=10)),
        FleetMember(DeviceConfig(name="same", total_frames=10)),
    ]
    with pytest.raises(ValueError):
        FleetScenario(members=dup, controller_factory=ff_factory)
    with pytest.raises(ValueError):
        homogeneous_fleet(0)


def test_three_pi_fleet_like_the_paper():
    """§IV-A: three Pis streaming concurrently to one server."""
    scenario = FleetScenario(
        members=homogeneous_fleet(3, total_frames=900),
        controller_factory=ff_factory,
        seed=0,
    )
    result = run_fleet(scenario)
    assert len(result.devices) == 3
    # server has ample capacity for 90 fps total: everyone saturates
    for name, qos in result.devices.items():
        assert qos.mean_throughput > 22.0, name
    assert result.jain_fairness() > 0.99
    assert result.server_stats.received > 0


def test_fleet_members_have_independent_links():
    members = [
        FleetMember(
            DeviceConfig(name="good", total_frames=900),
            link=LinkConditions(bandwidth=10.0),
        ),
        FleetMember(
            DeviceConfig(name="bad", total_frames=900),
            link=LinkConditions(bandwidth=1.0),
        ),
    ]
    result = run_fleet(FleetScenario(members=members, controller_factory=ff_factory))
    assert result.devices["good"].mean_throughput > 22.0
    assert result.devices["bad"].mean_throughput == pytest.approx(13.0, abs=2.0)


def test_fleet_determinism():
    scenario = FleetScenario(
        members=homogeneous_fleet(2, total_frames=600),
        controller_factory=ff_factory,
        seed=4,
    )
    a = run_fleet(scenario)
    b = run_fleet(scenario)
    assert a.throughputs() == b.throughputs()


def test_large_fleet_saturates_server_gracefully():
    """12 devices offer 360 fps to a ~140 fps server: every member
    still keeps P >= ~P_l because its controller sheds load."""
    scenario = FleetScenario(
        members=homogeneous_fleet(12, total_frames=1200),
        controller_factory=ff_factory,
        seed=0,
    )
    result = run_fleet(scenario)
    throughputs = result.throughputs()
    assert all(v > 11.0 for v in throughputs.values())
    # aggregate offloading stays near server capacity, not above
    assert result.gpu_utilization > 0.7


def test_fair_policy_raises_fairness_index_under_contention():
    def contended(policy):
        scenario = FleetScenario(
            members=homogeneous_fleet(10, total_frames=1200),
            controller_factory=ff_factory,
            load=LoadSchedule.from_rows([(0, 60)]),
            batch_policy=policy,
            seed=2,
        )
        return run_fleet(scenario)

    fifo = contended(BatchPolicy.FIFO)
    fair = contended(BatchPolicy.FAIR)
    assert fair.jain_fairness() >= fifo.jain_fairness() - 0.02
    # both policies keep the fleet above the local floor
    assert min(fair.throughputs().values()) > 11.0


def test_fleet_run_duration_covers_longest_member():
    members = [
        FleetMember(DeviceConfig(name="short", total_frames=300)),
        FleetMember(DeviceConfig(name="long", total_frames=900)),
    ]
    scenario = FleetScenario(members=members, controller_factory=ff_factory)
    assert scenario.run_duration == pytest.approx(900 / 30.0 + 2.0)
