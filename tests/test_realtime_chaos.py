"""Tests for wall-clock chaos: fault lowering, harness, invariants.

The full chaos run at the bottom is the tentpole check — a real
gateway killed and restarted mid-burst, judged by the same invariant
rows the simulator's chaos harness emits.  It is sized to ~4 s of wall
clock; everything above it is sub-second.
"""

import asyncio

import pytest

from repro.faults.windows import FaultTimeline
from repro.realtime.chaos import (
    KNOB_DEFAULTS,
    STALL_UNIT,
    GatewayHarness,
    WallClockInjector,
    kill_timeline,
    lower_faults,
    run_realtime_chaos_async,
)
from repro.realtime.client import AsyncSocketRemote
from repro.realtime.gateway import GatewayConfig
from repro.search.language import ScenarioSpec, SpecError


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# fault lowering
# ----------------------------------------------------------------------


def test_edges_interleaves_on_off():
    timeline = FaultTimeline.from_rows([(1.0, 2.0), (5.0, 1.0)])
    assert timeline.edges() == [(1.0, True), (3.0, False), (5.0, True), (6.0, False)]


def test_lower_kill_fault():
    actions = lower_faults(
        [{"kind": "server_crash", "windows": [[2.0, 1.5]]}]
    )
    assert [(a.at, a.kind) for a in actions] == [(2.0, "kill"), (3.5, "restart")]


def test_lower_knob_faults():
    actions = lower_faults(
        [
            {"kind": "server_slowdown", "factor": 5.0, "windows": [[1.0, 1.0]]},
            {"kind": "latency_spike", "extra_delay": 0.04, "windows": [[3.0, 1.0]]},
            {"kind": "bandwidth_collapse", "factor": 6.0, "windows": [[5.0, 1.0]]},
        ]
    )
    by_time = [(a.at, a.kind, a.knob, a.value) for a in actions]
    assert by_time == [
        (1.0, "set", "slowdown_factor", 5.0),
        (2.0, "clear", "slowdown_factor", 0.0),
        (3.0, "set", "extra_latency", 0.04),
        (4.0, "clear", "extra_latency", 0.0),
        (5.0, "set", "read_stall", pytest.approx(5.0 * STALL_UNIT)),
        (6.0, "clear", "read_stall", 0.0),
    ]


def test_unmappable_kind_raises_spec_error():
    with pytest.raises(SpecError, match="camera_stall"):
        lower_faults([{"kind": "camera_stall", "windows": [[1.0, 1.0]]}])


def test_overlapping_kill_windows_rejected():
    with pytest.raises(SpecError, match="overlapping kill"):
        lower_faults(
            [
                {"kind": "server_crash", "windows": [[1.0, 2.0]]},
                {"kind": "server_kill", "windows": [[2.0, 2.0]]},
            ]
        )


def test_kill_timeline_unions_kill_kinds_only():
    timeline = kill_timeline(
        [
            {"kind": "server_crash", "windows": [[1.0, 1.0]]},
            {"kind": "server_slowdown", "factor": 2.0, "windows": [[0.0, 9.0]]},
            {"kind": "server_kill", "windows": [[5.0, 1.0]]},
        ]
    )
    assert len(timeline) == 2
    assert timeline.last_end == 6.0


def test_injector_rejects_bad_spec_up_front():
    harness = GatewayHarness()
    with pytest.raises(SpecError):
        WallClockInjector(harness, [{"kind": "device_reboot", "windows": [[0, 1]]}])


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def test_harness_restart_keeps_port_and_knobs():
    async def scenario():
        harness = GatewayHarness(GatewayConfig())
        await harness.start()
        try:
            port = harness.address[1]
            harness.set_knob("slowdown_factor", 4.0)
            await harness.kill()
            assert not harness.running
            await harness.restart()
            assert harness.address[1] == port
            assert harness.incarnations == 2
            # knob values survive the respawn
            assert harness.gateway.slowdown_factor == 4.0
            harness.clear_knob("slowdown_factor")
            assert harness.gateway.slowdown_factor == KNOB_DEFAULTS["slowdown_factor"]
            # and the revived incarnation actually serves
            remote = AsyncSocketRemote(harness.address, tenant="dev", frame_bytes=64)
            assert (await remote.exchange(deadline=0.5)).ok
            await remote.close()
        finally:
            await harness.stop()
        # stats accumulate across incarnations
        assert len(harness.all_stats) == 2
        assert harness.accounting_closed

    run(scenario())


def test_harness_rejects_unknown_knob():
    harness = GatewayHarness()
    with pytest.raises(ValueError):
        harness.set_knob("not_a_knob", 1.0)


# ----------------------------------------------------------------------
# the full run
# ----------------------------------------------------------------------


def test_chaos_run_invariants_hold():
    # shrunken default scenario: 4 clients, 3.5 s, a 1 s mid-run kill —
    # long enough for trip -> fallback -> probe -> re-close (real
    # seconds elapse; this is the expensive test of the file)
    spec = ScenarioSpec.from_dict(
        {
            "seed": 0,
            "duration": 3.5,
            "device": {"frame_rate": 10.0, "deadline": 0.25},
            "gpu": {"base_latency": 0.022, "per_item": 0.0055},
            "population": {"size": 4, "name_prefix": "dev"},
            "faults": [{"kind": "server_crash", "windows": [[1.0, 1.0]]}],
        }
    )
    result = run(run_realtime_chaos_async(spec))
    by_name = {c.name: c for c in result.invariants}
    assert set(by_name) == {
        "client-accounting-closed",
        "gateway-accounting-closed",
        "breaker-opened",
        "fallback-served",
        "breakers-reclosed",
        "recovered-after-restart",
        "gateway-restarted",
    }
    for check in result.invariants:
        assert check.passed, f"{check.name}: {check.detail} (obs={check.observed})"
    assert result.all_invariants_hold
    assert result.incarnations == 2
    # the injector actually fired both actions
    assert [kind for _t, kind in result.applied] == ["kill", "restart"]
    # outcome shape: work completed on both sides of the outage, and
    # the open breaker diverted frames locally during it
    assert result.report.outcomes.get("completed", 0) > 0
    assert result.report.outcomes.get("fallback_local", 0) > 0
    # serializes cleanly for --json
    payload = result.to_dict()
    assert payload["all_invariants_hold"] is True
    assert payload["incarnations"] == 2


def test_chaos_run_without_faults_judges_accounting_only():
    spec = ScenarioSpec.from_dict(
        {
            "seed": 0,
            "duration": 1.0,
            "device": {"frame_rate": 10.0, "deadline": 0.25},
            "gpu": {"base_latency": 0.022, "per_item": 0.0055},
            "population": {"size": 2, "name_prefix": "dev"},
        }
    )
    result = run(run_realtime_chaos_async(spec))
    assert [c.name for c in result.invariants] == [
        "client-accounting-closed",
        "gateway-accounting-closed",
    ]
    assert result.all_invariants_hold
    assert result.incarnations == 1
