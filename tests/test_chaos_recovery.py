"""Recovery invariants (ISSUE satellite 3): every controller must
hold the 0.1*F_s standing probe through a total outage and re-converge
within a bounded number of control periods after the fault heals."""

import pytest

from repro.control.aimd import AimdController
from repro.control.framefeedback import FrameFeedbackController
from repro.control.headroom import HeadroomController
from repro.device.config import DeviceConfig
from repro.experiments.chaos import ChaosScenario, run_chaos
from repro.experiments.scenario import Scenario
from repro.faults import BandwidthCollapse, FaultTimeline, ServerCrash
from repro.faults.invariants import SETTLE_SKIP

FRAME_RATE = 30.0

# AIMD's floor is set to the paper's standing probe so all three laws
# share the Table IV invariant surface.
CONTROLLERS = {
    "framefeedback": lambda cfg: FrameFeedbackController(cfg.frame_rate),
    "aimd": lambda cfg: AimdController(cfg.frame_rate, floor=0.1 * cfg.frame_rate),
    "headroom": lambda cfg: HeadroomController(cfg.frame_rate, cfg.deadline),
}

OUTAGE = (20.0, 25.0)  # total-failure window: [20, 45)
RECONVERGE_PERIODS = 25


def _chaos(factory, injector, total_frames=2400):
    return ChaosScenario(
        base=Scenario(
            controller_factory=factory,
            device=DeviceConfig(total_frames=total_frames),
            seed=7,
        ),
        injectors=[injector],
        reconverge_periods=RECONVERGE_PERIODS,
    )


@pytest.fixture(scope="module")
def crash_results():
    """One server-blackout run per controller (module-cached: ~1 s each)."""
    crash = lambda: ServerCrash(FaultTimeline.from_rows([OUTAGE]))
    return {
        name: run_chaos(_chaos(factory, crash()))
        for name, factory in CONTROLLERS.items()
    }


@pytest.mark.parametrize("name", CONTROLLERS)
def test_standing_probe_during_total_outage(crash_results, name):
    """P_o settles to 0.1*F_s +/- one actuation step inside the outage."""
    result = crash_results[name]
    checks = [c for c in result.invariants if c.name == "standing-probe"]
    assert len(checks) == 1
    check = checks[0]
    assert check.expected == pytest.approx(0.1 * FRAME_RATE)
    assert check.tolerance == pytest.approx(0.1 * FRAME_RATE)  # one step
    assert check.passed, check.detail
    # cross-check against the raw trace, independent of the invariant
    start, duration = OUTAGE
    observed = result.run.traces.offload_target.mean_over(
        start + SETTLE_SKIP, start + duration
    )
    assert observed == pytest.approx(0.1 * FRAME_RATE, abs=0.1 * FRAME_RATE)


@pytest.mark.parametrize("name", CONTROLLERS)
def test_bounded_reconvergence_after_heal(crash_results, name):
    """P_o crosses 0.6*F_s within the allowed control periods post-heal."""
    result = crash_results[name]
    checks = [c for c in result.invariants if c.name == "re-convergence"]
    assert len(checks) == 1
    check = checks[0]
    assert check.passed, check.detail
    assert check.observed <= RECONVERGE_PERIODS


@pytest.mark.parametrize("name", CONTROLLERS)
def test_all_invariants_hold(crash_results, name):
    result = crash_results[name]
    assert result.invariants, "total-failure window produced no checks"
    assert result.all_invariants_hold


def test_bandwidth_collapse_is_also_total_failure():
    """The link-layer blackout triggers the same invariants and the
    FrameFeedback law still holds them: the probe frames are what let
    the controller notice the link healed."""
    collapse = BandwidthCollapse(
        FaultTimeline.from_rows([OUTAGE]), factor=0.01
    )
    assert collapse.total_failure
    result = run_chaos(_chaos(CONTROLLERS["framefeedback"], collapse))
    assert result.invariants
    assert result.all_invariants_hold, [c.detail for c in result.invariants]


def test_short_outage_yields_no_probe_check_but_reconverges():
    """Windows shorter than MIN_PROBE_WINDOW skip the (meaningless)
    settling assertion yet still get a re-convergence check."""
    crash = ServerCrash(FaultTimeline.from_rows([(20.0, 6.0)]))
    result = run_chaos(_chaos(CONTROLLERS["framefeedback"], crash, total_frames=1800))
    names = [c.name for c in result.invariants]
    assert "standing-probe" not in names
    assert names.count("re-convergence") == 1
    assert result.all_invariants_hold
