"""Integration tests for the EdgeServer in the simulator."""

import numpy as np
import pytest

from repro.models.latency import GpuBatchModel
from repro.server import EdgeServer, InferenceRequest, RequestOutcome
from repro.sim import Environment


def make_server(env, seed=0, **kwargs):
    return EdgeServer(env, np.random.default_rng(seed), **kwargs)


def submit(server, env, tenant="t", model="mobilenet_v3_small", collector=None):
    req = InferenceRequest(
        tenant=tenant,
        model_name=model,
        sent_at=env.now,
        payload_bytes=100,
        respond=(collector.append if collector is not None else (lambda r: None)),
    )
    server.submit(req)
    return req


def test_single_request_completes():
    env = Environment()
    server = make_server(env)
    responses = []
    submit(server, env, collector=responses)
    env.run(until=1.0)
    assert len(responses) == 1
    assert responses[0].ok
    assert responses[0].batch_size == 1
    assert server.stats.completed == 1


def test_response_time_matches_batch_model():
    env = Environment()
    gpu = GpuBatchModel(base_latency=0.02, per_item=0.005, jitter_sigma=0.0)
    server = make_server(env, cost_model=gpu)
    responses = []
    submit(server, env, collector=responses)
    env.run(until=1.0)
    assert responses[0].completed_at == pytest.approx(0.025, rel=1e-6)


def test_requests_during_execution_form_next_batch():
    env = Environment()
    gpu = GpuBatchModel(base_latency=0.1, per_item=0.0, jitter_sigma=0.0)
    server = make_server(env, cost_model=gpu)
    responses = []

    def feeder(env, server):
        submit(server, env, collector=responses)  # starts batch 1 (size 1)
        yield env.timeout(0.01)
        for _ in range(3):  # arrive during batch 1 execution
            submit(server, env, collector=responses)

    env.process(feeder(env, server))
    env.run(until=1.0)
    assert len(responses) == 4
    assert responses[0].batch_size == 1
    assert all(r.batch_size == 3 for r in responses[1:])


def test_overflow_rejected_at_batch_formation():
    env = Environment()
    gpu = GpuBatchModel(base_latency=0.1, per_item=0.0, jitter_sigma=0.0)
    server = make_server(env, cost_model=gpu, batch_limit=2)
    responses = []

    def feeder(env, server):
        submit(server, env, collector=responses)
        yield env.timeout(0.01)
        for _ in range(5):
            submit(server, env, collector=responses)

    env.process(feeder(env, server))
    env.run(until=1.0)
    outcomes = [r.outcome for r in responses]
    assert outcomes.count(RequestOutcome.REJECTED) == 3
    assert outcomes.count(RequestOutcome.COMPLETED) == 3
    assert server.stats.rejected == 3
    # rejections arrive *before* the batch completes (immediate NACK)
    rejected_at = [r.completed_at for r in responses if not r.ok]
    completed_second = [
        r.completed_at for r in responses if r.ok and r.batch_size == 2
    ]
    assert max(rejected_at) < min(completed_second)


def test_models_round_robin_share_gpu():
    env = Environment()
    gpu = GpuBatchModel(base_latency=0.05, per_item=0.0, jitter_sigma=0.0)
    server = make_server(env, cost_model=gpu)
    responses = []

    def feeder(env, server):
        # keep both model queues non-empty for a while
        for _ in range(6):
            submit(server, env, model="mobilenet_v3_small", collector=responses)
            submit(server, env, model="efficientnet_b0", collector=responses)
            yield env.timeout(0.05)

    env.process(feeder(env, server))
    env.run(until=2.0)
    assert server.stats.completed == 12
    # neither model starved: completions interleave
    assert {r.tenant for r in responses} == {"t"}


def test_per_tenant_stats():
    env = Environment()
    server = make_server(env)
    submit(server, env, tenant="a")
    submit(server, env, tenant="b")
    submit(server, env, tenant="a")
    env.run(until=1.0)
    assert server.stats.per_tenant_received == {"a": 2, "b": 1}
    assert server.stats.per_tenant_completed == {"a": 2, "b": 1}


def test_gpu_utilization_bounded():
    env = Environment()
    server = make_server(env)
    for _ in range(50):
        submit(server, env)
    env.run(until=2.0)
    util = server.gpu.utilization(2.0)
    assert 0.0 < util <= 1.0


def test_queue_depth_introspection():
    env = Environment()
    gpu = GpuBatchModel(base_latency=10.0, per_item=0.0, jitter_sigma=0.0)
    server = make_server(env, cost_model=gpu)
    submit(server, env)  # enters execution
    env.run(until=0.1)
    submit(server, env)  # queues behind the slow batch
    submit(server, env)
    assert server.queue_depth() == 2
    assert server.queue_depth("mobilenet_v3_small") == 2
    assert server.queue_depth("efficientnet_b0") == 0


def test_server_saturation_rejects_sustained_overload():
    """Offered load far above capacity must produce rejections (T_l)."""
    env = Environment()
    server = make_server(env)
    responses = []

    def flood(env, server):
        while env.now < 5.0:
            for _ in range(3):
                submit(server, env, collector=responses)
            yield env.timeout(1 / 100)  # 300 req/s >> capacity

    env.process(flood(env, server))
    env.run(until=6.0)
    rejected = sum(1 for r in responses if not r.ok)
    assert rejected > 0
    assert server.stats.completed + server.stats.rejected == server.stats.received
