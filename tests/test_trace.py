"""Unit tests for the span tracer and its canonical serialization."""

import json

import numpy as np

from repro.device.camera import Frame
from repro.device.offload import OffloadClient
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.server.server import EdgeServer
from repro.sim import Environment
from repro.trace import (
    TERMINAL_STATUSES,
    Span,
    Tracer,
    diff_traces,
    dumps_trace,
    first_divergence,
    terminal_counts,
    trace_document,
)
from repro.trace.spans import OPEN_STATUS


# ----------------------------------------------------------------------
# Span semantics
# ----------------------------------------------------------------------
def test_span_first_status_wins():
    span = Span("frame", 1.0)
    span.finish(2.0, "timeout")
    span.finish(3.0, "completed-offload")  # late response must not rewrite
    assert span.status == "timeout"
    assert span.end == 3.0  # ... but may extend the interval


def test_span_finish_never_shrinks_interval():
    span = Span("frame", 1.0)
    span.finish(5.0, "ok")
    span.finish(2.0)
    assert span.end == 5.0


def test_span_child_nesting_and_attrs():
    root = Span("frame", 0.0, {"frame_id": 7})
    child = root.child("offload", 0.1)
    child.finish(0.2, "ok", rtt=0.1)
    assert root.children == [child]
    assert child.attrs["rtt"] == 0.1
    assert not root.finished and child.finished


# ----------------------------------------------------------------------
# Tracer correlation model
# ----------------------------------------------------------------------
def test_unregistered_frames_are_ignored():
    """Probe/background traffic (never registered) must no-op cleanly."""
    tracer = Tracer()
    tracer.begin_offload("pi", -3, 1.0)
    tracer.end_offload("pi", -3, 1.2, "ok")
    tracer.finish_frame("pi", -3, 1.2, "completed-offload")
    tracer.begin_local("pi", 99, 1.0)
    tracer.end_local("pi", 99, 1.1, 0.1)
    assert tracer.frames == {}
    doc = trace_document(tracer)
    assert doc["frames"] == [] and doc["events"] == []


def test_terminal_classification_is_exactly_once():
    tracer = Tracer()
    tracer.begin_frame("pi", 0, 0.0, 11_700, "offload")
    tracer.finish_frame("pi", 0, 0.25, "timeout", cause="deadline")
    tracer.finish_frame("pi", 0, 0.30, "completed-offload")
    doc = trace_document(tracer)
    assert doc["frames"][0]["span"]["status"] == "timeout"
    assert doc["frames"][0]["span"]["attrs"]["cause"] == "deadline"


def test_canonicalization_extends_parent_over_late_children():
    """A late link delivery past the terminal close must still nest."""
    tracer = Tracer()
    tracer.begin_frame("pi", 0, 0.0, 1000, "offload")
    tracer.begin_offload("pi", 0, 0.0)
    offload = tracer.offload_span("pi", 0)
    late = offload.child("downlink", 0.2)
    tracer.finish_frame("pi", 0, 0.25, "timeout", cause="deadline")
    late.finish(0.4, "delivered")  # response lands after the deadline
    span = trace_document(tracer)["frames"][0]["span"]
    assert span["end"] == 0.4
    assert span["children"][0]["end"] == 0.4

    def nested(node):
        assert node["end"] >= node["start"]
        for child in node["children"]:
            assert child["start"] >= node["start"]
            assert child["end"] <= node["end"]
            nested(child)

    nested(span)


def test_open_spans_serialize_as_unsettled():
    tracer = Tracer()
    tracer.begin_frame("pi", 0, 0.0, 1000, "offload")
    doc = trace_document(tracer)
    assert doc["frames"][0]["span"]["status"] == OPEN_STATUS


def test_sibling_order_is_canonical_not_insertion_order():
    tracer = Tracer()
    root = tracer.begin_frame("pi", 0, 0.0, 1000, "offload")
    root.child("b", 0.5).finish(0.6, "ok")
    root.child("a", 0.1).finish(0.2, "ok")
    names = [c["name"] for c in trace_document(tracer)["frames"][0]["span"]["children"]]
    assert names == ["a", "b"]


def test_terminal_statuses_cover_the_issue_taxonomy():
    assert {
        "completed-local",
        "completed-offload",
        "timeout",
        "rejected",
        "dropped-skip",
        "aborted",
    } == set(TERMINAL_STATUSES)


# ----------------------------------------------------------------------
# live instrumentation through the real substrate
# ----------------------------------------------------------------------
def _wired_client(env, tracer, deadline=0.25, bandwidth=10.0):
    box = ConditionBox(LinkConditions(bandwidth=bandwidth, loss=0.0))
    uplink = Link(env, np.random.default_rng(1), box, queue_bytes_cap=1e9)
    downlink = Link(
        env, np.random.default_rng(2), box, name="downlink", queue_bytes_cap=1e9
    )
    server = EdgeServer(env, np.random.default_rng(3))
    outcomes = []
    client = OffloadClient(
        env,
        uplink=uplink,
        downlink=downlink,
        server=server,
        tenant="pi",
        model_name="mobilenet_v3_small",
        deadline=deadline,
        response_bytes=256,
        on_success=lambda frame, rtt: outcomes.append(("ok", frame.frame_id)),
        on_timeout=lambda frame, why: outcomes.append((why, frame.frame_id)),
    )
    return client, server, outcomes


def test_offload_round_trip_produces_full_span_tree():
    env = Environment()
    tracer = Tracer()
    env.tracer = tracer
    client, _server, outcomes = _wired_client(env, tracer)
    tracer.begin_frame("pi", 0, 0.0, 11_700, "offload")
    client.send(Frame(frame_id=0, captured_at=0.0, nbytes=11_700))
    env.run(until=2.0)
    assert outcomes == [("ok", 0)]
    span = trace_document(tracer)["frames"][0]["span"]
    assert span["status"] == "completed-offload"
    (offload,) = span["children"]
    hops = [c["name"] for c in offload["children"]]
    assert hops == ["uplink", "server", "downlink"]
    assert all(c["status"] in ("delivered", "completed") for c in offload["children"])
    assert offload["attrs"]["rtt"] > 0


def test_silent_server_classifies_deadline_timeout():
    env = Environment()
    tracer = Tracer()
    env.tracer = tracer
    client, server, outcomes = _wired_client(env, tracer)
    server.crash()
    tracer.begin_frame("pi", 0, 0.0, 11_700, "offload")
    client.send(Frame(frame_id=0, captured_at=0.0, nbytes=11_700))
    env.run(until=2.0)
    assert outcomes == [("deadline", 0)]
    span = trace_document(tracer)["frames"][0]["span"]
    assert span["status"] == "timeout"
    assert span["attrs"]["cause"] == "deadline"
    (offload,) = span["children"]
    server_spans = [c for c in offload["children"] if c["name"] == "server"]
    assert server_spans and server_spans[0]["status"] == "dropped-crash"


def test_tracing_does_not_change_outcomes():
    """Observation only: traced and untraced runs agree on every counter."""

    def run(traced):
        env = Environment()
        if traced:
            env.tracer = Tracer()
        client, _server, outcomes = _wired_client(env, tracer=None)

        def driver(env):
            for i in range(50):
                client.send(Frame(frame_id=i, captured_at=env.now, nbytes=11_700))
                yield env.sleep(1.0 / 30.0)

        env.process(driver(env))
        env.run(until=5.0)
        return outcomes

    assert run(traced=False) == run(traced=True)


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _tiny_doc():
    tracer = Tracer()
    tracer.begin_frame("pi", 0, 0.0, 1000, "offload")
    tracer.begin_offload("pi", 0, 0.0)
    tracer.frames[("pi", 0)].finish(0.1, "completed-offload")
    tracer.event(0.5, "controller.update", target=10.0)
    return trace_document(tracer, meta={"scenario": "tiny", "seed": 0})


def test_diff_identical_traces_is_none():
    assert first_divergence(_tiny_doc(), _tiny_doc()) is None
    assert diff_traces(_tiny_doc(), _tiny_doc()) is None


def test_diff_reports_first_diverging_span_field():
    a, b = _tiny_doc(), _tiny_doc()
    b["frames"][0]["span"]["status"] = "timeout"
    hit = first_divergence(a, b)
    assert hit is not None
    assert hit.field == "status"
    assert "frames[pi/0]" in hit.path
    assert (hit.a, hit.b) == ("completed-offload", "timeout")


def test_diff_catches_frame_count_and_event_changes():
    a, b = _tiny_doc(), _tiny_doc()
    b["frames"] = []
    assert first_divergence(a, b).field == "frame-count"
    c = _tiny_doc()
    c["events"][0]["attrs"]["target"] = 11.0
    hit = first_divergence(a, c)
    assert hit.field == "attrs[target]" and "controller.update" in hit.path


def test_diff_version_mismatch_reported_first():
    a, b = _tiny_doc(), _tiny_doc()
    b["version"] = 999
    b["frames"] = []  # must be masked by the version divergence
    assert first_divergence(a, b).field == "version"


def test_terminal_counts_summary():
    counts = terminal_counts(_tiny_doc())
    assert counts == {"completed-offload": 1}


def test_trace_latency_summary_attributes_hops():
    from repro.metrics import span_duration_stats, trace_latency_summary

    env = Environment()
    tracer = Tracer()
    env.tracer = tracer
    client, _server, outcomes = _wired_client(env, tracer)
    tracer.begin_frame("pi", 0, 0.0, 11_700, "offload")
    client.send(Frame(frame_id=0, captured_at=0.0, nbytes=11_700))
    env.run(until=2.0)
    assert outcomes == [("ok", 0)]
    doc = trace_document(tracer)
    stats = span_duration_stats(doc)
    assert set(stats) == {"offload", "uplink", "server", "downlink"}
    assert stats["offload"]["count"] == 1
    # the attempt window covers all three hops, so it dominates totals
    assert next(iter(stats)) == "offload"
    summary = trace_latency_summary(doc)
    assert summary["frames"] == 1
    assert summary["terminal"] == {"completed-offload": 1}
    assert summary["frame_seconds"]["count"] == 1
    assert summary["frame_seconds"]["mean"] > 0


def test_dumps_trace_is_stable_under_key_order():
    doc = _tiny_doc()
    scrambled = json.loads(json.dumps(doc))
    assert dumps_trace(doc) == dumps_trace(scrambled)
