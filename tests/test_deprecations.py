"""The repro.workloads.faults shim must warn — and only the shim."""

import importlib
import sys
import warnings


def _fresh_import(name):
    sys.modules.pop(name, None)
    return importlib.import_module(name)


def test_workloads_faults_shim_emits_deprecation_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = _fresh_import("repro.workloads.faults")
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert dep, "importing the shim produced no DeprecationWarning"
    assert "repro.faults" in str(dep[0].message)
    # the shim still re-exports the real classes
    from repro.faults import FaultTimeline, OutageSchedule

    assert shim.OutageSchedule is OutageSchedule
    assert shim.FaultTimeline is FaultTimeline


def test_workloads_package_itself_does_not_warn():
    """``import repro.workloads`` must stay warning-free: only the
    legacy submodule path pays the deprecation toll."""
    for name in [m for m in sys.modules if m.startswith("repro.workloads")]:
        sys.modules.pop(name)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        importlib.import_module("repro.workloads")
