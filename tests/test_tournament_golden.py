"""Byte-exact tournament report golden (ISSUE 10 satellite).

``tests/goldens/tournament_report.json`` is the canonical report of a
reduced tournament — 4 controllers x 3 built-in scenarios, every
scenario lossy or multi-server so the hybrid kernel's fluid regime
must veto — regenerated from scratch and compared **byte-for-byte**
on the fast path, under ``REPRO_SIM_SLOWPATH=1``, and under
``REPRO_KERNEL=hybrid``.

Intentional-change workflow (mirrors the trace/scenario goldens)::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_tournament_golden.py
    git diff tests/goldens/tournament_report.json
    git add tests/goldens/tournament_report.json

The update path rewrites the file and fails the run, so a stale
``REPRO_UPDATE_GOLDENS`` in CI can never silently bless a regression.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.tournament import (
    TOURNAMENT_VERSION,
    TournamentConfig,
    dumps_report,
    report_document,
    run_tournament,
)

GOLDEN_PATH = Path(__file__).parent / "goldens" / "tournament_report.json"

#: the committed reduced tournament: deterministic, hybrid-safe, fast
GOLDEN_CONFIG = TournamentConfig(
    seed=0,
    frames=450,
    controllers=("FrameFeedback", "AIMD", "TokenBucket", "RateLimitedMDP"),
    scenarios=("lossy_link", "chaos_outage", "fleet_failover"),
    workers=1,
)


def _fresh_report() -> str:
    return dumps_report(report_document(run_tournament(GOLDEN_CONFIG)))


def _replay_and_compare(monkeypatch, slowpath: bool = False,
                        kernel: str = None):
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    if slowpath:
        monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    if kernel:
        monkeypatch.setenv("REPRO_KERNEL", kernel)
    fresh = _fresh_report()

    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        GOLDEN_PATH.write_text(fresh)
        pytest.fail(
            "tournament golden regenerated (REPRO_UPDATE_GOLDENS=1); "
            "review with `git diff tests/goldens/tournament_report.json` "
            "and commit, then rerun without the flag"
        )

    committed = GOLDEN_PATH.read_text()
    assert fresh == committed, (
        "tournament report diverges from the committed golden "
        f"(slowpath={slowpath}, kernel={kernel or 'exact'}); if the "
        "change is intentional, regenerate with REPRO_UPDATE_GOLDENS=1"
    )


def test_report_replays_byte_identically(monkeypatch):
    _replay_and_compare(monkeypatch)


def test_report_replays_byte_identically_slow_kernel(monkeypatch):
    _replay_and_compare(monkeypatch, slowpath=True)


def test_report_replays_byte_identically_hybrid_kernel(monkeypatch):
    _replay_and_compare(monkeypatch, kernel="hybrid")


def test_golden_is_version_stamped():
    import json

    doc = json.loads(GOLDEN_PATH.read_text())
    assert doc["version"] == TOURNAMENT_VERSION
    assert len(doc["controllers"]) >= 4
    assert len(doc["scenarios"]) >= 3
    assert doc["ranking"], "committed report must carry a ranking"
