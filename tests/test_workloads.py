"""Unit + integration tests for workload generation and schedules."""

import numpy as np
import pytest

from repro.models.latency import GpuBatchModel
from repro.server.server import EdgeServer
from repro.sim import Environment
from repro.workloads import (
    BackgroundLoad,
    LoadPhase,
    LoadSchedule,
    TABLE_VI_LOAD,
    table_vi_schedule,
)


# ----------------------------------------------------------------------
# LoadSchedule
# ----------------------------------------------------------------------
def test_table_vi_rows_verbatim():
    assert TABLE_VI_LOAD == (
        (0.0, 0.0),
        (10.0, 90.0),
        (20.0, 120.0),
        (35.0, 135.0),
        (50.0, 150.0),
        (60.0, 130.0),
        (75.0, 120.0),
        (90.0, 90.0),
        (100.0, 0.0),
    )


def test_rate_at_follows_phases():
    sched = table_vi_schedule()
    assert sched.rate_at(0.0) == 0.0
    assert sched.rate_at(10.0) == 90.0
    assert sched.rate_at(55.0) == 150.0
    assert sched.rate_at(99.9) == 90.0
    assert sched.rate_at(500.0) == 0.0


def test_peak_rate():
    assert table_vi_schedule().peak_rate == 150.0


def test_schedule_validation():
    with pytest.raises(ValueError):
        LoadSchedule([])
    with pytest.raises(ValueError):
        LoadSchedule([LoadPhase(5.0, 10.0)])  # must start at 0
    with pytest.raises(ValueError):
        LoadSchedule([LoadPhase(0.0, 1.0), LoadPhase(0.0, 2.0)])
    with pytest.raises(ValueError):
        LoadPhase(0.0, -1.0)


# ----------------------------------------------------------------------
# BackgroundLoad
# ----------------------------------------------------------------------
def run_load(schedule, until, seed=0):
    env = Environment()
    server = EdgeServer(env, np.random.default_rng(1), cost_model=GpuBatchModel())
    load = BackgroundLoad(env, server, schedule, np.random.default_rng(seed))
    env.run(until=until)
    return load, server


def test_poisson_rate_matches_schedule():
    sched = LoadSchedule.from_rows([(0, 100)])
    load, _ = run_load(sched, until=20.0)
    # 100 req/s for 20 s: Poisson(2000), 5 sigma ~ 225
    assert abs(load.sent - 2000) < 250


def test_zero_rate_sends_nothing():
    sched = LoadSchedule.from_rows([(0, 0)])
    load, _ = run_load(sched, until=10.0)
    assert load.sent == 0


def test_rate_change_takes_effect():
    sched = LoadSchedule.from_rows([(0, 0), (5, 200), (10, 0)])
    load, _ = run_load(sched, until=20.0)
    assert abs(load.sent - 1000) < 200


def test_requests_alternate_model_types():
    """§IV-C.2: background load hits both model families."""
    sched = LoadSchedule.from_rows([(0, 100)])
    _, server = run_load(sched, until=5.0)
    received_models = set()
    # served batches imply both queues existed
    assert server.stats.received > 0
    assert server.queue_depth("mobilenet_v3_small") >= 0  # exists
    # check via per-tenant spread instead: many tenants used
    assert len(server.stats.per_tenant_received) > 1


def test_responses_counted():
    sched = LoadSchedule.from_rows([(0, 50)])
    load, server = run_load(sched, until=10.0)
    env_total = load.completed + load.rejected
    # all but in-flight requests have been answered
    assert env_total > 0.8 * load.sent
    assert load.completed <= server.stats.completed


def test_validation():
    env = Environment()
    server = EdgeServer(env, np.random.default_rng(0))
    sched = LoadSchedule.from_rows([(0, 1)])
    with pytest.raises(ValueError):
        BackgroundLoad(env, server, sched, np.random.default_rng(0), model_names=())
    with pytest.raises(ValueError):
        BackgroundLoad(env, server, sched, np.random.default_rng(0), n_tenants=0)


def test_determinism_same_seed():
    sched = table_vi_schedule()
    a, _ = run_load(sched, until=30.0, seed=5)
    b, _ = run_load(sched, until=30.0, seed=5)
    assert a.sent == b.sent
