"""Unit + property tests for the §IV-A adaptive batcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.batching import DEFAULT_BATCH_LIMIT, AdaptiveBatcher, BatchPolicy
from repro.server.requests import InferenceRequest


def req(tenant="t", model="mobilenet_v3_small", t=0.0):
    return InferenceRequest(
        tenant=tenant,
        model_name=model,
        sent_at=t,
        payload_bytes=100,
        respond=lambda r: None,
    )


def test_default_batch_limit_is_paper_15():
    assert DEFAULT_BATCH_LIMIT == 15
    assert AdaptiveBatcher().batch_limit == 15


def test_batch_limit_must_be_positive():
    with pytest.raises(ValueError):
        AdaptiveBatcher(batch_limit=0)


def test_under_limit_everything_batched_nothing_rejected():
    b = AdaptiveBatcher(batch_limit=5)
    reqs = [req() for _ in range(3)]
    for r in reqs:
        b.enqueue(r)
    batch, rejected = b.form_batch()
    assert batch == reqs
    assert rejected == []
    assert b.pending == 0


def test_over_limit_fifo_keeps_oldest():
    b = AdaptiveBatcher(batch_limit=2)
    reqs = [req() for _ in range(5)]
    for r in reqs:
        b.enqueue(r)
    batch, rejected = b.form_batch()
    assert batch == reqs[:2]
    assert rejected == reqs[2:]


def test_form_batch_empties_queue_completely():
    """§IV-A: the *rest of the queue* is rejected, not left waiting."""
    b = AdaptiveBatcher(batch_limit=1)
    for _ in range(4):
        b.enqueue(req())
    batch, rejected = b.form_batch()
    assert len(batch) + len(rejected) == 4
    assert b.pending == 0


def test_empty_queue_forms_empty_batch():
    assert AdaptiveBatcher().form_batch() == ([], [])


def test_fair_policy_round_robins_tenants():
    b = AdaptiveBatcher(batch_limit=4, policy=BatchPolicy.FAIR)
    greedy = [req(tenant="hog") for _ in range(6)]
    meek = [req(tenant="meek") for _ in range(2)]
    for r in greedy + meek:
        b.enqueue(r)
    batch, rejected = b.form_batch()
    tenants = [r.tenant for r in batch]
    assert tenants.count("meek") == 2  # fair share despite arriving last
    assert tenants.count("hog") == 2
    assert all(r.tenant == "hog" for r in rejected)


def test_fair_policy_fifo_within_tenant():
    b = AdaptiveBatcher(batch_limit=2, policy=BatchPolicy.FAIR)
    first, second, third = req(tenant="a"), req(tenant="a"), req(tenant="a")
    for r in (first, second, third):
        b.enqueue(r)
    batch, rejected = b.form_batch()
    assert batch == [first, second]
    assert rejected == [third]


@given(
    tenant_ids=st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=60),
    limit=st.integers(min_value=1, max_value=20),
    policy=st.sampled_from([BatchPolicy.FIFO, BatchPolicy.FAIR]),
)
@settings(max_examples=120, deadline=None)
def test_batching_invariants(tenant_ids, limit, policy):
    """Every request is batched xor rejected; batch never exceeds limit."""
    b = AdaptiveBatcher(batch_limit=limit, policy=policy)
    reqs = [req(tenant=f"t{i}") for i in tenant_ids]
    for r in reqs:
        b.enqueue(r)
    batch, rejected = b.form_batch()
    assert len(batch) <= limit
    assert len(batch) + len(rejected) == len(reqs)
    assert {id(r) for r in batch}.isdisjoint({id(r) for r in rejected})
    assert {id(r) for r in batch} | {id(r) for r in rejected} == {id(r) for r in reqs}
    if len(reqs) >= limit:
        assert len(batch) == limit


@given(
    counts=st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=1, max_value=20),
        min_size=2,
    ),
    limit=st.integers(min_value=2, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_fair_policy_minimizes_max_envy(counts, limit):
    """FAIR: no tenant gets 2+ more slots than a tenant with unmet demand."""
    b = AdaptiveBatcher(batch_limit=limit, policy=BatchPolicy.FAIR)
    for tenant, n in counts.items():
        for _ in range(n):
            b.enqueue(req(tenant=tenant))
    batch, rejected = b.form_batch()
    got = {t: 0 for t in counts}
    for r in batch:
        got[r.tenant] += 1
    unmet = {r.tenant for r in rejected}
    for t_unmet in unmet:
        for t_any in counts:
            assert got[t_any] - got[t_unmet] <= 1
