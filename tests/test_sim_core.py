"""Unit tests for the DES kernel: environment, events, run loop."""

import pytest

from repro.sim import Environment, Event, Interrupt, Timeout
from repro.sim.core import EmptySchedule


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    done = {}

    def proc(env):
        yield env.timeout(3.5)
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    assert done["t"] == pytest.approx(3.5)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=4.5)
    assert env.now == pytest.approx(4.5)


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "payload"

    p = env.process(proc(env))
    assert env.run(until=p) == "payload"
    assert env.now == pytest.approx(2.0)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(env, 3.0, "c"))
    env.process(waiter(env, 1.0, "a"))
    env.process(waiter(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def waiter(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(waiter(env, tag))
    env.run()
    assert order == list(range(5))


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_event_succeed_delivers_value():
    env = Environment()
    ev = env.event()
    got = {}

    def proc(env, ev):
        got["v"] = yield ev

    env.process(proc(env, ev))
    ev.succeed(42)
    env.run()
    assert got["v"] == 42


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = {}

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught["exc"] = exc

    env.process(proc(env, ev))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert str(caught["exc"]) == "boom"


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == pytest.approx(7.0)


def test_process_is_event_fork_join():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return f"parent saw {result}"

    p = env.process(parent(env))
    assert env.run(until=p) == "parent saw child-result"


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1, t2 = env.timeout(1.0, "a"), env.timeout(2.0, "b")
        results = yield env.all_of([t1, t2])
        return sorted(results.values())

    p = env.process(proc(env))
    assert env.run(until=p) == ["a", "b"]
    assert env.now == pytest.approx(2.0)


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        t1, t2 = env.timeout(1.0, "fast"), env.timeout(5.0, "slow")
        results = yield env.any_of([t1, t2])
        return list(results.values())

    p = env.process(proc(env))
    assert env.run(until=p) == ["fast"]
    assert env.now == pytest.approx(1.0)


def test_empty_all_of_fires_immediately():
    env = Environment()

    def proc(env):
        yield env.all_of([])
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 0.0


def test_interrupt_delivers_cause():
    env = Environment()
    seen = {}

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            seen["cause"] = exc.cause
            seen["time"] = env.now

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt(cause="preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert seen == {"cause": "preempted", "time": 2.0}


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100.0)

    def attacker(env, target):
        yield env.timeout(1.0)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    with pytest.raises(Interrupt):
        env.run(until=v)


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def waiter(env, p):
        with pytest.raises(ValueError, match="inner"):
            yield p
        return "handled"

    p = env.process(bad(env))
    w = env.process(waiter(env, p))
    assert env.run(until=w) == "handled"


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42  # type: ignore[misc]

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_yield_already_processed_event_resumes():
    env = Environment()

    def proc(env):
        t = env.timeout(1.0, "v")
        yield env.timeout(2.0)  # t fires while we wait
        result = yield t  # already processed
        return result

    p = env.process(proc(env))
    assert env.run(until=p) == "v"
    assert env.now == pytest.approx(2.0)


def test_queue_size_reflects_pending_events():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    assert env.queue_size() == 2


def test_and_operator_waits_for_both():
    env = Environment()

    def proc(env):
        results = yield env.timeout(1.0, "a") & env.timeout(3.0, "b")
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    assert env.run(until=p) == (3.0, ["a", "b"])


def test_or_operator_fires_on_first():
    env = Environment()

    def proc(env):
        results = yield env.timeout(1.0, "fast") | env.timeout(9.0, "slow")
        return (env.now, list(results.values()))

    p = env.process(proc(env))
    assert env.run(until=p) == (1.0, ["fast"])


def test_operators_chain():
    env = Environment()

    def proc(env):
        three = env.timeout(1.0, 1) & env.timeout(2.0, 2) & env.timeout(3.0, 3)
        results = yield three
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 3.0


def test_operator_with_non_event_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.timeout(1.0) & 42  # type: ignore[operator]
