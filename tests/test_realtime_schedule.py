"""Tests for the wall-clock remote-condition schedule."""

import time

import pytest

from repro.realtime import FakeRemote, RemotePhase, RemoteSchedule
from repro.realtime.fakework import RemoteConditions


def test_validation():
    with pytest.raises(ValueError):
        RemoteSchedule([])
    with pytest.raises(ValueError):
        RemoteSchedule([RemotePhase(1.0, RemoteConditions())])
    with pytest.raises(ValueError):
        RemoteSchedule(
            [
                RemotePhase(0.0, RemoteConditions()),
                RemotePhase(0.0, RemoteConditions()),
            ]
        )
    with pytest.raises(ValueError):
        RemotePhase(-1.0, RemoteConditions())


def test_from_rows_and_lookup():
    sched = RemoteSchedule.from_rows(
        [(0, 0.05, 0.01, 0.0), (5, 0.2, 0.05, 0.3)]
    )
    assert sched.conditions_at(0.0).latency == pytest.approx(0.05)
    assert sched.conditions_at(4.9).failure_probability == 0.0
    assert sched.conditions_at(5.0).failure_probability == pytest.approx(0.3)
    assert sched.conditions_at(100.0).latency == pytest.approx(0.2)


def test_install_applies_phases_in_real_time():
    remote = FakeRemote()
    sched = RemoteSchedule.from_rows(
        [(0, 0.01, 0.0, 0.0), (0.3, 0.09, 0.0, 0.5)]
    )
    sched.install(remote)
    try:
        assert remote.conditions.latency == pytest.approx(0.01)
        time.sleep(0.6)
        assert remote.conditions.latency == pytest.approx(0.09)
        assert remote.conditions.failure_probability == pytest.approx(0.5)
    finally:
        sched.stop()


def test_double_install_rejected():
    remote = FakeRemote()
    sched = RemoteSchedule.from_rows([(0, 0.01, 0.0, 0.0)])
    sched.install(remote)
    try:
        with pytest.raises(RuntimeError):
            sched.install(remote)
    finally:
        sched.stop()


def test_stop_halts_future_phases():
    remote = FakeRemote()
    sched = RemoteSchedule.from_rows(
        [(0, 0.01, 0.0, 0.0), (10.0, 0.5, 0.0, 0.9)]
    )
    sched.install(remote)
    sched.stop()
    time.sleep(0.1)
    assert remote.conditions.latency == pytest.approx(0.01)
