"""Tests for the video content (frame-size) model."""

import numpy as np
import pytest

from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.netem.profiles import CONGESTED
from repro.workloads.schedules import steady_schedule
from repro.workloads.video import VideoContentModel


def test_validation():
    with pytest.raises(ValueError):
        VideoContentModel(mean_bytes=0)
    with pytest.raises(ValueError):
        VideoContentModel(mean_bytes=100, sigma=-1)
    with pytest.raises(ValueError):
        VideoContentModel(mean_bytes=100, correlation=1.0)
    with pytest.raises(ValueError):
        VideoContentModel(mean_bytes=100, scene_cut_multiplier=0.5)


def test_mean_size_matches_configuration():
    model = VideoContentModel(mean_bytes=11_700, sigma=0.25, scene_cut_rate=0.0)
    sample = model.sampler(np.random.default_rng(0))
    sizes = np.array([sample() for _ in range(50_000)])
    assert sizes.mean() == pytest.approx(11_700, rel=0.03)
    assert (sizes >= 200).all()


def test_zero_sigma_no_cuts_is_constant():
    model = VideoContentModel(mean_bytes=5_000, sigma=0.0, scene_cut_rate=0.0)
    sample = model.sampler(np.random.default_rng(0))
    sizes = {sample() for _ in range(100)}
    assert len(sizes) == 1
    assert sizes.pop() == 5_000


def test_sizes_are_autocorrelated():
    model = VideoContentModel(
        mean_bytes=10_000, sigma=0.3, correlation=0.95, scene_cut_rate=0.0
    )
    sample = model.sampler(np.random.default_rng(1))
    x = np.log([sample() for _ in range(20_000)])
    x = x - x.mean()
    lag1 = float(np.dot(x[1:], x[:-1]) / np.dot(x, x))
    assert lag1 > 0.85


def test_scene_cuts_inflate_bursts():
    base = VideoContentModel(mean_bytes=10_000, sigma=0.0, scene_cut_rate=0.0)
    cuts = VideoContentModel(
        mean_bytes=10_000,
        sigma=0.0,
        scene_cut_rate=3.0,  # cuts every ~10 frames
        scene_cut_multiplier=2.0,
    )
    rng = np.random.default_rng(2)
    sample = cuts.sampler(rng)
    sizes = np.array([sample() for _ in range(2_000)])
    assert sizes.max() > 1.5 * 10_000
    assert sizes.mean() > 10_000  # cuts only add bytes


def test_samplers_are_independent():
    model = VideoContentModel(mean_bytes=10_000)
    a = model.sampler(np.random.default_rng(0))
    b = model.sampler(np.random.default_rng(0))
    assert [a() for _ in range(5)] == [b() for _ in range(5)]  # same seed
    c = model.sampler(np.random.default_rng(9))
    assert [a() for _ in range(5)] != [c() for _ in range(5)]


def test_device_uses_video_model_end_to_end():
    """Variable sizes flow through the whole closed loop."""
    video = VideoContentModel(mean_bytes=11_700, sigma=0.35, scene_cut_rate=0.2)
    fixed_cfg = DeviceConfig(total_frames=1200)
    video_cfg = DeviceConfig(total_frames=1200, video=video)

    def run(cfg, seed=0):
        return run_scenario(
            Scenario(
                controller_factory=framefeedback_factory(),
                device=cfg,
                network=steady_schedule(CONGESTED),
                seed=seed,
            )
        )

    fixed = run(fixed_cfg)
    varying = run(video_cfg)
    # the loop still keeps P >= ~P_l under content variance
    assert varying.qos.mean_throughput > 12.0
    # content variance costs some throughput on a tight link
    assert varying.qos.mean_throughput <= fixed.qos.mean_throughput + 1.0
    # and the traces genuinely differ
    assert varying.qos.successful != fixed.qos.successful
