"""Unit tests for latency cost models (local CPU + GPU batch)."""

import numpy as np
import pytest

from repro.models import (
    EFFICIENTNET_B0,
    MOBILENET_V3_SMALL,
    PI_4B_1_2,
    GpuBatchModel,
    LocalLatencyModel,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_local_mean_latency_matches_table2_rate():
    model = LocalLatencyModel(PI_4B_1_2, MOBILENET_V3_SMALL)
    assert model.rate == pytest.approx(13.0)
    assert model.mean_latency == pytest.approx(1.0 / 13.0)


def test_local_samples_average_to_mean(rng):
    model = LocalLatencyModel(PI_4B_1_2, MOBILENET_V3_SMALL)
    samples = np.array([model.sample(rng) for _ in range(20_000)])
    assert samples.mean() == pytest.approx(model.mean_latency, rel=0.02)
    assert (samples > 0).all()


def test_local_zero_jitter_is_deterministic(rng):
    model = LocalLatencyModel(PI_4B_1_2, MOBILENET_V3_SMALL, jitter_sigma=0.0)
    assert model.sample(rng) == model.mean_latency


def test_gpu_batch_latency_is_affine():
    gpu = GpuBatchModel(base_latency=0.02, per_item=0.005, jitter_sigma=0.0)
    t1 = gpu.batch_latency(MOBILENET_V3_SMALL, 1)
    t10 = gpu.batch_latency(MOBILENET_V3_SMALL, 10)
    assert t1 == pytest.approx(0.025)
    assert t10 == pytest.approx(0.07)
    # slope equals per_item for a gpu_cost == 1 model
    assert (t10 - t1) / 9 == pytest.approx(0.005)


def test_gpu_cost_scales_per_item_only():
    gpu = GpuBatchModel(base_latency=0.02, per_item=0.005, jitter_sigma=0.0)
    light = gpu.batch_latency(MOBILENET_V3_SMALL, 10)
    heavy = gpu.batch_latency(EFFICIENTNET_B0, 10)
    assert heavy > light
    assert heavy - 0.02 == pytest.approx((light - 0.02) * EFFICIENTNET_B0.gpu_cost)


def test_gpu_batch_size_must_be_positive():
    gpu = GpuBatchModel()
    with pytest.raises(ValueError):
        gpu.batch_latency(MOBILENET_V3_SMALL, 0)


def test_gpu_batching_raises_throughput():
    """The whole point of §IV-A: bigger batches -> more frames/s."""
    gpu = GpuBatchModel(jitter_sigma=0.0)
    r1 = gpu.saturation_rate(MOBILENET_V3_SMALL, 1)
    r15 = gpu.saturation_rate(MOBILENET_V3_SMALL, 15)
    assert r15 > 2 * r1


def test_table_vi_peak_saturates_default_server():
    """The mixed Table VI workload must be able to saturate the GPU.

    §IV-E's narrative needs the 150 req/s peak (plus the device's
    offered load) to exceed capacity for the background's half
    MobileNet / half EfficientNetB0 mix.
    """
    gpu = GpuBatchModel(jitter_sigma=0.0)
    pair_time = gpu.batch_latency(MOBILENET_V3_SMALL, 15) + gpu.batch_latency(
        EFFICIENTNET_B0, 15
    )
    mixed_capacity = 30 / pair_time
    assert mixed_capacity < 150 + 30
    # ...but a lone device must comfortably fit (Fig 3 bw=10 regime)
    assert gpu.saturation_rate(MOBILENET_V3_SMALL, 15) > 30


def test_gpu_sample_jitter_averages_out(rng):
    gpu = GpuBatchModel()
    mean = gpu.batch_latency(MOBILENET_V3_SMALL, 15)
    samples = [gpu.sample(MOBILENET_V3_SMALL, 15, rng) for _ in range(10_000)]
    assert np.mean(samples) == pytest.approx(mean, rel=0.02)
