"""Chaos regression goldens (ISSUE 6 tentpole).

Every file under ``tests/goldens/scenarios/`` is a minimized
controller-breaking scenario found by ``repro search``, together with
the exact outcome it produced (controller QoS, oracle-witness QoS,
violation score).  Tier-1 replays each golden from scratch — on the
kernel fast path and under ``REPRO_SIM_SLOWPATH=1`` — and compares the
replayed outcome **byte-for-byte** against the committed one.

Intentional-change workflow (mirrors the trace goldens)::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_scenario_goldens.py
    git diff tests/goldens/scenarios/   # review the semantic change
    git add tests/goldens/scenarios/

The update path rewrites the files and fails the run, so a stale
``REPRO_UPDATE_GOLDENS`` in CI can never silently bless a regression.
"""

import json
import os
from pathlib import Path

import pytest

from repro.search import (
    GOLDEN_VERSION,
    EvalParams,
    dumps_golden,
    load_golden,
    replay_golden,
)
from repro.search.language import SPEC_VERSION, ScenarioSpec

GOLDEN_DIR = Path(__file__).parent / "goldens" / "scenarios"
GOLDEN_PATHS = sorted(GOLDEN_DIR.glob("*.json"))


def _replay_and_compare(path, monkeypatch, slowpath: bool):
    if slowpath:
        monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    else:
        monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    doc = load_golden(path)
    fresh = replay_golden(doc)

    if os.environ.get("REPRO_UPDATE_GOLDENS") == "1":
        path.write_text(dumps_golden({**doc, "expected": fresh}))
        pytest.fail(
            f"golden {path.name} regenerated (REPRO_UPDATE_GOLDENS=1); "
            "review with `git diff tests/goldens/scenarios/` and commit, "
            "then rerun without the flag"
        )

    assert fresh == doc["expected"], (
        f"{path.name}: replayed outcome diverges from committed golden\n"
        f"committed: {json.dumps(doc['expected'], sort_keys=True)}\n"
        f"replayed:  {json.dumps(fresh, sort_keys=True)}"
    )


@pytest.mark.parametrize("path", GOLDEN_PATHS, ids=[p.stem for p in GOLDEN_PATHS])
def test_golden_replays_byte_identically(path, monkeypatch):
    _replay_and_compare(path, monkeypatch, slowpath=False)


@pytest.mark.parametrize("path", GOLDEN_PATHS, ids=[p.stem for p in GOLDEN_PATHS])
def test_golden_replays_byte_identically_slow_kernel(path, monkeypatch):
    _replay_and_compare(path, monkeypatch, slowpath=True)


def test_at_least_two_goldens_committed():
    """The search must have contributed >= 2 regression scenarios."""
    assert len(GOLDEN_PATHS) >= 2, (
        f"expected >= 2 scenario goldens in {GOLDEN_DIR}, "
        f"found {len(GOLDEN_PATHS)}; regenerate with "
        "`repro search --seed 0 --budget 64 --out tests/goldens/scenarios`"
    )


@pytest.mark.parametrize("path", GOLDEN_PATHS, ids=[p.stem for p in GOLDEN_PATHS])
def test_golden_is_well_formed(path):
    doc = load_golden(path)
    assert doc["version"] == GOLDEN_VERSION
    assert doc["spec_version"] == SPEC_VERSION
    assert doc["name"] == path.stem
    # the scenario itself must pass spec validation
    spec = ScenarioSpec.from_dict(doc["scenario"])
    # and the committed outcome must describe a feasible failure at the
    # committed thresholds (that is what makes it a regression golden)
    params = EvalParams.from_dict(doc["params"])
    assert doc["expected"]["feasible"] is True
    assert doc["expected"]["score"] >= params.fail_threshold
    assert doc["expected"]["oracle_qos"] is not None
    assert spec.controller == "FrameFeedback"


def test_goldens_are_newline_terminated_canonical_json():
    """Committed files must round-trip through the canonical dumper."""
    for path in GOLDEN_PATHS:
        raw = path.read_text()
        assert raw.endswith("\n")
        assert dumps_golden(json.loads(raw)) == raw
