"""Golden-master transcripts for every pure controller.

The measurement sequence is a deterministic synthetic gauntlet hitting
every regime: clean ramp, partial congestion, total failure, recovery.
Golden targets are regenerated below and checked into this file as the
frozen contract — a change to any controller's arithmetic fails here
with the exact diverging step.
"""

import json

import pytest

from repro.control.aimd import AimdController
from repro.control.base import Measurement
from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    LocalOnlyController,
)
from repro.control.framefeedback import FrameFeedbackController
from repro.control.headroom import HeadroomController
from repro.control.transcript import (
    TranscriptMismatch,
    dumps,
    loads,
    record,
    replay,
)

FS = 30.0


def gauntlet():
    """The regime gauntlet: (T_window, T_last, rtt_p95, probe) tuples."""
    spec = (
        [(0.0, 0.0, 0.08, True)] * 12  # clean: ramp to F_s
        + [(5.0, 6.0, 0.20, False)] * 6  # partial congestion
        + [(20.0, 22.0, None, False)] * 6  # total failure
        + [(0.0, 0.0, 0.09, True)] * 8  # recovery
        + [(3.0, 0.0, 0.23, True)] * 4  # threshold hover
    )
    measurements = []
    target = 0.0
    for i, (t_avg, t_last, rtt, probe) in enumerate(spec):
        measurements.append(
            Measurement(
                time=float(i),
                frame_rate=FS,
                offload_target=target,
                offload_rate=target,
                offload_success_rate=max(0.0, target - t_avg),
                timeout_rate=t_avg,
                timeout_rate_last=t_last,
                local_rate=13.0,
                throughput=13.0 + max(0.0, target - t_avg),
                probe_ok=probe,
                rtt_mean=rtt,
                rtt_p95=rtt,
            )
        )
        target = min(max(target + 2.0, 0.0), FS)  # context only
    return measurements


CONTROLLERS = {
    "FrameFeedback": lambda: FrameFeedbackController(FS),
    "LocalOnly": lambda: LocalOnlyController(),
    "AlwaysOffload": lambda: AlwaysOffloadController(),
    "AllOrNothing": lambda: AllOrNothingController(),
    "AIMD": lambda: AimdController(FS),
    "Headroom": lambda: HeadroomController(FS, 0.25),
}


@pytest.mark.parametrize("name", sorted(CONTROLLERS))
def test_record_replay_round_trip(name):
    factory = CONTROLLERS[name]
    transcript = record(factory(), gauntlet())
    # serialize through JSON like the golden files would
    replay(factory, loads(dumps(transcript)))


@pytest.mark.parametrize("name", sorted(CONTROLLERS))
def test_transcript_is_deterministic(name):
    factory = CONTROLLERS[name]
    a = record(factory(), gauntlet())
    b = record(factory(), gauntlet())
    assert dumps(a) == dumps(b)


def test_mismatch_reports_step():
    transcript = record(FrameFeedbackController(FS), gauntlet())
    transcript["steps"][7]["target"] += 0.5  # corrupt one step
    with pytest.raises(TranscriptMismatch) as exc:
        replay(lambda: FrameFeedbackController(FS), transcript)
    assert exc.value.step == 7


def test_version_checked():
    transcript = record(LocalOnlyController(), gauntlet())
    transcript["version"] = 99
    with pytest.raises(ValueError):
        replay(lambda: LocalOnlyController(), transcript)


# ----------------------------------------------------------------------
# the frozen golden values for the paper's control law
# ----------------------------------------------------------------------
#: FrameFeedback targets over the gauntlet, frozen 2026-07 (Table IV
#: settings).  Regenerate ONLY for a deliberate control-law change:
#:   python -c "from tests.test_transcripts import *; \
#:              print([round(s['target'], 6) for s in \
#:              record(FrameFeedbackController(FS), gauntlet())['steps']])"
FRAMEFEEDBACK_GOLDEN = [
    3.0, 6.0, 9.0, 12.0, 14.82, 17.1228, 19.099512, 20.765664, 22.179332,
    23.375912, 24.389619, 25.248131,  # clean ramp: clamp then P-decay
    22.869432, 22.469432, 22.069432, 21.669432, 21.269432, 20.869432,
    # partial congestion: e = 3 - 5 = -2 each step -> -0.4 fps/step
    13.569432, 10.169432, 6.769432, 3.369432, 0.0, 0.0,
    # total failure: e = 3 - 20 = -17 -> P floorward, clamped at 0
    3.0, 6.0, 9.0, 12.0, 14.82, 17.1228, 19.099512, 20.765664,
    # recovery: same deterministic ramp shape as the start
    17.931538, 17.931538, 17.931538, 17.931538,
    # threshold hover: T == 0.1 F_s -> e = 0, derivative settles
]


def test_framefeedback_golden_targets():
    transcript = record(FrameFeedbackController(FS), gauntlet())
    actual = [round(s["target"], 6) for s in transcript["steps"]]
    assert len(actual) == len(FRAMEFEEDBACK_GOLDEN)
    for i, (a, g) in enumerate(zip(actual, FRAMEFEEDBACK_GOLDEN)):
        assert a == pytest.approx(g, abs=1e-6), f"step {i}: {a} != {g}"
