"""Substrate validation against queueing theory.

The link with fixed-size frames, no loss and no jitter is an exact
M/D/1 queue when fed Poisson arrivals.  Matching the Pollaczek-
Khinchine prediction is an *external* correctness check on the whole
event-scheduling path (heap ordering, serializer process, store
mechanics) — if any of it mis-ordered or double-counted, waits would
not land on the textbook curve.
"""

import numpy as np
import pytest

from repro.analysis.queueing import md1_wait, mg1_wait, mm1_wait, utilization
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.netem.packet import PACKET_PAYLOAD_BYTES
from repro.sim import Environment


# ----------------------------------------------------------------------
# formula sanity
# ----------------------------------------------------------------------
def test_utilization():
    assert utilization(10.0, 0.05) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        utilization(-1.0, 0.1)


def test_md1_against_known_values():
    # rho = 0.5, s = 1: W = 0.5 / (2 * 0.5) = 0.5
    assert md1_wait(0.5, 1.0) == pytest.approx(0.5)
    assert md1_wait(2.0, 1.0) == float("inf")


def test_mm1_is_twice_md1():
    assert mm1_wait(0.5, 1.0) == pytest.approx(2 * md1_wait(0.5, 1.0))


def test_mg1_interpolates():
    assert mg1_wait(0.5, 1.0, 0.0) == pytest.approx(md1_wait(0.5, 1.0))
    assert mg1_wait(0.5, 1.0, 1.0) == pytest.approx(mm1_wait(0.5, 1.0))
    with pytest.raises(ValueError):
        mg1_wait(0.5, 1.0, -0.1)


# ----------------------------------------------------------------------
# simulator vs theory
# ----------------------------------------------------------------------
def measure_link_wait(arrival_rate: float, n: int = 6000, seed: int = 0):
    """Mean queue wait of Poisson single-packet frames on the link."""
    env = Environment()
    # single-packet frames make serialization exactly deterministic
    nbytes = PACKET_PAYLOAD_BYTES
    cond = LinkConditions(
        bandwidth=10.0, loss=0.0, propagation_delay=0.0, jitter_sigma=0.0
    )
    link = Link(env, np.random.default_rng(seed), ConditionBox(cond),
                queue_bytes_cap=1e12)
    service = cond.packet_time(nbytes)

    send_times = {}
    waits = []

    def deliver(i):
        # delivery time = send + wait + service (no propagation)
        waits.append(env.now - send_times[i] - service)

    def feeder(env):
        rng = np.random.default_rng(seed + 1)
        for i in range(n):
            yield env.timeout(rng.exponential(1.0 / arrival_rate))
            send_times[i] = env.now
            link.send(nbytes, i, deliver)

    env.process(feeder(env))
    env.run()
    return float(np.mean(waits)), service


@pytest.mark.parametrize("rho", [0.3, 0.5, 0.7, 0.85])
def test_link_wait_matches_md1(rho):
    # service time for one full packet at bw=10
    probe_cond = LinkConditions(bandwidth=10.0)
    service = probe_cond.packet_time(PACKET_PAYLOAD_BYTES)
    arrival_rate = rho / service
    measured, s = measure_link_wait(arrival_rate)
    predicted = md1_wait(arrival_rate, s)
    # 6000 samples: agree within 10% (waits have high variance at high rho)
    assert measured == pytest.approx(predicted, rel=0.10), (
        f"rho={rho}: measured {measured * 1e3:.2f} ms "
        f"vs M/D/1 {predicted * 1e3:.2f} ms"
    )


def test_link_wait_negligible_at_low_load():
    measured, service = measure_link_wait(arrival_rate=1.0, n=500)
    assert measured < 0.1 * service
