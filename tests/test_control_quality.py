"""Tests for the adaptive-quality controller (§II-D closed-loop)."""

import pytest

from repro.control.base import Measurement
from repro.control.quality import DEFAULT_LADDER, AdaptiveQualityController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.netem.profiles import CONGESTED, IDEAL
from repro.workloads.schedules import steady_schedule

FS = 30.0


def measure(target, t_window, t_last=None, time=0.0):
    t_last = t_window if t_last is None else t_last
    return Measurement(
        time=time,
        frame_rate=FS,
        offload_target=target,
        offload_rate=target,
        offload_success_rate=max(0.0, target - t_window),
        timeout_rate=t_window,
        timeout_rate_last=t_last,
        local_rate=13.0,
        throughput=13.0,
    )


def test_validation():
    with pytest.raises(ValueError):
        AdaptiveQualityController(FS, ladder=())
    with pytest.raises(ValueError):
        AdaptiveQualityController(FS, ladder=(90.0, 50.0))
    with pytest.raises(ValueError):
        AdaptiveQualityController(FS, dwell=0)
    with pytest.raises(ValueError):
        AdaptiveQualityController(FS, start_index=10)


def test_starts_at_top_of_ladder():
    c = AdaptiveQualityController(FS)
    assert c.capture_quality == DEFAULT_LADDER[-1]


def test_sustained_congestion_steps_quality_down():
    c = AdaptiveQualityController(FS, dwell=3)
    for step in range(3):
        c.update(measure(8.0, 5.0, time=float(step)))  # congested
    assert c.capture_quality == DEFAULT_LADDER[-2]


def test_brief_congestion_does_not_move_quality():
    c = AdaptiveQualityController(FS, dwell=5)
    c.update(measure(8.0, 5.0))
    c.update(measure(25.0, 0.0))  # streak broken
    c.update(measure(8.0, 5.0))
    assert c.capture_quality == DEFAULT_LADDER[-1]


def test_quality_bounded_at_ladder_ends():
    c = AdaptiveQualityController(FS, dwell=1)
    for step in range(20):
        c.update(measure(5.0, 6.0, time=float(step)))
    assert c.capture_quality == DEFAULT_LADDER[0]  # clamped at bottom
    for step in range(40):
        c.update(measure(FS, 0.0, time=float(20 + step)))
    assert c.capture_quality == DEFAULT_LADDER[-1]  # and back at top


def test_rate_law_unchanged_by_quality_loop():
    """The inner FrameFeedback rate dynamics are untouched."""
    from repro.control.framefeedback import FrameFeedbackController

    adaptive = AdaptiveQualityController(FS)
    plain = FrameFeedbackController(FS)
    t_a = adaptive.initial_target(FS)
    t_p = plain.initial_target(FS)
    for step in range(20):
        t = 4.0 if step % 5 == 0 else 0.0
        t_a = adaptive.update(measure(t_a, t, time=float(step)))
        t_p = plain.update(measure(t_p, t, time=float(step)))
        assert t_a == pytest.approx(t_p)


def test_reset():
    c = AdaptiveQualityController(FS, dwell=1)
    c.update(measure(5.0, 6.0))
    c.reset()
    assert c.capture_quality == DEFAULT_LADDER[-1]


# ----------------------------------------------------------------------
# end-to-end
# ----------------------------------------------------------------------
def test_congested_link_drives_quality_down_end_to_end():
    result = run_scenario(
        Scenario(
            controller_factory=lambda c: AdaptiveQualityController(c.frame_rate),
            device=DeviceConfig(total_frames=2400),
            network=steady_schedule(CONGESTED),
            seed=0,
        )
    )
    q = result.traces.capture_quality
    assert q.values[-10:].mean() < DEFAULT_LADDER[-1]
    # smaller frames buy more successful offloads than plain FF
    from repro.experiments.standard import framefeedback_factory

    plain = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=2400),
            network=steady_schedule(CONGESTED),
            seed=0,
        )
    )
    assert result.qos.mean_throughput > plain.qos.mean_throughput


def test_ideal_link_keeps_quality_high():
    result = run_scenario(
        Scenario(
            controller_factory=lambda c: AdaptiveQualityController(c.frame_rate),
            device=DeviceConfig(total_frames=1200),
            network=steady_schedule(IDEAL),
            seed=0,
        )
    )
    assert result.traces.capture_quality.values[-5:].mean() == DEFAULT_LADDER[-1]
