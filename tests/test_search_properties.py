"""Property-based round-trip tests for the scenario language (ISSUE 6,
satellite: ``Scenario -> to_json -> from_json -> to_json`` must be
byte-identical, fault timelines and network schedules included).

Strategies generate specs across the whole language surface — explicit
phase rows, every generator kind, multi-window fault timelines,
populations, stack switches — and the properties assert the
determinism contract the golden files and the adversarial search both
lean on: normalization happens once, in ``from_dict``, and is
idempotent.
"""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.search import ScenarioSpec, compile_flat
from repro.search.language import FAULT_KINDS

# bounded, finite floats: the language accepts any float, but keeping
# the ranges physical avoids tripping validators unrelated to the
# round-trip property (positive durations, loss < 1, ...)
pos_float = st.floats(min_value=0.1, max_value=500.0,
                      allow_nan=False, allow_infinity=False)
small_float = st.floats(min_value=0.01, max_value=0.9,
                        allow_nan=False, allow_infinity=False)


@st.composite
def fault_entries(draw):
    kind = draw(st.sampled_from(sorted(FAULT_KINDS)))
    # build non-overlapping windows by construction: cumulative offsets
    n = draw(st.integers(min_value=1, max_value=3))
    t = 0.0
    windows = []
    for _ in range(n):
        gap = draw(st.floats(min_value=0.1, max_value=30.0,
                             allow_nan=False, allow_infinity=False))
        dur = draw(st.floats(min_value=0.1, max_value=10.0,
                             allow_nan=False, allow_infinity=False))
        start = t + gap
        windows.append([start, dur])
        t = start + dur
    entry = {"kind": kind, "windows": windows}
    for param, typ in FAULT_KINDS[kind].items():
        if draw(st.booleans()):
            continue  # parameters are optional; exercise sparseness
        if typ is float:
            entry[param] = draw(small_float if param in ("loss", "sigma")
                                else pos_float)
        elif typ is str:
            entry[param] = draw(st.sampled_from(["warm", "cold"]))
    return entry


@st.composite
def network_fields(draw):
    mode = draw(st.integers(min_value=0, max_value=3))
    if mode == 0:
        n = draw(st.integers(min_value=1, max_value=4))
        rows, t = [], 0.0
        for i in range(n):
            rows.append([t, draw(pos_float),
                         draw(st.floats(min_value=0.0, max_value=40.0,
                                        allow_nan=False, allow_infinity=False))])
            t += draw(st.floats(min_value=0.5, max_value=20.0,
                                allow_nan=False, allow_infinity=False))
        return rows
    if mode == 1:
        return {"kind": "phases", "rows": [[0.0, draw(pos_float), 0.0]]}
    if mode == 2:
        return {"kind": "diurnal", "period": draw(pos_float),
                "dip": draw(small_float), "step": draw(pos_float)}
    return {"kind": "mobility",
            "radius_far": draw(st.floats(min_value=10.0, max_value=80.0,
                                         allow_nan=False, allow_infinity=False)),
            "lap_seconds": draw(pos_float)}


@st.composite
def load_fields(draw):
    mode = draw(st.integers(min_value=0, max_value=2))
    if mode == 0:
        return [[0.0, draw(pos_float)]]
    if mode == 1:
        return {"kind": "flash_crowd", "base_rate": draw(pos_float),
                "peak_rate": 1000.0, "at": draw(pos_float)}
    return {"kind": "diurnal", "base_rate": 0.0, "peak_rate": draw(pos_float)}


@st.composite
def scenario_dicts(draw):
    data = {}
    if draw(st.booleans()):
        data["controller"] = draw(st.sampled_from(
            ["FrameFeedback", "AIMD", "Oracle", "Headroom"]))
    if draw(st.booleans()):
        data["seed"] = draw(st.integers(min_value=0, max_value=2**31))
    if draw(st.booleans()):
        data["duration"] = draw(pos_float)
    if draw(st.booleans()):
        data["device"] = {
            "total_frames": draw(st.integers(min_value=1, max_value=10_000)),
            "frame_rate": draw(pos_float),
        }
    if draw(st.booleans()):
        data["network"] = draw(network_fields())
    if draw(st.booleans()):
        data["load"] = draw(load_fields())
    if draw(st.booleans()):
        data["faults"] = draw(st.lists(fault_entries(), min_size=1, max_size=3))
    # a fault naming a server is only valid against a topology block
    # declaring that member (compile-time cross-check); also exercise
    # topologies with no named faults at all
    names_server = any("server" in f for f in data.get("faults", []))
    if names_server or draw(st.booleans()):
        topology = {"servers": ["warm", "cold"]}
        if draw(st.booleans()):
            topology["policy"] = draw(st.sampled_from(
                ["round_robin", "least_loaded", "latency_aware"]))
        if draw(st.booleans()):
            topology["probation"] = draw(pos_float)
        data["topology"] = topology
    if draw(st.booleans()):
        data["population"] = {"size": draw(st.integers(min_value=1, max_value=5))}
    for flag in ("resilience", "supervision"):
        if draw(st.booleans()):
            data[flag] = draw(st.booleans())
    return data


@settings(max_examples=80, deadline=None)
@given(scenario_dicts())
def test_json_round_trip_is_byte_identical(data):
    spec = ScenarioSpec.from_dict(data)
    text = spec.to_json()
    again = ScenarioSpec.from_json(text)
    assert again.to_json() == text
    assert again == spec and hash(again) == hash(spec)


@settings(max_examples=80, deadline=None)
@given(scenario_dicts())
def test_normalization_is_idempotent(data):
    spec = ScenarioSpec.from_dict(data)
    renormalized = ScenarioSpec.from_dict(spec.to_dict())
    assert renormalized.data == spec.data


@settings(max_examples=40, deadline=None)
@given(scenario_dicts())
def test_fault_timelines_and_windows_survive_the_round_trip(data):
    spec = ScenarioSpec.from_dict(data)
    again = ScenarioSpec.from_json(spec.to_json())
    assert again.faults == spec.faults
    for entry in again.faults:
        starts = [w[0] for w in entry["windows"]]
        assert starts == sorted(starts)


@settings(max_examples=40, deadline=None)
@given(scenario_dicts())
def test_compile_flat_is_deterministic(data):
    spec = ScenarioSpec.from_dict(data)
    first = compile_flat(spec)
    second = compile_flat(ScenarioSpec.from_json(spec.to_json()))
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
