"""Sim-twin tests: the same spec through simulator and live gateway.

The full twin comparison runs real wall-clock bursts, so it is bounded
tightly: one seed, two-second spec, one degraded run.  The spec
helpers are tested separately and cost nothing.
"""

import asyncio

import pytest

from repro.realtime.twin import (
    DEFAULT_MARGIN,
    DEGRADED_FACTOR,
    TwinPair,
    default_twin_spec,
    degraded_twin_spec,
    run_twin_async,
    sim_violation_fraction,
)


def run(coro):
    return asyncio.run(coro)


def test_default_spec_shape():
    spec = default_twin_spec(seed=7, duration=3.0)
    assert spec.seed == 7
    assert spec.data["duration"] == 3.0
    assert spec.faults == []
    # localhost twin contract: effectively infinite sim bandwidth
    assert spec.data["network"] == [[0.0, 1000.0, 0.0]]


def test_degraded_spec_attaches_deadline_busting_slowdown():
    spec = default_twin_spec(duration=2.0)
    degraded = degraded_twin_spec(spec)
    (fault,) = degraded.faults
    assert fault["kind"] == "server_slowdown"
    assert fault["factor"] == DEGRADED_FACTOR
    # a single-frame batch already exceeds the 250 ms deadline budget
    gpu = spec.data["gpu"]
    assert (gpu["base_latency"] + gpu["per_item"]) * DEGRADED_FACTOR > 0.25


def test_twin_pair_gap():
    pair = TwinPair(seed=0, sim_fraction=0.10, real_fraction=0.04)
    assert pair.gap == pytest.approx(0.06)


def test_sim_side_is_deterministic():
    spec = default_twin_spec(duration=2.0)
    first, detail = sim_violation_fraction(spec)
    second, _ = sim_violation_fraction(spec)
    assert first == second
    assert detail["total_frames"] > 0
    # a benign spec should sit near zero violations
    assert first <= DEFAULT_MARGIN


def test_twin_verdict_on_benign_spec():
    # one seed + directional degraded run: ~5 s of wall clock total.
    # 2.5 s is the shortest spec where the slowdown window is long
    # enough for the *simulator* to accrue deadline violations too.
    report = run(
        run_twin_async(default_twin_spec(duration=2.5), seeds=(0,), directional=True)
    )
    assert len(report.pairs) == 1
    assert report.equivalent, f"gap {report.mean_gap:.3f} exceeded {report.margin}"
    assert abs(report.mean_gap) <= report.margin
    # degrading the server raises violations on BOTH executions
    assert report.directional_holds is True
    sim_rise, real_rise = report.degraded_rise
    assert sim_rise > 0.0 and real_rise > 0.0
    assert report.verdict
    assert report.to_dict()["verdict"] == "PASS"
    # the wall-clock side kept its books closed while degraded
    for pair in report.pairs:
        assert pair.real_detail["accounting_closed"]


def test_twin_requires_seeds():
    with pytest.raises(ValueError):
        run(run_twin_async(default_twin_spec(), seeds=()))
