"""Property-based tests (hypothesis) for fleet failover.

Two families over random kill times, windows, and seeds:

* **exactly-once settlement** — every frame alive at a ServerKill
  reaches exactly one terminal state (success, timeout, or local drop);
  nothing double-settles, nothing is orphaned in flight, regardless of
  where the kill lands or how many frames it catches mid-air;
* **byte determinism** — identical fleet runs serialize byte-identically
  on the fast and slow kernels for any seed/kill combination.
"""

import json
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.chaos import run_chaos
from repro.fleet.chaos import fleet_chaos_scenario

kill_times = st.floats(min_value=2.0, max_value=12.0)
windows = st.floats(min_value=0.5, max_value=6.0)
seeds = st.integers(min_value=0, max_value=50)
policies = st.sampled_from(["round_robin", "least_loaded", "latency_aware"])


def _run(seed, kill_at, window, policy="round_robin", failover=True):
    chaos = fleet_chaos_scenario(
        seed=seed,
        total_frames=600,
        kill=("edge0", float(kill_at), float(window)),
        policy=policy,
        failover=failover,
    )
    return run_chaos(chaos)


@settings(max_examples=12, deadline=None)
@given(seed=seeds, kill_at=kill_times, window=windows, policy=policies)
def test_every_frame_settles_exactly_once(seed, kill_at, window, policy):
    result = _run(seed, kill_at, window, policy)
    qos = result.run.qos
    # exactly-once: the three terminal states partition the frame set
    assert qos.successful + qos.timeouts + qos.dropped_local == qos.total_frames
    # no orphaned in-flight frames after the run drains
    assert qos.extras["fleet.outstanding"] == 0.0
    # failover flow conservation: every frame moved out of the killed
    # server landed in exactly one healthy one
    ex = qos.extras
    out = sum(v for k, v in ex.items() if k.endswith(".failed_over_out"))
    moved_in = sum(v for k, v in ex.items() if k.endswith(".failed_over_in"))
    assert out == moved_in == ex["fleet.failovers"]


@settings(max_examples=12, deadline=None)
@given(seed=seeds, kill_at=kill_times, window=windows)
def test_failover_never_loses_more_than_ablation(seed, kill_at, window):
    on = _run(seed, kill_at, window, failover=True).run.qos
    off = _run(seed, kill_at, window, failover=False).run.qos
    # both settle every frame...
    assert on.successful + on.timeouts + on.dropped_local == on.total_frames
    assert off.successful + off.timeouts + off.dropped_local == off.total_frames
    # ...and rescue can only help: never fewer successes with failover
    assert on.successful >= off.successful


@settings(max_examples=6, deadline=None)
@given(seed=seeds, kill_at=kill_times, window=windows)
def test_fleet_run_is_deterministic_same_kernel(seed, kill_at, window):
    docs = [
        json.dumps(_run(seed, kill_at, window).to_dict(), sort_keys=True)
        for _ in range(2)
    ]
    assert docs[0] == docs[1]


def _subprocess_doc(seed, slowpath):
    """Serialize one fleet twin run in a child with the chosen kernel."""
    code = (
        "import json\n"
        "from repro.fleet.chaos import run_fleet_chaos\n"
        f"r = run_fleet_chaos(seed={seed}, total_frames=300)\n"
        "print(json.dumps(r.to_dict(), sort_keys=True))\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    if slowpath:
        env["REPRO_SIM_SLOWPATH"] = "1"
    else:
        env.pop("REPRO_SIM_SLOWPATH", None)
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        check=True,
    )
    return out.stdout


def test_fleet_twin_byte_identical_across_kernels():
    """Seeds-equal fleet runs serialize byte-identically on both kernels."""
    for seed in (0, 7):
        fast = _subprocess_doc(seed, slowpath=False)
        slow = _subprocess_doc(seed, slowpath=True)
        assert fast == slow, f"kernel divergence at seed {seed}"
