"""End-to-end runs on the other Table II hardware/model combinations.

The headline experiments all use the paper's chosen pair (Pi 4B r1.2 +
MobileNetV3Small).  The controller must work unchanged for the slower
hardware and heavier models — different ``P_l`` floors, same dynamics.
"""

import pytest

from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.models.device_profiles import PI_3B_1_2, PI_4B_1_2, PI_4B_1_4
from repro.models.zoo import EFFICIENTNET_B0, MOBILENET_V3_SMALL
from repro.netem.profiles import DEAD, IDEAL
from repro.workloads.schedules import steady_schedule


def run(profile, model, conditions, seconds=40, seed=0):
    device = DeviceConfig(
        profile=profile, model=model, total_frames=int(seconds * 30)
    )
    return run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=device,
            network=steady_schedule(conditions),
            seed=seed,
        )
    )


@pytest.mark.parametrize(
    "profile,model,pl",
    [
        (PI_3B_1_2, MOBILENET_V3_SMALL, 5.5),
        (PI_4B_1_2, EFFICIENTNET_B0, 2.5),
        (PI_4B_1_4, EFFICIENTNET_B0, 4.2),
    ],
)
def test_dead_link_floor_is_devices_own_pl(profile, model, pl):
    """On a dead link every device falls back to its own Table II rate."""
    result = run(profile, model, DEAD, seconds=60)
    tail = result.traces.throughput.values[-20:]
    assert tail.mean() == pytest.approx(pl, rel=0.2)
    # the probe fixed point is hardware-independent (0.1 F_s)
    po_tail = result.traces.offload_target.values[-20:]
    assert po_tail.mean() == pytest.approx(3.0, abs=1.5)


@pytest.mark.parametrize(
    "profile,model",
    [
        (PI_3B_1_2, MOBILENET_V3_SMALL),
        (PI_4B_1_2, EFFICIENTNET_B0),
    ],
)
def test_ideal_link_saturates_regardless_of_hardware(profile, model):
    """With a good link, offloading hides the local hardware entirely."""
    result = run(profile, model, IDEAL, seconds=40)
    # steady window before the stream ends (drain buckets excluded)
    assert result.traces.throughput.mean_over(25.0, 39.0) > 27.0


def test_slow_hardware_gains_the_most_from_offloading():
    """§I's motivation: the weaker the device, the bigger the win."""
    weak = run(PI_4B_1_2, EFFICIENTNET_B0, IDEAL, seconds=40)
    strong = run(PI_4B_1_4, MOBILENET_V3_SMALL, IDEAL, seconds=40)
    # both saturate at ~F_s, but the speedup factor over local differs
    weak_gain = weak.qos.mean_throughput / 2.5
    strong_gain = strong.qos.mean_throughput / 13.4
    assert weak_gain > 4 * strong_gain
