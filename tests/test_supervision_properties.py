"""Property-based tests (hypothesis) for crash/restart recovery.

Two families over random crash schedules and seeds:

* warm-restart recovery is *deterministic* — identical crash schedules
  and seeds serialize to byte-identical transcripts and identical
  supervision stats;
* checkpointing strictly helps — for any mid-ramp crash time, the warm
  run re-settles in strictly fewer control periods (and strictly lower
  MTTR) than the cold run of the same schedule.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.config import DeviceConfig
from repro.experiments.chaos import ChaosScenario, run_chaos
from repro.experiments.scenario import Scenario
from repro.experiments.standard import framefeedback_factory
from repro.faults import ControllerKill, FaultTimeline, settle_periods_after_restart
from repro.supervision import SupervisionConfig

FS = 30.0


def _single_kill_chaos(seed, crash_at, duration, checkpoint_enabled):
    """One ControllerKill over a 60 s supervised run (fresh injectors)."""
    return ChaosScenario(
        base=Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=1800),
            seed=seed,
        ),
        injectors=[
            ControllerKill(
                FaultTimeline.from_rows([(float(crash_at), float(duration))])
            )
        ],
        supervision=SupervisionConfig(checkpoint_enabled=checkpoint_enabled),
    )


crash_times = st.integers(min_value=12, max_value=25)
durations = st.integers(min_value=2, max_value=6)
seeds = st.integers(min_value=0, max_value=50)


@settings(max_examples=8, deadline=None)
@given(seed=seeds, crash_at=crash_times, duration=durations)
def test_warm_restart_recovery_is_deterministic(seed, crash_at, duration):
    runs = [
        run_chaos(_single_kill_chaos(seed, crash_at, duration, True))
        for _ in range(2)
    ]
    a, b = runs
    assert json.dumps(a.transcript, sort_keys=True) == json.dumps(
        b.transcript, sort_keys=True
    )
    assert a.supervision == b.supervision
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


@settings(max_examples=8, deadline=None)
@given(seed=seeds, crash_at=crash_times, duration=durations)
def test_warm_beats_cold_across_random_crash_times(seed, crash_at, duration):
    warm = run_chaos(_single_kill_chaos(seed, crash_at, duration, True))
    cold = run_chaos(_single_kill_chaos(seed, crash_at, duration, False))
    restart = float(crash_at + duration)

    _, warm_periods = settle_periods_after_restart(
        warm.run.traces.offload_target, float(crash_at), restart
    )
    _, cold_periods = settle_periods_after_restart(
        cold.run.traces.offload_target, float(crash_at), restart
    )
    # By t=12 the ramp is far from initial_target=0, so a cold restart
    # can never re-settle as fast as a checkpoint restore.
    assert warm_periods < cold_periods

    warm_mttr = warm.supervision["mttr"]["controller"]
    cold_mttr = cold.supervision["mttr"]["controller"]
    assert len(warm_mttr) == len(cold_mttr) == 1
    assert warm_mttr[0] < cold_mttr[0]
