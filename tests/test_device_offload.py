"""Integration tests for the offload client's deadline bookkeeping."""

import numpy as np
import pytest

from repro.device.camera import Frame
from repro.device.offload import OffloadClient
from repro.models.latency import GpuBatchModel
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.server.server import EdgeServer
from repro.sim import Environment


class Harness:
    """Device-side offload path with injectable link/server behaviour."""

    def __init__(self, conditions=None, gpu=None, deadline=0.25, seed=0):
        self.env = Environment()
        box = ConditionBox(conditions or LinkConditions(jitter_sigma=0.0))
        self.uplink = Link(self.env, np.random.default_rng(seed), box, "up")
        self.downlink = Link(self.env, np.random.default_rng(seed + 1), box, "down")
        self.server = EdgeServer(
            self.env,
            np.random.default_rng(seed + 2),
            cost_model=gpu or GpuBatchModel(jitter_sigma=0.0),
        )
        self.successes = []
        self.timeouts = []
        self.probes = []
        self.client = OffloadClient(
            self.env,
            uplink=self.uplink,
            downlink=self.downlink,
            server=self.server,
            tenant="pi",
            model_name="mobilenet_v3_small",
            deadline=deadline,
            response_bytes=160,
            on_success=lambda f, rtt: self.successes.append((f.frame_id, rtt)),
            on_timeout=lambda f, why: self.timeouts.append((f.frame_id, why)),
            on_probe_result=self.probes.append,
        )

    def send(self, frame_id=0, nbytes=11_700, is_probe=False):
        self.client.send(Frame(frame_id, self.env.now, nbytes), is_probe=is_probe)


def test_fast_path_counts_success_with_rtt():
    h = Harness()
    h.send(frame_id=7)
    h.env.run(until=1.0)
    assert len(h.successes) == 1
    fid, rtt = h.successes[0]
    assert fid == 7
    assert 0 < rtt < 0.25
    assert h.client.last_rtt == pytest.approx(rtt)
    assert h.timeouts == []


def test_dead_link_times_out_at_deadline():
    h = Harness(conditions=LinkConditions(bandwidth=1.0, jitter_sigma=0.0))
    h.send(frame_id=1)
    h.env.run(until=1.0)
    assert h.timeouts == [(1, "deadline")]
    assert h.successes == []


def test_timeout_fires_exactly_at_deadline():
    h = Harness(conditions=LinkConditions(bandwidth=1.0, jitter_sigma=0.0))
    h.send()
    # not yet timed out just before the deadline
    h.env.run(until=0.249)
    assert h.client.timeouts == 0
    h.env.run(until=0.251)
    assert h.client.timeouts == 1


def test_late_success_already_counted_as_timeout():
    """A response arriving after the deadline must not double-count."""
    slow_gpu = GpuBatchModel(base_latency=0.5, per_item=0.0, jitter_sigma=0.0)
    h = Harness(gpu=slow_gpu)
    h.send()
    h.env.run(until=2.0)
    assert len(h.timeouts) == 1
    assert h.successes == []
    assert h.client.outstanding_count == 0


def test_server_rejection_counts_as_timeout_immediately():
    gpu = GpuBatchModel(base_latency=0.08, per_item=0.0, jitter_sigma=0.0)
    h = Harness(gpu=gpu)
    # Server batch limit 1: second/third concurrent requests rejected.
    h.server.batch_limit = 1

    def feeder(env):
        h.send(frame_id=0)
        yield env.timeout(0.005)
        h.send(frame_id=1)
        h.send(frame_id=2)

    h.env.process(feeder(h.env))
    h.env.run(until=1.0)
    reasons = dict(h.timeouts)
    assert "rejected" in reasons.values()
    assert h.client.rejections >= 1
    # every frame settled exactly once
    assert len(h.successes) + len(h.timeouts) == 3


def test_pipelining_keeps_multiple_outstanding():
    h = Harness(gpu=GpuBatchModel(base_latency=0.1, per_item=0.0, jitter_sigma=0.0))

    def feeder(env):
        for i in range(5):
            h.send(frame_id=i)
            yield env.timeout(0.01)

    h.env.process(feeder(h.env))
    h.env.run(until=0.06)
    assert h.client.outstanding_count >= 3  # overlapped, not serialized
    h.env.run(until=2.0)
    # all settle; at least the first batch-worth make the deadline
    assert len(h.successes) + len(h.timeouts) == 5
    assert len(h.successes) >= 3


def test_probe_reports_result_not_success():
    h = Harness()
    h.send(frame_id=-1, is_probe=True)
    h.env.run(until=1.0)
    assert h.probes == [True]
    assert h.successes == []
    assert h.client.probes_sent == 1
    assert h.client.sent == 0


def test_probe_failure_reported_false():
    h = Harness(conditions=LinkConditions(bandwidth=1.0, jitter_sigma=0.0))
    h.send(frame_id=-1, is_probe=True)
    h.env.run(until=1.0)
    assert h.probes == [False]


def test_every_frame_settles_exactly_once_under_loss():
    h = Harness(conditions=LinkConditions(bandwidth=10.0, loss=0.3, jitter_sigma=0.0))

    def feeder(env):
        for i in range(50):
            h.send(frame_id=i)
            yield env.timeout(1 / 30)

    h.env.process(feeder(h.env))
    h.env.run(until=10.0)
    assert len(h.successes) + len(h.timeouts) == 50
    assert h.client.outstanding_count == 0
    settled_ids = [fid for fid, _ in h.successes] + [fid for fid, _ in h.timeouts]
    assert sorted(settled_ids) == list(range(50))
