"""Property-based tests (hypothesis) for the fault-schedule algebra."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, build_runtime
from repro.faults import (
    BandwidthCollapse,
    BurstLoss,
    CameraStall,
    CpuThrottle,
    FaultOverlapError,
    FaultTimeline,
    FaultWindow,
    LatencySpike,
    ServerCrash,
    ServerSlowdown,
    validate_plan,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
_starts = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
_durations = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)

window_st = st.builds(FaultWindow, start=_starts, duration=_durations)


@st.composite
def disjoint_windows(draw, max_windows=6):
    """A valid (non-overlapping) window list, built left to right."""
    n = draw(st.integers(min_value=0, max_value=max_windows))
    windows, cursor = [], 0.0
    for _ in range(n):
        gap = draw(st.floats(min_value=0.0, max_value=10.0))
        duration = draw(st.floats(min_value=0.01, max_value=10.0))
        start = cursor + gap
        windows.append(FaultWindow(start, duration))
        cursor = start + duration  # exactly the window's end, bit-for-bit
    return windows


# ----------------------------------------------------------------------
# timeline algebra
# ----------------------------------------------------------------------
@given(windows=disjoint_windows())
@settings(max_examples=100, deadline=None)
def test_active_at_consistent_with_installed_windows(windows):
    tl = FaultTimeline(windows)
    assert tl.total_active == sum(w.duration for w in windows)
    for w in windows:
        mid = w.start + w.duration / 2
        assert tl.active_at(w.start)
        assert tl.active_at(mid)
        # half-open: w itself never covers its own end (though a
        # back-to-back successor starting exactly there may)
        assert tl.window_at(w.end) is not w
        assert tl.window_at(mid) == w


@given(windows=st.lists(window_st, min_size=2, max_size=8))
@settings(max_examples=100, deadline=None)
def test_timeline_accepts_iff_no_overlap(windows):
    ordered = sorted(windows, key=lambda w: w.start)
    has_overlap = any(
        b.start < a.end for a, b in zip(ordered, ordered[1:])
    )
    try:
        FaultTimeline(windows)
        built = True
    except FaultOverlapError:
        built = False
    assert built == (not has_overlap)


@given(a=disjoint_windows(), b=disjoint_windows())
@settings(max_examples=100, deadline=None)
def test_union_activity_is_pointwise_or(a, b):
    ta, tb = FaultTimeline(a), FaultTimeline(b)
    merged = ta.union(tb)
    probes = [w.start for w in [*a, *b]] + [
        w.start + w.duration / 2 for w in [*a, *b]
    ] + [w.end + 1e-6 for w in [*a, *b]]
    for t in probes:
        assert merged.active_at(t) == (ta.active_at(t) or tb.active_at(t))
    # coalesced: strictly non-overlapping and non-touching windows
    for u, v in zip(merged.windows, merged.windows[1:]):
        assert v.start > u.end


@given(windows=disjoint_windows(), now=st.floats(min_value=0.0, max_value=150.0))
@settings(max_examples=100, deadline=None)
def test_clipped_from_preserves_future_activity(windows, now):
    tl = FaultTimeline(windows)
    clipped = tl.clipped_from(now)
    # nothing active before `now` survives
    assert all(w.start >= now for w in clipped)
    # activity strictly after `now` is preserved pointwise
    for w in windows:
        mid = max(w.start + w.duration / 2, now + 1e-9)
        if w.end > mid:
            assert clipped.active_at(mid) == tl.active_at(mid)
    # remaining downtime never exceeds the original
    assert clipped.total_active <= tl.total_active + 1e-9


@given(windows=disjoint_windows())
@settings(max_examples=50, deadline=None)
def test_next_transition_walks_every_boundary(windows):
    tl = FaultTimeline(windows)
    t, seen, bound = -1.0, [], 2 * len(windows) + 1
    for _ in range(bound):
        nxt = tl.next_transition(t)
        if math.isinf(nxt):
            break
        seen.append(nxt)
        t = nxt
    expected = sorted({w.start for w in windows} | {w.end for w in windows})
    assert seen == expected


# ----------------------------------------------------------------------
# plan composition
# ----------------------------------------------------------------------
@given(a=disjoint_windows(max_windows=3), b=disjoint_windows(max_windows=3))
@settings(max_examples=60, deadline=None)
def test_plan_validation_matches_timeline_overlap(a, b):
    """Same-resource injectors compose iff their timelines are disjoint;
    different-resource injectors always compose."""
    ta, tb = FaultTimeline(a), FaultTimeline(b)
    crash_a = ServerCrash(ta)
    crash_b = ServerCrash(tb)
    throttle_b = CpuThrottle(tb, factor=2.0)

    validate_plan([crash_a, throttle_b])  # distinct resources: always fine

    try:
        validate_plan([crash_a, crash_b])
        accepted = True
    except FaultOverlapError:
        accepted = False
    assert accepted == (not ta.overlaps_timeline(tb))


# ----------------------------------------------------------------------
# the kernel survives arbitrary fault timelines
# ----------------------------------------------------------------------
_INJECTOR_BUILDERS = [
    lambda tl: ServerCrash(tl),
    lambda tl: ServerSlowdown(tl, factor=3.0),
    lambda tl: CpuThrottle(tl, factor=2.0),
    lambda tl: CameraStall(tl),
    lambda tl: BandwidthCollapse(tl, factor=0.05),
    lambda tl: LatencySpike(tl, extra_delay=0.2),
    lambda tl: BurstLoss(tl, loss=0.3, burst=4.0),
]


@st.composite
def short_timelines(draw, horizon=8.0, max_windows=3):
    n = draw(st.integers(min_value=1, max_value=max_windows))
    windows, cursor = [], 0.0
    for _ in range(n):
        gap = draw(st.floats(min_value=0.0, max_value=horizon / 2))
        duration = draw(st.floats(min_value=0.05, max_value=horizon / 2))
        start = cursor + gap
        windows.append(FaultWindow(start, duration))
        cursor = start + duration
    return FaultTimeline(windows)


@given(
    picks=st.lists(
        st.tuples(st.integers(min_value=0, max_value=len(_INJECTOR_BUILDERS) - 1),
                  short_timelines()),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=20, deadline=None)
def test_arbitrary_fault_plans_never_crash_the_kernel(picks, seed):
    """Any composable plan runs to completion: no kernel exception, the
    clock reaches the horizon, and every override heals at the end of
    its windows (timelines here all end before the run does)."""
    injectors = [_INJECTOR_BUILDERS[i](tl) for i, tl in picks]
    # keep only a composable subset (drop same-resource overlaps)
    plan = []
    for inj in injectors:
        try:
            validate_plan(plan + [inj])
        except FaultOverlapError:
            continue
        plan.append(inj)

    horizon = max(inj.timeline.last_end for inj in plan) + 2.0
    rt = build_runtime(
        Scenario(
            controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
            device=DeviceConfig(total_frames=int(horizon * 30) + 30),
            seed=seed,
        )
    )
    targets = rt.fault_targets()
    for inj in plan:
        inj.install(rt.env, targets)
    result = rt.run(until=horizon)

    assert rt.env.now == horizon
    assert result.qos.total_frames > 0
    # all overrides healed
    assert rt.server.gpu.slowdown == 1.0
    assert rt.device.local.slowdown == 1.0
