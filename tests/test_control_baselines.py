"""Unit tests for the §IV-B baseline controllers."""

from repro.control.base import Measurement
from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    LocalOnlyController,
)

FS = 30.0


def measure(probe_ok=None):
    return Measurement(
        time=0.0,
        frame_rate=FS,
        offload_target=0.0,
        offload_rate=0.0,
        offload_success_rate=0.0,
        timeout_rate=0.0,
        timeout_rate_last=0.0,
        local_rate=13.0,
        throughput=13.0,
        probe_ok=probe_ok,
    )


def test_local_only_never_offloads():
    c = LocalOnlyController()
    assert c.initial_target(FS) == 0.0
    assert c.update(measure()) == 0.0
    assert not c.wants_probe


def test_always_offload_everything_always():
    c = AlwaysOffloadController()
    assert c.initial_target(FS) == FS
    assert c.update(measure()) == FS
    assert not c.wants_probe


def test_all_or_nothing_wants_probe():
    assert AllOrNothingController.wants_probe


def test_all_or_nothing_starts_local():
    c = AllOrNothingController()
    assert c.initial_target(FS) == 0.0
    # no probe settled yet: stay local
    assert c.update(measure(probe_ok=None)) == 0.0


def test_all_or_nothing_switches_on_probe():
    c = AllOrNothingController()
    assert c.update(measure(probe_ok=True)) == FS
    assert c.offloading
    assert c.update(measure(probe_ok=False)) == 0.0
    assert not c.offloading


def test_all_or_nothing_holds_last_decision_without_new_probe():
    c = AllOrNothingController()
    c.update(measure(probe_ok=True))
    assert c.update(measure(probe_ok=None)) == FS


def test_all_or_nothing_reset():
    c = AllOrNothingController()
    c.update(measure(probe_ok=True))
    c.reset()
    assert not c.offloading
    assert c.update(measure(probe_ok=None)) == 0.0


def test_controller_names_for_reports():
    assert LocalOnlyController().name == "LocalOnly"
    assert AlwaysOffloadController().name == "AlwaysOffload"
    assert AllOrNothingController().name == "AllOrNothing"
