"""Fast path vs. REPRO_SIM_SLOWPATH: byte-identical runs.

The PR-3 kernel optimizations (cancellable timers, allocation-free
sleeps, call_later timers) must be pure speedups: a same-seed run on
the fast path and on the ``REPRO_SIM_SLOWPATH=1`` escape hatch must
produce *byte-identical* control transcripts and QoS dicts.  Pinned
for the Fig. 3 scenario and a PR-1 chaos scenario, per ISSUE 3.
"""

import dataclasses
import json

import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.chaos import ChaosScenario, RecordingController, run_chaos
from repro.experiments.scenario import Scenario, run_scenario
from repro.faults import BandwidthCollapse, FaultTimeline, GpuContention, ServerCrash
from repro.sim import Environment
from repro.workloads.schedules import table_v_schedule


def _fig3_snapshot(seed: int = 0, total_frames: int = 600) -> bytes:
    """Control transcript + QoS of the Fig. 3 scenario, as bytes."""
    device = DeviceConfig(total_frames=total_frames)
    rec = {}

    def factory(cfg):
        rec["c"] = RecordingController(FrameFeedbackController(cfg.frame_rate))
        return rec["c"]

    result = run_scenario(
        Scenario(
            controller_factory=factory,
            device=device,
            network=table_v_schedule(),
            duration=device.stream_duration + 1.0,
            seed=seed,
        )
    )
    return json.dumps(
        {
            "transcript": rec["c"].transcript(device.frame_rate),
            "qos": dataclasses.asdict(result.qos),
        },
        sort_keys=True,
    ).encode()


def _chaos_snapshot(seed: int = 3, total_frames: int = 600) -> bytes:
    """A PR-1 chaos scenario: crash + contention + bandwidth collapse."""
    result = run_chaos(
        ChaosScenario(
            base=Scenario(
                controller_factory=lambda cfg: FrameFeedbackController(
                    cfg.frame_rate
                ),
                device=DeviceConfig(total_frames=total_frames),
                seed=seed,
            ),
            injectors=[
                ServerCrash(FaultTimeline.from_rows([(8.0, 6.0)])),
                GpuContention(
                    FaultTimeline.from_rows([(18.0, 4.0)]), mean_factor=3.0
                ),
                BandwidthCollapse(
                    FaultTimeline.from_rows([(26.0, 5.0)]), factor=0.05
                ),
            ],
        )
    )
    return json.dumps(
        {
            "transcript": result.transcript,
            "qos": dataclasses.asdict(result.run.qos),
        },
        sort_keys=True,
    ).encode()


def test_slowpath_flag_reaches_new_environments(monkeypatch):
    assert not Environment().slowpath
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    assert Environment().slowpath


def test_fig3_fast_vs_slowpath_bit_identical(monkeypatch):
    fast = _fig3_snapshot()
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    slow = _fig3_snapshot()
    assert fast == slow


def test_chaos_fast_vs_slowpath_bit_identical(monkeypatch):
    fast = _chaos_snapshot()
    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    slow = _chaos_snapshot()
    assert fast == slow


def test_fig3_same_seed_repeatable():
    assert _fig3_snapshot() == _fig3_snapshot()


@pytest.mark.parametrize("seed", [0, 7])
def test_fig3_qos_insensitive_to_stats_instrumentation(seed, monkeypatch):
    """EnvStats must observe, never perturb."""
    from repro.sim import core as sim_core

    plain = _fig3_snapshot(seed=seed, total_frames=300)
    sink: list = []
    sim_core.capture_env_stats(sink)
    try:
        instrumented = _fig3_snapshot(seed=seed, total_frames=300)
    finally:
        sim_core.capture_env_stats(None)
    assert plain == instrumented
    assert sink and any(s.events_processed for s in sink)
