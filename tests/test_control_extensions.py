"""Tests for the extension controllers: AIMD, Oracle, Reservation."""

import numpy as np
import pytest

from repro.control.aimd import AimdController
from repro.control.base import Measurement
from repro.control.oracle import (
    OracleController,
    expected_frame_wire_time,
    link_capacity_fps,
    mixed_server_capacity,
)
from repro.models.latency import GpuBatchModel
from repro.netem.link import LinkConditions
from repro.workloads.schedules import table_v_schedule, table_vi_schedule

FS = 30.0


def measure(target, t_rate, time=0.0):
    return Measurement(
        time=time,
        frame_rate=FS,
        offload_target=target,
        offload_rate=target,
        offload_success_rate=max(0.0, target - t_rate),
        timeout_rate=t_rate,
        timeout_rate_last=t_rate,
        local_rate=13.0,
        throughput=13.0,
    )


# ----------------------------------------------------------------------
# AIMD
# ----------------------------------------------------------------------
def test_aimd_validation():
    with pytest.raises(ValueError):
        AimdController(0.0)
    with pytest.raises(ValueError):
        AimdController(FS, increase=0.0)
    with pytest.raises(ValueError):
        AimdController(FS, decrease_factor=1.0)
    with pytest.raises(ValueError):
        AimdController(FS, floor=-1.0)


def test_aimd_additive_increase():
    c = AimdController(FS, increase=2.0, floor=1.0)
    t = c.initial_target(FS)
    t2 = c.update(measure(t, 0.0))
    assert t2 == pytest.approx(t + 2.0)


def test_aimd_multiplicative_decrease():
    c = AimdController(FS, decrease_factor=0.5)
    c._target = 20.0
    assert c.update(measure(20.0, 5.0)) == pytest.approx(10.0)


def test_aimd_respects_floor_and_ceiling():
    c = AimdController(FS, floor=1.0)
    for _ in range(50):
        c.update(measure(c.target, 10.0))
    assert c.target == pytest.approx(1.0)
    c.reset()
    for _ in range(50):
        c.update(measure(c.target, 0.0))
    assert c.target == FS


def test_aimd_sawtooth_under_boundary():
    """AIMD keeps re-testing the violation boundary: its trace under a
    hard capacity limit oscillates instead of settling."""
    c = AimdController(FS, increase=2.0, decrease_factor=0.5)
    cap = 12.0
    trace = []
    for step in range(60):
        t_rate = max(0.0, c.target - cap)  # everything above cap fails
        trace.append(c.update(measure(c.target, t_rate, float(step))))
    tail = np.array(trace[20:])
    assert tail.max() > cap  # overshoots the cliff
    assert tail.min() < cap * 0.8  # then overcorrects
    assert np.std(tail) > 1.0  # persistent sawtooth


# ----------------------------------------------------------------------
# Oracle capacity math
# ----------------------------------------------------------------------
def test_wire_time_lossless_equals_serialization():
    cond = LinkConditions(bandwidth=10.0, loss=0.0, jitter_sigma=0.0)
    frame = 11_700
    t = expected_frame_wire_time(cond, frame)
    assert t == pytest.approx(0.033, abs=0.005)


def test_wire_time_grows_with_loss():
    clean = LinkConditions(bandwidth=10.0, loss=0.0)
    lossy = LinkConditions(bandwidth=10.0, loss=0.07)
    assert expected_frame_wire_time(lossy, 11_700) > expected_frame_wire_time(
        clean, 11_700
    )


def test_link_capacity_regimes_match_calibration():
    frame = 11_700
    assert link_capacity_fps(LinkConditions(bandwidth=10.0), frame) > 30.0
    cap4 = link_capacity_fps(LinkConditions(bandwidth=4.0), frame)
    assert 10.0 < cap4 < 16.0
    assert link_capacity_fps(LinkConditions(bandwidth=1.0), frame) < 4.0


def test_mixed_capacity_below_single_model():
    gpu = GpuBatchModel(jitter_sigma=0.0)
    assert mixed_server_capacity(gpu, True) < mixed_server_capacity(gpu, False)


def test_oracle_follows_table_v():
    oracle = OracleController(
        frame_rate=FS,
        frame_bytes=11_700,
        deadline=0.25,
        network=table_v_schedule(),
    )
    assert oracle.target_at(5.0) > 29.0  # bw=10: (nearly) full offload
    assert 5.0 < oracle.target_at(35.0) < 16.0  # bw=4: partial
    assert oracle.target_at(50.0) == 0.0  # bw=1: infeasible


def test_oracle_follows_table_vi():
    oracle = OracleController(
        frame_rate=FS,
        frame_bytes=11_700,
        deadline=0.25,
        load=table_vi_schedule(),
    )
    unloaded = oracle.target_at(5.0)
    peak = oracle.target_at(55.0)  # 150 req/s
    assert unloaded > 29.0
    assert peak < 5.0
    # intermediate load: partial offloading
    assert 5.0 < oracle.target_at(15.0) < 29.0  # 90 req/s


def test_oracle_update_uses_measurement_time():
    oracle = OracleController(
        frame_rate=FS, frame_bytes=11_700, deadline=0.25, network=table_v_schedule()
    )
    assert oracle.update(measure(0, 0, time=50.0)) == 0.0  # bw=1 phase


# ----------------------------------------------------------------------
# Reservation (integration smoke lives in test_experiments_extended)
# ----------------------------------------------------------------------
def test_reservation_controller_validation():
    from repro.control.reservation import ReservationController

    with pytest.raises(ValueError):
        ReservationController(0.0, broker=None, tenant="x")
