"""Unit tests for sim resources (counted resources, priority queues)."""

import pytest

from repro.sim import Environment, PriorityResource, Resource


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, res, tag):
        with res.request() as req:
            yield req
            granted.append((tag, env.now))
            yield env.timeout(5.0)

    for tag in range(3):
        env.process(user(env, res, tag))
    env.run(until=1.0)
    assert [g[0] for g in granted] == [0, 1]
    assert res.count == 2
    assert res.queue_length == 1


def test_release_grants_next_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    events = []

    def user(env, res, tag, hold):
        with res.request() as req:
            yield req
            events.append(("start", tag, env.now))
            yield env.timeout(hold)
        events.append(("end", tag, env.now))

    env.process(user(env, res, "a", 2.0))
    env.process(user(env, res, "b", 1.0))
    env.run()
    assert events == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 3.0),
    ]


def test_context_manager_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def bad(env, res):
        with res.request() as req:
            yield req
            raise ValueError("boom")

    def good(env, res, marker):
        with res.request() as req:
            yield req
            marker["got_it"] = env.now

    marker = {}
    p = env.process(bad(env, res))
    env.process(good(env, res, marker))
    with pytest.raises(ValueError):
        env.run(until=p)
    env.run()
    assert marker["got_it"] == 0.0
    assert res.count == 0


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    env.process(holder(env, res))
    env.run(until=0.1)
    queued = res.request()
    assert res.queue_length == 1
    queued.cancel()
    assert res.queue_length == 0


def test_fifo_ordering_within_same_priority():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1.0)

    for tag in "abcd":
        env.process(user(env, res, tag))
    env.run()
    assert order == list("abcd")


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    def user(env, res, tag, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(0.5)

    env.process(holder(env, res))
    env.process(user(env, res, "low", 5, 0.1))
    env.process(user(env, res, "high", 1, 0.2))
    env.run()
    assert order == ["high", "low"]


def test_count_and_queue_length_track_state():
    env = Environment()
    res = Resource(env, capacity=1)
    assert res.count == 0 and res.queue_length == 0

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    env.process(user(env, res))
    env.process(user(env, res))
    env.run(until=0.5)
    assert res.count == 1
    assert res.queue_length == 1
    env.run()
    assert res.count == 0
    assert res.queue_length == 0
