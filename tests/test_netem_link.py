"""Unit + property tests for the emulated link."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem import (
    BANDWIDTH_UNIT_BPS,
    ConditionBox,
    Link,
    LinkConditions,
    packets_for,
)
from repro.netem.packet import PACKET_OVERHEAD_BYTES, PACKET_PAYLOAD_BYTES, wire_bytes
from repro.sim import Environment


def make_link(env, conditions=None, seed=0, cap=131_072.0):
    box = ConditionBox(conditions or LinkConditions())
    return Link(env, np.random.default_rng(seed), box, queue_bytes_cap=cap), box


# ----------------------------------------------------------------------
# packetization
# ----------------------------------------------------------------------
def test_packets_for_boundaries():
    assert packets_for(0) == 1
    assert packets_for(1) == 1
    assert packets_for(PACKET_PAYLOAD_BYTES) == 1
    assert packets_for(PACKET_PAYLOAD_BYTES + 1) == 2


def test_packets_for_negative_rejected():
    with pytest.raises(ValueError):
        packets_for(-1)


def test_wire_bytes_adds_per_packet_overhead():
    assert wire_bytes(PACKET_PAYLOAD_BYTES) == (
        PACKET_PAYLOAD_BYTES + PACKET_OVERHEAD_BYTES
    )


# ----------------------------------------------------------------------
# conditions
# ----------------------------------------------------------------------
def test_conditions_validation():
    with pytest.raises(ValueError):
        LinkConditions(bandwidth=0)
    with pytest.raises(ValueError):
        LinkConditions(loss=1.0)
    with pytest.raises(ValueError):
        LinkConditions(propagation_delay=-1)


def test_packet_time_matches_bandwidth():
    cond = LinkConditions(bandwidth=10.0)
    expected = (1448 + PACKET_OVERHEAD_BYTES) * 8.0 / (10.0 * BANDWIDTH_UNIT_BPS)
    assert cond.packet_time(1448) == pytest.approx(expected)


def test_condition_box_notifies_listeners():
    box = ConditionBox(LinkConditions())
    seen = []
    box.subscribe(seen.append)
    new = LinkConditions(bandwidth=4.0)
    box.set(new)
    assert seen == [new]
    assert box.conditions is new


# ----------------------------------------------------------------------
# delivery timing
# ----------------------------------------------------------------------
def test_lossless_delivery_time_is_serialization_plus_propagation():
    env = Environment()
    cond = LinkConditions(bandwidth=10.0, loss=0.0, jitter_sigma=0.0)
    link, _ = make_link(env, cond)
    nbytes = 11_700
    arrived = {}
    link.send(nbytes, "frame", lambda p: arrived.setdefault("t", env.now))
    env.run(until=5.0)
    n_pkts = packets_for(nbytes)
    serialization = sum(
        cond.packet_time(min(PACKET_PAYLOAD_BYTES, nbytes - i * PACKET_PAYLOAD_BYTES))
        for i in range(n_pkts)
    )
    assert arrived["t"] == pytest.approx(serialization + cond.propagation_delay, rel=1e-6)


def test_frames_queue_behind_each_other():
    env = Environment()
    cond = LinkConditions(bandwidth=1.0, loss=0.0, jitter_sigma=0.0)
    link, _ = make_link(env, cond)
    times = []
    link.send(11_700, "a", lambda p: times.append(env.now))
    link.send(11_700, "b", lambda p: times.append(env.now))
    env.run(until=5.0)
    assert len(times) == 2
    # second frame waits the first one's full serialization
    assert times[1] - times[0] > 0.2


def test_dead_link_violates_250ms_deadline():
    """Calibration invariant: at bw=1 no frame can make the deadline."""
    env = Environment()
    cond = LinkConditions(bandwidth=1.0, loss=0.0, jitter_sigma=0.0)
    link, _ = make_link(env, cond)
    arrived = {}
    link.send(11_700, "f", lambda p: arrived.setdefault("t", env.now))
    env.run(until=5.0)
    assert arrived["t"] > 0.250


def test_good_link_fits_30fps_within_deadline():
    """Calibration invariant: bw=10 sustains 30 fps well under 250 ms."""
    env = Environment()
    cond = LinkConditions(bandwidth=10.0, loss=0.0, jitter_sigma=0.0)
    link, _ = make_link(env, cond)
    times = []

    def sender(env, link):
        for i in range(60):
            link.send(11_700, i, lambda p: times.append(env.now))
            yield env.timeout(1 / 30)

    env.process(sender(env, link))
    env.run(until=10.0)
    assert len(times) == 60
    # steady-state inter-arrival == frame period (no queue growth)
    gaps = np.diff(times[10:])
    assert gaps.mean() == pytest.approx(1 / 30, rel=0.05)


def test_queue_overflow_drops_and_counts():
    env = Environment()
    cond = LinkConditions(bandwidth=1.0, loss=0.0, jitter_sigma=0.0)
    link, _ = make_link(env, cond, cap=30_000)
    delivered = []
    for i in range(10):
        link.send(11_700, i, lambda p: delivered.append(p))
    env.run(until=60.0)
    assert link.stats.frames_dropped_overflow > 0
    assert (
        link.stats.frames_delivered + link.stats.frames_dropped_overflow
        == link.stats.frames_sent
    )
    # FIFO survivors
    assert delivered == sorted(delivered)


def test_loss_inflates_delivery_time():
    cond_clean = LinkConditions(bandwidth=10.0, loss=0.0, jitter_sigma=0.0)
    cond_lossy = LinkConditions(bandwidth=10.0, loss=0.30, jitter_sigma=0.0)

    def one_delivery(cond, seed):
        env = Environment()
        link, _ = make_link(env, cond, seed=seed)
        t = {}
        link.send(11_700, "f", lambda p: t.setdefault("at", env.now))
        env.run(until=30.0)
        return t.get("at")

    clean = one_delivery(cond_clean, 0)
    lossy = [one_delivery(cond_lossy, s) for s in range(12)]
    lossy = [t for t in lossy if t is not None]
    assert lossy, "all frames abandoned at 30% loss is implausible"
    assert np.mean(lossy) > clean


def test_extreme_loss_abandons_frames():
    env = Environment()
    cond = LinkConditions(bandwidth=10.0, loss=0.95, jitter_sigma=0.0)
    link, _ = make_link(env, cond)
    delivered = []
    for i in range(5):
        link.send(11_700, i, lambda p: delivered.append(p))
    env.run(until=300.0)
    assert link.stats.frames_dropped_loss > 0


def test_condition_change_applies_to_next_frame():
    env = Environment()
    link, box = make_link(env, LinkConditions(bandwidth=1.0, jitter_sigma=0.0))
    times = {}

    link.send(11_700, "slow-start", lambda p: times.setdefault("a", env.now))
    env.run(until=2.0)
    box.set(LinkConditions(bandwidth=10.0, jitter_sigma=0.0))
    link.send(11_700, "fast", lambda p: times.setdefault("b", env.now))
    env.run(until=4.0)
    assert times["b"] - 2.0 < times["a"] / 2


def test_negative_payload_rejected():
    env = Environment()
    link, _ = make_link(env)
    with pytest.raises(ValueError):
        link.send(-1, "x", lambda p: None)


# ----------------------------------------------------------------------
# conservation property
# ----------------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=40_000), min_size=1, max_size=30),
    loss=st.sampled_from([0.0, 0.05, 0.3]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_every_frame_is_delivered_or_dropped_exactly_once(sizes, loss, seed):
    env = Environment()
    cond = LinkConditions(bandwidth=10.0, loss=loss, jitter_sigma=0.0)
    link, _ = make_link(env, cond, seed=seed, cap=80_000)
    delivered = []
    for i, nbytes in enumerate(sizes):
        link.send(nbytes, i, lambda p: delivered.append(p))
    env.run(until=3600.0)
    stats = link.stats
    assert stats.frames_sent == len(sizes)
    assert stats.frames_delivered == len(delivered)
    assert stats.frames_delivered + stats.dropped == stats.frames_sent
    assert sorted(set(delivered)) == sorted(delivered)  # no duplicates
    # with zero jitter, survivors arrive in FIFO order
    assert delivered == sorted(delivered)
