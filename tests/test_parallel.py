"""Tests for the process-parallel experiment runner."""

import numpy as np
import pytest

from repro.experiments.parallel import (
    controller_sweep_configs,
    execute_config,
    map_jobs,
    run_many,
    seed_sweep_configs,
)

BASE = {
    "controller": "FrameFeedback",
    "seed": 0,
    "device": {"total_frames": 450},
    "network": [[0, 4, 0]],
}


def test_execute_config_runs_one_scenario():
    summary = execute_config(BASE)
    assert summary.controller == "FrameFeedback"
    assert summary.total_frames == 450
    assert summary.mean_throughput > 10.0
    assert summary.traces == {}


def test_execute_config_returns_requested_traces():
    summary = execute_config(BASE, trace_names=("throughput", "offload_target"))
    assert set(summary.traces) == {"throughput", "offload_target"}
    assert summary.traces["throughput"].size > 5


def test_execute_config_rejects_unknown_trace():
    with pytest.raises(ValueError):
        execute_config(BASE, trace_names=("nonsense",))


def test_seed_and_controller_sweep_builders():
    seeds = seed_sweep_configs(BASE, range(3))
    assert [c["seed"] for c in seeds] == [0, 1, 2]
    assert all(c["controller"] == "FrameFeedback" for c in seeds)
    ctrls = controller_sweep_configs(BASE, ["LocalOnly", "AIMD"])
    assert [c["controller"] for c in ctrls] == ["LocalOnly", "AIMD"]


def test_run_many_empty():
    assert run_many([]) == []


def test_run_many_validates_workers():
    with pytest.raises(ValueError):
        run_many([BASE], workers=0)


def test_run_many_serial_equals_parallel():
    configs = seed_sweep_configs(BASE, range(4))
    serial = run_many(configs, workers=1)
    parallel = run_many(configs, workers=2)
    assert [s.mean_throughput for s in serial] == [
        p.mean_throughput for p in parallel
    ]
    assert [s.seed for s in parallel] == [0, 1, 2, 3]  # input order kept


def test_map_jobs_preserves_submission_order():
    jobs = list(range(7))
    assert map_jobs(_double, jobs, workers=3) == [0, 2, 4, 6, 8, 10, 12]
    assert map_jobs(_double, jobs, workers=1) == [0, 2, 4, 6, 8, 10, 12]
    assert map_jobs(_double, []) == []
    with pytest.raises(ValueError):
        map_jobs(_double, jobs, workers=0)


def _double(x: int) -> int:
    return 2 * x


def test_run_many_matches_direct_execution():
    configs = controller_sweep_configs(BASE, ["FrameFeedback", "LocalOnly"])
    results = run_many(configs, workers=2)
    by_name = {r.controller: r for r in results}
    assert by_name["LocalOnly"].mean_throughput == pytest.approx(13.0, abs=1.5)
    assert (
        by_name["FrameFeedback"].mean_throughput
        > by_name["LocalOnly"].mean_throughput
    )
