"""Tests for the asyncio inference gateway (admission, shed, shutdown).

Real sockets on localhost, real seconds — every scenario is kept to a
few hundred milliseconds so the file stays CI-friendly.
"""

import asyncio

import pytest

from repro.realtime import protocol
from repro.realtime.client import AsyncSocketRemote
from repro.realtime.gateway import GatewayConfig, InferenceGateway


def run(coro):
    return asyncio.run(coro)


def test_config_validation():
    with pytest.raises(ValueError):
        GatewayConfig(batch_limit=0)
    with pytest.raises(ValueError):
        GatewayConfig(queue_limit=0)
    with pytest.raises(ValueError):
        GatewayConfig(tenant_rate=-1.0)
    with pytest.raises(ValueError):
        GatewayConfig(read_timeout=0.0)


def test_round_trip_and_closed_accounting():
    async def scenario():
        async with InferenceGateway(GatewayConfig()) as gateway:
            remote = AsyncSocketRemote(gateway.address, tenant="dev0", frame_bytes=256)
            for _ in range(3):
                reply = await remote.exchange(deadline=0.5)
                assert reply.ok
            await remote.close()
            assert gateway.stats.completed == 3
            assert gateway.stats.received == 3
            assert gateway.stats.accounting_closed
            # persistent connection: three frames, one socket
            assert gateway.stats.connections == 1

    run(scenario())


def test_admission_denial_carries_retry_hint():
    async def scenario():
        config = GatewayConfig(tenant_rate=1.0, tenant_burst=1.0)
        async with InferenceGateway(config) as gateway:
            remote = AsyncSocketRemote(gateway.address, tenant="greedy", frame_bytes=64)
            first = await remote.exchange(deadline=0.5)
            assert first.ok
            second = await remote.exchange(deadline=0.5)
            await remote.close()
            assert second.status == protocol.STATUS_OVERLOADED
            assert second.retry_after is not None and second.retry_after > 0
            assert gateway.stats.admission_denied == 1
            assert gateway.stats.accounting_closed

    run(scenario())


def test_admission_meters_per_tenant():
    async def scenario():
        config = GatewayConfig(tenant_rate=1.0, tenant_burst=1.0)
        async with InferenceGateway(config) as gateway:
            greedy = AsyncSocketRemote(gateway.address, tenant="a", frame_bytes=64)
            other = AsyncSocketRemote(gateway.address, tenant="b", frame_bytes=64)
            assert (await greedy.exchange(deadline=0.5)).ok
            assert (
                await greedy.exchange(deadline=0.5)
            ).status == protocol.STATUS_OVERLOADED
            # tenant b has its own bucket: unaffected by a's burn
            assert (await other.exchange(deadline=0.5)).ok
            await greedy.close()
            await other.close()

    run(scenario())


def test_queue_overflow_sheds_with_overloaded():
    async def scenario():
        # GPU slow enough that concurrent frames pile up behind it
        config = GatewayConfig(queue_limit=2, base_latency=0.15, per_item=0.0)
        async with InferenceGateway(config) as gateway:
            remote = AsyncSocketRemote(gateway.address, tenant="dev", frame_bytes=64)
            replies = await asyncio.gather(
                *(remote.exchange(deadline=2.0) for _ in range(6))
            )
            await remote.close()
            statuses = sorted(r.status for r in replies)
            assert protocol.STATUS_OVERLOADED in statuses
            assert gateway.stats.shed_overflow >= 1
            # shed replies carry a drain-rate comeback hint
            shed = [r for r in replies if r.status == protocol.STATUS_OVERLOADED]
            assert all(r.retry_after is not None for r in shed)
            assert gateway.stats.accounting_closed

    run(scenario())


def test_expired_frames_are_shed_not_computed():
    async def scenario():
        config = GatewayConfig(base_latency=0.12, per_item=0.0, batch_limit=1)
        async with InferenceGateway(config) as gateway:
            remote = AsyncSocketRemote(gateway.address, tenant="dev", frame_bytes=64)
            other = AsyncSocketRemote(gateway.address, tenant="dev2", frame_bytes=64)
            # first frame occupies the GPU for ~120ms; the second has a
            # 10ms budget and must be EXPIRED when the GPU reaches it
            first_task = asyncio.ensure_future(remote.exchange(deadline=1.0))
            await asyncio.sleep(0.03)
            second = await other.exchange(deadline=0.01)
            first = await first_task
            await remote.close()
            await other.close()
            assert first.ok
            assert second.status == protocol.STATUS_EXPIRED
            assert gateway.stats.expired == 1
            assert gateway.stats.accounting_closed

    run(scenario())


def test_graceful_stop_drains_queue_as_rejected():
    async def scenario():
        config = GatewayConfig(base_latency=0.3, per_item=0.0, batch_limit=1)
        gateway = await InferenceGateway(config).start()
        remote = AsyncSocketRemote(gateway.address, tenant="dev", frame_bytes=64)
        other = AsyncSocketRemote(gateway.address, tenant="dev2", frame_bytes=64)
        in_gpu = asyncio.ensure_future(remote.exchange(deadline=None))
        queued = asyncio.ensure_future(other.exchange(deadline=None))
        await asyncio.sleep(0.05)
        await gateway.stop()
        replies = await asyncio.gather(in_gpu, queued)
        await remote.close()
        await other.close()
        # both frames got a terminal reply (the in-GPU one settles when
        # stop() cancels the GPU loop mid-batch)
        assert all(r.status == protocol.STATUS_REJECTED for r in replies)
        assert gateway.stats.rejected == 2
        assert gateway.stats.accounting_closed

    run(scenario())


def test_abort_resets_connections_but_closes_accounting():
    async def scenario():
        config = GatewayConfig(base_latency=0.3, per_item=0.0)
        gateway = await InferenceGateway(config).start()
        remote = AsyncSocketRemote(gateway.address, tenant="dev", frame_bytes=64)
        inflight = asyncio.ensure_future(remote.exchange(deadline=None))
        await asyncio.sleep(0.05)
        await gateway.stop(abort=True)
        # the client sees either the internal REJECTED settle (if the
        # handler flushed it before the transport died) or a reset —
        # but never a hang, and never two answers
        try:
            reply = await inflight
            assert reply.status == protocol.STATUS_REJECTED
        except (ConnectionError, OSError, protocol.ProtocolError):
            pass
        await remote.close()
        # ... but the gateway's own ledger still closed (settled as
        # rejected internally when the GPU task was cancelled)
        assert gateway.stats.accounting_closed

    run(scenario())


def test_chaos_knob_reset_fraction_is_deterministic():
    async def scenario():
        async with InferenceGateway(GatewayConfig()) as gateway:
            gateway.reset_fraction = 0.5
            outcomes = []
            for _ in range(4):
                remote = AsyncSocketRemote(
                    gateway.address, tenant="dev", frame_bytes=64, connect_timeout=0.5
                )
                try:
                    reply = await asyncio.wait_for(
                        remote.exchange(deadline=0.5), timeout=1.0
                    )
                    outcomes.append(reply.ok)
                except (ConnectionError, OSError, protocol.ProtocolError):
                    outcomes.append(False)
                await remote.close()
            # credit accumulator: exactly every second connection reset
            assert outcomes == [True, False, True, False]
            assert gateway.stats.resets == 2

    run(scenario())


def test_malformed_frame_counts_protocol_error():
    async def scenario():
        async with InferenceGateway(GatewayConfig()) as gateway:
            reader, writer = await asyncio.open_connection(*gateway.address)
            writer.write(b"\x00garbage-not-a-v2-frame")
            await writer.drain()
            # gateway drops the connection without a reply
            assert await reader.read(64) == b""
            writer.close()
            await asyncio.sleep(0.02)
            assert gateway.stats.protocol_errors == 1
            assert gateway.stats.received == 0

    run(scenario())
