"""Unit + property tests for the discrete PID core (Eq. 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.pid import DiscretePid, PidGains


def test_pure_proportional():
    pid = DiscretePid(PidGains(kp=2.0))
    assert pid.step(3.0, dt=1.0) == pytest.approx(6.0)
    assert pid.step(-1.5, dt=1.0) == pytest.approx(-3.0)


def test_integral_accumulates():
    pid = DiscretePid(PidGains(kp=0.0, ki=1.0))
    assert pid.step(1.0, dt=1.0) == pytest.approx(1.0)
    assert pid.step(1.0, dt=1.0) == pytest.approx(2.0)
    assert pid.step(1.0, dt=0.5) == pytest.approx(2.5)


def test_derivative_on_error_change():
    pid = DiscretePid(PidGains(kp=0.0, kd=2.0))
    assert pid.step(1.0, dt=1.0) == 0.0  # no previous error yet
    assert pid.step(3.0, dt=1.0) == pytest.approx(4.0)  # de=2, /dt=1
    assert pid.step(3.0, dt=1.0) == 0.0  # unchanged error


def test_derivative_respects_dt():
    pid = DiscretePid(PidGains(kp=0.0, kd=1.0))
    pid.step(0.0, dt=0.5)
    assert pid.step(1.0, dt=0.5) == pytest.approx(2.0)


def test_output_clamping():
    pid = DiscretePid(PidGains(kp=1.0), output_min=-1.0, output_max=2.0)
    assert pid.step(100.0, dt=1.0) == 2.0
    assert pid.step(-100.0, dt=1.0) == -1.0


def test_clamp_bounds_validated():
    with pytest.raises(ValueError):
        DiscretePid(PidGains(kp=1.0), output_min=1.0, output_max=0.0)


def test_dt_must_be_positive():
    pid = DiscretePid(PidGains(kp=1.0))
    with pytest.raises(ValueError):
        pid.step(1.0, dt=0.0)


def test_anti_windup_freezes_integral_at_clamp():
    """While clamped high, same-sign error must not grow the integral."""
    pid = DiscretePid(PidGains(kp=0.0, ki=1.0), output_max=1.0)
    for _ in range(10):
        pid.step(5.0, dt=1.0)
    assert pid.integral == 0.0  # never charged
    # opposite error unwinds immediately instead of fighting windup
    out = pid.step(-0.5, dt=1.0)
    assert out == pytest.approx(-0.5)


def test_anti_windup_symmetric_low_side():
    pid = DiscretePid(PidGains(kp=0.0, ki=1.0), output_min=-1.0)
    for _ in range(10):
        pid.step(-5.0, dt=1.0)
    assert pid.integral == 0.0
    assert pid.step(0.5, dt=1.0) == pytest.approx(0.5)


def test_reset_clears_state():
    pid = DiscretePid(PidGains(kp=1.0, ki=1.0, kd=1.0))
    pid.step(1.0, dt=1.0)
    pid.reset()
    assert pid.integral == 0.0
    assert pid.previous_error is None


@given(
    errors=st.lists(
        st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50
    ),
    kp=st.floats(min_value=0.0, max_value=10.0),
    ki=st.floats(min_value=0.0, max_value=1.0),
    kd=st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=150, deadline=None)
def test_output_always_within_clamps(errors, kp, ki, kd):
    pid = DiscretePid(PidGains(kp=kp, ki=ki, kd=kd), output_min=-3.0, output_max=1.0)
    for e in errors:
        out = pid.step(e, dt=1.0)
        assert -3.0 <= out <= 1.0


@given(error=st.floats(min_value=-1e6, max_value=1e6))
@settings(max_examples=100, deadline=None)
def test_proportional_sign_follows_error(error):
    pid = DiscretePid(PidGains(kp=1.0))
    out = pid.step(error, dt=1.0)
    assert out == pytest.approx(error)
