"""Tests for mobility-driven network conditions."""

import pytest

from repro.workloads.mobility import (
    RadioModel,
    Trajectory,
    Waypoint,
    mobility_schedule,
    patrol_loop,
)


# ----------------------------------------------------------------------
# trajectory
# ----------------------------------------------------------------------
def test_trajectory_validation():
    with pytest.raises(ValueError):
        Trajectory([])
    with pytest.raises(ValueError):
        Trajectory([Waypoint(1.0, 0, 0)])  # must start at 0
    with pytest.raises(ValueError):
        Trajectory([Waypoint(0, 0, 0), Waypoint(0, 1, 1)])
    with pytest.raises(ValueError):
        Waypoint(-1.0, 0, 0)


def test_position_interpolates_linearly():
    traj = Trajectory([Waypoint(0, 0, 0), Waypoint(10, 100, 0)])
    assert traj.position_at(5.0) == (50.0, 0.0)
    assert traj.position_at(-1.0) == (0.0, 0.0)  # clamped
    assert traj.position_at(99.0) == (100.0, 0.0)


def test_distance_to_point():
    traj = Trajectory([Waypoint(0, 3, 4)])
    assert traj.distance_to(0.0, (0.0, 0.0)) == pytest.approx(5.0)


# ----------------------------------------------------------------------
# radio model
# ----------------------------------------------------------------------
def test_radio_validation():
    with pytest.raises(ValueError):
        RadioModel(bw_ref=0)
    with pytest.raises(ValueError):
        RadioModel(bw_floor=5, bw_ceiling=2)
    with pytest.raises(ValueError):
        RadioModel(loss_onset=50, loss_edge=40)
    with pytest.raises(ValueError):
        RadioModel(loss_max=1.0)


def test_bandwidth_decreases_with_distance():
    radio = RadioModel()
    bws = [radio.bandwidth_at(d) for d in (5, 15, 30, 60, 120)]
    assert all(a >= b for a, b in zip(bws, bws[1:]))
    assert bws[0] == radio.bw_ceiling  # at reference distance, capped
    assert bws[-1] >= radio.bw_floor


def test_loss_zero_near_grows_far():
    radio = RadioModel(loss_onset=40, loss_edge=80, loss_max=0.25)
    assert radio.loss_at(30) == 0.0
    assert radio.loss_at(60) == pytest.approx(0.125)
    assert radio.loss_at(500) == pytest.approx(0.25)


# ----------------------------------------------------------------------
# schedule derivation
# ----------------------------------------------------------------------
def test_mobility_schedule_follows_motion():
    traj = Trajectory([Waypoint(0, 5, 0), Waypoint(30, 100, 0)])
    sched = mobility_schedule(traj, step=2.0)
    near = sched.at(0.0)
    far = sched.at(29.9)
    assert near.bandwidth > far.bandwidth
    assert near.loss == 0.0
    assert far.loss > 0.0


def test_mobility_schedule_validation():
    traj = Trajectory([Waypoint(0, 5, 0)])
    with pytest.raises(ValueError):
        mobility_schedule(traj, step=0.0)


def test_patrol_loop_sweeps_regimes():
    traj = patrol_loop(lap_seconds=60.0, laps=2)
    assert traj.duration == pytest.approx(120.0)
    sched = mobility_schedule(traj, step=2.0)
    bws = [p.conditions.bandwidth for p in sched.phases]
    assert max(bws) == pytest.approx(10.0)
    assert min(bws) < 2.0
    with pytest.raises(ValueError):
        patrol_loop(radius_near=10, radius_far=5)


def test_framefeedback_on_patrol_beats_baselines():
    """End to end: the guard's loop degrades and restores the link
    twice; FrameFeedback rides the sweep."""
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import standard_controllers

    sched = mobility_schedule(patrol_loop(lap_seconds=60.0, laps=1), step=2.0)
    qos = {}
    for name, factory in standard_controllers().items():
        result = run_scenario(
            Scenario(
                controller_factory=factory,
                device=DeviceConfig(total_frames=1800),
                network=sched,
                seed=0,
            )
        )
        qos[name] = result.qos.mean_throughput
    assert qos["FrameFeedback"] >= max(qos.values()) - 0.5
    assert qos["FrameFeedback"] > qos["LocalOnly"] + 2.0
