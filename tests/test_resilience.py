"""Unit tests for the resilience primitives (budget, breaker, taxonomy).

Every component here is simulation-free by design — time is an explicit
argument — so these tests need no event loop.
"""

import dataclasses

import pytest

from repro.control.base import Measurement
from repro.control.transcript import _measurement_from_dict
from repro.metrics.taxonomy import FailureKind, FailureTaxonomy
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    ResilienceConfig,
    ResilienceLayer,
    RetryBudget,
)


# ----------------------------------------------------------------------
# retry budget
# ----------------------------------------------------------------------
def test_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        RetryBudget(rate=1.0, burst=0.0)
    budget = RetryBudget(rate=1.0, burst=1.0)
    with pytest.raises(ValueError):
        budget.try_acquire(0.0, cost=0.0)
    with pytest.raises(ValueError):
        budget.tokens(1.0) and budget.tokens(0.5)  # time went backwards


def test_budget_burst_then_metered():
    budget = RetryBudget(rate=2.0, burst=4.0)
    grants = [budget.try_acquire(0.0) for _ in range(6)]
    assert grants == [True] * 4 + [False] * 2
    assert budget.granted == 4 and budget.denied == 2
    # half a second refills one token at rate 2/s
    assert budget.try_acquire(0.5)
    assert not budget.try_acquire(0.5)


def test_budget_never_exceeds_burst():
    budget = RetryBudget(rate=10.0, burst=3.0)
    assert budget.tokens(1000.0) == pytest.approx(3.0)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
def make_breaker(**kw) -> CircuitBreaker:
    defaults = dict(
        trip_threshold=3,
        backoff_initial=0.5,
        backoff_multiplier=2.0,
        backoff_max=4.0,
        close_after=1,
    )
    defaults.update(kw)
    return CircuitBreaker(ResilienceConfig(**defaults))


def test_breaker_trips_on_consecutive_failures_only():
    b = make_breaker()
    b.record_failure(0.0)
    b.record_failure(0.1)
    b.record_success(0.2)  # streak broken
    b.record_failure(0.3)
    b.record_failure(0.4)
    assert b.is_closed
    b.record_failure(0.5)
    assert b.is_open
    assert b.opened_count == 1
    assert b.transitions == [(0.5, BreakerState.OPEN)]


def test_breaker_open_ignores_data_path_stragglers():
    b = make_breaker()
    for t in range(3):
        b.record_failure(float(t))
    assert b.is_open
    b.record_success(3.0)  # late success must not close it
    b.record_failure(3.1)  # nor re-trip it
    assert b.is_open
    assert b.opened_count == 1


def test_breaker_probe_protocol_and_exponential_backoff():
    b = make_breaker()
    with pytest.raises(RuntimeError):
        b.on_probe_sent(0.0)  # no probes while closed
    for t in range(3):
        b.record_failure(float(t))
    assert b.current_backoff == pytest.approx(0.5)

    b.on_probe_sent(2.5)
    assert b.state is BreakerState.HALF_OPEN
    b.record_probe(False, 2.75)
    assert b.is_open
    assert b.current_backoff == pytest.approx(1.0)

    b.on_probe_sent(3.75)
    b.record_probe(False, 4.0)
    assert b.current_backoff == pytest.approx(2.0)
    b.on_probe_sent(6.0)
    b.record_probe(False, 6.25)
    assert b.current_backoff == pytest.approx(4.0)
    b.on_probe_sent(10.25)
    b.record_probe(False, 10.5)
    assert b.current_backoff == pytest.approx(4.0)  # capped

    b.on_probe_sent(14.5)
    b.record_probe(True, 14.75)
    assert b.is_closed
    assert b.current_backoff == pytest.approx(0.5)  # reset on close
    assert b.probe_times == [2.5, 3.75, 6.0, 10.25, 14.5]


def test_breaker_close_after_requires_consecutive_probe_successes():
    b = make_breaker(close_after=2)
    for t in range(3):
        b.record_failure(float(t))
    b.on_probe_sent(3.0)
    b.record_probe(True, 3.1)
    assert b.state is BreakerState.HALF_OPEN  # one success is not enough
    b.on_probe_sent(3.5)
    b.record_probe(True, 3.6)
    assert b.is_closed


def test_breaker_retry_after_hint_seeds_backoff():
    b = make_breaker()
    b.record_failure(0.0)
    b.record_failure(0.1)
    b.record_failure(0.2, retry_after=2.5)
    assert b.is_open
    assert b.current_backoff == pytest.approx(2.5)
    # the hint is clamped to the ceiling
    b2 = make_breaker()
    for t in range(2):
        b2.record_failure(float(t))
    b2.record_failure(2.0, retry_after=100.0)
    assert b2.current_backoff == pytest.approx(4.0)


def test_breaker_on_open_callback_fires_once_per_trip():
    b = make_breaker()
    opened = []
    b.on_open = lambda: opened.append(True)
    for t in range(3):
        b.record_failure(float(t))
    assert opened == [True]
    b.on_probe_sent(1.0)
    b.record_probe(False, 1.25)  # HALF_OPEN -> OPEN is not a new trip
    assert opened == [True]


def test_breaker_state_value_encoding():
    b = make_breaker()
    assert b.state_value() == 0.0
    for t in range(3):
        b.record_failure(float(t))
    assert b.state_value() == 1.0
    b.on_probe_sent(1.0)
    assert b.state_value() == 0.5


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kw",
    [
        {"retry_after_frac": 0.0},
        {"retry_after_frac": 1.0},
        {"min_reply_frac": 1.0},
        {"max_retries": -1},
        {"retry_budget_rate": 0.0},
        {"trip_threshold": 0},
        {"backoff_initial": 0.0},
        {"backoff_multiplier": 0.5},
        {"backoff_max": 0.1},  # < backoff_initial
        {"close_after": 0},
        {"open_target_frac": 0.0},
    ],
)
def test_config_rejects_bad_knobs(kw):
    with pytest.raises(ValueError):
        ResilienceConfig(**kw)


# ----------------------------------------------------------------------
# taxonomy
# ----------------------------------------------------------------------
def test_taxonomy_counts_and_buckets():
    tax = FailureTaxonomy()
    tax.record(FailureKind.SILENT_TIMEOUT)
    tax.record(FailureKind.RETRY_SENT, count=3)
    assert tax.total(FailureKind.RETRY_SENT) == 3
    assert tax.bucket(FailureKind.RETRY_SENT) == 3
    rates = tax.close_bucket(bucket_seconds=2.0)
    assert rates[FailureKind.RETRY_SENT] == pytest.approx(1.5)
    assert tax.bucket(FailureKind.RETRY_SENT) == 0  # bucket reset
    assert tax.total(FailureKind.RETRY_SENT) == 3  # totals monotone
    assert tax.as_dict()["silent_timeout"] == 1
    with pytest.raises(ValueError):
        tax.record(FailureKind.REJECTED, count=-1)
    with pytest.raises(ValueError):
        tax.close_bucket(0.0)


# ----------------------------------------------------------------------
# layer + measurement plumbing
# ----------------------------------------------------------------------
def test_layer_open_target_is_standing_probe():
    layer = ResilienceLayer(ResilienceConfig(), frame_rate=30.0)
    assert layer.open_target == pytest.approx(3.0)
    layer.note_overload(1.25)
    assert layer.last_retry_after == pytest.approx(1.25)
    layer.note_overload(None)  # ignored
    assert layer.last_retry_after == pytest.approx(1.25)
    with pytest.raises(ValueError):
        ResilienceLayer(ResilienceConfig(), frame_rate=0.0)


def test_measurement_resilience_fields_default_to_zero():
    m = Measurement(
        time=1.0,
        frame_rate=30.0,
        offload_target=10.0,
        offload_rate=10.0,
        offload_success_rate=10.0,
        timeout_rate=0.0,
        timeout_rate_last=0.0,
        local_rate=5.0,
        throughput=15.0,
    )
    assert m.overload_rate == 0.0
    assert m.retry_rate == 0.0
    assert m.breaker_open == 0.0


def test_transcript_replay_drops_unknown_measurement_keys():
    m = Measurement(
        time=1.0,
        frame_rate=30.0,
        offload_target=10.0,
        offload_rate=10.0,
        offload_success_rate=10.0,
        timeout_rate=0.0,
        timeout_rate_last=0.0,
        local_rate=5.0,
        throughput=15.0,
    )
    d = dataclasses.asdict(m)
    d["some_future_field"] = 42.0
    assert _measurement_from_dict(d) == m
