"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_commands():
    parser = build_parser()
    for cmd in (
        "fig2", "fig3", "fig4", "table2", "table3", "table4",
        "energy", "combined", "controllers", "breakdown", "fleet",
        "run", "all",
    ):
        args = parser.parse_args([cmd])
        assert args.command == cmd


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig9"])


def test_cli_table3_prints_accuracy_table(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out
    assert "82.9%" in out  # EfficientNetB4


def test_cli_fig2_short_run(capsys):
    assert main(["fig2", "--duration", "20"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out
    assert "Kp=0.2 Kd=0.26" in out


def test_cli_seed_flag_changes_nothing_structural(capsys):
    assert main(["table3", "--seed", "7"]) == 0
    assert "Top-1" in capsys.readouterr().out


def test_cli_run_requires_config():
    import pytest

    with pytest.raises(SystemExit):
        main(["run"])


def test_cli_run_with_config_and_export(tmp_path, capsys):
    import json

    config = tmp_path / "scenario.json"
    config.write_text(
        json.dumps(
            {
                "controller": "AlwaysOffload",
                "seed": 1,
                "device": {"total_frames": 300},
                "network": [[0, 10, 0]],
            }
        )
    )
    out_dir = tmp_path / "artifacts"
    assert main(["run", "--config", str(config), "--export", str(out_dir)]) == 0
    printed = capsys.readouterr().out
    assert "AlwaysOffload" in printed
    assert (out_dir / "traces.csv").exists()
    assert (out_dir / "qos.json").exists()


def test_cli_breakdown_short(capsys):
    assert main(["breakdown", "--frames", "600"]) == 0
    out = capsys.readouterr().out
    assert "T_n" in out and "T_l" in out


def test_cli_fleet_short(capsys):
    assert main(["fleet", "--frames", "450"]) == 0
    out = capsys.readouterr().out
    assert "Fleet scaling" in out
    assert "Jain" in out


def test_cli_netem_emits_script(capsys):
    assert main(["netem", "--schedule", "tablev", "--iface", "eth1"]) == 0
    out = capsys.readouterr().out
    assert "#!/bin/sh" in out
    assert "dev eth1" in out
    assert "loss 7%" in out
    assert "320 kbit/s" in out


def test_cli_netem_unknown_schedule():
    import pytest

    with pytest.raises(SystemExit):
        main(["netem", "--schedule", "bogus"])


def test_cli_sweep_requires_config():
    import pytest

    with pytest.raises(SystemExit):
        main(["sweep"])


def test_parser_accepts_profile_scenario():
    args = build_parser().parse_args(["profile", "chaos"])
    assert args.command == "profile"
    assert args.scenario == "chaos"


def test_cli_profile_fig3_reports_kernel_stats(capsys):
    assert main(["profile", "fig3", "--frames", "300"]) == 0
    out = capsys.readouterr().out
    assert "profile: fig3" in out
    assert "kernel stats" in out
    assert "cancelled" in out  # EnvStats summary lines
    assert "cumulative" in out  # cProfile table


def test_cli_profile_reports_hybrid_regime_counters(capsys):
    """EnvStats.__str__ must surface the fluid-regime counters (ISSUE 8)."""
    assert main(["profile", "fig3", "--frames", "300"]) == 0
    out = capsys.readouterr().out
    # present (as zeros) even on the default exact kernel
    assert "fluid:" in out
    assert "windows" in out
    assert "forced-exact" in out


def test_parser_accepts_kernel_flag():
    args = build_parser().parse_args(["--kernel", "hybrid", "fig3"])
    assert args.kernel == "hybrid"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--kernel", "warp", "fig3"])


def test_cli_profile_defaults_to_fig3(capsys):
    assert main(["profile", "--frames", "300"]) == 0
    assert "profile: fig3" in capsys.readouterr().out


def test_cli_profile_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["profile", "bogus", "--frames", "300"])


def test_parser_accepts_chaos():
    args = build_parser().parse_args(["chaos", "--controller", "aimd"])
    assert args.command == "chaos"
    assert args.controller == "aimd"


def test_cli_chaos_smoke(capsys):
    assert main(["chaos", "--frames", "4000"]) == 0
    out = capsys.readouterr().out
    assert "Cross-layer chaos run" in out
    assert "standing-probe" in out
    assert "re-convergence" in out
    assert "verdict: PASS" in out


def test_cli_chaos_unknown_controller():
    with pytest.raises(SystemExit):
        main(["chaos", "--controller", "bogus"])


def test_cli_sweep_runs_seeds(tmp_path, capsys):
    import json

    config = tmp_path / "s.json"
    config.write_text(
        json.dumps(
            {
                "controller": "FrameFeedback",
                "device": {"total_frames": 300},
                "network": [[0, 4, 0]],
            }
        )
    )
    assert main(["sweep", "--config", str(config), "--seeds", "3", "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "3-seed sweep" in out
    assert "mean P" in out


def test_cli_chaos_resilience_json_exits_zero(capsys):
    import json

    assert main(["chaos", "--resilience", "--frames", "4000", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["verdict"] == "PASS"
    assert doc["resilience"] is True
    assert doc["breaker_transitions"]  # the breaker actually tripped
    assert doc["failure_taxonomy"]["breaker_fallback"] > 0
    names = {c["name"] for c in doc["invariants"]}
    assert {"standing-probe", "re-convergence", "breaker-trip", "breaker-reclose"} <= names


def test_cli_chaos_invariant_failure_exits_nonzero(monkeypatch, capsys):
    """CI gates on the exit code: any failed invariant must be non-zero."""
    import repro.experiments.chaos as chaos_mod
    from repro.faults.invariants import InvariantCheck

    real = chaos_mod.run_chaos

    def sabotaged(chaos):
        result = real(chaos)
        result.invariants.append(
            InvariantCheck(
                name="forced-fail",
                passed=False,
                observed=1.0,
                expected=0.0,
                tolerance=0.0,
                detail="injected by the test",
            )
        )
        return result

    monkeypatch.setattr(chaos_mod, "run_chaos", sabotaged)
    assert main(["chaos", "--frames", "1200"]) == 1
    assert "verdict: FAIL" in capsys.readouterr().out


def test_parser_accepts_trace_and_trace_diff():
    args = build_parser().parse_args(["trace", "supervision", "--json"])
    assert args.command == "trace" and args.scenario == "supervision" and args.json
    args = build_parser().parse_args(["trace-diff", "a.json", "b.json"])
    assert args.command == "trace-diff"
    assert (args.scenario, args.scenario2) == ("a.json", "b.json")


def test_cli_trace_json_is_deterministic(capsys):
    assert main(["trace", "fig3", "--json"]) == 0
    first = capsys.readouterr().out
    assert main(["trace", "fig3", "--json"]) == 0
    assert capsys.readouterr().out == first

    import json

    doc = json.loads(first)
    assert doc["meta"]["scenario"] == "fig3"
    assert doc["frames"]


def test_cli_trace_human_summary(capsys):
    assert main(["trace", "chaos"]) == 0
    out = capsys.readouterr().out
    assert "trace: chaos" in out
    assert "completed-local" in out and "events" in out


def test_cli_trace_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["trace", "bogus"])


def test_cli_trace_diff_identical_and_perturbed(tmp_path, capsys):
    import json

    from repro.trace import dumps_trace, run_trace_scenario

    doc = run_trace_scenario("fig3")
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(dumps_trace(doc))
    b.write_text(dumps_trace(doc))
    assert main(["trace-diff", str(a), str(b)]) == 0
    assert "identical" in capsys.readouterr().out

    perturbed = json.loads(a.read_text())
    perturbed["frames"][3]["span"]["status"] = "__tampered__"
    b.write_text(dumps_trace(perturbed))
    assert main(["trace-diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "diverge" in out and "frames[" in out and "status" in out


def test_cli_trace_diff_requires_two_files():
    with pytest.raises(SystemExit):
        main(["trace-diff", "only-one.json"])


# ----------------------------------------------------------------------
# scenario compiler + adversarial search (ISSUE 6)
# ----------------------------------------------------------------------
def test_cli_compile_emits_flat_config(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "controller": "FrameFeedback",
        "duration": 20.0,
        "network": {"kind": "diurnal", "period": 20.0, "step": 5.0},
    }))
    assert main(["compile", str(spec)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert isinstance(doc["network"], list)
    assert doc["controller"] == "FrameFeedback"
    assert "duration" in doc


def test_cli_compile_expand_population(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "device": {"total_frames": 100},
        "population": {"size": 2, "profiles": ["pi4b_r1_2", "pi3b_r1_2"]},
    }))
    assert main(["compile", str(spec), "--expand"]) == 0
    docs = json.loads(capsys.readouterr().out)
    assert len(docs) == 2
    assert docs[1]["device"]["profile"] == "pi3b_r1_2"


def test_cli_compile_reports_spec_errors_nonzero(tmp_path, capsys):
    spec = tmp_path / "bad.json"
    spec.write_text(json.dumps({"contoller": "FrameFeedback"}))
    assert main(["compile", str(spec)]) == 1
    out = capsys.readouterr().out
    assert "spec error" in out and "contoller" in out


def test_cli_compile_requires_a_file():
    with pytest.raises(SystemExit):
        main(["compile"])


def test_cli_search_writes_goldens(tmp_path, capsys):
    out_dir = tmp_path / "goldens"
    code = main(["search", "--seed", "3", "--budget", "16", "--workers", "2",
                 "--goldens", "2", "--out", str(out_dir)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "FINDINGS" in out
    written = sorted(out_dir.glob("*.json"))
    assert written, "search found failures but wrote no goldens"
    # every golden replays through the same machinery tier-1 uses
    from repro.search import load_golden, replay_golden

    doc = load_golden(written[0])
    assert replay_golden(doc) == doc["expected"]


def test_cli_search_json_summary(capsys):
    code = main(["search", "--seed", "5", "--budget", "4", "--goldens", "1",
                 "--workers", "1", "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["evaluated"] <= 4
    assert "minimized" in doc
    assert code in (0, 1)  # tiny budgets may legitimately find nothing


# ----------------------------------------------------------------------
# wall-clock gateway: loadgen + chaos --realtime (ISSUE 9)
# ----------------------------------------------------------------------
def test_parser_accepts_loadgen_and_realtime_flags():
    args = build_parser().parse_args(["loadgen", "--clients", "5", "--duration", "1.5"])
    assert args.command == "loadgen"
    assert args.clients == 5
    args = build_parser().parse_args(["chaos", "--realtime", "--clients", "3"])
    assert args.realtime is True
    assert args.clients == 3


def test_cli_loadgen_burst_json(capsys):
    """Real seconds elapse (a 1 s burst against a live gateway)."""
    assert main(["loadgen", "--clients", "4", "--duration", "1", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["accounting_closed"] is True
    assert doc["report"]["submitted"] > 0
    assert doc["gateway"]["received"] > 0


def test_cli_loadgen_human_output(capsys):
    assert main(["loadgen", "--clients", "3", "--duration", "1"]) == 0
    out = capsys.readouterr().out
    assert "loadgen burst" in out
    assert "tick jitter" in out
    assert "accounting: closed" in out


def test_cli_chaos_realtime_invariant_failure_exits_nonzero(monkeypatch, capsys):
    """CI gates on the exit code: a failed wall-clock invariant must be
    non-zero, same contract as the simulated chaos run."""
    import repro.realtime.chaos as rt_chaos
    from repro.faults.invariants import InvariantCheck

    real = rt_chaos.run_realtime_chaos

    def sabotaged(spec, resilience=None):
        # shrink to a benign 1 s run, then inject a failed row
        result = real(spec.replace(duration=1.0, faults=[]), resilience)
        result.invariants.append(
            InvariantCheck(
                name="forced-fail",
                passed=False,
                observed=1.0,
                expected=0.0,
                tolerance=0.0,
                detail="injected by the test",
            )
        )
        return result

    monkeypatch.setattr(rt_chaos, "run_realtime_chaos", sabotaged)
    assert main(["chaos", "--realtime"]) == 1
    assert "verdict: FAIL" in capsys.readouterr().out
    assert main(["chaos", "--realtime", "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["all_invariants_hold"] is False
