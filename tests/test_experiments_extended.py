"""Integration tests for the extension controllers in full scenarios."""

import pytest

from repro.device.config import DeviceConfig
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import (
    aimd_factory,
    extended_controllers,
    oracle_factory,
    reservation_factory,
)
from repro.netem.profiles import CONGESTED, IDEAL
from repro.workloads.schedules import steady_schedule, table_vi_schedule


def run(factory, network=None, load=None, seconds=40, seed=0):
    device = DeviceConfig(total_frames=int(seconds * 30))
    return run_scenario(
        Scenario(
            controller_factory=factory,
            device=device,
            network=network,
            load=load,
            seed=seed,
        )
    )


def test_aimd_tracks_capacity_roughly():
    r = run(aimd_factory(), network=steady_schedule(CONGESTED), seconds=60)
    # ends up near the link's ~13 fps capacity region (sawtooth around it)
    tail = r.traces.offload_target.values[-20:]
    assert 6.0 < tail.mean() < 18.0


def test_oracle_saturates_ideal_link():
    r = run(oracle_factory(), network=steady_schedule(IDEAL), seconds=30)
    assert r.qos.mean_throughput > 26.0
    assert r.qos.timeouts < 30


def test_oracle_partial_on_congested_link():
    r = run(oracle_factory(), network=steady_schedule(CONGESTED), seconds=40)
    # near-zero violations: the oracle never tests the cliff
    assert r.qos.mean_violation_rate < 1.0
    assert r.qos.mean_throughput > 20.0


def test_reservation_matches_grant_on_ideal_network():
    r = run(reservation_factory(), network=steady_schedule(IDEAL), seconds=30)
    assert r.qos.mean_throughput > 26.0


def test_reservation_blind_to_network_degradation():
    """The §V-B critique: reservations know server load, not the
    client's network — on a congested link the grant floods the path."""
    r = run(reservation_factory(), network=steady_schedule(CONGESTED), seconds=40)
    assert r.qos.mean_throughput < 10.0  # below even local-only
    assert r.qos.mean_violation_rate > 5.0


def test_reservation_sheds_load_under_table_vi():
    r = run(reservation_factory(), load=table_vi_schedule(), seconds=110)
    # during the 150 req/s peak the grant drops to ~0 -> local floor
    peak = r.traces.throughput.mean_over(52.0, 60.0)
    assert peak == pytest.approx(13.0, abs=3.0)
    # unloaded phases: full offload granted
    assert r.traces.throughput.mean_over(3.0, 10.0) > 24.0


@pytest.mark.slow
def test_extended_lineup_fig3_oracle_bounds_framefeedback():
    result = run_fig3(seed=0, total_frames=2400, controllers=extended_controllers())
    qos = {name: run.qos.mean_throughput for name, run in result.runs.items()}
    # the oracle is an upper bound for the realizable controllers on
    # network scenarios (it reads the schedule)
    assert qos["Oracle"] >= qos["FrameFeedback"] - 0.5
    assert qos["Oracle"] >= qos["Reservation"]
    # FrameFeedback still beats every *realizable* baseline
    realizable = {k: v for k, v in qos.items() if k not in ("Oracle",)}
    best_baseline = max(v for k, v in realizable.items() if k != "FrameFeedback")
    assert qos["FrameFeedback"] >= best_baseline - 1.0


@pytest.mark.slow
def test_extended_lineup_fig4_reservation_competitive_under_load():
    result = run_fig4(seed=0, total_frames=2400, controllers=extended_controllers())
    qos = {name: run.qos.mean_throughput for name, run in result.runs.items()}
    # under pure server load, the reservation baseline works decently
    assert qos["Reservation"] > qos["AlwaysOffload"]
    assert qos["Reservation"] > 0.8 * qos["FrameFeedback"]
