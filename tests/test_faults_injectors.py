"""Unit tests for the repro.faults injector catalog."""

import numpy as np
import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, build_runtime
from repro.faults import (
    BandwidthCollapse,
    BurstLoss,
    CameraStall,
    CpuThrottle,
    FaultOverlapError,
    FaultTargets,
    FaultTimeline,
    FaultWindow,
    GpuContention,
    LatencySpike,
    OutageSchedule,
    ServerCrash,
    ServerSlowdown,
    validate_plan,
)
from repro.models.latency import GpuBatchModel
from repro.netem.link import ConditionBox, LinkConditions
from repro.netem.schedule import NetworkSchedule, SchedulePhase
from repro.server.requests import InferenceRequest
from repro.server.server import EdgeServer
from repro.sim import Environment
from repro.sim.rng import RngRegistry


def _runtime(total_frames=300, seed=0, network=None):
    return build_runtime(
        Scenario(
            controller_factory=lambda cfg: FrameFeedbackController(cfg.frame_rate),
            device=DeviceConfig(total_frames=total_frames),
            network=network,
            seed=seed,
        )
    )


# ----------------------------------------------------------------------
# window / timeline algebra
# ----------------------------------------------------------------------
def test_window_validation_and_queries():
    with pytest.raises(ValueError):
        FaultWindow(-1.0, 5.0)
    with pytest.raises(ValueError):
        FaultWindow(0.0, 0.0)
    w = FaultWindow(10.0, 5.0)
    assert w.end == 15.0
    assert w.contains(10.0) and w.contains(14.999) and not w.contains(15.0)
    assert w.overlaps(FaultWindow(14.0, 1.0))
    assert not w.overlaps(FaultWindow(15.0, 1.0))


def test_timeline_rejects_overlap_and_orders():
    with pytest.raises(FaultOverlapError):
        FaultTimeline.from_rows([(0, 10), (5, 10)])
    tl = FaultTimeline.from_rows([(30, 2), (10, 5)])
    assert [w.start for w in tl] == [10.0, 30.0]
    assert tl.active_at(10.0) and not tl.active_at(15.0)
    assert tl.total_active == 7.0
    assert tl.last_end == 32.0


def test_timeline_next_transition():
    tl = FaultTimeline.from_rows([(10, 5), (30, 2)])
    assert tl.next_transition(0.0) == 10.0
    assert tl.next_transition(10.0) == 15.0
    assert tl.next_transition(20.0) == 30.0
    assert tl.next_transition(40.0) == float("inf")


def test_timeline_union_coalesces():
    a = FaultTimeline.from_rows([(0, 10), (30, 5)])
    b = FaultTimeline.from_rows([(5, 10), (50, 1)])
    merged = a.union(b)
    assert [(w.start, w.end) for w in merged] == [(0, 15), (30, 35), (50, 51)]


def test_timeline_clipped_from():
    tl = FaultTimeline.from_rows([(0, 10), (20, 10)])
    clipped = tl.clipped_from(5.0)
    assert [(w.start, w.end) for w in clipped] == [(5.0, 10.0), (20.0, 30.0)]
    assert len(tl.clipped_from(50.0)) == 0


def test_validate_plan_resource_exclusivity():
    crash = ServerCrash(FaultTimeline.from_rows([(10, 10)]))
    slow = ServerSlowdown(FaultTimeline.from_rows([(15, 10)]), factor=2.0)
    throttle = CpuThrottle(FaultTimeline.from_rows([(12, 10)]), factor=2.0)
    # different resources may overlap in time
    validate_plan([crash, slow, throttle])
    # same resource (server.gpu) may not
    contention = GpuContention(FaultTimeline.from_rows([(20, 10)]))
    with pytest.raises(FaultOverlapError):
        validate_plan([slow, contention])
    # disjoint same-resource windows are fine
    validate_plan(
        [slow, GpuContention(FaultTimeline.from_rows([(40, 5)]))]
    )


# ----------------------------------------------------------------------
# link injectors: the override layer
# ----------------------------------------------------------------------
def test_bandwidth_collapse_applies_and_heals():
    rt = _runtime()
    fault = BandwidthCollapse(FaultTimeline.from_rows([(2.0, 3.0)]), factor=0.1)
    fault.install(rt.env, rt.fault_targets())
    rt.env.run(until=2.5)
    assert rt.box.conditions.bandwidth == pytest.approx(1.0)
    rt.env.run(until=6.0)
    assert rt.box.conditions.bandwidth == pytest.approx(10.0)


def test_link_fault_restacks_over_schedule_change():
    """A benign schedule change mid-fault stays degraded; healing
    restores the schedule's *current* phase, not a stale snapshot."""
    network = NetworkSchedule(
        [
            SchedulePhase(0.0, LinkConditions(bandwidth=10.0)),
            SchedulePhase(3.0, LinkConditions(bandwidth=4.0)),
        ]
    )
    rt = _runtime(network=network)
    fault = BandwidthCollapse(FaultTimeline.from_rows([(2.0, 4.0)]), factor=0.1)
    fault.install(rt.env, rt.fault_targets())
    rt.env.run(until=2.5)
    assert rt.box.conditions.bandwidth == pytest.approx(1.0)  # 10 * 0.1
    rt.env.run(until=3.5)
    assert rt.box.conditions.bandwidth == pytest.approx(0.4)  # 4 * 0.1
    rt.env.run(until=7.0)
    assert rt.box.conditions.bandwidth == pytest.approx(4.0)  # healed to phase 2


def test_latency_spike_and_burst_loss_transforms():
    cond = LinkConditions()
    spike = LatencySpike(FaultTimeline.from_rows([(0, 1)]), extra_delay=0.3)
    assert spike.total_failure  # beyond the 250 ms deadline
    out = spike.transform(cond)
    assert out.propagation_delay == pytest.approx(cond.propagation_delay + 0.3)

    burst = BurstLoss(FaultTimeline.from_rows([(0, 1)]), loss=0.3, burst=8.0)
    out = burst.transform(cond)
    assert out.loss == pytest.approx(0.3)
    assert out.loss_burst == pytest.approx(8.0)
    assert not burst.total_failure


def test_injector_parameter_validation():
    tl = FaultTimeline.from_rows([(0, 1)])
    with pytest.raises(ValueError):
        BandwidthCollapse(tl, factor=0.0)
    with pytest.raises(ValueError):
        BandwidthCollapse(tl, factor=1.0)
    with pytest.raises(ValueError):
        LatencySpike(tl, extra_delay=-0.1)
    with pytest.raises(ValueError):
        BurstLoss(tl, loss=0.0)
    with pytest.raises(ValueError):
        ServerSlowdown(tl, factor=1.0)
    with pytest.raises(ValueError):
        GpuContention(tl, mean_factor=0.5)
    with pytest.raises(ValueError):
        CpuThrottle(tl, factor=0.9)


# ----------------------------------------------------------------------
# server injectors
# ----------------------------------------------------------------------
def test_server_slowdown_stretches_batches():
    rt = _runtime()
    fault = ServerSlowdown(FaultTimeline.from_rows([(1.0, 2.0)]), factor=4.0)
    fault.install(rt.env, rt.fault_targets())
    rt.env.run(until=1.5)
    assert rt.server.gpu.slowdown == pytest.approx(4.0)
    rt.env.run(until=4.0)
    assert rt.server.gpu.slowdown == pytest.approx(1.0)


def test_gpu_contention_draws_seeded_factor():
    def factors(seed):
        rt = _runtime(seed=seed)
        fault = GpuContention(
            FaultTimeline.from_rows([(1.0, 1.0), (3.0, 1.0)]), mean_factor=3.0
        )
        fault.install(rt.env, rt.fault_targets())
        out = []
        for t in (1.5, 3.5):
            rt.env.run(until=t)
            out.append(rt.server.gpu.slowdown)
        return out

    a, b = factors(0), factors(0)
    assert a == b  # bit-reproducible under the seed
    assert all(f > 1.0 for f in a)
    assert a[0] != a[1]  # each window draws its own factor


def test_gpu_set_slowdown_validation():
    env = Environment()
    server = EdgeServer(env, np.random.default_rng(0))
    with pytest.raises(ValueError):
        server.gpu.set_slowdown(0.5)


def test_missing_target_raises():
    env = Environment()
    fault = ServerCrash(FaultTimeline.from_rows([(0.0, 1.0)]))
    with pytest.raises(ValueError):
        fault.install(env, FaultTargets())  # no server handle


# ----------------------------------------------------------------------
# device injectors
# ----------------------------------------------------------------------
def test_cpu_throttle_slows_local_pipeline():
    rt = _runtime()
    fault = CpuThrottle(FaultTimeline.from_rows([(1.0, 2.0)]), factor=3.0)
    fault.install(rt.env, rt.fault_targets())
    rt.env.run(until=1.5)
    assert rt.device.local.slowdown == pytest.approx(3.0)
    rt.env.run(until=4.0)
    assert rt.device.local.slowdown == pytest.approx(1.0)


def test_camera_stall_freezes_then_resumes():
    rt = _runtime(total_frames=300)
    fault = CameraStall(FaultTimeline.from_rows([(2.0, 3.0)]))
    fault.install(rt.env, rt.fault_targets())
    rt.env.run(until=2.1)
    emitted_at_stall = rt.device.source.frames_emitted
    assert rt.device.source.paused
    rt.env.run(until=4.9)
    assert rt.device.source.frames_emitted == emitted_at_stall  # frozen
    rt.env.run(until=8.0)
    assert not rt.device.source.paused
    assert rt.device.source.frames_emitted > emitted_at_stall  # resumed


# ----------------------------------------------------------------------
# OutageSchedule back-compat + the mid-sim installation fix
# ----------------------------------------------------------------------
def _pause_probe_server(env):
    """A server plus a response log to observe stall windows."""
    gpu = GpuBatchModel(base_latency=0.01, per_item=0.0, jitter_sigma=0.0)
    server = EdgeServer(env, np.random.default_rng(0), cost_model=gpu)
    responses = []

    def submit():
        server.submit(
            InferenceRequest(
                tenant="t",
                model_name="mobilenet_v3_small",
                sent_at=env.now,
                payload_bytes=10,
                respond=responses.append,
            )
        )

    return server, submit, responses


def test_outage_install_mid_sim_skips_past_windows():
    """A window fully in the past must not pause the server at all."""
    env = Environment()
    server, submit, responses = _pause_probe_server(env)
    env.run(until=30.0)
    OutageSchedule.from_rows([(5.0, 10.0)]).install(env, server)  # ended at 15
    submit()
    env.run(until=30.1)
    assert len(responses) == 1  # served immediately: no stale pause
    assert not server.paused


def test_outage_install_mid_sim_clips_straddling_window():
    """Installing at t=10 inside [5, 25) pauses only until 25, not 30."""
    env = Environment()
    server, submit, responses = _pause_probe_server(env)
    env.run(until=10.0)
    OutageSchedule.from_rows([(5.0, 20.0)]).install(env, server)
    submit()
    env.run(until=24.9)
    assert responses == []  # still inside the clipped window
    env.run(until=25.5)
    assert len(responses) == 1  # resumed at 25 (= 5 + 20), not 10 + 20


def test_outage_schedule_legacy_surface():
    sched = OutageSchedule.from_rows([(10, 5), (30, 2)])
    assert sched.is_down(12.0) and not sched.is_down(20.0)
    assert sched.total_downtime == 7.0
    assert len(sched.windows) == 2
    with pytest.raises(ValueError):
        OutageSchedule.from_rows([(0, 10), (5, 10)])


def test_workloads_faults_shim_reexports():
    from repro.workloads import faults as shim

    assert shim.OutageSchedule is OutageSchedule
    assert shim.FaultWindow is FaultWindow
