"""Property-based invariants of full closed-loop runs.

These are the conservation laws the whole system must obey regardless
of controller, link conditions, or seed — the strongest correctness
net in the suite because they exercise every substrate at once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    FixedRateController,
    LocalOnlyController,
)
from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.netem.link import LinkConditions
from repro.workloads.schedules import steady_schedule

CONTROLLER_FACTORIES = [
    lambda c: FrameFeedbackController(c.frame_rate),
    lambda c: LocalOnlyController(),
    lambda c: AlwaysOffloadController(),
    lambda c: AllOrNothingController(),
    lambda c: FixedRateController(7.0),
]

conditions_strategy = st.builds(
    LinkConditions,
    bandwidth=st.sampled_from([1.0, 4.0, 10.0]),
    loss=st.sampled_from([0.0, 0.07, 0.2]),
    loss_burst=st.sampled_from([1.0, 8.0]),
)


@given(
    controller_idx=st.integers(min_value=0, max_value=len(CONTROLLER_FACTORIES) - 1),
    conditions=conditions_strategy,
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_frame_conservation(controller_idx, conditions, seed):
    """Every emitted frame is accounted for exactly once.

    frames = offload successes + offload timeouts + local successes
             + local skips + still-in-pipeline remainder
    """
    factory = CONTROLLER_FACTORIES[controller_idx]
    scenario = Scenario(
        controller_factory=factory,
        device=DeviceConfig(total_frames=450),  # 15 s
        network=steady_schedule(conditions),
        duration=18.0,  # 3 s drain
        seed=seed,
    )
    result = run_scenario(scenario)
    q = result.qos
    accounted = (
        q.successful
        + q.timeouts
        + q.dropped_local
        + q.extras["offload_successes"] * 0  # (already inside successful)
    )
    # the local engine may hold at most 2 frames (running + pending) at
    # the horizon; offload watchdogs all fired (drain > deadline)
    assert q.total_frames == 450
    assert 0 <= q.total_frames - accounted <= 2
    # internal consistency of the rollup
    assert q.successful == q.extras["offload_successes"] + q.extras["local_successes"]
    assert q.timeouts >= q.rejected * 0  # rejections are a subset of timeouts
    assert q.rejected <= q.timeouts


@given(
    conditions=conditions_strategy,
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_throughput_never_negative_and_bounded(conditions, seed):
    scenario = Scenario(
        controller_factory=lambda c: FrameFeedbackController(c.frame_rate),
        device=DeviceConfig(total_frames=450),
        network=steady_schedule(conditions),
        seed=seed,
    )
    result = run_scenario(scenario)
    values = result.traces.throughput.values
    assert (values >= 0).all()
    # a 1 s bucket can catch at most ~F_s + pipeline drain frames
    assert (values <= 40.0).all()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_offload_target_respects_controller_bounds(seed):
    scenario = Scenario(
        controller_factory=lambda c: FrameFeedbackController(c.frame_rate),
        device=DeviceConfig(total_frames=600),
        network=steady_schedule(LinkConditions(bandwidth=4.0, loss=0.05)),
        seed=seed,
    )
    result = run_scenario(scenario)
    po = result.traces.offload_target.values
    assert (po >= 0).all()
    assert (po <= 30.0 + 1e-9).all()
    # per-step deltas obey the Table IV clamps
    import numpy as np

    deltas = np.diff(po)
    assert (deltas <= 3.0 + 1e-6).all()
    assert (deltas >= -15.0 - 1e-6).all()
