"""Unit tests for network schedules (Table V machinery)."""

import pytest

from repro.netem import ConditionBox, LinkConditions, NetworkSchedule, SchedulePhase
from repro.netem.profiles import named_profile
from repro.sim import Environment
from repro.workloads.schedules import TABLE_V_NETWORK, table_v_schedule


def test_empty_schedule_rejected():
    with pytest.raises(ValueError):
        NetworkSchedule([])


def test_first_phase_must_start_at_zero():
    with pytest.raises(ValueError):
        NetworkSchedule([SchedulePhase(5.0, LinkConditions())])


def test_duplicate_starts_rejected():
    with pytest.raises(ValueError):
        NetworkSchedule(
            [
                SchedulePhase(0.0, LinkConditions()),
                SchedulePhase(0.0, LinkConditions(bandwidth=4)),
            ]
        )


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        SchedulePhase(-1.0, LinkConditions())


def test_at_returns_phase_in_effect():
    sched = table_v_schedule()
    assert sched.at(0.0).bandwidth == 10.0
    assert sched.at(29.9).bandwidth == 10.0
    assert sched.at(30.0).bandwidth == 4.0
    assert sched.at(50.0).bandwidth == 1.0
    assert sched.at(95.0).loss == pytest.approx(0.07)
    assert sched.at(1e9).bandwidth == 4.0  # final phase is open-ended


def test_table_v_rows_verbatim():
    """Table V of the paper, row for row."""
    assert TABLE_V_NETWORK == (
        (0.0, 10.0, 0.0),
        (30.0, 4.0, 0.0),
        (45.0, 1.0, 0.0),
        (60.0, 10.0, 0.0),
        (90.0, 10.0, 7.0),
        (105.0, 4.0, 7.0),
    )


def test_phases_sorted_regardless_of_input_order():
    sched = NetworkSchedule(
        [
            SchedulePhase(10.0, LinkConditions(bandwidth=4)),
            SchedulePhase(0.0, LinkConditions(bandwidth=10)),
        ]
    )
    assert sched.change_times == [0.0, 10.0]


def test_install_drives_box_through_phases():
    env = Environment()
    sched = NetworkSchedule.from_rows([(0, 10, 0), (5, 4, 0), (8, 1, 7)])
    box = ConditionBox(sched.at(0.0))
    changes = []
    sched.install(env, box, on_change=lambda t, c: changes.append((t, c.bandwidth)))
    env.run(until=10.0)
    assert changes == [(0.0, 10.0), (5.0, 4.0), (8.0, 1.0)]
    assert box.conditions.loss == pytest.approx(0.07)


def test_named_profiles():
    assert named_profile("ideal").bandwidth == 10.0
    assert named_profile("severe").loss == pytest.approx(0.07)
    with pytest.raises(KeyError):
        named_profile("nonexistent")
