"""Tests for the wall-clock runtime (kept short: real seconds elapse)."""

import pytest

from repro.control.baselines import LocalOnlyController
from repro.control.framefeedback import FrameFeedbackController
from repro.realtime import FakeRemote, RealTimeLoop, calibrated_spin
from repro.realtime.fakework import RemoteConditions


def test_calibrated_spin_roughly_hits_target():
    elapsed = calibrated_spin(0.05)
    assert 0.01 < elapsed < 0.5  # generous: CI machines vary


def test_calibrated_spin_rejects_negative():
    with pytest.raises(ValueError):
        calibrated_spin(-1.0)


def test_fake_remote_honours_failure_probability():
    remote = FakeRemote(seed=0)
    remote.set_conditions(
        RemoteConditions(latency=0.0, jitter=0.0, failure_probability=1.0)
    )
    assert remote.submit() is False
    remote.set_conditions(
        RemoteConditions(latency=0.0, jitter=0.0, failure_probability=0.0)
    )
    assert remote.submit() is True


def test_loop_validates_parameters():
    with pytest.raises(ValueError):
        RealTimeLoop(LocalOnlyController(), frame_rate=0.0)


def test_real_time_framefeedback_ramps_on_good_remote():
    """Wall-clock closed loop: with a fast reliable remote, the same
    FrameFeedback object used in the simulator ramps offloading up."""
    remote = FakeRemote(seed=1)
    remote.set_conditions(
        RemoteConditions(latency=0.02, jitter=0.002, failure_probability=0.0)
    )
    loop = RealTimeLoop(
        FrameFeedbackController(30.0),
        remote=remote,
        local_latency=0.03,
    )
    result = loop.run(duration=5.0)
    assert len(result.times) >= 4
    assert result.offload_target[-1] > result.offload_target[0]
    assert result.offload_target[-1] >= 9.0  # ramped at ~3 fps/s


def test_real_time_framefeedback_backs_off_on_bad_remote():
    remote = FakeRemote(seed=2)
    remote.set_conditions(
        RemoteConditions(latency=0.02, jitter=0.002, failure_probability=1.0)
    )
    loop = RealTimeLoop(
        FrameFeedbackController(30.0),
        remote=remote,
        local_latency=0.03,
    )
    result = loop.run(duration=6.0)
    # with everything failing, target must stay near the probe floor
    assert result.offload_target[-1] <= 9.0
    assert max(result.timeout_rate) > 0
