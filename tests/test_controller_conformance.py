"""Controller conformance battery (ISSUE 10 tentpole).

Every member of the controller zoo registry
(:func:`repro.control.zoo.zoo_entries`) must pass the same contract,
so the zoo stays honest as it grows:

* **registry** — the zoo name resolves in
  :func:`repro.experiments.standard.extended_controllers` and the
  factory builds a :class:`~repro.control.base.Controller`;
* **determinism** — two runs of the conformance scenario at the same
  seed serialize to byte-identical QoS;
* **cross-kernel byte-identity** — the conformance scenario (lossy in
  every phase, so the hybrid kernel's fluid regime must veto) replays
  byte-identically on the fast path, ``REPRO_SIM_SLOWPATH=1``, and
  ``REPRO_KERNEL=hybrid``;
* **degraded-input tolerance** — fed through a
  :class:`~repro.control.validity.MeasurementGuard`, a hostile stream
  (NaN / ±inf / negative timeout rates, duplicates, reordering, long
  silences) never crashes the controller or drives its target out of
  ``[0, F_s]``;
* **warm-restore round-trip** — ``snapshot_state`` survives a JSON
  round-trip and a restored fresh instance continues byte-identically
  (controllers returning None must honour the cold-restart contract);
* **bounded targets** — ``initial_target`` and every ``update`` stay
  finite and within ``[0, F_s]`` on a scripted stress sequence.
"""

import json
import math

import pytest

from repro.control.base import Controller, Measurement
from repro.control.validity import MeasurementGuard
from repro.control.zoo import zoo_entries
from repro.device.config import DeviceConfig
from repro.experiments.standard import extended_controllers
from repro.experiments.tournament import builtin_scenarios
from repro.search.runner import qos_summary, run_spec

FS = 30.0
CONFIG = DeviceConfig(total_frames=300)

ZOO = {entry.name: entry for entry in zoo_entries()}

#: the conformance scenario: short, lossy in every phase (hybrid-safe)
CONFORMANCE_SPEC = builtin_scenarios(frames=300, seed=7)["lossy_link"]


def build(name: str) -> Controller:
    controller = ZOO[name].factory(CONFIG)
    assert isinstance(controller, Controller)
    return controller


def run_qos(name: str) -> str:
    result = run_spec(CONFORMANCE_SPEC, controller=name)
    return json.dumps(qos_summary(result.run.qos), sort_keys=True)


def drive(controller: Controller, rows, t0: float = 0.0):
    """Feed (timeout_rate, offload_rate) rows; return the target trace."""
    target = controller.initial_target(FS)
    out = [target]
    for i, (t_rate, o_rate) in enumerate(rows):
        m = Measurement(
            time=t0 + float(i + 1),
            frame_rate=FS,
            offload_target=target,
            offload_rate=o_rate,
            offload_success_rate=max(0.0, o_rate - max(t_rate, 0.0))
            if math.isfinite(t_rate) else 0.0,
            timeout_rate=t_rate,
            timeout_rate_last=t_rate,
            local_rate=13.0,
            throughput=13.0,
        )
        target = controller.update(m)
        out.append(target)
    return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_zoo_names_resolve_in_extended_registry():
    registry = extended_controllers()
    missing = [name for name in ZOO if name not in registry]
    assert not missing, f"zoo members missing from extended_controllers: {missing}"


def test_zoo_entries_carry_report_metadata():
    for entry in ZOO.values():
        for field in ("policy", "state", "citation"):
            value = getattr(entry, field)
            assert isinstance(value, str) and value.strip(), (
                f"{entry.name}: empty {field!r} (docs/controllers.md "
                "renders this table)"
            )


@pytest.mark.parametrize("name", sorted(ZOO))
def test_factory_builds_fresh_instances(name):
    a, b = build(name), build(name)
    assert a is not b
    assert 0.0 <= a.initial_target(FS) <= FS


# ----------------------------------------------------------------------
# determinism and cross-kernel byte-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ZOO))
def test_equal_seed_runs_are_byte_identical(name, monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert run_qos(name) == run_qos(name)


@pytest.mark.parametrize("name", sorted(ZOO))
def test_cross_kernel_byte_identity(name, monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    fast = run_qos(name)

    monkeypatch.setenv("REPRO_SIM_SLOWPATH", "1")
    slow = run_qos(name)
    monkeypatch.delenv("REPRO_SIM_SLOWPATH", raising=False)

    monkeypatch.setenv("REPRO_KERNEL", "hybrid")
    hybrid = run_qos(name)

    assert fast == slow, f"{name}: fast vs REPRO_SIM_SLOWPATH=1 diverge"
    assert fast == hybrid, f"{name}: fast vs REPRO_KERNEL=hybrid diverge"


# ----------------------------------------------------------------------
# degraded-input tolerance (through the guard, plus what it repairs)
# ----------------------------------------------------------------------
NASTY_ROWS = [
    (float("nan"), 12.0),
    (float("inf"), 12.0),
    (float("-inf"), 0.0),
    (-5.0, 12.0),
    (1e308, 30.0),
    (7.0, 0.0),
    (0.0, 30.0),
]


@pytest.mark.parametrize("name", sorted(ZOO))
def test_guarded_degraded_stream_keeps_targets_bounded(name):
    controller = build(name)
    guard = MeasurementGuard(frame_rate=FS)
    target = controller.initial_target(FS)
    # duplicate + out-of-order timestamps interleaved with long silences
    times = [1.0, 1.0, 0.5, 2.0, 9.0, 9.5, 30.0]
    for t, (t_rate, o_rate) in zip(times, NASTY_ROWS):
        decision = guard.admit(
            Measurement(
                time=t,
                frame_rate=FS,
                offload_target=target,
                offload_rate=o_rate,
                offload_success_rate=0.0,
                timeout_rate=t_rate,
                timeout_rate_last=t_rate,
                local_rate=13.0,
                throughput=13.0,
            )
        )
        if not decision.admitted:
            continue
        target = controller.update(decision.measurement)
        assert math.isfinite(target), f"{name}: non-finite target"
        assert 0.0 <= target <= FS + 1e-9, f"{name}: target {target} out of range"


@pytest.mark.parametrize("name", sorted(ZOO))
def test_unguarded_nasty_values_keep_targets_bounded(name):
    """Even without the guard, raw NaN/inf input must not crash."""
    for target in drive(build(name), NASTY_ROWS):
        assert math.isfinite(target)
        assert 0.0 <= target <= FS + 1e-9


# ----------------------------------------------------------------------
# warm-restore round-trip (supervision checkpoint contract)
# ----------------------------------------------------------------------
WARMUP_ROWS = [(0.0, 12.0), (2.0, 12.0), (5.0, 8.0), (0.0, 10.0)]
CONTINUE_ROWS = [(1.0, 11.0), (0.0, 14.0), (3.0, 9.0), (0.0, 12.0)]


@pytest.mark.parametrize("name", sorted(ZOO))
def test_warm_restore_round_trip(name):
    original = build(name)
    drive(original, WARMUP_ROWS)
    state = original.snapshot_state()

    if state is None:
        # cold-restart contract: restore_state must refuse, reset works
        with pytest.raises(NotImplementedError):
            build(name).restore_state({})
        original.reset()
        return

    # the checkpoint store writes JSON; state must survive the trip
    revived = json.loads(json.dumps(state))
    assert revived == state

    restored = build(name)
    restored.reset()
    restored.restore_state(revived)
    assert restored.snapshot_state() == state

    t0 = float(len(WARMUP_ROWS))
    a = drive(original, CONTINUE_ROWS, t0=t0)[1:]
    b = drive(restored, CONTINUE_ROWS, t0=t0)[1:]
    assert a == b, f"{name}: restored instance diverges after warm restart"


@pytest.mark.parametrize("name", sorted(ZOO))
def test_reset_restores_initial_decisions(name):
    controller = build(name)
    first = drive(controller, WARMUP_ROWS)
    controller.reset()
    second = drive(controller, WARMUP_ROWS)
    assert first == second


# ----------------------------------------------------------------------
# bounded-target invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ZOO))
def test_targets_stay_bounded_under_stress(name):
    controller = build(name)
    rows = [
        (0.0, 0.0), (30.0, 30.0), (0.0, 30.0), (30.0, 0.0),
        (15.0, 15.0), (0.0, 0.0), (29.9, 0.1), (0.1, 29.9),
    ] * 4
    for target in drive(controller, rows):
        assert math.isfinite(target)
        assert 0.0 <= target <= FS + 1e-9
