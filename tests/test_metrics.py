"""Unit + property tests for metrics: counters, windows, series, QoS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import EventCounter, TimeSeries, WindowedRate, summarize_phases
from repro.metrics.qos import PhaseSummary, QosReport


# ----------------------------------------------------------------------
# EventCounter
# ----------------------------------------------------------------------
def test_counter_total_and_window():
    c = EventCounter(retention=10.0)
    c.record(1.0)
    c.record(2.0, count=3)
    c.record(5.0)
    assert c.total == 5
    assert c.count_since(0.0, 5.0) == 5
    assert c.count_since(1.5, 5.0) == 4
    assert c.rate(4.0, now=5.0) == pytest.approx(4 / 4.0)


def test_counter_rejects_time_travel():
    c = EventCounter()
    c.record(5.0)
    with pytest.raises(ValueError):
        c.record(4.0)


def test_counter_prunes_beyond_retention():
    c = EventCounter(retention=5.0)
    c.record(0.0)
    c.record(10.0)
    assert c.total == 2
    assert c.count_since(5.0, 10.0) == 1
    with pytest.raises(ValueError):
        c.count_since(0.0, 10.0)  # window larger than retention


def test_counter_negative_count_rejected():
    with pytest.raises(ValueError):
        EventCounter().record(0.0, count=-1)


# ----------------------------------------------------------------------
# WindowedRate (the controller's T input)
# ----------------------------------------------------------------------
def test_windowed_rate_averages_last_buckets():
    w = WindowedRate(window_buckets=3)
    for count in (3, 6, 0):
        w.record(count)
        w.close_bucket(1.0)
    assert w.average == pytest.approx(3.0)
    assert w.last == 0.0


def test_windowed_rate_rolls_old_buckets_out():
    w = WindowedRate(window_buckets=2)
    w.record(10)
    w.close_bucket(1.0)
    w.close_bucket(1.0)
    w.close_bucket(1.0)
    assert w.average == 0.0


def test_windowed_rate_empty_is_zero():
    assert WindowedRate().average == 0.0
    assert WindowedRate().last == 0.0


def test_windowed_rate_respects_bucket_seconds():
    w = WindowedRate(window_buckets=1)
    w.record(5)
    assert w.close_bucket(0.5) == pytest.approx(10.0)


@given(
    counts=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
    window=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_windowed_rate_equals_manual_average(counts, window):
    w = WindowedRate(window_buckets=window)
    for c in counts:
        w.record(c)
        w.close_bucket(1.0)
    expected = np.mean(counts[-window:])
    assert w.average == pytest.approx(expected)


# ----------------------------------------------------------------------
# TimeSeries
# ----------------------------------------------------------------------
def test_series_append_and_arrays():
    s = TimeSeries("x")
    s.append(0.0, 1.0)
    s.append(1.0, 2.0)
    assert len(s) == 2
    assert list(s.times) == [0.0, 1.0]
    assert list(s.values) == [1.0, 2.0]


def test_series_rejects_non_monotone_time():
    s = TimeSeries()
    s.append(1.0, 0.0)
    with pytest.raises(ValueError):
        s.append(0.5, 0.0)


def test_series_mean_and_max_over():
    s = TimeSeries()
    for t in range(10):
        s.append(float(t), float(t))
    assert s.mean_over(0.0, 5.0) == pytest.approx(2.0)
    assert s.max_over(0.0, 5.0) == 4.0
    assert np.isnan(s.mean_over(100.0, 200.0))


def test_series_slice_half_open():
    s = TimeSeries()
    for t in range(5):
        s.append(float(t), float(t))
    sliced = s.slice(1.0, 3.0)
    assert list(sliced.times) == [1.0, 2.0]


def test_series_resample_zero_order_hold():
    s = TimeSeries()
    s.append(0.0, 1.0)
    s.append(2.0, 5.0)
    r = s.resample(1.0, 0.0, 3.0)
    assert list(r.values) == [1.0, 1.0, 5.0, 5.0]


def test_series_cache_invalidation_on_append():
    s = TimeSeries()
    s.append(0.0, 1.0)
    _ = s.values  # materialize cache
    s.append(1.0, 2.0)
    assert list(s.values) == [1.0, 2.0]


# ----------------------------------------------------------------------
# QoS
# ----------------------------------------------------------------------
def _series(pairs):
    s = TimeSeries()
    for t, v in pairs:
        s.append(t, v)
    return s


def test_summarize_phases_cuts_on_boundaries():
    tp = {
        "a": _series([(t, 10.0 if t < 5 else 20.0) for t in range(10)]),
        "b": _series([(t, 15.0) for t in range(10)]),
    }
    phases = summarize_phases(tp, boundaries=[0.0, 5.0], end=10.0, labels=["lo", "hi"])
    assert len(phases) == 2
    assert phases[0].mean_throughput["a"] == pytest.approx(10.0)
    assert phases[0].winner() == "b"
    assert phases[1].winner() == "a"


def test_phase_advantage_handles_zero_baseline():
    ph = PhaseSummary(0, 1, "x", {"a": 10.0, "b": 0.0})
    assert ph.advantage_over("a", "b") == float("inf")
    assert ph.advantage_over("b", "a") == 0.0


def test_qos_report_success_fraction_and_row():
    rep = QosReport(
        name="X",
        total_frames=100,
        successful=80,
        timeouts=20,
        mean_throughput=24.0,
        mean_violation_rate=5.0,
    )
    assert rep.success_fraction == pytest.approx(0.8)
    row = rep.row()
    assert "X" in row and "24.00" in row


def test_qos_report_empty_run():
    assert QosReport(name="empty").success_fraction == 0.0
