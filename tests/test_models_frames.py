"""Unit + property tests for the JPEG frame-size model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.frames import (
    HEADER_BYTES,
    FrameSpec,
    frame_bytes,
    jpeg_bits_per_pixel,
)


def test_default_frame_is_about_11kb():
    """Calibration anchor: 224x224 @ q85 ~ 11.7 kB (DESIGN.md §5)."""
    assert 10_000 < frame_bytes(224, 85) < 13_000


def test_bpp_anchor_points():
    assert jpeg_bits_per_pixel(10) == pytest.approx(0.25)
    assert jpeg_bits_per_pixel(85) == pytest.approx(1.80)
    assert jpeg_bits_per_pixel(100) == pytest.approx(6.00)


def test_quality_out_of_range_rejected():
    with pytest.raises(ValueError):
        jpeg_bits_per_pixel(0)
    with pytest.raises(ValueError):
        jpeg_bits_per_pixel(101)


def test_resolution_must_be_positive():
    with pytest.raises(ValueError):
        frame_bytes(0, 85)


def test_bytes_scale_with_pixels():
    """Doubling resolution quadruples payload (minus fixed header)."""
    small = frame_bytes(224, 85) - HEADER_BYTES
    large = frame_bytes(448, 85) - HEADER_BYTES
    assert large == pytest.approx(4 * small, rel=0.01)


def test_framespec_defaults_and_properties():
    spec = FrameSpec()
    assert spec.resolution == 224
    assert spec.bytes_on_wire == frame_bytes(224, 85.0)
    assert spec.response_bytes > 0
    assert spec.response_bytes < spec.bytes_on_wire


@given(q1=st.floats(min_value=1, max_value=100), q2=st.floats(min_value=1, max_value=100))
@settings(max_examples=200, deadline=None)
def test_bpp_monotone_in_quality(q1, q2):
    if q1 <= q2:
        assert jpeg_bits_per_pixel(q1) <= jpeg_bits_per_pixel(q2) + 1e-12


@given(
    res=st.integers(min_value=16, max_value=2048),
    quality=st.floats(min_value=1, max_value=100),
)
@settings(max_examples=200, deadline=None)
def test_frame_bytes_positive_and_bounded(res, quality):
    nbytes = frame_bytes(res, quality)
    assert nbytes > HEADER_BYTES
    # payload can never exceed uncompressed 24-bit RGB
    assert nbytes - HEADER_BYTES <= res * res * 3


@given(res=st.integers(min_value=16, max_value=1024))
@settings(max_examples=100, deadline=None)
def test_frame_bytes_monotone_in_resolution(res):
    assert frame_bytes(res + 16, 85) > frame_bytes(res, 85)
