"""Acceptance tests for the supervision chaos runner.

The tentpole's headline claim, asserted end to end: killing the
controller at t=60 s, a warm (checkpointed) restart re-settles to the
pre-crash ``P_o`` within 3 measurement windows while a cold restart
takes strictly longer — both runs deterministic under a fixed seed,
with MTTR and missed-window counters exported in the QoS summary.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.chaos import (
    ChaosScenario,
    run_chaos,
    run_supervision_chaos,
    supervision_chaos_injectors,
)
from repro.faults import ControllerKill, FaultTimeline
from repro.supervision import SupervisionConfig


@pytest.fixture(scope="module")
def result():
    return run_supervision_chaos(seed=0, total_frames=4000)


def _checks(child, name):
    return [c for c in child.invariants if c.name == name]


# ----------------------------------------------------------------------
# the acceptance criteria
# ----------------------------------------------------------------------
def test_all_invariants_hold(result):
    failed = [
        c.name
        for child in (result.warm, result.cold)
        for c in child.invariants
        if not c.passed
    ] + [c.name for c in result.cross_invariants if not c.passed]
    assert not failed, failed


def test_warm_restart_settles_within_three_windows(result):
    settles = _checks(result.warm, "warm-restart-settle")
    assert settles  # both the t=60 kill and the reboot are judged
    for c in settles:
        assert c.passed
        assert c.observed <= 3.0


def test_cold_restart_is_strictly_slower_for_the_t60_kill(result):
    kill = next(c for c in result.cross_invariants if c.window.start == 60.0)
    assert kill.passed
    assert kill.observed < kill.expected  # warm periods < cold periods
    assert kill.expected > 3.0  # cold genuinely exceeds the warm bound


def test_mttr_and_missed_windows_exported_in_qos(result):
    for child in (result.warm, result.cold):
        extras = child.run.qos.extras
        assert extras["supervision.crashes"] >= 2.0
        assert extras["supervision.restarts"] >= 2.0
        assert extras["supervision.missed_windows"] >= 1.0
        assert extras["supervision.mttr_mean"] > 0.0
        assert "supervision.mttr.controller" in extras
    assert result.warm.run.qos.extras["supervision.warm_restarts"] >= 2.0
    assert result.cold.run.qos.extras["supervision.cold_restarts"] >= 2.0


def test_warm_run_checkpoints_every_tick(result):
    sup = result.warm.supervision
    assert sup["checkpoints_saved"] >= 100
    assert result.cold.supervision["checkpoints_saved"] == 0


def test_result_serializes_to_json_with_pass_verdict(result):
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["verdict"] == "PASS"
    assert payload["mode"] == "supervision"
    assert payload["warm"]["supervision"]["warm_restarts"] >= 2
    names = {c["name"] for c in payload["cross_invariants"]}
    assert names == {"warm-beats-cold"}


def test_deterministic_under_fixed_seed(result):
    again = run_supervision_chaos(seed=0, total_frames=4000)
    for a, b in ((result.warm, again.warm), (result.cold, again.cold)):
        assert json.dumps(a.transcript, sort_keys=True) == json.dumps(
            b.transcript, sort_keys=True
        )
    assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
        result.to_dict(), sort_keys=True
    )


# ----------------------------------------------------------------------
# runner plumbing
# ----------------------------------------------------------------------
def test_injector_factory_windows_are_omittable():
    only_kill = supervision_chaos_injectors(server_kill=None, reboot=None)
    assert [type(i).__name__ for i in only_kill] == ["ControllerKill"]


def test_unsupervised_warm_restart_request_is_rejected():
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario
    from repro.experiments.standard import framefeedback_factory

    chaos = ChaosScenario(
        base=Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=900),
        ),
        injectors=[
            ControllerKill(FaultTimeline.from_rows([(10.0, 3.0)]), restart="warm")
        ],
        supervision=None,  # no supervisor: "warm" has nothing to restore from
    )
    with pytest.raises(ValueError, match="needs a supervisor"):
        run_chaos(chaos)


def test_supervised_single_kill_chaos_scenario():
    """ChaosScenario.supervision alone wires the supervisor into run_chaos."""
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario
    from repro.experiments.standard import framefeedback_factory

    chaos = ChaosScenario(
        base=Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=1500),
            seed=3,
        ),
        injectors=[ControllerKill(FaultTimeline.from_rows([(20.0, 4.0)]))],
        supervision=SupervisionConfig(),
    )
    res = run_chaos(chaos)
    assert res.supervision is not None
    assert res.supervision["restarts"] == {"controller": 1}
    settle = next(c for c in res.invariants if c.name == "warm-restart-settle")
    assert settle.passed


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_supervision_json_exits_zero_on_pass(capsys):
    assert main(["chaos", "--supervision", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verdict"] == "PASS"
    assert payload["warm"]["supervision"]["mttr"]["controller"]


def test_cli_supervision_text_render(capsys):
    assert main(["chaos", "--supervision"]) == 0
    out = capsys.readouterr().out
    assert "warm-beats-cold" in out
    assert "verdict: PASS" in out
