"""Unit tests for the fleet tier: pool health lifecycle + router policies."""

import numpy as np
import pytest

from repro.fleet import FleetConfig, FleetTopology, Router, ServerPool
from repro.server.server import EdgeServer
from repro.sim import Environment


def make_pool(n=3, config=None, env=None):
    env = env or Environment()
    servers = [
        EdgeServer(env, np.random.default_rng(i), name=f"edge{i}") for i in range(n)
    ]
    return env, ServerPool(env, servers, config)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
def test_fleet_config_rejects_bad_values():
    with pytest.raises(ValueError):
        FleetConfig(policy="bogus")
    with pytest.raises(ValueError):
        FleetConfig(admission_rate=0.0)
    with pytest.raises(ValueError):
        FleetConfig(fail_threshold=0)
    with pytest.raises(ValueError):
        FleetConfig(probation=-1.0)


def test_topology_rejects_empty_and_duplicates():
    with pytest.raises(ValueError):
        FleetTopology(servers=())
    with pytest.raises(ValueError):
        FleetTopology(servers=("a", "a"))


def test_pool_rejects_duplicate_server_names():
    env = Environment()
    servers = [
        EdgeServer(env, np.random.default_rng(0), name="dup"),
        EdgeServer(env, np.random.default_rng(1), name="dup"),
    ]
    with pytest.raises(ValueError):
        ServerPool(env, servers)


# ----------------------------------------------------------------------
# routing policies
# ----------------------------------------------------------------------
def test_round_robin_rotates_in_topology_order():
    env, pool = make_pool(3)
    router = Router(pool)
    picks = [router.route().name for _ in range(6)]
    assert picks == ["edge0", "edge1", "edge2", "edge0", "edge1", "edge2"]


def test_least_loaded_prefers_shallowest_queue():
    env, pool = make_pool(2, FleetConfig(policy="least_loaded"))
    router = Router(pool)
    # both empty -> topology index tie-break
    assert router.route().name == "edge0"
    # load up edge0's queue directly; edge1 becomes the shallow one
    from repro.server.requests import InferenceRequest

    for i in range(4):
        pool.by_name["edge0"].submit(
            InferenceRequest(
                tenant="t",
                model_name="mobilenet_v3_small",
                sent_at=env.now,
                payload_bytes=100,
                respond=lambda r: None,
                frame_id=i,
            )
        )
    assert router.route().name == "edge1"


def test_latency_aware_prefers_unprobed_then_fastest():
    env, pool = make_pool(3, FleetConfig(policy="latency_aware"))
    router = Router(pool)
    pool.record_result("edge0", ok=True, rtt=0.05)
    pool.record_result("edge1", ok=True, rtt=0.01)
    # edge2 has no observation yet: probed first
    assert router.route().name == "edge2"
    pool.record_result("edge2", ok=True, rtt=0.2)
    assert router.route().name == "edge1"


def test_route_excludes_named_server():
    env, pool = make_pool(2)
    router = Router(pool)
    for _ in range(4):
        assert router.route(exclude="edge0").name == "edge1"


# ----------------------------------------------------------------------
# admission token bucket
# ----------------------------------------------------------------------
def test_admission_bucket_denies_burst_overflow():
    env, pool = make_pool(1, FleetConfig(admission_rate=10.0, admission_burst=2.0))
    router = Router(pool)
    assert router.route() is not None
    assert router.route() is not None
    assert router.route() is None  # burst exhausted, no time has passed
    env.run(until=0.5)  # refill 10/s * 0.5s = 5 tokens (capped at burst 2)
    assert router.route() is not None


def test_admission_spills_to_next_healthy_server():
    env, pool = make_pool(2, FleetConfig(admission_rate=10.0, admission_burst=1.0))
    router = Router(pool)
    assert router.route().name == "edge0"
    # edge0's bucket is now empty; the same instant spills to edge1
    assert router.route().name == "edge1"
    assert router.route() is None


# ----------------------------------------------------------------------
# ejection / probation lifecycle
# ----------------------------------------------------------------------
def test_kill_ejects_and_probation_readmits():
    config = FleetConfig(probe_period=0.5, probation=2.0)
    env, pool = make_pool(2, config)
    router = Router(pool)
    down = []
    pool.subscribe_down(down.append)

    env.run(until=1.0)
    pool.kill("edge0")
    assert down == ["edge0"]
    assert [s.name for s in pool.healthy()] == ["edge1"]
    assert router.route().name == "edge1"

    # still crashed: probation clock must not start
    env.run(until=3.0)
    assert pool.health["edge0"].ejected
    pool.restart("edge0")
    # alive again: readmitted only after a full probation window
    env.run(until=4.0)
    assert pool.health["edge0"].ejected
    env.run(until=6.0)
    assert not pool.health["edge0"].ejected
    assert pool.health["edge0"].readmissions == 1
    assert len(pool.mttr_samples) == 1


def test_stale_heartbeat_ejects_paused_server():
    config = FleetConfig(probe_period=0.5, stale_grace_periods=2.5)
    env, pool = make_pool(2, config)
    env.run(until=1.0)
    pool.by_name["edge0"].pause(30.0)  # ServerCrash-style stall
    env.run(until=4.0)
    assert pool.health["edge0"].ejected
    assert [s.name for s in pool.healthy()] == ["edge1"]


def test_consecutive_failures_eject():
    env, pool = make_pool(2, FleetConfig(fail_threshold=3))
    for _ in range(2):
        pool.record_result("edge0", ok=False)
    assert not pool.health["edge0"].ejected
    pool.record_result("edge0", ok=True)  # success resets the streak
    for _ in range(3):
        pool.record_result("edge0", ok=False)
    assert pool.health["edge0"].ejected


def test_mark_down_is_idempotent():
    env, pool = make_pool(2)
    down = []
    pool.subscribe_down(down.append)
    pool.mark_down("edge0")
    pool.mark_down("edge0")
    assert down == ["edge0"]
    assert pool.health["edge0"].ejections == 1


def test_failover_disabled_makes_recovery_tier_inert():
    env, pool = make_pool(2, FleetConfig(failover=False))
    down = []
    pool.subscribe_down(down.append)
    pool.kill("edge0")
    assert down == []
    assert not pool.health["edge0"].ejected
    assert len(pool.healthy()) == 2  # still nominally routable


# ----------------------------------------------------------------------
# brownout
# ----------------------------------------------------------------------
def test_brownout_when_all_servers_ejected():
    env, pool = make_pool(2)
    router = Router(pool)
    pool.kill("edge0")
    pool.kill("edge1")
    assert pool.all_ejected
    assert not router.available()
    assert router.route() is None
