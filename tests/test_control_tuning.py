"""Tests for the §III-B automated tuning procedure."""

import numpy as np
import pytest

from repro.analysis.stability import StabilityReport
from repro.control.framefeedback import FrameFeedbackSettings
from repro.control.tuning import GainSweepResult, sweep_gains, tune_ziegler_nichols_like


def synthetic_run_factory():
    """A cheap synthetic plant: instability grows with Kp, shrinks with Kd.

    Lets the tuner's search logic be tested without full simulations
    (the simulation-backed version runs in examples/ and benchmarks/).
    """

    def run(settings: FrameFeedbackSettings):
        t = np.arange(60.0)
        swing = max(0.0, 8.0 * settings.kp - 6.0 * settings.kd)
        rng = np.random.default_rng(0)
        v = 15.0 + swing * np.sin(t) + rng.normal(0, 0.1, t.size)
        return t, v

    return run


def test_sweep_covers_full_grid():
    results = sweep_gains(synthetic_run_factory(), [0.1, 0.2], [0.0, 0.26])
    assert len(results) == 4
    assert {(r.kp, r.kd) for r in results} == {
        (0.1, 0.0),
        (0.1, 0.26),
        (0.2, 0.0),
        (0.2, 0.26),
    }
    assert all(isinstance(r.report, StabilityReport) for r in results)


def test_sweep_scores_reflect_plant():
    results = sweep_gains(synthetic_run_factory(), [0.1, 0.8], [0.0])
    by_kp = {r.kp: r.report.std for r in results}
    assert by_kp[0.8] > by_kp[0.1]


def test_tuner_finds_kp_edge_then_damps():
    settings = tune_ziegler_nichols_like(
        synthetic_run_factory(),
        kp_start=0.1,
        kp_step=0.1,
        kp_max=1.0,
        kd_step=0.1,
        kd_max=1.0,
        oscillation_threshold=2.0,
    )
    # plant: swing = 8 Kp - 6 Kd; std >= 2 needs swing >= ~2.8 -> Kp ~ 0.4
    assert 0.3 <= settings.kp <= 0.6
    # damping: swing < 2.8 again -> Kd >= (8 Kp - 2.8)/6
    assert settings.kd >= (8 * settings.kp - 3.2) / 6.0
    # tuned result is actually stable on the plant
    t, v = synthetic_run_factory()(settings)
    assert np.std(v) < 2.5


def test_tuner_respects_base_settings():
    base = FrameFeedbackSettings(t_threshold_frac=0.2)
    settings = tune_ziegler_nichols_like(
        synthetic_run_factory(), oscillation_threshold=2.0, base=base
    )
    assert settings.t_threshold_frac == 0.2


def test_tuner_hits_kp_max_on_dead_plant():
    """A plant that never oscillates drives Kp to the sweep limit."""

    def run(settings):
        t = np.arange(30.0)
        return t, np.full_like(t, 10.0)

    settings = tune_ziegler_nichols_like(
        run, kp_start=0.2, kp_step=0.4, kp_max=1.0, oscillation_threshold=2.0
    )
    assert settings.kp == 1.0
    assert settings.kd > 0.0
