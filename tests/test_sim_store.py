"""Unit tests for the Store (bounded FIFO with rejection)."""

import pytest

from repro.sim import Environment, Store


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_put_then_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env, store):
        for item in "abc":
            yield store.put(item)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == ["a", "b", "c"]


def test_get_blocks_until_item_arrives():
    env = Environment()
    store = Store(env)
    got = {}

    def consumer(env, store):
        item = yield store.get()
        got["item"] = item
        got["time"] = env.now

    def producer(env, store):
        yield env.timeout(3.0)
        yield store.put("late")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == {"item": "late", "time": 3.0}


def test_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    times = {}

    def producer(env, store):
        yield store.put("first")
        times["first"] = env.now
        yield store.put("second")
        times["second"] = env.now

    def consumer(env, store):
        yield env.timeout(2.0)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert times["first"] == 0.0
    assert times["second"] == 2.0


def test_try_put_rejects_when_full():
    env = Environment()
    store = Store(env, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert len(store) == 2


def test_try_get_returns_none_when_empty():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.try_put("x")
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_try_put_succeeds_when_consumer_waiting():
    env = Environment()
    store = Store(env, capacity=1)
    got = []

    def consumer(env, store):
        item = yield store.get()
        got.append(item)
        item = yield store.get()
        got.append(item)

    env.process(consumer(env, store))
    store.try_put("a")  # store "full" at capacity 1...
    env.run(until=0.1)
    # consumer drained it; next try_put fits
    assert store.try_put("b")
    env.run()
    assert got == ["a", "b"]


def test_drain_returns_all_items():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.try_put(i)
    assert store.drain() == [0, 1, 2, 3, 4]
    assert len(store) == 0


def test_drain_with_limit():
    env = Environment()
    store = Store(env)
    for i in range(5):
        store.try_put(i)
    assert store.drain(limit=2) == [0, 1]
    assert store.drain(limit=10) == [2, 3, 4]
    assert store.drain() == []


def test_drain_unblocks_waiting_put():
    env = Environment()
    store = Store(env, capacity=1)
    done = {}

    def producer(env, store):
        yield store.put("a")
        yield store.put("b")
        done["t"] = env.now

    def drainer(env, store):
        yield env.timeout(1.0)
        store.drain()

    env.process(producer(env, store))
    env.process(drainer(env, store))
    env.run()
    assert done["t"] == 1.0
    assert store.items[0] == "b"


def test_is_full_reflects_capacity():
    env = Environment()
    store = Store(env, capacity=1)
    assert not store.is_full
    store.try_put("x")
    assert store.is_full
