"""Tests for the preemptive resource."""

import pytest

from repro.sim import Environment, Interrupt, Preempted, PreemptiveResource


def test_high_priority_preempts_low():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    log = []

    def low(env, res):
        with res.request(priority=5) as req:
            yield req
            log.append(("low-start", env.now))
            try:
                yield env.timeout(10.0)
                log.append(("low-done", env.now))
            except Interrupt as exc:
                assert isinstance(exc.cause, Preempted)
                log.append(("low-preempted", env.now, exc.cause.usage_since))

    def high(env, res):
        yield env.timeout(2.0)
        with res.request(priority=1) as req:
            yield req
            log.append(("high-start", env.now))
            yield env.timeout(1.0)
        log.append(("high-done", env.now))

    env.process(low(env, res))
    env.process(high(env, res))
    env.run()
    assert ("low-start", 0.0) in log
    assert ("low-preempted", 2.0, 0.0) in log
    assert ("high-start", 2.0) in log
    assert ("high-done", 3.0) in log
    assert not any(e[0] == "low-done" for e in log)


def test_equal_priority_does_not_preempt():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    order = []

    def user(env, res, tag, delay):
        yield env.timeout(delay)
        with res.request(priority=3) as req:
            yield req
            order.append((tag, env.now))
            yield env.timeout(5.0)

    env.process(user(env, res, "first", 0.0))
    env.process(user(env, res, "second", 1.0))
    env.run()
    assert order == [("first", 0.0), ("second", 5.0)]


def test_lower_priority_waits_instead_of_preempting():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=1) as req:
            yield req
            order.append(("holder", env.now))
            yield env.timeout(4.0)

    def meek(env, res):
        yield env.timeout(1.0)
        with res.request(priority=9) as req:
            yield req
            order.append(("meek", env.now))

    env.process(holder(env, res))
    env.process(meek(env, res))
    env.run()
    assert order == [("holder", 0.0), ("meek", 4.0)]


def test_preempted_victim_can_rerequest():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    finished = {}

    def persistent(env, res):
        remaining = 5.0
        while remaining > 0:
            with res.request(priority=5) as req:
                yield req
                start = env.now
                try:
                    yield env.timeout(remaining)
                    remaining = 0.0
                except Interrupt:
                    remaining -= env.now - start
        finished["at"] = env.now

    def vip(env, res):
        yield env.timeout(2.0)
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(3.0)

    env.process(persistent(env, res))
    env.process(vip(env, res))
    env.run()
    # 2 s of work, 3 s preempted, 3 s remaining work => done at 8 s
    assert finished["at"] == pytest.approx(8.0)


def test_preemption_only_with_full_capacity():
    env = Environment()
    res = PreemptiveResource(env, capacity=2)
    preempted = []

    def low(env, res):
        with res.request(priority=5) as req:
            yield req
            try:
                yield env.timeout(10.0)
            except Interrupt:
                preempted.append(env.now)

    def high(env, res):
        yield env.timeout(1.0)
        with res.request(priority=0) as req:
            yield req  # a free slot exists: no preemption needed
            yield env.timeout(1.0)

    env.process(low(env, res))
    env.process(high(env, res))
    env.run()
    assert preempted == []
