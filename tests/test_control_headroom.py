"""Tests for the latency-headroom controller variant."""

import pytest

from repro.control.base import Measurement
from repro.control.headroom import HeadroomController, HeadroomSettings

FS, L = 30.0, 0.25


def measure(target, rtt_p95=None, t_rate=0.0, time=0.0):
    return Measurement(
        time=time,
        frame_rate=FS,
        offload_target=target,
        offload_rate=target,
        offload_success_rate=target,
        timeout_rate=t_rate,
        timeout_rate_last=t_rate,
        local_rate=13.0,
        throughput=13.0 + target,
        rtt_mean=rtt_p95,
        rtt_p95=rtt_p95,
    )


def controller(**kwargs):
    return HeadroomController(FS, L, HeadroomSettings(**kwargs))


def test_validation():
    with pytest.raises(ValueError):
        HeadroomController(0.0, L)
    with pytest.raises(ValueError):
        HeadroomController(FS, 0.0)
    with pytest.raises(ValueError):
        HeadroomSettings(target_frac=1.5)
    with pytest.raises(ValueError):
        HeadroomSettings(update_min_frac=0.5)


def test_fast_rtts_increase_offloading():
    c = controller()
    t0 = c.update(measure(5.0, rtt_p95=0.05))
    assert t0 > 0.0
    t1 = c.update(measure(t0, rtt_p95=0.05, time=1.0))
    assert t1 > t0


def test_rtt_past_target_backs_off():
    c = controller()
    c._target = 20.0
    c.update(measure(20.0, rtt_p95=0.10))  # prime derivative
    new = c.update(measure(20.0, rtt_p95=0.24, time=1.0))  # near deadline
    assert new < 20.0


def test_rtt_at_target_is_equilibrium():
    c = controller()
    c._target = 15.0
    target_rtt = 0.75 * L
    c.update(measure(15.0, rtt_p95=target_rtt))
    new = c.update(measure(15.0, rtt_p95=target_rtt, time=1.0))
    assert new == pytest.approx(15.0, abs=0.2)


def test_violations_reduce_headroom_error():
    clean = controller()
    dirty = controller()
    for c in (clean, dirty):
        c._target = 15.0
    clean.update(measure(15.0, rtt_p95=0.15))
    dirty.update(measure(15.0, rtt_p95=0.15, t_rate=6.0))
    assert dirty.last_error < clean.last_error


def test_blind_bucket_with_timeouts_backs_off():
    c = controller()
    c._target = 10.0
    new = c.update(measure(10.0, rtt_p95=None, t_rate=10.0))
    assert new < 10.0


def test_blind_bucket_without_timeouts_ramps():
    c = controller()
    new = c.update(measure(0.0, rtt_p95=None, t_rate=0.0))
    assert new > 0.0


def test_update_clamps_match_table_iv_shape():
    c = controller()
    c._target = 0.0
    c.update(measure(0.0, rtt_p95=0.02))  # prime
    prev = c.target
    for step in range(30):
        rtt = 0.02 if step % 2 == 0 else 0.3  # wild swings
        new = c.update(measure(prev, rtt_p95=rtt, time=float(step)))
        assert new - prev <= 0.1 * FS + 1e-9
        assert prev - new <= 0.5 * FS + 1e-9
        assert 0.0 <= new <= FS
        prev = new


def test_reset():
    c = controller()
    c.update(measure(0.0, rtt_p95=0.05))
    c.reset()
    assert c.target == 0.0
    assert c.last_error == 0.0
