"""Loadgen smoke: hundreds of async clients on one loop, jitter bounded.

The 200-client test is the event-loop-starvation canary the ISSUE asks
for: if the loop cannot keep 200 coroutine tickers on schedule, p99
tick jitter blows up long before sockets error.  Real seconds elapse;
the burst is kept under two seconds.
"""

import asyncio

import pytest

from repro.metrics.qos import realtime_extras
from repro.realtime.gateway import GatewayConfig, InferenceGateway
from repro.realtime.loadgen import LoadgenConfig, run_loadgen


def run(coro):
    return asyncio.run(coro)


def test_config_validation():
    with pytest.raises(ValueError):
        LoadgenConfig(clients=0)
    with pytest.raises(ValueError):
        LoadgenConfig(duration=0.0)
    with pytest.raises(ValueError):
        LoadgenConfig(frame_bytes=-1)


def test_small_burst_accounting_and_qos_shape():
    async def scenario():
        gateway = await InferenceGateway(GatewayConfig()).start()
        try:
            config = LoadgenConfig(
                clients=4, frame_rate=10.0, deadline=0.3, duration=1.0, seed=3
            )
            report = await run_loadgen(config, gateway.address)
        finally:
            # gateway books close once the graceful stop drains whatever
            # the clients abandoned at their deadlines
            await gateway.stop()
        assert report.accounting_closed
        assert gateway.stats.accounting_closed
        assert report.submitted >= config.clients  # every client ticked
        qos = report.qos()
        extras = realtime_extras(qos.extras)
        assert set(extras) == {
            "realtime.breakers_opened",
            "realtime.fallback_local",
            "realtime.jitter_max",
            "realtime.jitter_p50",
            "realtime.jitter_p99",
        }
        assert qos.total_frames == report.submitted
        # serializable for --json
        payload = report.to_dict()
        assert payload["accounting_closed"] is True

    run(scenario())


def test_loadgen_rejects_mismatched_remote_list():
    async def scenario():
        async with InferenceGateway(GatewayConfig()) as gateway:
            config = LoadgenConfig(clients=2, duration=0.2)
            with pytest.raises(ValueError):
                await run_loadgen(config, gateway.address, remotes=[])

    run(scenario())


def test_200_clients_sustained_with_bounded_jitter():
    async def scenario():
        gateway = await InferenceGateway(GatewayConfig()).start()
        try:
            config = LoadgenConfig(
                clients=200,
                frame_rate=4.0,
                deadline=0.3,
                duration=1.5,
                frame_bytes=512,
                seed=0,
            )
            report = await run_loadgen(config, gateway.address)
        finally:
            await gateway.stop()
        # every submitted frame reached exactly one terminal state, on
        # both sides of the wire, under 800 fps of offered load (the
        # gateway's ledger closes at stop(), when frames the clients
        # abandoned at their deadlines are drained)
        assert report.accounting_closed
        assert gateway.stats.accounting_closed
        assert report.submitted >= 200 * 4  # >= 4 ticks per client
        # the loop kept 200 tickers on schedule: p99 lateness stays
        # well under one frame period (generous CI bound)
        assert report.jitter_p99 < 0.15
        # work still completes under overload; pushback, not collapse
        assert report.outcomes.get("completed", 0) > 0

    run(scenario())
