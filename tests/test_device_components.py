"""Unit + property tests for device components: splitter, camera,
local pipeline, energy model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import CpuUtilizationModel, FrameSource, LocalPipeline, TokenBucketSplitter
from repro.models.device_profiles import PI_4B_1_2
from repro.models.latency import LocalLatencyModel
from repro.models.zoo import MOBILENET_V3_SMALL
from repro.sim import Environment


# ----------------------------------------------------------------------
# splitter
# ----------------------------------------------------------------------
def test_splitter_zero_target_never_offloads():
    s = TokenBucketSplitter(30.0)
    s.set_target(0.0)
    assert not any(s.route() for _ in range(100))


def test_splitter_full_target_always_offloads():
    s = TokenBucketSplitter(30.0)
    s.set_target(30.0)
    assert all(s.route() for _ in range(100))


def test_splitter_half_target_alternates():
    s = TokenBucketSplitter(30.0)
    s.set_target(15.0)
    decisions = [s.route() for _ in range(10)]
    assert decisions == [False, True] * 5


def test_splitter_clamps_target():
    s = TokenBucketSplitter(30.0)
    s.set_target(100.0)
    assert s.target == 30.0
    s.set_target(-5.0)
    assert s.target == 0.0


def test_splitter_spacing_is_even():
    """A 10/30 target offloads exactly every 3rd frame."""
    s = TokenBucketSplitter(30.0)
    s.set_target(10.0)
    decisions = [s.route() for _ in range(30)]
    gaps = np.diff([i for i, d in enumerate(decisions) if d])
    assert set(gaps) == {3}


@given(
    target=st.floats(min_value=0.0, max_value=30.0),
    n=st.integers(min_value=100, max_value=3000),
)
@settings(max_examples=100, deadline=None)
def test_splitter_long_run_rate_exact(target, n):
    """Long-run offload fraction equals target / F_s to within 1 frame."""
    s = TokenBucketSplitter(30.0)
    s.set_target(target)
    offloaded = sum(s.route() for _ in range(n))
    expected = n * target / 30.0
    assert abs(offloaded - expected) <= 1.0


def test_splitter_invalid_frame_rate():
    with pytest.raises(ValueError):
        TokenBucketSplitter(0.0)


# ----------------------------------------------------------------------
# camera
# ----------------------------------------------------------------------
def test_camera_emits_exact_count_and_spacing():
    env = Environment()
    stamps = []
    src = FrameSource(env, 30.0, nbytes=100, sink=lambda f: stamps.append(f), total_frames=90)
    env.run()
    assert src.frames_emitted == 90
    assert [f.frame_id for f in stamps] == list(range(90))
    gaps = np.diff([f.captured_at for f in stamps])
    assert np.allclose(gaps, 1 / 30)


def test_camera_done_event_fires_with_count():
    env = Environment()
    src = FrameSource(env, 30.0, nbytes=1, sink=lambda f: None, total_frames=10)
    assert env.run(until=src.done) == 10


def test_camera_rejects_bad_rate():
    env = Environment()
    with pytest.raises(ValueError):
        FrameSource(env, 0.0, nbytes=1, sink=lambda f: None)


# ----------------------------------------------------------------------
# local pipeline
# ----------------------------------------------------------------------
def _local(env, seed=0, jitter=0.0):
    model = LocalLatencyModel(PI_4B_1_2, MOBILENET_V3_SMALL, jitter_sigma=jitter)
    return LocalPipeline(env, model, np.random.default_rng(seed))


def test_local_reaches_table2_rate_under_saturation():
    env = Environment()
    lp = _local(env)
    FrameSource(env, 30.0, nbytes=1, sink=lambda f: lp.offer(f), total_frames=None)
    env.run(until=60.0)
    assert lp.completed / 60.0 == pytest.approx(13.0, rel=0.03)


def test_local_skips_when_engine_and_slot_full():
    env = Environment()
    lp = _local(env)
    FrameSource(env, 30.0, nbytes=1, sink=lambda f: lp.offer(f), total_frames=None)
    env.run(until=10.0)
    assert lp.skipped > 0
    # conservation: every offered frame completed, pending, or skipped
    offered = 300  # 10 s at 30 fps
    assert lp.completed + lp.skipped + (1 if lp.busy else 0) + (
        1 if lp._pending is not None else 0
    ) == pytest.approx(offered, abs=1)


def test_local_idle_engine_accepts_immediately():
    env = Environment()
    lp = _local(env)
    from repro.device.camera import Frame

    assert lp.offer(Frame(0, 0.0, 1))
    assert lp.busy


def test_local_utilization_full_under_saturation():
    env = Environment()
    lp = _local(env)
    FrameSource(env, 30.0, nbytes=1, sink=lambda f: lp.offer(f), total_frames=None)
    env.run(until=30.0)
    assert lp.utilization(30.0) == pytest.approx(1.0, abs=0.05)


def test_local_low_demand_processes_everything():
    env = Environment()
    lp = _local(env)
    FrameSource(env, 5.0, nbytes=1, sink=lambda f: lp.offer(f), total_frames=50)
    env.run()
    assert lp.completed == 50
    assert lp.skipped == 0


# ----------------------------------------------------------------------
# energy model
# ----------------------------------------------------------------------
def test_energy_model_matches_paper_endpoints():
    m = CpuUtilizationModel(PI_4B_1_2)
    assert m.local_only_utilization() == pytest.approx(0.502, abs=0.02)
    assert m.full_offload_utilization(30.0) == pytest.approx(0.223, abs=0.02)


def test_energy_model_monotone_in_both_inputs():
    m = CpuUtilizationModel(PI_4B_1_2)
    assert m.utilization(0.5, 10) > m.utilization(0.2, 10)
    assert m.utilization(0.5, 20) > m.utilization(0.5, 10)


def test_energy_model_clamps_at_one():
    m = CpuUtilizationModel(PI_4B_1_2, inference_weight=2.0)
    assert m.utilization(1.0, 30.0) == 1.0


def test_energy_model_validates_inputs():
    m = CpuUtilizationModel(PI_4B_1_2)
    with pytest.raises(ValueError):
        m.utilization(-0.1, 0)
    with pytest.raises(ValueError):
        m.utilization(0.5, -1)
