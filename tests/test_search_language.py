"""Scenario language + compiler unit tests (ISSUE 6 tentpole)."""

import math

import pytest

from repro.faults.device import CameraStall, CpuThrottle
from repro.faults.link import BandwidthCollapse
from repro.faults.server import ServerSlowdown
from repro.search import (
    ScenarioSpec,
    SpecError,
    build_injectors,
    compile_chaos,
    compile_flat,
    compile_scenario,
    expand_population,
)
from repro.search.compiler import load_rows, network_rows


# ----------------------------------------------------------------------
# language validation
# ----------------------------------------------------------------------
def test_unknown_top_level_key_rejected_with_helpful_message():
    with pytest.raises(SpecError, match=r"\['contoller'\]") as err:
        ScenarioSpec.from_dict({"contoller": "FrameFeedback"})
    assert "valid fields" in str(err.value)
    assert "controller" in str(err.value)


def test_unknown_nested_keys_rejected():
    with pytest.raises(SpecError, match="device"):
        ScenarioSpec.from_dict({"device": {"frame_rat": 30.0}})
    with pytest.raises(SpecError, match="gpu"):
        ScenarioSpec.from_dict({"gpu": {"base_latencyy": 0.01}})
    with pytest.raises(SpecError, match="population"):
        ScenarioSpec.from_dict({"population": {"size": 2, "profile": ["x"]}})


def test_unknown_fault_kind_and_params_rejected():
    with pytest.raises(SpecError, match="unknown fault kind"):
        ScenarioSpec.from_dict(
            {"faults": [{"kind": "bandwith_collapse", "windows": [[1, 1]]}]}
        )
    with pytest.raises(SpecError, match=r"faults\[0\]"):
        ScenarioSpec.from_dict(
            {"faults": [{"kind": "bandwidth_collapse", "windows": [[1, 1]],
                         "facor": 0.1}]}
        )


def test_unknown_generator_kind_rejected():
    with pytest.raises(SpecError, match="unknown generator kind"):
        ScenarioSpec.from_dict({"network": {"kind": "diurnal_", "period": 10}})
    with pytest.raises(SpecError, match="unknown generator kind"):
        ScenarioSpec.from_dict({"load": {"kind": "mobility"}})  # load has none


def test_unknown_controller_profile_model_rejected():
    with pytest.raises(SpecError, match="unknown controller"):
        ScenarioSpec.from_dict({"controller": "NotAController"})
    with pytest.raises(SpecError, match="unknown device profile"):
        ScenarioSpec.from_dict({"device": {"profile": "pi9"}})
    with pytest.raises(SpecError, match="unknown model"):
        ScenarioSpec.from_dict({"device": {"model": "resnet9000"}})


def test_fault_windows_are_sorted_and_validated():
    spec = ScenarioSpec.from_dict(
        {"faults": [{"kind": "camera_stall",
                     "windows": [[20.0, 2.0], [5.0, 3.0]]}]}
    )
    assert spec.faults[0]["windows"] == [[5.0, 3.0], [20.0, 2.0]]
    # overlapping windows within one timeline are rejected outright
    with pytest.raises(ValueError):
        ScenarioSpec.from_dict(
            {"faults": [{"kind": "camera_stall",
                         "windows": [[5.0, 10.0], [8.0, 2.0]]}]}
        )


def test_to_json_is_canonical_and_replace_deletes_with_none():
    spec = ScenarioSpec.from_dict({"seed": 3, "controller": "AIMD"})
    text = spec.to_json()
    assert text.endswith("\n")
    assert text.index('"controller"') < text.index('"seed"')
    assert spec.replace(seed=9).seed == 9
    assert "controller" not in spec.replace(controller=None).data


# ----------------------------------------------------------------------
# schedule generators
# ----------------------------------------------------------------------
def test_diurnal_network_dips_mid_period():
    spec = ScenarioSpec.from_dict(
        {"duration": 40.0,
         "network": {"kind": "diurnal", "period": 40.0, "base_bandwidth": 10.0,
                     "dip": 8.0, "loss_peak": 6.0, "step": 5.0}}
    )
    rows = network_rows(spec)
    assert rows[0] == [0.0, 10.0, 0.0]
    trough = min(rows, key=lambda r: r[1])
    assert trough[0] == 20.0  # mid-period
    assert math.isclose(trough[1], 2.0)
    assert math.isclose(trough[2], 6.0)  # loss peaks with the dip


def test_flash_crowd_rows_ramp_hold_decay():
    spec = ScenarioSpec.from_dict(
        {"duration": 60.0,
         "load": {"kind": "flash_crowd", "base_rate": 5.0, "peak_rate": 105.0,
                  "at": 10.0, "ramp": 4.0, "hold": 6.0, "decay": 4.0,
                  "step": 2.0}}
    )
    rows = load_rows(spec)
    starts = [r[0] for r in rows]
    assert starts == sorted(starts)
    assert len(starts) == len(set(starts)), "duplicate phase starts"
    assert rows[0] == [0.0, 5.0]
    by_start = dict(rows)
    assert by_start[14.0] == 105.0  # peak reached after the ramp
    assert by_start[24.0] == 5.0  # decayed back to base


def test_mobility_network_rows_vary_bandwidth():
    spec = ScenarioSpec.from_dict(
        {"duration": 30.0,
         "network": {"kind": "mobility", "radius_near": 5.0, "radius_far": 45.0,
                     "lap_seconds": 20.0, "laps": 2, "step": 2.0}}
    )
    rows = network_rows(spec)
    bandwidths = {r[1] for r in rows}
    assert len(rows) > 5
    assert len(bandwidths) > 2, "mobility trace should vary link quality"


def test_generator_parameter_validation():
    with pytest.raises(SpecError, match="period and step"):
        network_rows(ScenarioSpec.from_dict(
            {"duration": 10.0, "network": {"kind": "diurnal", "period": -1.0}}))
    with pytest.raises(SpecError, match="dip"):
        network_rows(ScenarioSpec.from_dict(
            {"duration": 10.0,
             "network": {"kind": "diurnal", "base_bandwidth": 4.0, "dip": 9.0}}))
    with pytest.raises(SpecError, match="peak_rate"):
        load_rows(ScenarioSpec.from_dict(
            {"duration": 10.0,
             "load": {"kind": "flash_crowd", "base_rate": 50.0,
                      "peak_rate": 10.0}}))


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def test_compile_flat_lowers_generators_and_strips_extended_keys():
    spec = ScenarioSpec.from_dict(
        {"controller": "FrameFeedback", "seed": 5, "duration": 20.0,
         "network": {"kind": "diurnal", "period": 20.0, "step": 5.0},
         "load": [[0.0, 0.0], [8.0, 90.0]],
         "faults": [{"kind": "server_crash", "windows": [[5.0, 2.0]]}],
         "resilience": True,
         "population": {"size": 2}}
    )
    flat = compile_flat(spec)
    assert "faults" not in flat and "population" not in flat
    assert "resilience" not in flat
    assert isinstance(flat["network"], list)
    assert flat["load"] == [[0.0, 0.0], [8.0, 90.0]]
    # the flat artifact is directly runnable
    scenario = compile_scenario(spec)
    assert scenario.seed == 5


def test_expand_population_round_robins_hardware():
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 100},
         "population": {"size": 3, "profiles": ["pi4b_r1_2", "pi3b_r1_2"],
                        "name_prefix": "cam"}}
    )
    configs = expand_population(spec)
    assert [c["device"]["name"] for c in configs] == ["cam0", "cam1", "cam2"]
    assert [c["device"]["profile"] for c in configs] == [
        "pi4b_r1_2", "pi3b_r1_2", "pi4b_r1_2"
    ]
    # no population block: expansion is the identity
    assert len(expand_population(ScenarioSpec.from_dict({}))) == 1


def test_build_injectors_maps_kinds_to_classes():
    spec = ScenarioSpec.from_dict(
        {"faults": [
            {"kind": "bandwidth_collapse", "factor": 0.1, "windows": [[2.0, 3.0]]},
            {"kind": "cpu_throttle", "factor": 2.0, "windows": [[2.0, 3.0]]},
            {"kind": "server_slowdown", "factor": 3.0, "windows": [[2.0, 3.0]]},
            {"kind": "camera_stall", "windows": [[8.0, 1.0]]},
        ]}
    )
    injectors = build_injectors(spec)
    assert [type(i) for i in injectors] == [
        BandwidthCollapse, CpuThrottle, ServerSlowdown, CameraStall
    ]
    # fresh instances every call (injectors bind to one environment)
    assert build_injectors(spec)[0] is not injectors[0]


def test_build_injectors_rejects_same_resource_overlap():
    spec = ScenarioSpec.from_dict(
        {"faults": [
            {"kind": "bandwidth_collapse", "factor": 0.1, "windows": [[2.0, 6.0]]},
            {"kind": "burst_loss", "loss": 0.3, "burst": 4.0,
             "windows": [[4.0, 3.0]]},
        ]}
    )
    with pytest.raises(ValueError):
        build_injectors(spec)


def test_bad_injector_params_surface_as_spec_errors():
    spec = ScenarioSpec.from_dict(
        {"faults": [{"kind": "burst_loss", "loss": 0.3, "burst": 0.5,
                     "windows": [[2.0, 3.0]]}]}
    )
    with pytest.raises(SpecError, match=r"faults\[0\]"):
        build_injectors(spec)


def test_compile_chaos_attaches_stacks():
    spec = ScenarioSpec.from_dict(
        {"device": {"total_frames": 50},
         "faults": [{"kind": "server_crash", "windows": [[1.0, 0.5]]}],
         "resilience": True, "supervision": True}
    )
    chaos = compile_chaos(spec)
    assert chaos.resilience is not None
    assert chaos.supervision is not None
    assert len(chaos.injectors) == 1
    bare = compile_chaos(spec.replace(resilience=None, supervision=None))
    assert bare.resilience is None and bare.supervision is None
