"""Tests for terminal reporting (tables, sparklines, renderers)."""

import pytest

from repro.experiments.report import (
    ascii_table,
    phase_table,
    series_panel,
    spark,
)
from repro.metrics.qos import PhaseSummary
from repro.metrics.timeseries import TimeSeries


def _series(values):
    s = TimeSeries("x")
    for i, v in enumerate(values):
        s.append(float(i), float(v))
    return s


def test_ascii_table_aligns_columns():
    out = ascii_table(["a", "long_header"], [["1", "2"], ["333", "4"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[:2])
    assert "long_header" in lines[0]


def test_ascii_table_stringifies_cells():
    out = ascii_table(["n"], [[42], [3.5]])
    assert "42" in out and "3.5" in out


def test_spark_length_and_scale():
    out = spark(_series([0] * 30 + [30] * 30), width=10, vmax=30)
    assert len(out) == 10
    assert out[0] == " "  # zero level
    assert out[-1] == "@"  # full level


def test_spark_empty_series():
    assert spark(TimeSeries()) == "(empty)"


def test_spark_clips_above_vmax():
    out = spark(_series([100] * 10), width=5, vmax=30)
    assert out == "@@@@@"


def test_series_panel_shared_scale():
    panel = series_panel({"a": _series([1, 2, 3]), "bb": _series([30, 30, 30])})
    lines = panel.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("a ")
    assert lines[1].startswith("bb")
    assert "max=30.0" in lines[0]


def test_phase_table_includes_winner():
    phases = [
        PhaseSummary(0, 10, "p1", {"A": 10.0, "B": 20.0}),
        PhaseSummary(10, 20, "p2", {"A": 30.0, "B": 5.0}),
    ]
    out = phase_table(phases)
    assert "winner" in out
    lines = out.splitlines()
    assert lines[2].rstrip().endswith("B")
    assert lines[3].rstrip().endswith("A")


def test_render_functions_produce_text():
    """Smoke the experiment renderers on small runs."""
    from repro.experiments.fig2 import run_fig2
    from repro.experiments.report import (
        render_fig2,
        render_table2,
        render_table3,
        render_table4,
    )
    from repro.experiments.table2 import run_table2
    from repro.experiments.table3 import run_table3, run_tradeoff_sweep
    from repro.experiments.table4 import paper_settings_rows

    fig2 = render_fig2(run_fig2(gains=[(0.2, 0.26)], duration=35.0))
    assert "Fig 2" in fig2 and "Kp=0.2" in fig2

    t2 = render_table2(run_table2(duration=20.0))
    assert "Table II" in t2 and "MobileNetV3Small" in t2

    t3 = render_table3(run_table3(), run_tradeoff_sweep())
    assert "77.1%" in t3

    t4 = render_table4(paper_settings_rows(), [])
    assert "K_P" in t4 and "0.2" in t4
