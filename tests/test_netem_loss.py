"""Tests for the Gilbert-Elliott bursty-loss model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netem.loss import GilbertElliottChain, GilbertElliottParams


def test_params_validation():
    with pytest.raises(ValueError):
        GilbertElliottParams(p_good_to_bad=1.5, p_bad_to_good=0.5)
    with pytest.raises(ValueError):
        GilbertElliottParams.from_average(1.0, 5.0)
    with pytest.raises(ValueError):
        GilbertElliottParams.from_average(0.1, 0.5)


def test_zero_loss_params():
    p = GilbertElliottParams.from_average(0.0, 5.0)
    assert p.stationary_loss == 0.0


def test_from_average_round_trips():
    p = GilbertElliottParams.from_average(0.07, 8.0)
    assert p.stationary_loss == pytest.approx(0.07)
    assert p.mean_burst_length == pytest.approx(8.0)


@given(
    loss=st.floats(min_value=0.01, max_value=0.5),
    burst=st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=100, deadline=None)
def test_from_average_properties(loss, burst):
    p = GilbertElliottParams.from_average(loss, burst)
    assert p.stationary_loss == pytest.approx(loss, rel=1e-9)
    assert p.mean_burst_length == pytest.approx(burst, rel=1e-9)


def test_chain_empirical_loss_matches_average():
    p = GilbertElliottParams.from_average(0.10, 6.0)
    chain = GilbertElliottChain()
    rng = np.random.default_rng(0)
    n = 200_000
    losses = sum(chain.step(p, rng) for _ in range(n))
    assert losses / n == pytest.approx(0.10, abs=0.01)


def test_chain_losses_are_bursty():
    """Conditional loss probability given a previous loss must far
    exceed the unconditional rate."""
    p = GilbertElliottParams.from_average(0.07, 10.0)
    chain = GilbertElliottChain()
    rng = np.random.default_rng(1)
    seq = [chain.step(p, rng) for _ in range(100_000)]
    arr = np.asarray(seq)
    cond = arr[1:][arr[:-1]].mean()  # P(loss | previous loss)
    assert cond > 5 * arr.mean()
    assert cond == pytest.approx(1.0 - p.p_bad_to_good, abs=0.03)


def test_chain_reset():
    chain = GilbertElliottChain()
    chain._bad = True
    chain.reset()
    assert not chain.in_bad_state


def test_link_uses_ge_chain_when_burst_configured():
    """A bursty link at the same average loss produces longer stalls
    (more consecutive retransmissions) than an i.i.d. one."""
    from repro.netem.link import ConditionBox, Link, LinkConditions
    from repro.sim import Environment

    def max_gap(loss_burst, seed=3):
        env = Environment()
        cond = LinkConditions(
            bandwidth=10.0, loss=0.15, jitter_sigma=0.0, loss_burst=loss_burst
        )
        link = Link(env, np.random.default_rng(seed), ConditionBox(cond),
                    queue_bytes_cap=1e9)
        times = []
        for i in range(400):
            link.send(11_700, i, lambda p: times.append(env.now))
        env.run()
        gaps = np.diff(times)
        return float(np.max(gaps)) if len(gaps) else 0.0

    # same average loss; bursts concentrate stalls into longer outages
    assert max_gap(loss_burst=12.0) > max_gap(loss_burst=1.0)
