"""Tests for server outage injection and the controllers' response."""

import numpy as np
import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.device.config import DeviceConfig
from repro.device.device import EdgeDevice
from repro.models.latency import GpuBatchModel
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.server.requests import InferenceRequest
from repro.server.server import EdgeServer
from repro.sim import Environment
from repro.sim.rng import RngRegistry
from repro.faults import OutageSchedule, OutageWindow


# ----------------------------------------------------------------------
# schedule mechanics
# ----------------------------------------------------------------------
def test_window_validation():
    with pytest.raises(ValueError):
        OutageWindow(-1.0, 5.0)
    with pytest.raises(ValueError):
        OutageWindow(0.0, 0.0)
    with pytest.raises(ValueError):
        OutageSchedule([OutageWindow(0, 10), OutageWindow(5, 10)])


def test_is_down_and_total():
    sched = OutageSchedule.from_rows([(10, 5), (30, 2)])
    assert not sched.is_down(9.9)
    assert sched.is_down(10.0)
    assert sched.is_down(14.9)
    assert not sched.is_down(15.0)
    assert sched.total_downtime == 7.0


def test_negative_pause_rejected():
    env = Environment()
    server = EdgeServer(env, np.random.default_rng(0))
    with pytest.raises(ValueError):
        server.pause(-1.0)


# ----------------------------------------------------------------------
# server-level behaviour
# ----------------------------------------------------------------------
def test_paused_server_stalls_then_drains():
    env = Environment()
    gpu = GpuBatchModel(base_latency=0.01, per_item=0.0, jitter_sigma=0.0)
    server = EdgeServer(env, np.random.default_rng(0), cost_model=gpu)
    responses = []

    def submit():
        server.submit(
            InferenceRequest(
                tenant="t",
                model_name="mobilenet_v3_small",
                sent_at=env.now,
                payload_bytes=10,
                respond=responses.append,
            )
        )

    server.pause(2.0)
    submit()
    env.run(until=1.9)
    assert responses == []  # stalled
    assert server.paused
    env.run(until=2.5)
    assert len(responses) == 1  # drained after resume
    assert not server.paused


def test_resume_rejects_accumulated_overflow():
    env = Environment()
    gpu = GpuBatchModel(base_latency=0.01, per_item=0.0, jitter_sigma=0.0)
    server = EdgeServer(env, np.random.default_rng(0), cost_model=gpu, batch_limit=5)
    outcomes = []

    def feeder(env):
        server.pause(2.0)
        for _ in range(20):  # all arrive during the stall
            server.submit(
                InferenceRequest(
                    tenant="t",
                    model_name="mobilenet_v3_small",
                    sent_at=env.now,
                    payload_bytes=10,
                    respond=lambda r: outcomes.append(r.ok),
                )
            )
            yield env.timeout(0.05)

    env.process(feeder(env))
    env.run(until=4.0)
    assert outcomes.count(False) == 15  # one batch of 5 survives
    assert outcomes.count(True) == 5


# ----------------------------------------------------------------------
# closed-loop response
# ----------------------------------------------------------------------
def test_framefeedback_rides_through_outage():
    """During a server blackout the controller retreats toward the
    probe floor; after recovery it ramps back up."""
    env = Environment()
    rng = RngRegistry(0)
    server = EdgeServer(env, rng.stream("server"))
    OutageSchedule.from_rows([(20.0, 10.0)]).install(env, server)
    box = ConditionBox(LinkConditions())
    device = EdgeDevice(
        env,
        DeviceConfig(total_frames=1800),
        FrameFeedbackController(30.0),
        uplink=Link(env, rng.stream("up"), box),
        downlink=Link(env, rng.stream("down"), box),
        server=server,
        rng=rng.stream("dev"),
    )
    env.run(until=61.0)
    po = device.traces.offload_target
    before = po.mean_over(15.0, 20.0)
    during = po.mean_over(26.0, 31.0)
    after = po.mean_over(50.0, 61.0)
    assert before > 20.0
    assert during < 10.0  # backed off hard during the blackout
    assert after > 20.0  # and recovered
    # throughput never collapsed below the local floor for long
    assert device.traces.throughput.mean_over(25.0, 30.0) > 10.0
