"""Unit tests for smoothing and stability metrics."""

import numpy as np
import pytest

from repro.analysis import (
    ewma,
    moving_average,
    oscillation_index,
    overshoot,
    settling_time,
    stability_report,
)
from repro.analysis.stability import direction_changes


# ----------------------------------------------------------------------
# smoothing
# ----------------------------------------------------------------------
def test_moving_average_constant_signal_unchanged():
    v = np.full(10, 3.0)
    assert np.allclose(moving_average(v, 3), 3.0)


def test_moving_average_window_one_is_identity():
    v = np.array([1.0, 5.0, 2.0])
    assert np.array_equal(moving_average(v, 1), v)


def test_moving_average_no_edge_artifacts():
    v = np.ones(5)
    out = moving_average(v, 3)
    assert np.allclose(out, 1.0)  # edges average fewer samples, not zeros


def test_moving_average_rejects_bad_window():
    with pytest.raises(ValueError):
        moving_average(np.ones(5), 0)


def test_ewma_converges_to_constant():
    out = ewma(np.full(100, 7.0), alpha=0.3)
    assert out[-1] == pytest.approx(7.0)


def test_ewma_alpha_validated():
    with pytest.raises(ValueError):
        ewma(np.ones(3), alpha=0.0)
    with pytest.raises(ValueError):
        ewma(np.ones(3), alpha=1.5)


def test_ewma_alpha_one_is_identity():
    v = np.array([1.0, 2.0, 3.0])
    assert np.allclose(ewma(v, 1.0), v)


# ----------------------------------------------------------------------
# stability metrics
# ----------------------------------------------------------------------
def test_oscillation_zero_for_constant_and_short():
    assert oscillation_index(np.full(10, 5.0)) == 0.0
    assert oscillation_index(np.array([1.0, 2.0])) == 0.0


def test_oscillation_high_for_alternating_signal():
    v = np.array([0.0, 1.0] * 20)
    assert oscillation_index(v) > 0.9


def test_oscillation_low_for_smooth_ramp():
    v = np.linspace(0, 10, 50)
    assert oscillation_index(v) < 0.05


def test_direction_changes_counts_reversals():
    assert direction_changes(np.array([0, 1, 0, 1, 0.0])) == 3
    assert direction_changes(np.linspace(0, 1, 10)) == 0
    assert direction_changes(np.array([1.0])) == 0


def test_overshoot_measures_peak_excursion():
    v = np.array([0.0, 15.0, 10.0, 10.0])
    assert overshoot(v, 10.0) == pytest.approx(0.5)
    assert overshoot(np.array([5.0, 9.0]), 10.0) == 0.0


def test_settling_time_finds_entry_into_band():
    t = np.arange(10, dtype=float)
    v = np.array([0, 2, 5, 8, 9.5, 10.1, 9.9, 10.0, 10.0, 10.0], dtype=float)
    assert settling_time(t, v, 10.0, band=0.10) == pytest.approx(4.0)


def test_settling_time_inf_when_never_settles():
    t = np.arange(4, dtype=float)
    v = np.array([0.0, 20.0, 0.0, 20.0])
    assert settling_time(t, v, 10.0, band=0.10) == float("inf")


def test_settling_time_immediate_when_always_inside():
    t = np.arange(5, dtype=float)
    v = np.full(5, 10.0)
    assert settling_time(t, v, 10.0) == 0.0


def test_settling_time_shape_mismatch():
    with pytest.raises(ValueError):
        settling_time(np.arange(3), np.arange(4), 1.0)


def test_stability_report_rollup():
    t = np.arange(20, dtype=float)
    v = np.concatenate([np.linspace(0, 10, 10), np.full(10, 10.0)])
    rep = stability_report(t, v)
    assert rep.mean == pytest.approx(v.mean())
    assert rep.overshoot == pytest.approx(0.0, abs=0.01)
    assert rep.settling_time < 20


def test_stability_report_empty_trace():
    rep = stability_report(np.array([]), np.array([]))
    assert rep.settling_time == float("inf")
