"""Tests for wire protocol v2 (framing, validation, round trips)."""

import asyncio

import pytest

from repro.realtime import protocol


def run(coro):
    return asyncio.run(coro)


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_request_round_trip():
    async def scenario():
        raw = protocol.encode_request("dev3", b"\x01" * 64, 0.25)
        request = await protocol.read_request(_reader_with(raw))
        assert request is not None
        assert request.tenant == "dev3"
        assert request.payload_bytes == 64
        assert request.deadline == pytest.approx(0.25, abs=1e-6)

    run(scenario())


def test_request_without_deadline():
    async def scenario():
        raw = protocol.encode_request("d", b"x", None)
        request = await protocol.read_request(_reader_with(raw))
        assert request.deadline is None

    run(scenario())


def test_clean_eof_returns_none():
    async def scenario():
        assert await protocol.read_request(_reader_with(b"")) is None

    run(scenario())


def test_truncated_frame_is_protocol_error():
    async def scenario():
        raw = protocol.encode_request("dev", b"\x00" * 100, 0.1)
        with pytest.raises(protocol.ProtocolError):
            await protocol.read_request(_reader_with(raw[:10]))

    run(scenario())


def test_bad_magic_rejected():
    async def scenario():
        raw = protocol.encode_request("dev", b"x", 0.1)
        with pytest.raises(protocol.ProtocolError):
            await protocol.read_request(_reader_with(b"\x00" + raw[1:]))

    run(scenario())


def test_oversize_payload_rejected_at_decode():
    async def scenario():
        raw = protocol.encode_request("d", b"x", None)
        # patch the payload length field to exceed MAX_PAYLOAD
        head = bytearray(raw)
        bad = (protocol.MAX_PAYLOAD + 1).to_bytes(4, "big")
        head[6:10] = bad
        with pytest.raises(protocol.ProtocolError):
            await protocol.read_request(_reader_with(bytes(head)))

    run(scenario())


def test_encode_validates_inputs():
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_request("x" * (protocol.MAX_TENANT + 1), b"x", None)
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_request("d", b"\x00" * (protocol.MAX_PAYLOAD + 1), None)


def test_reply_round_trip():
    async def scenario():
        for status, hint in (
            (protocol.STATUS_OK, None),
            (protocol.STATUS_REJECTED, None),
            (protocol.STATUS_OVERLOADED, 0.125),
            (protocol.STATUS_EXPIRED, None),
        ):
            raw = protocol.encode_reply(status, hint)
            reply = await protocol.read_reply(_reader_with(raw))
            assert reply.status == status
            if hint is None:
                assert reply.retry_after is None
            else:
                assert reply.retry_after == pytest.approx(hint, abs=1e-5)
        assert (await protocol.read_reply(
            _reader_with(protocol.encode_reply(protocol.STATUS_OK, None))
        )).ok

    run(scenario())


def test_reply_truncation_is_protocol_error():
    async def scenario():
        raw = protocol.encode_reply(protocol.STATUS_OK, None)
        with pytest.raises(protocol.ProtocolError):
            await protocol.read_reply(_reader_with(raw[:2]))

    run(scenario())
