"""Compile-time validation of fleet topology in specs and config files.

Satellite #3: fault timelines that target unknown server names must be
rejected at compile time — in both the scenario-language layer
(:mod:`repro.search.language`) and the io layer (:mod:`repro.io.config`)
— with an error that lists the valid names.
"""

import pytest

from repro.io.config import scenario_from_dict, scenario_to_dict
from repro.search.compiler import compile_chaos
from repro.search.language import ScenarioSpec, SpecError


def spec_dict(**overrides):
    base = {
        "controller": "FrameFeedback",
        "seed": 3,
        "duration": 20.0,
        "topology": {"servers": ["a", "b"], "policy": "least_loaded"},
        "faults": [
            {"kind": "server_kill", "windows": [[5.0, 2.0]], "server": "b"},
        ],
    }
    base.update(overrides)
    return base


# ----------------------------------------------------------------------
# scenario language (repro.search)
# ----------------------------------------------------------------------
def test_spec_topology_happy_path_compiles():
    spec = ScenarioSpec.from_dict(spec_dict())
    chaos = compile_chaos(spec)
    scenario = chaos.base
    assert scenario.topology is not None
    assert scenario.topology.servers == ("a", "b")
    assert scenario.topology.config.policy == "least_loaded"
    (injector,) = chaos.injectors
    assert injector.resource == "server.loop:b"
    assert injector.total_failure is False


def test_spec_topology_round_trips():
    spec = ScenarioSpec.from_dict(spec_dict())
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_spec_fault_without_topology_block_rejected():
    d = spec_dict()
    del d["topology"]
    with pytest.raises(
        SpecError,
        match=r"faults\[0\]: fault targets server 'b' but the spec has "
        r"no 'topology' block",
    ):
        ScenarioSpec.from_dict(d).validate()


def test_spec_fault_unknown_server_lists_valid_names():
    d = spec_dict()
    d["faults"][0]["server"] = "zz"
    with pytest.raises(
        SpecError,
        match=r"faults\[0\]: unknown server 'zz'; valid servers: \['a', 'b'\]",
    ):
        ScenarioSpec.from_dict(d).validate()


def test_spec_topology_unknown_key_rejected():
    d = spec_dict(topology={"servers": ["a"], "polcy": "round_robin"})
    with pytest.raises(SpecError, match=r"unknown topology field\(s\) \['polcy'\]"):
        ScenarioSpec.from_dict(d)


def test_spec_topology_duplicate_servers_rejected():
    d = spec_dict(topology={"servers": ["a", "a"]})
    with pytest.raises(SpecError, match="duplicate"):
        ScenarioSpec.from_dict(d)


def test_spec_topology_unknown_policy_lists_valid_policies():
    d = spec_dict(topology={"servers": ["a"], "policy": "fastest"})
    with pytest.raises(
        SpecError, match=r"topology\.policy: unknown policy 'fastest'; valid"
    ):
        ScenarioSpec.from_dict(d).validate()


def test_spec_named_slowdown_and_contention_accept_server():
    d = spec_dict(
        faults=[
            {"kind": "server_slowdown", "windows": [[1.0, 2.0]],
             "factor": 3.0, "server": "a"},
            {"kind": "gpu_contention", "windows": [[4.0, 2.0]],
             "mean_factor": 2.0, "sigma": 0.1, "server": "b"},
        ]
    )
    spec = ScenarioSpec.from_dict(d)
    spec.validate()
    chaos = compile_chaos(spec)
    assert [f.resource for f in chaos.injectors] == [
        "server.gpu:a",
        "server.gpu:b",
    ]


# ----------------------------------------------------------------------
# io config layer (repro.io.config)
# ----------------------------------------------------------------------
def config_dict(**overrides):
    base = {
        "seed": 7,
        "topology": {"servers": ["edge0", "edge1"], "policy": "latency_aware",
                     "probation": 2.5},
    }
    base.update(overrides)
    return base


def test_config_topology_round_trips():
    scenario = scenario_from_dict(config_dict())
    doc = scenario_to_dict(scenario, "FrameFeedback")
    assert doc["topology"]["servers"] == ["edge0", "edge1"]
    assert doc["topology"]["policy"] == "latency_aware"
    assert doc["topology"]["probation"] == 2.5
    again = scenario_from_dict(doc)
    assert again.topology == scenario.topology


def test_config_topology_unknown_key_rejected():
    with pytest.raises(ValueError, match="probtion"):
        scenario_from_dict(
            config_dict(topology={"servers": ["edge0"], "probtion": 1.0})
        )


def test_config_topology_empty_servers_rejected():
    with pytest.raises(ValueError, match="servers"):
        scenario_from_dict(config_dict(topology={"servers": []}))
