"""Tests for the TCP inference server + socket client (wall clock)."""

import threading
import time

import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.realtime.netserver import InferenceServer, SocketRemote
from repro.realtime.runtime import RealTimeLoop


def test_single_request_completes():
    with InferenceServer(base_latency=0.005, per_item=0.001) as server:
        remote = SocketRemote(server.address, frame_bytes=1_000)
        assert remote.submit() is True
    assert server.stats.completed == 1
    assert server.stats.rejected == 0


def test_payload_size_validated():
    with pytest.raises(ValueError):
        SocketRemote(("127.0.0.1", 1), frame_bytes=0)
    with pytest.raises(ValueError):
        InferenceServer(batch_limit=0)


def test_unreachable_server_fails_cleanly():
    remote = SocketRemote(("127.0.0.1", 1), frame_bytes=100, timeout=0.2)
    assert remote.submit() is False


def test_oversized_payload_rejected():
    with InferenceServer() as server:
        remote = SocketRemote(server.address, frame_bytes=2 << 20, timeout=2.0)
        assert remote.submit() is False


def test_concurrent_requests_batch_together():
    with InferenceServer(base_latency=0.05, per_item=0.0) as server:
        remote = SocketRemote(server.address, frame_bytes=500, timeout=2.0)
        results = []

        def worker():
            results.append(remote.submit())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
    assert all(results)
    # 8 requests in far fewer than 8 batches proves batching happened
    assert server.stats.batches < 8
    assert server.stats.completed == 8


def test_flood_beyond_batch_limit_rejects():
    with InferenceServer(batch_limit=2, base_latency=0.2, per_item=0.0) as server:
        remote = SocketRemote(server.address, frame_bytes=200, timeout=3.0)
        results = []

        def worker():
            results.append(remote.submit())

        threads = [threading.Thread(target=worker) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
    assert results.count(False) > 0
    assert server.stats.rejected > 0
    assert server.stats.completed + server.stats.rejected == 10


def test_framefeedback_over_real_sockets():
    """The full closed loop over actual TCP: FrameFeedback ramps up
    against a healthy server on localhost."""
    with InferenceServer(base_latency=0.01, per_item=0.002) as server:
        remote = SocketRemote(server.address, frame_bytes=2_000, timeout=1.0)
        loop = RealTimeLoop(
            FrameFeedbackController(30.0),
            remote=remote,
            local_latency=0.02,
            deadline=0.25,
        )
        result = loop.run(duration=5.0)
    assert len(result.times) >= 4
    assert result.offload_target[-1] >= 9.0  # ramped ~3 fps/s
    assert server.stats.completed > 20
