"""Tests for the TCP inference server + socket client (wall clock)."""

import socket
import threading
import time

import pytest

from repro.control.framefeedback import FrameFeedbackController
from repro.realtime.netserver import InferenceServer, SocketRemote
from repro.realtime.runtime import RealTimeLoop


def test_single_request_completes():
    with InferenceServer(base_latency=0.005, per_item=0.001) as server:
        remote = SocketRemote(server.address, frame_bytes=1_000)
        assert remote.submit() is True
    assert server.stats.completed == 1
    assert server.stats.rejected == 0


def test_payload_size_validated():
    with pytest.raises(ValueError):
        SocketRemote(("127.0.0.1", 1), frame_bytes=0)
    with pytest.raises(ValueError):
        InferenceServer(batch_limit=0)


def test_unreachable_server_fails_cleanly():
    remote = SocketRemote(("127.0.0.1", 1), frame_bytes=100, timeout=0.2)
    assert remote.submit() is False


def test_oversized_payload_rejected():
    with InferenceServer() as server:
        remote = SocketRemote(server.address, frame_bytes=2 << 20, timeout=2.0)
        assert remote.submit() is False


def test_concurrent_requests_batch_together():
    with InferenceServer(base_latency=0.05, per_item=0.0) as server:
        remote = SocketRemote(server.address, frame_bytes=500, timeout=2.0)
        results = []

        def worker():
            results.append(remote.submit())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
    assert all(results)
    # 8 requests in far fewer than 8 batches proves batching happened
    assert server.stats.batches < 8
    assert server.stats.completed == 8


def test_flood_beyond_batch_limit_rejects():
    with InferenceServer(batch_limit=2, base_latency=0.2, per_item=0.0) as server:
        remote = SocketRemote(server.address, frame_bytes=200, timeout=3.0)
        results = []

        def worker():
            results.append(remote.submit())

        threads = [threading.Thread(target=worker) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
    assert results.count(False) > 0
    assert server.stats.rejected > 0
    assert server.stats.completed + server.stats.rejected == 10


def test_oversized_payload_is_counted_and_answered():
    with InferenceServer() as server:
        remote = SocketRemote(server.address, frame_bytes=2 << 20, timeout=2.0)
        assert remote.submit() is False
    # a clean protocol rejection, not a silent reset: the request is
    # counted and gets an explicit b"-", so accounting stays closed
    snap = server.stats.snapshot()
    assert snap["received"] == 1
    assert snap["rejected"] == 1
    assert snap["completed"] == 0


def test_slow_header_hits_read_deadline():
    with InferenceServer(read_timeout=0.2) as server:
        conn = socket.create_connection(server.address, timeout=2.0)
        conn.sendall(b"\x00")  # one header byte, then silence
        # server abandons the read at the deadline and closes; the
        # half-sent request is never counted as received
        assert conn.recv(1) == b""
        conn.close()
    assert server.stats.snapshot()["received"] == 0


def test_stats_bump_validates_counter_name():
    from repro.realtime.netserver import ServerStats

    stats = ServerStats()
    with pytest.raises(ValueError):
        stats.bump("not_a_counter")


def test_stats_concurrent_hammer_loses_no_increments():
    from repro.realtime.netserver import ServerStats

    stats = ServerStats()
    per_thread = 5_000
    threads = 8

    def hammer():
        for _ in range(per_thread):
            stats.bump("received")
            stats.bump("completed", 2)

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=30.0)
    snap = stats.snapshot()
    assert snap["received"] == threads * per_thread
    assert snap["completed"] == 2 * threads * per_thread


def test_close_is_graceful_and_accounting_closes():
    # a slow GPU guarantees requests are still queued when close() runs
    server = InferenceServer(base_latency=0.3, per_item=0.0, batch_limit=1).start()
    remote = SocketRemote(server.address, frame_bytes=200, timeout=5.0)
    results = []

    def worker():
        results.append(remote.submit())

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    time.sleep(0.1)  # let requests land in the queue
    server.close()  # alias of stop(): drains queue with explicit b"-"
    for t in threads:
        t.join(timeout=10.0)
    assert len(results) == 4
    snap = server.stats.snapshot()
    # every received request got exactly one verdict through shutdown
    assert snap["completed"] + snap["rejected"] == snap["received"]


def test_framefeedback_over_real_sockets():
    """The full closed loop over actual TCP: FrameFeedback ramps up
    against a healthy server on localhost."""
    with InferenceServer(base_latency=0.01, per_item=0.002) as server:
        remote = SocketRemote(server.address, frame_bytes=2_000, timeout=1.0)
        loop = RealTimeLoop(
            FrameFeedbackController(30.0),
            remote=remote,
            local_latency=0.02,
            deadline=0.25,
        )
        result = loop.run(duration=5.0)
    assert len(result.times) >= 4
    assert result.offload_target[-1] >= 9.0  # ramped ~3 fps/s
    assert server.stats.completed > 20
