# Convenience targets; everything also works as plain pytest/pip.

.PHONY: install test test-fast bench examples paper clean

install:
	pip install -e .

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow" -x -q

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/surveillance_camera.py
	python examples/drone_fleet_multitenancy.py
	python examples/accuracy_bandwidth_tradeoff.py
	python examples/adaptive_quality.py
	python examples/capacity_planning.py
	python examples/day_in_the_life.py
	python examples/controller_tuning.py

# wall-clock demos (take real seconds, use threads/sockets)
examples-realtime:
	python examples/realtime_demo.py
	python examples/socket_offload.py

# regenerate every paper table/figure via the CLI
paper:
	framefeedback all

# run every reproduction claim as an executable checklist
validate:
	framefeedback validate

clean:
	rm -rf .pytest_cache .benchmarks build dist src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
