"""Model zoo: the four classifiers the paper evaluates (§II-C, Table III).

Each :class:`ModelSpec` captures what the system actually cares about:
input resolution (drives frame bytes), a relative compute cost (drives
latency on any device), and the published top-1 accuracy (Table III).

Relative compute costs are expressed in *MobileNetV3Small units* and
derived from the paper's own Table II measurements: on the same Pi 4B
rev 1.2, MobileNetV3Small runs at 13 fps and EfficientNetB0 at 2.5 fps,
i.e. EfficientNetB0 costs 5.2x.  The other two models are anchored on
published MAC counts relative to those two (MobileNetV3Large ~4x Small;
EfficientNetB4 ~11x B0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a classification model.

    Attributes:
        name: registry key, e.g. ``"mobilenet_v3_small"``.
        display_name: the paper's spelling, e.g. ``"MobileNetV3Small"``.
        input_resolution: square input side in pixels (224 or 380).
        compute_cost: relative CPU cost in MobileNetV3Small units.
        gpu_cost: relative GPU per-item batch cost in the same units
            (GPUs flatten the gap between small and large CNNs, so the
            spread is compressed relative to ``compute_cost``).
        top1_accuracy: Table III top-1 ImageNet accuracy (fraction).
    """

    name: str
    display_name: str
    input_resolution: int
    compute_cost: float
    gpu_cost: float
    top1_accuracy: float

    @property
    def input_pixels(self) -> int:
        return self.input_resolution * self.input_resolution


MOBILENET_V3_SMALL = ModelSpec(
    name="mobilenet_v3_small",
    display_name="MobileNetV3Small",
    input_resolution=224,
    compute_cost=1.0,
    gpu_cost=1.0,
    top1_accuracy=0.674,
)

MOBILENET_V3_LARGE = ModelSpec(
    name="mobilenet_v3_large",
    display_name="MobileNetV3Large",
    input_resolution=224,
    compute_cost=3.9,
    gpu_cost=1.6,
    top1_accuracy=0.752,
)

EFFICIENTNET_B0 = ModelSpec(
    name="efficientnet_b0",
    display_name="EfficientNetB0",
    input_resolution=224,
    compute_cost=5.2,  # Table II: 13 fps vs 2.5 fps on the same Pi 4B
    gpu_cost=1.5,
    top1_accuracy=0.771,
)

EFFICIENTNET_B4 = ModelSpec(
    name="efficientnet_b4",
    display_name="EfficientNetB4",
    input_resolution=380,
    compute_cost=57.0,  # ~11x B0 (MACs), far beyond real-time on a Pi
    gpu_cost=6.5,
    top1_accuracy=0.829,
)

MODEL_ZOO: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        MOBILENET_V3_SMALL,
        MOBILENET_V3_LARGE,
        EFFICIENTNET_B0,
        EFFICIENTNET_B4,
    )
}


def get_model(name: str) -> ModelSpec:
    """Look up a model by registry key or paper display name."""
    if name in MODEL_ZOO:
        return MODEL_ZOO[name]
    for spec in MODEL_ZOO.values():
        if spec.display_name == name:
            return spec
    raise KeyError(
        f"unknown model {name!r}; available: {sorted(MODEL_ZOO)} "
        f"or display names {[s.display_name for s in MODEL_ZOO.values()]}"
    )
