"""Raspberry Pi device profiles (paper Table II).

Table II is the paper's calibration of local processing rates ``P_l``:

    |                        | 3B r1.2 | 4B r1.2 | 4B r1.4 |
    | MobileNetV3Small  P_l  |   5.5   |   13    |  13.4   |
    | EfficientNetB0    P_l  |   1.8   |   2.5   |   4.2   |

Those measured rates are authoritative: :func:`local_rate` returns them
directly when available and falls back to a compute-cost scaling model
only for model/device pairs the paper did not measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.models.zoo import ModelSpec, get_model


@dataclass(frozen=True)
class DeviceProfile:
    """An edge-device hardware profile.

    Attributes:
        name: registry key, e.g. ``"pi4b_r1_2"``.
        display_name: the paper's column header.
        cpus: core count (Table II).
        cpu_mhz: clock (Table II).
        memory_mib: memory (Table II; MiB).
        measured_rates: Table II ``P_l`` values, frames/s, keyed by
            model registry name.
        capture_overhead_util: fraction of one CPU spent on camera
            capture + preprocessing regardless of where inference runs
            (used by the energy model).
    """

    name: str
    display_name: str
    cpus: int
    cpu_mhz: int
    memory_mib: int
    measured_rates: Dict[str, float] = field(default_factory=dict)
    capture_overhead_util: float = 0.08

    @property
    def relative_speed(self) -> float:
        """Crude cross-device speed factor (clock-based, 4B r1.2 = 1)."""
        return self.cpu_mhz / 1500.0


PI_3B_1_2 = DeviceProfile(
    name="pi3b_r1_2",
    display_name="3B Rev. 1.2",
    cpus=4,
    cpu_mhz=1200,
    memory_mib=909,
    measured_rates={
        "mobilenet_v3_small": 5.5,
        "efficientnet_b0": 1.8,
    },
)

PI_4B_1_2 = DeviceProfile(
    name="pi4b_r1_2",
    display_name="4B Rev. 1.2",
    cpus=4,
    cpu_mhz=1500,
    memory_mib=3789,
    measured_rates={
        "mobilenet_v3_small": 13.0,
        "efficientnet_b0": 2.5,
    },
)

PI_4B_1_4 = DeviceProfile(
    name="pi4b_r1_4",
    display_name="4B Rev. 1.4",
    cpus=4,
    cpu_mhz=1800,
    memory_mib=7782,
    measured_rates={
        "mobilenet_v3_small": 13.4,
        "efficientnet_b0": 4.2,
    },
)

DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    p.name: p for p in (PI_3B_1_2, PI_4B_1_2, PI_4B_1_4)
}


def local_rate(device: DeviceProfile, model: "ModelSpec | str") -> float:
    """Local inference rate ``P_l`` (frames/s) for a device/model pair.

    Uses the paper's measured Table II value when available; otherwise
    scales the device's MobileNetV3Small rate by the model's relative
    compute cost (an extrapolation — flagged as such in the docstring
    because the paper only measured the two models above).
    """
    spec = get_model(model) if isinstance(model, str) else model
    measured = device.measured_rates.get(spec.name)
    if measured is not None:
        return measured
    anchor = device.measured_rates.get("mobilenet_v3_small")
    if anchor is None:
        raise ValueError(
            f"device {device.name!r} has no measured anchor rate to scale from"
        )
    # Larger inputs also cost proportionally more pixels to preprocess.
    pixel_factor = spec.input_pixels / (224 * 224)
    return anchor / (spec.compute_cost * pixel_factor ** 0.25)
