"""Inference cost substrate: model zoo, device profiles, latency models.

The paper runs Keras MobileNetV3 / EfficientNet classifiers on
Raspberry Pis and a V100 edge server.  Neither the models nor the
hardware are available here, and the FrameFeedback controller never
looks inside them — it only observes *completion times*.  This package
therefore provides calibrated cost models:

* :mod:`repro.models.zoo` — the four classifier specs from the paper
  (input resolution, relative compute cost, Table III accuracy);
* :mod:`repro.models.device_profiles` — the three Raspberry Pi profiles
  of Table II with their measured local rates ``P_l``;
* :mod:`repro.models.latency` — samplers for local CPU inference
  latency and the server's GPU batch latency (affine in batch size);
* :mod:`repro.models.accuracy` — Table III accuracies plus the §II-D
  resolution/compression accuracy estimator;
* :mod:`repro.models.frames` — JPEG byte-size model for offloaded
  frames.
"""

from repro.models.accuracy import AccuracyModel, estimate_accuracy
from repro.models.device_profiles import (
    DEVICE_PROFILES,
    PI_3B_1_2,
    PI_4B_1_2,
    PI_4B_1_4,
    DeviceProfile,
    local_rate,
)
from repro.models.frames import FrameSpec, frame_bytes, jpeg_bits_per_pixel
from repro.models.latency import GpuBatchModel, LocalLatencyModel
from repro.models.zoo import (
    EFFICIENTNET_B0,
    EFFICIENTNET_B4,
    MOBILENET_V3_LARGE,
    MOBILENET_V3_SMALL,
    MODEL_ZOO,
    ModelSpec,
    get_model,
)

__all__ = [
    "AccuracyModel",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "EFFICIENTNET_B0",
    "EFFICIENTNET_B4",
    "FrameSpec",
    "GpuBatchModel",
    "LocalLatencyModel",
    "MOBILENET_V3_LARGE",
    "MOBILENET_V3_SMALL",
    "MODEL_ZOO",
    "ModelSpec",
    "PI_3B_1_2",
    "PI_4B_1_2",
    "PI_4B_1_4",
    "estimate_accuracy",
    "frame_bytes",
    "get_model",
    "jpeg_bits_per_pixel",
    "local_rate",
]
