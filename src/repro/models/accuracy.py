"""Accuracy models (paper Table III and the §II-D discussion).

Table III is reproduced verbatim from the model zoo.  §II-D argues two
levers raise effective accuracy when offloading — larger input
resolution and lighter JPEG compression — at the cost of more bytes per
frame.  :class:`AccuracyModel` turns that qualitative argument into a
monotone estimator so the trade-off can be explored quantitatively:

* resolution: a saturating log-linear term anchored at the model's
  native training resolution (classic accuracy-vs-resolution scaling:
  roughly +1.5 points per resolution doubling near the native point,
  with steep degradation below half the native resolution);
* JPEG quality: negligible loss above quality ~75, growing roughly
  quadratically as quality drops (consistent with published JPEG
  robustness studies of ImageNet CNNs).

The estimator is clamped to [0, 1] and exact at the native operating
point (native resolution, quality >= 85), where it returns Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.zoo import ModelSpec, get_model


@dataclass(frozen=True)
class AccuracyModel:
    """Top-1 accuracy estimator for a classifier under capture settings."""

    model: ModelSpec
    #: accuracy points (fraction) gained per doubling of resolution
    resolution_slope: float = 0.015
    #: max accuracy points lost to resolution upscaling shortfall
    resolution_floor_penalty: float = 0.35
    #: quality below which JPEG artifacts start to cost accuracy
    quality_knee: float = 75.0
    #: accuracy points lost at quality == 10
    quality_penalty_at_10: float = 0.20

    def estimate(self, resolution: int = 0, jpeg_quality: float = 95.0) -> float:
        """Estimated top-1 accuracy at the given capture settings."""
        native = self.model.input_resolution
        if resolution <= 0:
            resolution = native
        if resolution < 16:
            raise ValueError(f"resolution {resolution} is implausibly small")
        if not 1 <= jpeg_quality <= 100:
            raise ValueError(f"JPEG quality must be in [1, 100], got {jpeg_quality}")

        acc = self.model.top1_accuracy

        # Resolution term: gentle gains above native, steep loss below.
        ratio = resolution / native
        if ratio >= 1.0:
            acc += self.resolution_slope * np.log2(ratio)
        else:
            # Quadratic-in-log falloff: half native ~ -8 points,
            # quarter native ~ -35 points (the floor penalty).
            shortfall = np.log2(1.0 / ratio)
            acc -= self.resolution_floor_penalty * min(1.0, (shortfall / 2.0) ** 2)

        # Compression term: flat above the knee, quadratic below.
        if jpeg_quality < self.quality_knee:
            depth = (self.quality_knee - jpeg_quality) / (self.quality_knee - 10.0)
            acc -= self.quality_penalty_at_10 * min(1.0, depth) ** 2

        return float(np.clip(acc, 0.0, 1.0))


def estimate_accuracy(
    model: "ModelSpec | str", resolution: int = 0, jpeg_quality: float = 95.0
) -> float:
    """Convenience wrapper around :class:`AccuracyModel`."""
    spec = get_model(model) if isinstance(model, str) else model
    return AccuracyModel(spec).estimate(resolution, jpeg_quality)
