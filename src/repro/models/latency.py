"""Latency samplers: local CPU inference and server GPU batches.

Both are calibrated stochastic cost models:

* **Local** — the paper's Table II gives steady-state local rates
  ``P_l``; per-frame latency is ``1 / P_l`` with multiplicative
  log-normal jitter (CPU inference on a busy SoC shows ~5-15 % spread).

* **GPU batch** — the standard abstraction for GPU CNN inference is an
  affine batch-latency curve ``t(n) = t0 + k * n``: a fixed launch /
  transfer overhead plus a near-linear per-item term, which is why
  batching raises throughput (§IV-A, and [35] in the paper).  The
  defaults are calibrated so a full 15-frame MobileNetV3 batch takes
  ~105 ms and the Table VI background mix (half MobileNetV3Small,
  half EfficientNetB0) saturates the server at ~120 req/s of mixed
  load — which puts the knee of the §IV-E narrative ("up until about
  150 additional requests, our Pi can fit in some offloading") where
  the paper reports it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.device_profiles import DeviceProfile, local_rate
from repro.models.zoo import ModelSpec


def _lognormal_factor(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative jitter with mean 1."""
    if sigma <= 0:
        return 1.0
    return float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))


@dataclass
class LocalLatencyModel:
    """Per-frame local inference latency for a device/model pair."""

    device: DeviceProfile
    model: ModelSpec
    jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        self.rate = local_rate(self.device, self.model)
        self.mean_latency = 1.0 / self.rate

    def sample(self, rng: np.random.Generator) -> float:
        """One inference's wall-clock seconds."""
        return self.mean_latency * _lognormal_factor(rng, self.jitter_sigma)


@dataclass
class GpuBatchModel:
    """Affine GPU batch latency ``t(n) = base + per_item_cost(model) * n``.

    ``per_item`` is the per-frame cost for a ``gpu_cost == 1`` model
    (MobileNetV3Small); heavier models scale it by their
    :attr:`~repro.models.zoo.ModelSpec.gpu_cost`.
    """

    base_latency: float = 0.022
    per_item: float = 0.0055
    jitter_sigma: float = 0.06

    def batch_latency(self, model: ModelSpec, batch_size: int) -> float:
        """Deterministic mean latency for a batch."""
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        return self.base_latency + self.per_item * model.gpu_cost * batch_size

    def sample(
        self, model: ModelSpec, batch_size: int, rng: np.random.Generator
    ) -> float:
        """One batch execution's wall-clock seconds."""
        return self.batch_latency(model, batch_size) * _lognormal_factor(
            rng, self.jitter_sigma
        )

    def saturation_rate(self, model: ModelSpec, batch_limit: int) -> float:
        """Max sustainable throughput (frames/s) at the batch cap."""
        return batch_limit / self.batch_latency(model, batch_limit)
