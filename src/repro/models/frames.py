"""Frame byte-size model (what offloading actually ships over the link).

§II-D of the paper notes the two levers that grow frame bytes —
resolution and (lighter) JPEG compression — and that both trade
accuracy against transfer cost.  The FrameFeedback system itself only
needs *bytes per frame*; this module provides a calibrated JPEG size
model so experiments can sweep resolution/quality coherently.

The bits-per-pixel curve is a piecewise-linear fit through widely
reported JPEG operating points for photographic content:

    quality:  10    30    50    75    85    90    95   100
    bpp:     0.25  0.50  0.75  1.20  1.80  2.40  3.50  6.00

At the paper's default (224x224, quality 85) a frame is ~11.3 kB,
matching typical compressed ImageNet thumbnails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_QUALITY_ANCHORS = np.array([10.0, 30.0, 50.0, 75.0, 85.0, 90.0, 95.0, 100.0])
_BPP_ANCHORS = np.array([0.25, 0.50, 0.75, 1.20, 1.80, 2.40, 3.50, 6.00])

#: fixed per-request overhead: JPEG/HTTP headers, request metadata
HEADER_BYTES = 400

#: size of a classification *response* (label + confidence + ids)
RESPONSE_BYTES = 160


def jpeg_bits_per_pixel(quality: float) -> float:
    """Average JPEG bits/pixel at integer ``quality`` in [1, 100]."""
    if not 1 <= quality <= 100:
        raise ValueError(f"JPEG quality must be in [1, 100], got {quality}")
    return float(np.interp(quality, _QUALITY_ANCHORS, _BPP_ANCHORS))


def frame_bytes(resolution: int = 224, quality: float = 85.0) -> int:
    """Bytes on the wire for one offloaded frame."""
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    pixels = resolution * resolution
    payload = pixels * jpeg_bits_per_pixel(quality) / 8.0
    return int(round(payload)) + HEADER_BYTES


@dataclass(frozen=True)
class FrameSpec:
    """Capture/encode settings for a device's video stream."""

    resolution: int = 224
    jpeg_quality: float = 85.0

    @property
    def bytes_on_wire(self) -> int:
        return frame_bytes(self.resolution, self.jpeg_quality)

    @property
    def response_bytes(self) -> int:
        return RESPONSE_BYTES
