"""Battery and power model: the §II-A.5 observation, fully costed.

The paper reports CPU usage dropping from 50.2 % to 22.3 % when
offloading and notes "effective offloading leads to lower power usage"
— but offloading is not free: every frame costs radio transmit energy.
This model closes the books:

``P_device = P_idle + (P_loaded - P_idle) * cpu_util + E_tx * bytes/s``

Calibration (Raspberry Pi 4B, published measurements):

* idle board power ~2.7 W, fully loaded ~6.4 W (linear in utilization
  is the standard first-order model);
* Wi-Fi transmit energy ~0.1 µJ/byte effective for 802.11n-class
  radios at moderate rates (amortized over bursts).

The interesting question it answers (``bench_battery.py``): when does
the radio bill exceed the CPU savings?  At the default frame size
(~11.7 kB), offloading 30 fps costs ~0.035 W of radio against ~1.5 W
of CPU savings — offloading wins by ~40x, which is why the paper can
wave at power without measuring the radio.  The model makes that
argument quantitative, and shows where it flips (very large frames,
very low-power boards).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.energy import CpuUtilizationModel


@dataclass(frozen=True)
class PowerModel:
    """Board + radio power, first order."""

    idle_watts: float = 2.7
    loaded_watts: float = 6.4
    #: effective transmit energy per byte (J/B), MAC overheads included
    tx_joules_per_byte: float = 1.0e-7
    #: receive energy per byte (responses are small; kept for honesty)
    rx_joules_per_byte: float = 0.5e-7

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.loaded_watts < self.idle_watts:
            raise ValueError("need 0 <= idle <= loaded watts")
        if self.tx_joules_per_byte < 0 or self.rx_joules_per_byte < 0:
            raise ValueError("radio energies must be >= 0")

    def power(
        self,
        cpu_utilization: float,
        tx_bytes_per_s: float = 0.0,
        rx_bytes_per_s: float = 0.0,
    ) -> float:
        """Average device power draw (watts)."""
        if not 0.0 <= cpu_utilization <= 1.0:
            raise ValueError(f"utilization must be in [0,1], got {cpu_utilization}")
        if tx_bytes_per_s < 0 or rx_bytes_per_s < 0:
            raise ValueError("byte rates must be >= 0")
        return (
            self.idle_watts
            + (self.loaded_watts - self.idle_watts) * cpu_utilization
            + self.tx_joules_per_byte * tx_bytes_per_s
            + self.rx_joules_per_byte * rx_bytes_per_s
        )


@dataclass
class BatteryAccountant:
    """Integrates a power model over a run's per-second measurements."""

    power_model: PowerModel
    cpu_model: CpuUtilizationModel
    consumed_joules: float = 0.0
    seconds: float = 0.0

    def step(
        self,
        dt: float,
        local_busy_fraction: float,
        offload_rate: float,
        frame_bytes: int,
        response_bytes: int = 160,
    ) -> float:
        """Account one measurement interval; returns watts drawn."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        util = self.cpu_model.utilization(local_busy_fraction, offload_rate)
        watts = self.power_model.power(
            util,
            tx_bytes_per_s=offload_rate * frame_bytes,
            rx_bytes_per_s=offload_rate * response_bytes,
        )
        self.consumed_joules += watts * dt
        self.seconds += dt
        return watts

    @property
    def mean_watts(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.consumed_joules / self.seconds

    def battery_hours(self, watt_hours: float = 10.0) -> float:
        """Runtime on a ``watt_hours`` pack at the observed draw."""
        if watt_hours <= 0:
            raise ValueError(f"capacity must be positive, got {watt_hours}")
        if self.mean_watts == 0:
            return float("inf")
        return watt_hours / self.mean_watts

    def joules_per_success(self, successes: int) -> float:
        """Energy cost per successful inference — the efficiency metric."""
        if successes <= 0:
            return float("inf")
        return self.consumed_joules / successes


def account_run(result, power_model: PowerModel = PowerModel()) -> BatteryAccountant:
    """Post-hoc battery accounting of a :class:`RunResult`.

    Uses the recorded per-second CPU utilization and offload-rate
    traces, so any already-completed run can be costed without rerun.
    """
    from repro.device.energy import CpuUtilizationModel

    device = result.scenario.device
    cpu_model = CpuUtilizationModel(device.profile)
    acct = BatteryAccountant(power_model=power_model, cpu_model=cpu_model)
    cpu = result.traces.cpu_utilization.values
    offload = result.traces.offload_rate.values
    frame_bytes = device.frame_spec.bytes_on_wire
    n = min(len(cpu), len(offload))
    for i in range(n):
        # invert the recorded utilization back to busy fraction: the
        # accountant recomputes util internally, so feed components
        util = float(cpu[i])
        inferred_busy = max(
            0.0,
            min(
                1.0,
                (
                    util
                    - device.profile.capture_overhead_util
                    - cpu_model.encode_cost_per_fps * float(offload[i])
                )
                / cpu_model.inference_weight,
            ),
        )
        acct.step(
            dt=device.measure_period,
            local_busy_fraction=inferred_busy,
            offload_rate=float(offload[i]),
            frame_bytes=frame_bytes,
            response_bytes=device.frame_spec.response_bytes,
        )
    return acct
