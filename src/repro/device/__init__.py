"""Edge-device substrate: camera, splitter, local pipeline, offload client.

An :class:`~repro.device.device.EdgeDevice` owns the whole §II system
model on the device side:

* a fixed-rate frame source (30 fps, 4000 frames in the paper's runs);
* a deterministic splitter that routes frames to the offload stream at
  the controller's target rate ``P_o`` and everything else to local;
* a local inference pipeline that processes one frame at a time and
  *skips* frames that arrive while busy (``P_l < F_s`` by assumption);
* a pipelined offload client that ships frames over the uplink without
  waiting for responses, and turns silence past the 250 ms deadline —
  as well as server rejections — into timeout events ``T``;
* a 1 Hz measurement loop that closes rate buckets, asks the attached
  controller for a new ``P_o``, and records every series experiments
  need.
"""

from repro.device.camera import FrameSource
from repro.device.config import DeviceConfig
from repro.device.device import DeviceTraces, EdgeDevice
from repro.device.energy import CpuUtilizationModel
from repro.device.local import LocalPipeline
from repro.device.offload import OffloadClient
from repro.device.splitter import TokenBucketSplitter

__all__ = [
    "CpuUtilizationModel",
    "DeviceConfig",
    "DeviceTraces",
    "EdgeDevice",
    "FrameSource",
    "LocalPipeline",
    "OffloadClient",
    "TokenBucketSplitter",
]
