"""Fixed-rate frame source (the webcam / ImageNet stream of §IV-A)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.sim.core import Environment


@dataclass(frozen=True)
class Frame:
    """One captured frame."""

    frame_id: int
    captured_at: float
    nbytes: int


class FrameSource:
    """Emits frames at a fixed rate, like a camera sensor.

    The paper's experiments generate "a stream of 4,000 frames at 30
    frames per second" (§IV-D); ``total_frames=None`` streams forever.
    Frames are delivered synchronously to ``sink`` at their capture
    instant — the sink decides routing.

    ``nbytes`` is either a fixed size or a zero-argument callable
    sampled per frame (see
    :class:`~repro.workloads.video.VideoContentModel`).
    """

    def __init__(
        self,
        env: Environment,
        frame_rate: float,
        nbytes: "Union[int, Callable[[], int]]",
        sink: Callable[[Frame], None],
        total_frames: Optional[int] = None,
        name: str = "camera",
    ) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.env = env
        self.frame_rate = frame_rate
        self.nbytes = nbytes
        self._size_of = nbytes if callable(nbytes) else (lambda: nbytes)
        self.sink = sink
        self.total_frames = total_frames
        self.frames_emitted = 0
        #: hybrid-kernel seam: called at a capture instant with this
        #: source; returns the absolute time of the next capture to
        #: simulate exactly (the intervening frames were advanced
        #: analytically) or None to emit this frame normally
        self.fluid_advance: Optional[Callable[["FrameSource"], Optional[float]]] = None
        self.done = env.event()
        self._paused_until = 0.0
        self._name = name
        # Next frame id lives on the instance (not a loop local) so a
        # crash/restart cycle continues the stream where it stopped
        # instead of re-emitting ids the pipeline has already seen.
        self._next_id = 0
        self._proc = env.process(self._run(), name=name)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the sensor process is running."""
        return self._proc.is_alive

    def crash(self) -> None:
        """Kill the sensor process mid-stream (fault injection).

        Unlike :meth:`pause`, nothing is scheduled to bring it back:
        frames simply stop until :meth:`restart`.  Crashing a finished
        stream is a no-op.
        """
        if self._proc.is_alive:
            self._proc.kill()

    def restart(self) -> None:
        """Respawn the sensor, continuing from the next unemitted frame.

        Frame ids stay continuous across the outage; on a bounded
        stream the tail is pushed past the downtime (frames that fall
        beyond the run horizon are then never captured).  Restarting a
        stream that already finished is a no-op.
        """
        if self._proc.is_alive or self.done.triggered:
            return
        self._paused_until = 0.0
        self._proc = self.env.process(self._run(), name=self._name)

    def pause(self, duration: float) -> None:
        """Freeze the sensor for ``duration`` seconds (fault injection).

        No frames are emitted while frozen; the stream resumes on its
        own cadence afterwards, so a stall *delays* the tail of a
        bounded stream rather than dropping frames from it.
        """
        if duration < 0:
            raise ValueError(f"negative pause duration {duration}")
        self._paused_until = max(self._paused_until, self.env.now + duration)

    @property
    def paused(self) -> bool:
        return self.env.now < self._paused_until

    def _run(self):
        env = self.env
        period = 1.0 / self.frame_rate
        delay = period
        while self.total_frames is None or self._next_id < self.total_frames:
            yield env.sleep(delay)
            delay = period
            while env.now < self._paused_until:
                yield env.sleep(self._paused_until - env.now)
            hook = self.fluid_advance
            if hook is not None:
                resume_at = hook(self)
                if resume_at is not None:
                    # The hook consumed this capture instant and every
                    # tick up to the window end; sleep straight to the
                    # first tick that must be simulated exactly.
                    delay = resume_at - env.now
                    continue
            frame = Frame(
                frame_id=self._next_id, captured_at=env.now, nbytes=self._size_of()
            )
            self.frames_emitted += 1
            self.sink(frame)
            self._next_id += 1
        if not self.done.triggered:
            self.done.succeed(self.frames_emitted)
