"""Fixed-rate frame source (the webcam / ImageNet stream of §IV-A)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.sim.core import Environment


@dataclass(frozen=True)
class Frame:
    """One captured frame."""

    frame_id: int
    captured_at: float
    nbytes: int


class FrameSource:
    """Emits frames at a fixed rate, like a camera sensor.

    The paper's experiments generate "a stream of 4,000 frames at 30
    frames per second" (§IV-D); ``total_frames=None`` streams forever.
    Frames are delivered synchronously to ``sink`` at their capture
    instant — the sink decides routing.

    ``nbytes`` is either a fixed size or a zero-argument callable
    sampled per frame (see
    :class:`~repro.workloads.video.VideoContentModel`).
    """

    def __init__(
        self,
        env: Environment,
        frame_rate: float,
        nbytes: "Union[int, Callable[[], int]]",
        sink: Callable[[Frame], None],
        total_frames: Optional[int] = None,
        name: str = "camera",
    ) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.env = env
        self.frame_rate = frame_rate
        self.nbytes = nbytes
        self._size_of = nbytes if callable(nbytes) else (lambda: nbytes)
        self.sink = sink
        self.total_frames = total_frames
        self.frames_emitted = 0
        self.done = env.event()
        self._paused_until = 0.0
        env.process(self._run(), name=name)

    def pause(self, duration: float) -> None:
        """Freeze the sensor for ``duration`` seconds (fault injection).

        No frames are emitted while frozen; the stream resumes on its
        own cadence afterwards, so a stall *delays* the tail of a
        bounded stream rather than dropping frames from it.
        """
        if duration < 0:
            raise ValueError(f"negative pause duration {duration}")
        self._paused_until = max(self._paused_until, self.env.now + duration)

    @property
    def paused(self) -> bool:
        return self.env.now < self._paused_until

    def _run(self):
        env = self.env
        period = 1.0 / self.frame_rate
        frame_id = 0
        while self.total_frames is None or frame_id < self.total_frames:
            yield env.sleep(period)
            while env.now < self._paused_until:
                yield env.sleep(self._paused_until - env.now)
            frame = Frame(frame_id=frame_id, captured_at=env.now, nbytes=self._size_of())
            self.frames_emitted += 1
            self.sink(frame)
            frame_id += 1
        self.done.succeed(self.frames_emitted)
