"""The device-side fluid model: analytic per-frame outcomes in bulk.

When the :class:`~repro.sim.fluid.FluidRegime` opens a steady window,
the camera hands the whole window to this model instead of emitting
per-frame events.  Every frame in the window is routed through the
*real* :class:`~repro.device.splitter.TokenBucketSplitter` (routing is
deterministic and cheap, so fluid routing is identical to exact
routing), and its outcome is computed arithmetically:

* **offloaded frames** ride an analytic copy of the pipeline — a
  virtual uplink serializer clock (closed-form serialization time, the
  D/D/1 busy-period carry the exact serializer produces under
  token-bucket-spaced arrivals), propagation plus per-frame Gaussian
  jitter, a steady-state batch-formation model of the server
  (self-consistent batch size ``n* = lam*t0 / (1 - lam*k)`` for the
  affine GPU curve ``t(n) = t0 + k*n``, queue wait via
  :func:`repro.analysis.queueing.mg1_wait`), and the response trip
  through a virtual downlink clock.  Success is the same predicate the
  deadline watchdog applies: ``rtt < deadline``.

* **local frames** run on a virtual copy of the single-slot engine
  (busy-until clock plus the 1-deep prefetch slot), reproducing the
  exact pipeline's ``min(demand, P_l)`` completion rate and its skips.

All bookkeeping the exact path would have produced — device buckets,
cumulative QoS counters, the RTT histogram, link/server/GPU stats — is
credited through the same counters, so ``_close_buckets`` and
:meth:`~repro.device.device.EdgeDevice.qos_report` cannot tell the
regimes apart.  Stochastic draws come from the dedicated ``"fluid"``
rng stream: hybrid runs are deterministic, but fluid regions are
*statistically* (not byte-) equivalent to exact runs — see
docs/performance.md ("Hybrid kernel") for the validation methodology.
Known approximations: the §II-B breakdown attribution and resilience
hedging are not modeled inside windows (windows only open with enough
RTT margin that hedges are rare), and background tenants keep
event-stepping exactly — only their *rate* enters the server model.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.analysis.queueing import mg1_wait, utilization
from repro.models.zoo import ModelSpec, get_model
from repro.netem.link import LinkConditions
from repro.netem.packet import PACKET_OVERHEAD_BYTES, packets_for
from repro.sim.fluid import FluidRegime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.device.camera import FrameSource
    from repro.device.device import EdgeDevice

_INF = float("inf")


def serialize_time(cond: LinkConditions, nbytes: int) -> float:
    """Closed-form serialization seconds for one ``nbytes`` payload.

    Equals summing :meth:`LinkConditions.packet_time` over the exact
    serializer's packet sizes — per-packet overhead is linear in the
    packet count, so the sum collapses.
    """
    wire_bytes = nbytes + packets_for(nbytes) * PACKET_OVERHEAD_BYTES
    return wire_bytes * 8.0 / cond.bits_per_second


class DeviceFluidModel:
    """Bulk-advances one device's frames through a steady window."""

    #: fraction of the deadline the *mean* analytic RTT must stay under
    #: for fluid advance — past it, individual frames start racing the
    #: watchdog and exact DES must arbitrate the photo finish
    RTT_MARGIN = 0.8
    #: offered GPU load above which the window is refused (near
    #: saturation, queue dynamics are transient by definition)
    MAX_UTILIZATION = 0.9
    #: offered uplink load cap: token-bucket spacing makes the uplink
    #: D/D/1 (waits stay ~0 right up to rho = 1), so only genuine
    #: overload is refused — the paper's full-offload steady state
    #: sits at rho ~ 0.93 and must stay fluid-eligible
    MAX_UPLINK_UTILIZATION = 0.98

    def __init__(
        self,
        device: "EdgeDevice",
        regime: FluidRegime,
        rng: np.random.Generator,
        bg_rate_fn: Optional[Callable[[float], float]] = None,
        bg_model_names: Sequence[str] = (),
    ) -> None:
        self.device = device
        self.regime = regime
        self.rng = rng
        #: background load offered to the shared server (req/s at t);
        #: None when the scenario has no background tenants
        self.bg_rate_fn = bg_rate_fn
        self.bg_models: List[ModelSpec] = [get_model(n) for n in bg_model_names]
        # virtual serializer/engine clocks, persisted across windows so
        # back-to-back windows see a warm pipeline
        self._up_free_at = 0.0
        self._dn_free_at = 0.0
        self._local_free_at = 0.0
        self._local_pending = 0
        self._spec = get_model(device.offload.model_name)

    # ------------------------------------------------------------------
    # steadiness
    # ------------------------------------------------------------------
    def _steady_reason(self, now: float) -> Optional[str]:
        """Device-level veto, or None when fluid advance is sound."""
        device = self.device
        if device.resilience is not None and not device.resilience.breaker.is_closed:
            return "breaker-open"
        if not device.measure_alive:
            return "controller-down"
        router = device.router
        if router is not None:
            pool = router.pool
            if len(pool.servers) > 1:
                # Multi-server routing interleaves per-server admission
                # buckets and failover state; fleet runs stay exact
                # (the fleet invariants are about transients anyway).
                return "multi-server"
            if len(pool.healthy()) != len(pool.servers):
                return "fleet-degraded"
        client = device.offload
        server = client.server
        if not server.service_alive or server.paused:
            return "server-down"
        if client.uplink.queue_length > 0:
            return "uplink-backlog"
        cond = client.uplink.conditions
        if cond.loss > 1e-6:
            # ARQ retransmission dynamics (stalls, abandonment, burst
            # correlation) are exactly what exact DES is for.
            return "lossy-link"
        return None

    # ------------------------------------------------------------------
    # the analytic pipeline model
    # ------------------------------------------------------------------
    def _bg_service_time(self, lam_bg: float, gpu) -> float:
        """Mean amortized GPU seconds per background request (inf when
        any background class alone saturates its batcher)."""
        if lam_bg <= 0 or not self.bg_models:
            return 0.0
        base = gpu.cost_model.base_latency * gpu.slowdown
        per = gpu.cost_model.per_item * gpu.slowdown
        limit = float(self.device.offload.server.batch_limit)
        lam_m = lam_bg / len(self.bg_models)
        total = 0.0
        for spec in self.bg_models:
            k = per * spec.gpu_cost
            denom = 1.0 - lam_m * k
            if denom <= 0.05:
                return _INF
            n_star = min(max(lam_m * base / denom, 1.0), limit)
            total += base / n_star + k
        return total / len(self.bg_models)

    def _offload_profile(
        self, now: float, nbytes: int
    ) -> Tuple[Optional[str], Optional[dict]]:
        """Analytic RTT decomposition for the current rates.

        Returns ``(reason, None)`` when the offload path is too close
        to saturation (or the deadline) for analytic advance, else
        ``(None, profile)`` with every constant the per-frame loop
        needs.
        """
        device = self.device
        client = device.offload
        cond = client.uplink.conditions
        lam_o = device.splitter.target
        ser_up = serialize_time(cond, nbytes)
        ser_dn = serialize_time(cond, client.response_bytes)

        server = client.server
        gpu = server.gpu
        base = gpu.cost_model.base_latency * gpu.slowdown
        k = gpu.cost_model.per_item * self._spec.gpu_cost * gpu.slowdown
        gpu_sigma = gpu.cost_model.jitter_sigma

        if lam_o <= 1e-9:
            # Pure-local window: nothing rides the wire, so the offload
            # leg needs no feasibility check at all.
            profile = dict(
                ser_up=ser_up, ser_dn=ser_dn, prop=cond.propagation_delay,
                srv_wait=0.0, exec_mean=base + k, gpu_sigma=gpu_sigma,
                jitter_sigma=cond.jitter_sigma, gpu_per_frame=base + k,
                n_star=1.0,
            )
            return None, profile

        if utilization(lam_o, ser_up) >= self.MAX_UPLINK_UTILIZATION:
            return "uplink-saturated", None

        lam_bg = float(self.bg_rate_fn(now)) if self.bg_rate_fn is not None else 0.0
        s_bg = self._bg_service_time(lam_bg, gpu)
        denom = 1.0 - lam_o * k
        if denom <= 0.05 or s_bg == _INF:
            return "server-saturated", None
        n_star = min(max(lam_o * base / denom, 1.0), float(server.batch_limit))
        s_ours = base / n_star + k  # amortized GPU seconds per frame
        rho = lam_o * s_ours + lam_bg * s_bg
        if rho >= self.MAX_UTILIZATION:
            return "server-saturated", None
        lam_tot = lam_o + lam_bg
        s_mean = rho / lam_tot
        srv_wait = mg1_wait(lam_tot, s_mean, gpu_sigma * gpu_sigma)
        # a frame waits for its whole batch, not its amortized share
        exec_mean = base + k * n_star

        # No uplink queue-wait term: token-bucket spacing keeps the
        # D/D/1 serializer's wait at ~0 below saturation (the virtual
        # clock carries any residual busy period per frame); the
        # Poisson bound md1_wait(lam_o, ser_up) would veto the paper's
        # own full-offload steady state.
        mean_rtt = (
            ser_up
            + cond.propagation_delay
            + srv_wait
            + exec_mean
            + ser_dn
            + cond.propagation_delay
        )
        if mean_rtt > self.RTT_MARGIN * device.config.deadline:
            return "no-rtt-margin", None
        profile = dict(
            ser_up=ser_up, ser_dn=ser_dn, prop=cond.propagation_delay,
            srv_wait=srv_wait, exec_mean=exec_mean, gpu_sigma=gpu_sigma,
            jitter_sigma=cond.jitter_sigma, gpu_per_frame=s_ours,
            n_star=n_star,
        )
        return None, profile

    # ------------------------------------------------------------------
    # camera hook
    # ------------------------------------------------------------------
    def camera_hook(self, source: "FrameSource") -> Optional[float]:
        """Called by the camera at a capture instant, before emission.

        Returns the absolute time of the next capture to simulate
        (having consumed every tick in between analytically), or None
        to emit this frame through the normal exact path.
        """
        device = self.device
        env = device.env
        now = env.now
        regime = self.regime
        if env.event_horizon() == _INF:
            # Runs bounded by an event (or unbounded) give the regime
            # no horizon to respect; stay exact rather than leap past
            # a stop condition the heap cannot show us.
            regime.note_forced("unbounded-run")
            return None
        reason = self._steady_reason(now)
        if reason is not None:
            regime.note_forced(reason)
            return None
        from repro.models.frames import frame_bytes

        spec = device.config.frame_spec
        base_bytes = frame_bytes(spec.resolution, device.capture_quality)
        reason, profile = self._offload_profile(now, base_bytes)
        if reason is not None:
            regime.note_forced(reason)
            return None
        t1 = regime.open_window(now, hard_edge=device.next_measure_at)
        if t1 is None:
            return None

        # ----- the window's capture instants --------------------------
        # Repeated addition mirrors the exact camera's per-tick float
        # accumulation; the final value is the camera's resume time.
        period = 1.0 / source.frame_rate
        total = source.total_frames
        remaining = _INF if total is None else total - source._next_id
        ticks: List[float] = []
        t = now
        while t < t1 - 1e-9 and len(ticks) < remaining:
            ticks.append(t)
            t = t + period

        n_frames = len(ticks)
        sampled = device._video_sampler is not None
        # same draw cadence as the exact path: one size per capture
        sizes = (
            [device._frame_nbytes() for _ in range(n_frames)]
            if sampled
            else None
        )
        routes = [device.splitter.route() for _ in range(n_frames)]
        n_off = sum(routes)

        cond = device.offload.uplink.conditions
        prop = profile["prop"]
        ser_up = profile["ser_up"]
        ser_dn = profile["ser_dn"]
        srv_wait = profile["srv_wait"]
        rng = self.rng
        if n_off:
            jit = rng.normal(0.0, profile["jitter_sigma"], size=2 * n_off)
            gs = profile["gpu_sigma"]
            exec_draws = profile["exec_mean"] * np.exp(
                rng.normal(-0.5 * gs * gs, gs, size=n_off)
            )
        svc_local = device.local.latency_model.mean_latency * device.local.slowdown

        deadline = device.config.deadline
        up_free = max(self._up_free_at, now)
        dn_free = max(self._dn_free_at, now)
        local_free = max(self._local_free_at, now)
        local_pending = self._local_pending
        if device.local.busy and local_free <= now:
            # the real engine is mid-inference from the exact region;
            # assume it is halfway through its mean service
            local_free = now + 0.5 * svc_local
        off_i = 0
        n_ok = n_timeout = 0
        local_done = local_skip = 0
        rtts: List[float] = []
        up_bytes = up_pkts = 0

        for i in range(n_frames):
            t_i = ticks[i]
            if routes[i]:
                if sampled:
                    nbytes = sizes[i]
                    ser_up = serialize_time(cond, nbytes)
                else:
                    nbytes = base_bytes
                start = up_free if up_free > t_i else t_i
                up_free = start + ser_up
                d_up = prop + jit[2 * off_i]
                if d_up < 0.0:
                    d_up = 0.0
                depart = up_free + d_up + srv_wait + exec_draws[off_i]
                start = dn_free if dn_free > depart else depart
                dn_free = start + ser_dn
                d_dn = prop + jit[2 * off_i + 1]
                if d_dn < 0.0:
                    d_dn = 0.0
                rtt = dn_free + d_dn - t_i
                off_i += 1
                up_bytes += nbytes
                up_pkts += packets_for(nbytes)
                if rtt < deadline:
                    n_ok += 1
                    rtts.append(rtt if rtt > 1e-6 else 1e-6)
                else:
                    n_timeout += 1
            else:
                # virtual single-slot engine with 1-deep prefetch
                while local_pending and local_free <= t_i:
                    local_pending -= 1
                    local_free += svc_local
                    local_done += 1
                if local_free <= t_i:
                    local_free = t_i + svc_local
                    local_pending = 0
                    local_done += 1
                elif local_pending == 0:
                    local_pending = 1
                else:
                    local_skip += 1
        # completions that land inside the window still belong to the
        # bucket the measure tick at t1 is about to close
        while local_pending and local_free <= t1:
            local_pending -= 1
            local_free += svc_local
            local_done += 1

        self._up_free_at = up_free
        self._dn_free_at = dn_free
        self._local_free_at = local_free
        self._local_pending = local_pending

        # ----- credit every counter the exact path would have ---------
        device.frames_seen += n_frames
        device._bucket_offload_attempts += n_off
        device._bucket_offload_success += n_ok
        device._bucket_timeouts += n_timeout
        device._bucket_local_done += local_done
        device.offload_successes += n_ok
        device.timeouts += n_timeout
        device.successes += n_ok + local_done
        device.local_successes += local_done
        device.local_skips += local_skip
        if n_timeout:
            device._t_window.record(n_timeout)
        if rtts:
            device._bucket_rtts.extend(rtts)
            record = device.rtt_histogram.record
            for r in rtts:
                record(r)

        client = device.offload
        client.sent += n_off
        client.successes += n_ok
        client.timeouts += n_timeout
        if rtts:
            client.last_rtt = rtts[-1]

        if n_off:
            client.uplink.stats.absorb_fluid(n_off, up_pkts, up_bytes)
            client.downlink.stats.absorb_fluid(
                n_off,
                n_off * packets_for(client.response_bytes),
                n_off * client.response_bytes,
            )
            client.server.absorb_fluid(
                client.tenant,
                n_off,
                gpu_seconds=n_off * profile["gpu_per_frame"],
                batches=max(1, round(n_off / profile["n_star"])),
            )
        if local_done or local_skip:
            local = device.local
            local.completed += local_done
            local.skipped += local_skip
            local.busy_seconds += local_done * svc_local

        # id continuity with the exact path: the window consumed these
        source._next_id += n_frames
        source.frames_emitted += n_frames
        regime.account(n_frames, t1 - now)
        return t
