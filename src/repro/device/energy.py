"""CPU-utilization model (the §II-A.5 energy observation).

The paper does not optimize power but reports the side-effect:

    "Raspberry Pi CPU usage drops from 50.2% to 22.3% on average when
    transitioning from local execution to offloading."

We model device CPU utilization (fraction of total CPU) as

    util = capture_overhead + local_share * inference_weight + encode_cost * offload_rate

* ``capture_overhead`` — camera capture + preprocessing, always paid;
* ``local_share`` — the local inference engine's busy fraction, scaled
  by how much of the SoC a single-pipeline inference actually loads
  (TF on a Pi keeps roughly half the cores busy for MobileNet-class
  models — inferred from the paper's own 50.2 % local figure);
* ``encode_cost`` — JPEG encode + socket work per offloaded frame
  (calibrated against the paper's 22.3 % offloading figure at 30 fps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.device_profiles import DeviceProfile


@dataclass(frozen=True)
class CpuUtilizationModel:
    """Predicts average device CPU utilization for an interval."""

    profile: DeviceProfile
    #: SoC fraction a fully-busy local inference pipeline consumes
    inference_weight: float = 0.42
    #: SoC fraction consumed per offloaded frame per second
    encode_cost_per_fps: float = 0.0048

    def utilization(
        self, local_busy_fraction: float, offload_rate: float
    ) -> float:
        """Average CPU utilization (0..1).

        Args:
            local_busy_fraction: local engine busy fraction (0..1).
            offload_rate: offloaded frames per second.
        """
        if not 0.0 <= local_busy_fraction <= 1.0:
            raise ValueError(
                f"busy fraction must be in [0, 1], got {local_busy_fraction}"
            )
        if offload_rate < 0:
            raise ValueError(f"negative offload rate {offload_rate}")
        util = (
            self.profile.capture_overhead_util
            + self.inference_weight * local_busy_fraction
            + self.encode_cost_per_fps * offload_rate
        )
        return min(1.0, util)

    def local_only_utilization(self) -> float:
        """Utilization with the local engine saturated, no offloading."""
        return self.utilization(1.0, 0.0)

    def full_offload_utilization(self, frame_rate: float) -> float:
        """Utilization when every frame offloads (local engine idle)."""
        return self.utilization(0.0, frame_rate)
