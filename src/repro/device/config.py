"""Device configuration: one place for every §II/§IV constant."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.models.device_profiles import PI_4B_1_2, DeviceProfile
from repro.models.frames import FrameSpec
from repro.models.zoo import MOBILENET_V3_SMALL, ModelSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.config import ResilienceConfig
    from repro.workloads.video import VideoContentModel

#: the paper's source frame rate (§I: "a typical frame rate of 30")
DEFAULT_FRAME_RATE = 30.0

#: §II-B: "we consider 250ms as a justifiable deadline"
DEFAULT_DEADLINE = 0.250

#: Table IV: "Measure Frequency 1" (one controller step per second)
DEFAULT_MEASURE_PERIOD = 1.0

#: §III-A.1: T is "the average ... from the last few seconds"
DEFAULT_T_WINDOW_BUCKETS = 3

#: §IV-D/E: streams of 4000 frames
DEFAULT_STREAM_FRAMES = 4000


@dataclass(frozen=True)
class DeviceConfig:
    """Everything that defines one edge device in an experiment.

    Defaults are the paper's evaluation setup: a Pi 4B rev 1.2 running
    MobileNetV3Small on 224x224 frames at 30 fps with a 250 ms
    deadline (§IV-A: "We use MobileNetV3 for these tests ... we only
    used the same device and model for data collection").
    """

    name: str = "pi"
    profile: DeviceProfile = PI_4B_1_2
    model: ModelSpec = MOBILENET_V3_SMALL
    frame_spec: FrameSpec = field(default_factory=FrameSpec)
    frame_rate: float = DEFAULT_FRAME_RATE
    deadline: float = DEFAULT_DEADLINE
    measure_period: float = DEFAULT_MEASURE_PERIOD
    t_window_buckets: int = DEFAULT_T_WINDOW_BUCKETS
    total_frames: int = DEFAULT_STREAM_FRAMES
    #: optional content-driven frame-size variation (None = fixed
    #: sizes, the paper's setup)
    video: "Optional[VideoContentModel]" = None
    #: optional resilient offload path (retries + circuit breaker,
    #: :mod:`repro.resilience`); None = the paper's bare client
    resilience: "Optional[ResilienceConfig]" = None

    def __post_init__(self) -> None:
        if self.frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {self.frame_rate}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.measure_period <= 0:
            raise ValueError("measure period must be positive")
        if self.total_frames < 0:
            raise ValueError("total frames must be >= 0")

    @property
    def frame_period(self) -> float:
        return 1.0 / self.frame_rate

    @property
    def stream_duration(self) -> float:
        """Seconds needed to emit the whole stream."""
        return self.total_frames * self.frame_period
