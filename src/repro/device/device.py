"""The edge device: wiring plus the 1 Hz measurement/control loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.control.base import Controller, Measurement
from repro.control.validity import MeasurementGuard
from repro.device.camera import Frame, FrameSource
from repro.device.config import DeviceConfig
from repro.device.energy import CpuUtilizationModel
from repro.device.local import LocalPipeline
from repro.device.offload import OffloadClient
from repro.device.splitter import TokenBucketSplitter
from repro.metrics.breakdown import BreakdownCollector
from repro.metrics.counters import WindowedRate
from repro.metrics.qos import QosReport
from repro.metrics.streaming import StreamingHistogram
from repro.metrics.taxonomy import FailureKind
from repro.metrics.timeseries import TimeSeries
from repro.models.latency import LocalLatencyModel
from repro.netem.link import Link
from repro.resilience.layer import ResilienceLayer
from repro.server.server import EdgeServer
from repro.sim.core import Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.router import Router


@dataclass
class DeviceTraces:
    """Every per-second series an experiment might plot.

    Matches the paper's figures: ``throughput`` is the dark series
    (``P``), ``offload_target`` is the light ``P_o`` series shown for
    FrameFeedback, ``timeout_rate`` is ``T``.
    """

    throughput: TimeSeries = field(default_factory=lambda: TimeSeries("P"))
    offload_target: TimeSeries = field(default_factory=lambda: TimeSeries("P_o target"))
    offload_rate: TimeSeries = field(default_factory=lambda: TimeSeries("P_o measured"))
    offload_success: TimeSeries = field(default_factory=lambda: TimeSeries("P_o ok"))
    local_rate: TimeSeries = field(default_factory=lambda: TimeSeries("P_l"))
    timeout_rate: TimeSeries = field(default_factory=lambda: TimeSeries("T"))
    timeout_window: TimeSeries = field(default_factory=lambda: TimeSeries("T avg"))
    error: TimeSeries = field(default_factory=lambda: TimeSeries("e(t)"))
    cpu_utilization: TimeSeries = field(default_factory=lambda: TimeSeries("cpu"))
    capture_quality: TimeSeries = field(default_factory=lambda: TimeSeries("JPEG q"))
    #: circuit-breaker state per period (0 closed / 0.5 half-open /
    #: 1 open); flat zero when no resilience layer is configured
    breaker_state: TimeSeries = field(default_factory=lambda: TimeSeries("breaker"))


class EdgeDevice:
    """One §II edge device under a given controller."""

    def __init__(
        self,
        env: Environment,
        config: DeviceConfig,
        controller: Controller,
        uplink: Link,
        downlink: Link,
        server: EdgeServer,
        rng: np.random.Generator,
        router: Optional["Router"] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.controller = controller
        self.rng = rng
        #: optional fleet routing seam shared with the offload client;
        #: None keeps the paper's fixed single-server path bit-identical
        self.router = router
        self.traces = DeviceTraces()
        self.energy_model = CpuUtilizationModel(config.profile)

        # --- actuation path -------------------------------------------------
        self.splitter = TokenBucketSplitter(config.frame_rate)
        self.splitter.set_target(controller.initial_target(config.frame_rate))

        self.local = LocalPipeline(
            env,
            LocalLatencyModel(config.profile, config.model),
            rng,
            on_complete=self._on_local_complete,
            name=f"{config.name}:local",
        )

        #: omniscient T_n/T_l attribution — analysis only, never
        #: visible to the controller (the paper's §II-B observation)
        self.breakdown = BreakdownCollector()
        #: whole-run RTT distribution (bounded memory), for reports
        self.rtt_histogram = StreamingHistogram(min_value=1e-3, max_value=5.0)
        #: optional resilient offload path (None = the paper's device)
        self.resilience: Optional[ResilienceLayer] = None
        if config.resilience is not None:
            self.resilience = ResilienceLayer(config.resilience, config.frame_rate)
            self.resilience.breaker.on_open = self._on_breaker_open
        self._breaker_probing = False
        self.offload = OffloadClient(
            env,
            uplink=uplink,
            downlink=downlink,
            server=server,
            tenant=config.name,
            model_name=config.model.name,
            deadline=config.deadline,
            response_bytes=config.frame_spec.response_bytes,
            on_success=self._on_offload_success,
            on_timeout=self._on_offload_timeout,
            on_probe_result=self._on_probe_result,
            breakdown=self.breakdown,
            resilience=self.resilience,
            router=router,
        )
        if router is not None:
            # the instant the pool ejects a server, sweep our in-flight
            # frames off it (failover or crash-drop, never silence)
            router.pool.subscribe_down(self._on_server_down)

        # --- measurement state ----------------------------------------------
        self._bucket_offload_attempts = 0
        self._bucket_offload_success = 0
        self._bucket_local_done = 0
        self._bucket_timeouts = 0
        self._bucket_rtts: list = []
        self._t_window = WindowedRate(config.t_window_buckets)
        self._probe_result: Optional[bool] = None
        self._probe_counter = 0
        self._prev_local_busy = 0.0
        #: admission control on the controller's input stream
        #: (duplicate/out-of-order rejection, NaN/range repair,
        #: staleness tagging); counters surface in the QoS extras
        self.input_guard = MeasurementGuard(
            frame_rate=config.frame_rate, measure_period=config.measure_period
        )
        #: supervision hook: called with each *admitted* measurement
        #: after the control step (heartbeat + checkpoint point)
        self.on_measure_tick: Optional[Callable[[Measurement], None]] = None

        # cumulative QoS counters
        self.frames_seen = 0
        self.successes = 0
        self.local_successes = 0
        self.offload_successes = 0
        self.timeouts = 0
        self.local_skips = 0

        #: runtime-adjustable JPEG quality (§II-D knob); controllers
        #: exposing a ``capture_quality`` attribute drive it
        self.capture_quality = config.frame_spec.jpeg_quality
        self._video_sampler = (
            config.video.sampler(rng) if config.video is not None else None
        )
        self.source = FrameSource(
            env,
            frame_rate=config.frame_rate,
            nbytes=self._frame_nbytes,
            sink=self._on_frame,
            total_frames=config.total_frames or None,
            name=f"{config.name}:camera",
        )
        #: hybrid-kernel fluid model (None on the exact kernel)
        self.fluid_model = None
        #: absolute time of the next measure tick — the hard edge no
        #: fluid window may cross (buckets close there)
        self._next_measure_at = 0.0
        self._measure_proc = env.process(
            self._measure_loop(), name=f"{config.name}:measure"
        )

    # ------------------------------------------------------------------
    # data path callbacks
    # ------------------------------------------------------------------
    def _frame_nbytes(self) -> int:
        """Per-frame size under the current capture quality."""
        from repro.models.frames import frame_bytes

        spec = self.config.frame_spec
        base = frame_bytes(spec.resolution, self.capture_quality)
        if self._video_sampler is None:
            return base
        # content variation scales around the quality-adjusted mean
        raw = self._video_sampler()
        return max(200, int(round(raw * base / spec.bytes_on_wire)))

    def _on_frame(self, frame: Frame) -> None:
        self.frames_seen += 1
        tracer = self.env.tracer
        tenant = self.config.name
        if self.resilience is not None and not self.resilience.breaker.is_closed:
            # Breaker tripped: the offload path is declared dead, so
            # *every* frame takes the local fallback — no 250 ms stalls
            # beyond the ones that tripped it.  Only the probe loop's
            # synthetic trials ride the wire while not closed.
            self.resilience.record(FailureKind.BREAKER_FALLBACK)
            if tracer is not None:
                tracer.begin_frame(
                    tenant, frame.frame_id, self.env.now, frame.nbytes,
                    "breaker-fallback",
                )
            if not self.local.offer(frame):
                self.local_skips += 1
                self.resilience.record(FailureKind.BREAKER_FALLBACK_DROPPED)
                if tracer is not None:
                    tracer.finish_frame(
                        tenant, frame.frame_id, self.env.now, "dropped-skip"
                    )
            elif tracer is not None:
                tracer.begin_local(tenant, frame.frame_id, self.env.now)
            return
        if self.router is not None and not self.router.available():
            # Fleet brownout: every server is ejected, so the offload
            # path is gone fleet-wide.  Degrade to the local pipeline
            # exactly like a breaker trip rather than erroring.
            if self.resilience is not None:
                self.resilience.record(FailureKind.BREAKER_FALLBACK)
            if tracer is not None:
                tracer.begin_frame(
                    tenant, frame.frame_id, self.env.now, frame.nbytes,
                    "brownout-fallback",
                )
            if not self.local.offer(frame):
                self.local_skips += 1
                if self.resilience is not None:
                    self.resilience.record(FailureKind.BREAKER_FALLBACK_DROPPED)
                if tracer is not None:
                    tracer.finish_frame(
                        tenant, frame.frame_id, self.env.now, "dropped-skip"
                    )
            elif tracer is not None:
                tracer.begin_local(tenant, frame.frame_id, self.env.now)
            return
        if self.splitter.route():
            if tracer is not None:
                tracer.begin_frame(
                    tenant, frame.frame_id, self.env.now, frame.nbytes, "offload"
                )
            self._bucket_offload_attempts += 1
            self.offload.send(frame)
        else:
            if tracer is not None:
                tracer.begin_frame(
                    tenant, frame.frame_id, self.env.now, frame.nbytes, "local"
                )
            if not self.local.offer(frame):
                self.local_skips += 1
                if tracer is not None:
                    tracer.finish_frame(
                        tenant, frame.frame_id, self.env.now, "dropped-skip"
                    )
            elif tracer is not None:
                tracer.begin_local(tenant, frame.frame_id, self.env.now)

    def _on_local_complete(self, frame: Frame, latency: float) -> None:
        self._bucket_local_done += 1
        self.local_successes += 1
        self.successes += 1
        tracer = self.env.tracer
        if tracer is not None:
            tenant = self.config.name
            tracer.end_local(tenant, frame.frame_id, self.env.now, latency)
            tracer.finish_frame(
                tenant, frame.frame_id, self.env.now, "completed-local"
            )

    def _on_offload_success(self, frame: Frame, rtt: float) -> None:
        self._bucket_offload_success += 1
        self._bucket_rtts.append(rtt)
        self.rtt_histogram.record(max(rtt, 1e-6))
        self.offload_successes += 1
        self.successes += 1

    def _on_offload_timeout(self, frame: Frame, reason: str) -> None:
        self._bucket_timeouts += 1
        self._t_window.record(1)
        self.timeouts += 1

    def _on_probe_result(self, ok: bool) -> None:
        self._probe_result = ok

    def _on_server_down(self, name: str) -> None:
        """Pool ejection hook: fail over / settle our in-flight frames."""
        self.offload.failover_from(name)

    # ------------------------------------------------------------------
    # hybrid kernel
    # ------------------------------------------------------------------
    @property
    def next_measure_at(self) -> float:
        """Absolute time of the next bucket-closing measure tick."""
        return self._next_measure_at

    def enable_fluid(self, regime, rng, bg_rate_fn=None, bg_model_names=()):
        """Attach the hybrid kernel's fluid model to this device.

        ``regime`` is the environment's
        :class:`~repro.sim.fluid.FluidRegime`; ``rng`` must be a
        dedicated stream (draw-count differs from every exact-path
        stream).  Returns the installed
        :class:`~repro.device.fluid.DeviceFluidModel`.
        """
        from repro.device.fluid import DeviceFluidModel

        model = DeviceFluidModel(
            self, regime, rng,
            bg_rate_fn=bg_rate_fn, bg_model_names=bg_model_names,
        )
        self.fluid_model = model
        self.source.fluid_advance = model.camera_hook
        return model

    # ------------------------------------------------------------------
    # measurement / control loop
    # ------------------------------------------------------------------
    @property
    def measure_alive(self) -> bool:
        """True while the 1 Hz measurement/control loop is running."""
        return self._measure_proc.is_alive

    def crash_measure_loop(self) -> None:
        """Kill the measurement/control loop (controller-process crash).

        The data path keeps running — frames still route through the
        splitter at its last target — but no buckets close, no
        measurements reach the controller, and ``P_o`` stops adapting.
        That frozen-actuator blackout is exactly what the supervision
        layer's staleness policy exists to bound.
        """
        if self._measure_proc.is_alive:
            self._measure_proc.kill()

    def restart_measure_loop(self) -> None:
        """Respawn a crashed measurement/control loop.

        Measurement state is re-based first: the bucket that straddled
        the outage would otherwise divide an entire downtime's counts
        by one period, handing the controller a garbage first
        measurement.  Controller state is *not* touched here — warm
        vs cold restart policy belongs to the supervision layer.
        """
        if self._measure_proc.is_alive:
            return
        self._rebase_measurement_state()
        self._measure_proc = self.env.process(
            self._measure_loop(), name=f"{self.config.name}:measure"
        )

    def _rebase_measurement_state(self) -> None:
        self._bucket_offload_attempts = 0
        self._bucket_offload_success = 0
        self._bucket_local_done = 0
        self._bucket_timeouts = 0
        self._bucket_rtts = []
        self._t_window = WindowedRate(self.config.t_window_buckets)
        self._probe_result = None
        self._prev_local_busy = self.local.busy_seconds

    def _measure_loop(self):
        env = self.env
        cfg = self.config
        period = cfg.measure_period
        while True:
            if self.controller.wants_probe and not self._offload_path_down:
                self._send_probe()
            self._next_measure_at = env.now + period
            yield env.sleep(period)
            raw = self._close_buckets(period)
            decision = self.input_guard.admit(raw)
            if not decision.admitted:
                # Duplicate or out-of-order window: hold the last
                # action rather than feed the PD law a bad dt.
                if env.tracer is not None:
                    env.tracer.event(
                        env.now, "controller.held",
                        target=float(self.splitter.target), reason="inadmissible",
                    )
                self.traces.offload_target.append(env.now, self.splitter.target)
                self.traces.capture_quality.append(env.now, self.capture_quality)
                self.traces.error.append(
                    env.now, getattr(self.controller, "last_error", 0.0)
                )
                continue
            measurement = decision.measurement
            tracer = env.tracer
            if self._offload_path_down:
                # Controller frozen (anti-windup): it would otherwise
                # integrate an outage it cannot observe — every frame
                # is being saved locally, so T reads zero — and resume
                # from a nonsense state.  The splitter is parked at the
                # paper's 0.1 F_s standing probe; on close (breaker) or
                # first re-admission (fleet brownout) the controller
                # picks up exactly where it was frozen.
                self.splitter.set_target(self._park_target)
                if tracer is not None:
                    reason = (
                        "breaker-open" if self._breaker_engaged
                        else "fleet-brownout"
                    )
                    tracer.event(
                        env.now, "controller.held",
                        target=float(self.splitter.target), reason=reason,
                    )
            else:
                degraded_before = (
                    getattr(self.controller, "degraded_inputs", 0)
                    if tracer is not None
                    else 0
                )
                new_target = self.controller.update(measurement)
                self.splitter.set_target(new_target)
                if tracer is not None:
                    tracer.event(
                        env.now, "controller.update", target=float(new_target)
                    )
                    degraded_after = getattr(
                        self.controller, "degraded_inputs", degraded_before
                    )
                    if degraded_after > degraded_before:
                        tracer.event(env.now, "controller.degraded-input")
                quality = getattr(self.controller, "capture_quality", None)
                if quality is not None:
                    self.capture_quality = float(quality)
            self.traces.offload_target.append(env.now, self.splitter.target)
            self.traces.capture_quality.append(env.now, self.capture_quality)
            err = getattr(self.controller, "last_error", 0.0)
            self.traces.error.append(env.now, err)
            if self.on_measure_tick is not None:
                self.on_measure_tick(measurement)

    @property
    def _breaker_engaged(self) -> bool:
        return self.resilience is not None and not self.resilience.breaker.is_closed

    @property
    def _offload_path_down(self) -> bool:
        """Breaker tripped, or the whole fleet is ejected (brownout)."""
        return self._breaker_engaged or (
            self.router is not None and not self.router.available()
        )

    @property
    def _park_target(self) -> float:
        """Standing-probe target while the offload path is down."""
        if self.resilience is not None:
            return self.resilience.open_target
        return 0.1 * self.config.frame_rate

    # ------------------------------------------------------------------
    # circuit-breaker probe loop
    # ------------------------------------------------------------------
    def _on_breaker_open(self) -> None:
        """Breaker just tripped: start the half-open probe loop."""
        if self._breaker_probing:
            return
        self._breaker_probing = True
        self.env.process(
            self._breaker_probe_loop(), name=f"{self.config.name}:breaker-probe"
        )

    def _breaker_probe_loop(self):
        """Trial probes with exponential backoff until the path heals.

        One probe per backoff interval; the loop waits for each trial's
        verdict (the offload watchdog bounds that wait by the deadline)
        so at most one trial is ever in flight.
        """
        resilience = self.resilience
        breaker = resilience.breaker
        while not breaker.is_closed:
            yield self.env.sleep(breaker.current_backoff)
            if breaker.is_closed:
                break
            verdict = self.env.event()

            def on_result(ok: bool, verdict=verdict) -> None:
                breaker.record_probe(ok, self.env.now)
                if not ok:
                    resilience.record(FailureKind.PROBE_FAILED)
                if not verdict.triggered:
                    verdict.succeed()

            breaker.on_probe_sent(self.env.now)
            self._probe_counter += 1
            trial = Frame(
                frame_id=-self._probe_counter,
                captured_at=self.env.now,
                nbytes=self._frame_nbytes(),
            )
            self.offload.send(trial, is_probe=True, on_result=on_result)
            yield verdict
        self._breaker_probing = False

    def _send_probe(self) -> None:
        """One heartbeat request (AllOrNothing's profiling probe)."""
        self._probe_counter += 1
        probe_frame = Frame(
            frame_id=-self._probe_counter,  # never collides with real ids
            captured_at=self.env.now,
            nbytes=self._frame_nbytes(),
        )
        self.offload.send(probe_frame, is_probe=True)

    def _close_buckets(self, period: float) -> Measurement:
        env = self.env
        cfg = self.config

        offload_rate = self._bucket_offload_attempts / period
        success_rate = self._bucket_offload_success / period
        local_rate = self._bucket_local_done / period
        timeout_last = self._bucket_timeouts / period
        throughput = success_rate + local_rate
        self._t_window.close_bucket(period)
        t_avg = self._t_window.average

        # per-interval CPU utilization from local busy time + offloads
        busy_now = self.local.busy_seconds
        busy_frac = min(1.0, (busy_now - self._prev_local_busy) / period)
        self._prev_local_busy = busy_now
        cpu = self.energy_model.utilization(busy_frac, offload_rate)

        overload_rate = retry_rate = breaker_open = 0.0
        if self.resilience is not None:
            fault_rates = self.resilience.taxonomy.close_bucket(period)
            overload_rate = fault_rates[FailureKind.OVERLOADED]
            retry_rate = fault_rates[FailureKind.RETRY_SENT]
            breaker_open = self.resilience.breaker.state_value()

        self.traces.throughput.append(env.now, throughput)
        self.traces.offload_rate.append(env.now, offload_rate)
        self.traces.offload_success.append(env.now, success_rate)
        self.traces.local_rate.append(env.now, local_rate)
        self.traces.timeout_rate.append(env.now, timeout_last)
        self.traces.timeout_window.append(env.now, t_avg)
        self.traces.cpu_utilization.append(env.now, cpu)
        self.traces.breaker_state.append(env.now, breaker_open)

        rtt_mean = rtt_p95 = None
        if self._bucket_rtts:
            arr = np.asarray(self._bucket_rtts)
            rtt_mean = float(arr.mean())
            rtt_p95 = float(np.percentile(arr, 95))

        measurement = Measurement(
            time=env.now,
            frame_rate=cfg.frame_rate,
            offload_target=self.splitter.target,
            offload_rate=offload_rate,
            offload_success_rate=success_rate,
            timeout_rate=t_avg,
            timeout_rate_last=timeout_last,
            local_rate=local_rate,
            throughput=throughput,
            probe_ok=self._probe_result,
            rtt_mean=rtt_mean,
            rtt_p95=rtt_p95,
            overload_rate=overload_rate,
            retry_rate=retry_rate,
            breaker_open=breaker_open,
        )

        self._bucket_offload_attempts = 0
        self._bucket_offload_success = 0
        self._bucket_local_done = 0
        self._bucket_timeouts = 0
        self._bucket_rtts = []
        return measurement

    # ------------------------------------------------------------------
    def qos_report(self, elapsed: Optional[float] = None) -> QosReport:
        """Whole-run QoS rollup for this device."""
        elapsed = elapsed if elapsed is not None else self.env.now
        mean_p = (
            float(self.traces.throughput.values.mean())
            if len(self.traces.throughput)
            else 0.0
        )
        mean_t = (
            float(self.traces.timeout_rate.values.mean())
            if len(self.traces.timeout_rate)
            else 0.0
        )
        extras = {
            "offload_successes": float(self.offload_successes),
            "local_successes": float(self.local_successes),
            "mean_cpu_utilization": (
                float(self.traces.cpu_utilization.values.mean())
                if len(self.traces.cpu_utilization)
                else 0.0
            ),
            "rtt_p50": self.rtt_histogram.quantile(0.5),
            "rtt_p95": self.rtt_histogram.quantile(0.95),
        }
        if self.resilience is not None:
            extras["breaker_opens"] = float(self.resilience.breaker.opened_count)
            extras["retries_sent"] = float(self.offload.retries)
            for kind, count in self.resilience.taxonomy.as_dict().items():
                extras[f"faults.{kind}"] = float(count)
        if self.router is not None:
            extras["fleet.failovers"] = float(self.offload.failovers)
            extras["fleet.crash_drops"] = float(self.offload.crash_drops)
            extras["fleet.no_routes"] = float(self.offload.no_routes)
            extras["fleet.outstanding"] = float(self.offload.outstanding_count)
            extras.update(self.router.pool.extras())
        for kind, count in self.input_guard.degraded_counts().items():
            extras[f"telemetry.{kind}"] = float(count)
        degraded = getattr(self.controller, "degraded_inputs", 0)
        if degraded:
            extras["telemetry.degraded_inputs"] = float(degraded)
        return QosReport(
            name=self.controller.name,
            total_frames=self.frames_seen,
            successful=self.successes,
            timeouts=self.timeouts,
            rejected=self.offload.rejections,
            dropped_local=self.local_skips,
            mean_throughput=mean_p,
            mean_violation_rate=mean_t,
            extras=extras,
        )
