"""Deterministic frame router: offload stream at rate ``P_o``, rest local.

The controller outputs a *rate* target; per frame the device needs a
*binary* decision.  A token bucket converts one into the other with
zero long-run error and the most even spacing possible: each frame adds
``P_o / F_s`` credit, and a full credit buys one offload.  (Even
spacing matters — bursty offload traffic would self-inflict queueing
delay the controller would then misread as congestion.)
"""

from __future__ import annotations


class TokenBucketSplitter:
    """Routes frames between offload and local deterministically."""

    def __init__(self, frame_rate: float) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.frame_rate = frame_rate
        self._target = 0.0
        self._credit = 0.0

    @property
    def target(self) -> float:
        """Current offload-rate target ``P_o`` (frames/s)."""
        return self._target

    def set_target(self, rate: float) -> None:
        """Set ``P_o``; values are clamped to [0, F_s]."""
        self._target = min(max(rate, 0.0), self.frame_rate)

    def route(self) -> bool:
        """Decide one frame: True = offload, False = local."""
        self._credit += self._target / self.frame_rate
        if self._credit >= 1.0 - 1e-9:
            self._credit -= 1.0
            return True
        return False

    def reset(self) -> None:
        self._credit = 0.0
