"""Local inference pipeline: one frame at a time, skip while busy.

§II-A.2's standing assumption is ``P_l < F_s``: the device cannot keep
up locally.  Real-time video pipelines deal with this by *frame
skipping* — a frame that arrives while the engine is busy is dropped,
not deeply queued (queueing would only add latency to already-stale
frames).  One frame *is* held pending, though: without a 1-deep
prefetch slot the engine would idle between the end of an inference
and the next camera tick and could never reach its measured rate
(Table II's ``P_l`` is continuous-processing throughput).  With the
slot, steady-state completion rate is ``min(local demand, P_l)``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.device.camera import Frame
from repro.models.latency import LocalLatencyModel
from repro.sim.core import Environment


class LocalPipeline:
    """Single-slot local inference engine."""

    def __init__(
        self,
        env: Environment,
        latency_model: LocalLatencyModel,
        rng: np.random.Generator,
        on_complete: Optional[Callable[[Frame, float], None]] = None,
        name: str = "local",
    ) -> None:
        self.env = env
        self.latency_model = latency_model
        self.rng = rng
        self.on_complete = on_complete
        self.name = name
        self.busy = False
        self.completed = 0
        self.skipped = 0
        self.busy_seconds = 0.0
        #: latency multiplier driven by fault injection (1.0 = healthy)
        self.slowdown = 1.0
        self._pending: Optional[Frame] = None

    def set_slowdown(self, factor: float) -> None:
        """Stretch local inference by ``factor`` (thermal throttling)."""
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.slowdown = float(factor)

    @property
    def can_accept(self) -> bool:
        """True when :meth:`offer` would take a frame right now."""
        return not self.busy or self._pending is None

    def offer(self, frame: Frame) -> bool:
        """Offer a frame; returns False (skipped) when engine + slot are full."""
        if self.busy:
            if self._pending is not None:
                self.skipped += 1
                return False
            self._pending = frame
            return True
        self.busy = True
        self.env.process(self._infer(frame), name=f"{self.name}:infer")
        return True

    def _infer(self, frame: Frame):
        while True:
            latency = self.latency_model.sample(self.rng) * self.slowdown
            yield self.env.sleep(latency)
            self.busy_seconds += latency
            self.completed += 1
            if self.on_complete is not None:
                self.on_complete(frame, latency)
            if self._pending is None:
                break
            frame, self._pending = self._pending, None
        self.busy = False

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of the inference engine over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)
