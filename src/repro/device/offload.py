"""Pipelined offload client with deadline bookkeeping.

§II-B: "an offloaded inference task is successful if its result
returns before its deadline" and "we consider pipelined offloading to
overlap frame processing".  So the client

* ships frames over the uplink *without* waiting for responses;
* starts a watchdog per frame: if no successful response has arrived
  by ``deadline`` seconds after capture, the frame counts toward the
  timeout rate ``T`` at that instant (this covers network drops, slow
  responses, *and* responses that never come);
* counts server rejections toward ``T`` the moment the rejection
  response arrives (§II-A.3 folds rejections into ``T_l``).

A late success (response after the deadline) is discarded: the frame
already counted as a violation and real-time results have no value
past their deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.device.camera import Frame
from repro.metrics.breakdown import BreakdownCollector, LatencySample
from repro.netem.link import Link
from repro.server.requests import InferenceRequest, Response
from repro.server.server import EdgeServer
from repro.sim.core import Environment


@dataclass
class _Outstanding:
    frame: Frame
    sent_at: float
    settled: bool = False
    is_probe: bool = False


class OffloadClient:
    """The device side of the offload path."""

    def __init__(
        self,
        env: Environment,
        uplink: Link,
        downlink: Link,
        server: EdgeServer,
        tenant: str,
        model_name: str,
        deadline: float,
        response_bytes: int,
        on_success: Callable[[Frame, float], None],
        on_timeout: Callable[[Frame, str], None],
        on_probe_result: Optional[Callable[[bool], None]] = None,
        breakdown: Optional[BreakdownCollector] = None,
    ) -> None:
        self.env = env
        self.uplink = uplink
        self.downlink = downlink
        self.server = server
        self.tenant = tenant
        self.model_name = model_name
        self.deadline = deadline
        self.response_bytes = response_bytes
        self.on_success = on_success
        self.on_timeout = on_timeout
        self.on_probe_result = on_probe_result
        #: optional omniscient-analysis collector (T_n/T_l attribution);
        #: never consulted by any controller — that is the paper's point
        self.breakdown = breakdown
        self._outstanding: Dict[int, _Outstanding] = {}
        #: frames already counted as violations whose attribution waits
        #: for a (late) response: frame_id -> (record, violation time)
        self._late_pending: Dict[int, tuple] = {}
        self.sent = 0
        self.probes_sent = 0
        self.successes = 0
        self.timeouts = 0
        self.rejections = 0
        #: end-to-end latency of the last successful offload (probe incl.)
        self.last_rtt: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def send(self, frame: Frame, is_probe: bool = False) -> None:
        """Ship one frame; non-blocking (pipelined)."""
        record = _Outstanding(frame=frame, sent_at=self.env.now, is_probe=is_probe)
        self._outstanding[frame.frame_id] = record
        if is_probe:
            self.probes_sent += 1
        else:
            self.sent += 1
        request = InferenceRequest(
            tenant=self.tenant,
            model_name=self.model_name,
            sent_at=self.env.now,
            payload_bytes=frame.nbytes,
            respond=self._on_server_response,
            frame_id=frame.frame_id,
            # deadline hint for DEADLINE_AWARE servers; note this
            # presumes synchronized clocks (the very machinery ATOMS
            # needs and the paper's design avoids) — the default FIFO
            # policy never reads it
            deadline_at=self.env.now + self.deadline,
        )
        # A dropped uplink send needs no special handling: the watchdog
        # will fire at the deadline, which is exactly what the real
        # system observes (silence).
        self.uplink.send(frame.nbytes, request, self.server.submit)
        self.env.process(self._watchdog(frame.frame_id), name="offload-watchdog")

    # ------------------------------------------------------------------
    def _on_server_response(self, response: Response) -> None:
        """Server-side completion: route the response down the link."""
        self.downlink.send(self.response_bytes, response, self._on_response_arrival)

    def _on_response_arrival(self, response: Response) -> None:
        record = self._outstanding.get(response.frame_id)
        if record is None or record.settled:
            self._attribute_late(response)
            return  # already counted as a timeout (late response)
        rtt = self.env.now - record.sent_at
        if self.breakdown is not None and not record.is_probe and response.ok:
            self.breakdown.record_response(
                LatencySample(
                    sent_at=record.sent_at,
                    uplink=max(0.0, response.arrived_at - record.sent_at),
                    server=max(0.0, response.completed_at - response.arrived_at),
                    downlink=max(0.0, self.env.now - response.completed_at),
                    ok=rtt <= self.deadline,
                ),
                at=self.env.now,
            )
        if response.ok and rtt <= self.deadline:
            self._settle(record, response.frame_id)
            self.last_rtt = rtt
            if record.is_probe:
                self._probe_done(True)
            else:
                self.successes += 1
                self.on_success(record.frame, rtt)
        elif not response.ok:
            # Rejection: a definitive failure, counted immediately.
            self._settle(record, response.frame_id)
            self.rejections += 1
            if record.is_probe:
                self._probe_done(False)
            else:
                if self.breakdown is not None:
                    self.breakdown.record_rejection(self.env.now)
                self.timeouts += 1
                self.on_timeout(record.frame, "rejected")
        # else: a successful response past the deadline — leave the
        # record for the watchdog (or it already fired).

    def _watchdog(self, frame_id: int):
        yield self.env.timeout(self.deadline)
        record = self._outstanding.get(frame_id)
        if record is None or record.settled:
            return
        self._settle(record, frame_id)
        if record.is_probe:
            self._probe_done(False)
            return
        self.timeouts += 1
        self.on_timeout(record.frame, "deadline")
        if self.breakdown is not None:
            # Attribution is deferred: a late response (if one ever
            # comes) tells us whether network or server ate the budget;
            # true silence is a network loss.
            self._late_pending[frame_id] = (record, self.env.now)
            self.env.process(self._attribution_grace(frame_id))

    def _attribution_grace(self, frame_id: int):
        yield self.env.timeout(max(4.0 * self.deadline, 1.0))
        pending = self._late_pending.pop(frame_id, None)
        if pending is not None:
            _record, violated_at = pending
            self.breakdown.record_silent_timeout(violated_at)

    def _attribute_late(self, response: Response) -> None:
        """A response for a frame already counted as violated."""
        pending = self._late_pending.pop(response.frame_id, None)
        if pending is None or self.breakdown is None:
            return
        record, violated_at = pending
        if response.ok:
            self.breakdown.record_response(
                LatencySample(
                    sent_at=record.sent_at,
                    uplink=max(0.0, response.arrived_at - record.sent_at),
                    server=max(0.0, response.completed_at - response.arrived_at),
                    downlink=max(0.0, self.env.now - response.completed_at),
                    ok=False,
                ),
                at=violated_at,
            )
        else:
            self.breakdown.record_rejection(violated_at)

    def _settle(self, record: _Outstanding, frame_id: int) -> None:
        record.settled = True
        self._outstanding.pop(frame_id, None)

    def _probe_done(self, ok: bool) -> None:
        if self.on_probe_result is not None:
            self.on_probe_result(ok)
