"""Pipelined offload client with deadline bookkeeping.

§II-B: "an offloaded inference task is successful if its result
returns before its deadline" and "we consider pipelined offloading to
overlap frame processing".  So the client

* ships frames over the uplink *without* waiting for responses;
* starts a watchdog per frame: if no successful response has arrived
  by ``deadline`` seconds after capture, the frame counts toward the
  timeout rate ``T`` at that instant (this covers network drops, slow
  responses, *and* responses that never come);
* counts server rejections toward ``T`` the moment the rejection
  response arrives (§II-A.3 folds rejections into ``T_l``).

A late success (response after the deadline) is discarded: the frame
already counted as a violation and real-time results have no value
past their deadline.

With a :class:`~repro.resilience.ResilienceLayer` attached the client
additionally

* hedges a retransmission once ``retry_after_frac`` of the deadline
  has passed with no reply (first response wins; the watchdog still
  anchors at the *original* send, so a retried frame gets no deadline
  extension);
* honours server overload pushback: an ``OVERLOADED`` response is
  retried after the server's ``retry_after`` hint when the remaining
  budget still admits a useful reply, and otherwise counts as a
  definitive failure immediately instead of burning the rest of the
  250 ms in silence;
* feeds every definitive outcome to the circuit breaker and the
  failure taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.device.camera import Frame
from repro.metrics.breakdown import BreakdownCollector, LatencySample
from repro.metrics.taxonomy import FailureKind
from repro.netem.link import Link
from repro.resilience.layer import ResilienceLayer
from repro.server.requests import InferenceRequest, Response
from repro.server.server import EdgeServer
from repro.sim.core import Environment
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.router import Router

#: remaining-deadline fraction below which a failover re-send is
#: pointless; matches ``ResilienceConfig.min_reply_frac`` so the fleet
#: tier makes the same budget call without requiring a resilience layer
FAILOVER_MIN_REPLY_FRAC = 0.3


@dataclass
class _Outstanding:
    frame: Frame
    sent_at: float
    settled: bool = False
    is_probe: bool = False
    #: retransmissions already spent on this frame
    retries: int = 0
    #: fleet failovers already spent on this frame (at most one)
    failovers: int = 0
    #: server the most recent copy was routed to (fleet mode only)
    server_name: Optional[str] = None
    #: per-send result hook (half-open trial probes); when set, the
    #: outcome goes here instead of the shared ``on_probe_result`` so
    #: breaker trials never pollute the controller's heartbeat signal
    on_result: Optional[Callable[[bool], None]] = None
    #: cancellable deadline / hedge timers (fast path only); retired in
    #: ``_settle`` the moment a definitive outcome lands
    watchdog: Optional[Event] = None
    hedge: Optional[Event] = None


class OffloadClient:
    """The device side of the offload path."""

    def __init__(
        self,
        env: Environment,
        uplink: Link,
        downlink: Link,
        server: EdgeServer,
        tenant: str,
        model_name: str,
        deadline: float,
        response_bytes: int,
        on_success: Callable[[Frame, float], None],
        on_timeout: Callable[[Frame, str], None],
        on_probe_result: Optional[Callable[[bool], None]] = None,
        breakdown: Optional[BreakdownCollector] = None,
        resilience: Optional[ResilienceLayer] = None,
        router: Optional["Router"] = None,
    ) -> None:
        self.env = env
        self.uplink = uplink
        self.downlink = downlink
        self.server = server
        self.tenant = tenant
        self.model_name = model_name
        self.deadline = deadline
        self.response_bytes = response_bytes
        self.on_success = on_success
        self.on_timeout = on_timeout
        self.on_probe_result = on_probe_result
        #: optional omniscient-analysis collector (T_n/T_l attribution);
        #: never consulted by any controller — that is the paper's point
        self.breakdown = breakdown
        #: optional resilient-path state (None = the paper's bare client)
        self.resilience = resilience
        #: optional fleet routing seam; when set, every attempt asks the
        #: router for a server and outcomes feed the pool's per-server
        #: health ledger instead of the device-wide breaker
        self.router = router
        self._outstanding: Dict[int, _Outstanding] = {}
        #: frames already counted as violations whose attribution waits
        #: for a (late) response: frame_id -> (record, violation time,
        #: resolution event for the grace process)
        self._late_pending: Dict[int, tuple] = {}
        self.sent = 0
        self.probes_sent = 0
        self.successes = 0
        self.timeouts = 0
        self.rejections = 0
        #: server overload-pushback responses received
        self.overloads = 0
        #: retransmissions placed on the wire
        self.retries = 0
        #: in-flight frames dropped on the floor by :meth:`abort_inflight`
        self.aborted = 0
        #: in-flight frames re-routed to a healthy server on ejection
        self.failovers = 0
        #: in-flight frames settled at ejection with no failover left
        self.crash_drops = 0
        #: attempts with no routable server (brownout/admission denial)
        self.no_routes = 0
        #: end-to-end latency of the last successful offload (probe incl.)
        self.last_rtt: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def abort_inflight(self) -> int:
        """Forget every in-flight frame without counting an outcome.

        Device-reboot semantics: the process that was waiting on these
        responses no longer exists, so the frames count as neither
        success nor timeout.  Each record's fast-path deadline watchdog
        and hedge timer are ``cancel()``-ed (keeping EnvStats cancel
        counts accurate); under ``REPRO_SIM_SLOWPATH=1`` the watchdog
        processes observe ``settled`` and return quietly.  Responses
        that arrive later hit the usual already-settled path and are
        discarded.  Returns the number of frames dropped.
        """
        dropped = 0
        tracer = self.env.tracer
        for frame_id in list(self._outstanding):
            record = self._outstanding.pop(frame_id)
            record.settled = True
            if record.watchdog is not None:
                record.watchdog.cancel()
                record.watchdog = None
            if record.hedge is not None:
                record.hedge.cancel()
                record.hedge = None
            self.aborted += 1
            dropped += 1
            if tracer is not None and not record.is_probe:
                now = self.env.now
                tracer.end_offload(self.tenant, frame_id, now, "aborted")
                tracer.finish_frame(self.tenant, frame_id, now, "aborted")
        return dropped

    def send(
        self,
        frame: Frame,
        is_probe: bool = False,
        on_result: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Ship one frame; non-blocking (pipelined)."""
        record = _Outstanding(
            frame=frame,
            sent_at=self.env.now,
            is_probe=is_probe,
            on_result=on_result,
        )
        self._outstanding[frame.frame_id] = record
        if is_probe:
            self.probes_sent += 1
        else:
            self.sent += 1
        tracer = self.env.tracer
        if tracer is not None:
            # Probe frames were never registered at capture, so every
            # tracer hook key-misses into a no-op for them.
            tracer.begin_offload(self.tenant, frame.frame_id, self.env.now)
        self._transmit(record, initial=True)
        env = self.env
        r = self.resilience
        hedged = r is not None and not is_probe and r.config.max_retries > 0
        if env.slowpath:
            env.process(self._watchdog(frame.frame_id), name="offload-watchdog")
            if hedged:
                env.process(self._retry_timer(frame.frame_id), name="offload-hedge")
        else:
            # Fast path: one cancellable heap entry per timer instead of
            # a process + init event + timeout each — and both timers
            # are retired for O(1) in _settle when the response wins.
            record.watchdog = env.call_later(
                self.deadline, self._watchdog_fire, value=frame.frame_id
            )
            if hedged:
                record.hedge = env.call_later(
                    r.config.retry_after_frac * self.deadline,
                    self._hedge_fire,
                    value=frame.frame_id,
                )

    def _transmit(
        self,
        record: _Outstanding,
        server: Optional[EdgeServer] = None,
        initial: bool = False,
    ) -> None:
        """Put one copy of the frame on the uplink (send or re-send).

        ``server`` pins the target (failover path); otherwise the
        router picks one, or the fixed single server is used.  When the
        router has nothing routable, the *initial* send settles as a
        no-route failure immediately; a blocked re-send just stays
        outstanding — an earlier copy may still answer, and the
        watchdog guards the deadline either way.
        """
        target = server
        if target is None:
            if self.router is not None:
                target = self.router.route(self.model_name)
                if target is None:
                    self._no_route(record, settle=initial)
                    return
            else:
                target = self.server
        if self.router is not None:
            record.server_name = target.name
        frame = record.frame
        request = InferenceRequest(
            tenant=self.tenant,
            model_name=self.model_name,
            sent_at=self.env.now,
            payload_bytes=frame.nbytes,
            respond=self._on_server_response,
            frame_id=frame.frame_id,
            attempt=record.retries + record.failovers,
            # deadline hint for DEADLINE_AWARE servers, anchored at the
            # *original* send; note this presumes synchronized clocks
            # (the very machinery ATOMS needs and the paper's design
            # avoids) — the default FIFO policy never reads it
            deadline_at=record.sent_at + self.deadline,
        )
        # A dropped uplink send needs no special handling: the watchdog
        # will fire at the deadline, which is exactly what the real
        # system observes (silence).
        self.uplink.send(frame.nbytes, request, target.submit)

    # ------------------------------------------------------------------
    # fleet failover
    # ------------------------------------------------------------------
    def failover_from(self, dead: str) -> int:
        """Sweep in-flight frames off an ejected server.

        Called by the device when the pool ejects ``dead``.  Every
        outstanding record whose latest copy targeted that server
        either fails over *exactly once* to a healthy server — only
        when the remaining deadline budget still admits a useful reply
        (the watchdog stays anchored at the original send: no deadline
        extension) — or settles as crash-dropped right now instead of
        burning the rest of its deadline in silence.  Returns the
        number of frames re-routed.
        """
        router = self.router
        if router is None:
            return 0
        min_frac = (
            self.resilience.config.min_reply_frac
            if self.resilience is not None
            else FAILOVER_MIN_REPLY_FRAC
        )
        now = self.env.now
        moved = 0
        for frame_id in list(self._outstanding):
            record = self._outstanding.get(frame_id)
            if record is None or record.settled or record.server_name != dead:
                continue
            remaining = record.sent_at + self.deadline - now
            target = None
            if (
                router.failover_enabled
                and record.failovers == 0
                and remaining >= min_frac * self.deadline
            ):
                target = router.route(self.model_name, exclude=dead)
            if target is None:
                self._crash_drop(record)
                continue
            record.failovers += 1
            self.failovers += 1
            moved += 1
            if self.resilience is not None:
                self.resilience.record(FailureKind.FAILED_OVER)
            router.record_failover(dead, target.name)
            tracer = self.env.tracer
            if tracer is not None and not record.is_probe:
                tracer.event(
                    now, "fleet.failover",
                    frame=frame_id, src=dead, dst=target.name,
                )
            self._transmit(record, server=target)
        return moved

    def _crash_drop(self, record: _Outstanding) -> None:
        """Settle an in-flight frame lost to its server's crash."""
        frame_id = record.frame.frame_id
        self._settle(record, frame_id)
        self.crash_drops += 1
        if self.resilience is not None:
            self.resilience.record(FailureKind.CRASH_DROPPED)
        if record.is_probe:
            self._probe_done(record, False)
            return
        self.timeouts += 1
        tracer = self.env.tracer
        if tracer is not None:
            now = self.env.now
            tracer.end_offload(self.tenant, frame_id, now, "crash")
            tracer.finish_frame(self.tenant, frame_id, now, "crash-dropped")
        self.on_timeout(record.frame, "crash")

    def _no_route(self, record: _Outstanding, settle: bool) -> None:
        """No healthy server admitted the attempt."""
        self.no_routes += 1
        if self.resilience is not None:
            self.resilience.record(FailureKind.NO_ROUTE)
        if not settle or record.settled:
            return
        frame_id = record.frame.frame_id
        self._settle(record, frame_id)
        if record.is_probe:
            self._probe_done(record, False)
            return
        self.timeouts += 1
        tracer = self.env.tracer
        if tracer is not None:
            now = self.env.now
            tracer.end_offload(self.tenant, frame_id, now, "no-route")
            tracer.finish_frame(
                self.tenant, frame_id, now, "timeout", cause="no-route"
            )
        self.on_timeout(record.frame, "no-route")

    # ------------------------------------------------------------------
    # deadline-budgeted retransmission
    # ------------------------------------------------------------------
    def _retry_timer(self, frame_id: int):
        """Hedge: re-send once ``retry_after_frac`` of the budget is gone."""
        yield self.env.timeout(
            self.resilience.config.retry_after_frac * self.deadline
        )
        self._hedge_expired(frame_id)

    def _hedge_fire(self, event: Event) -> None:
        """call_later body of the fast-path hedge timer."""
        self._hedge_expired(event.value)

    def _hedge_expired(self, frame_id: int) -> None:
        record = self._outstanding.get(frame_id)
        if record is None or record.settled:
            return
        self._maybe_retry(record)

    def _maybe_retry(self, record: _Outstanding, wait: float = 0.0) -> bool:
        """Try to spend a retransmission on ``record``.

        ``wait`` defers the re-send (server retry-after hint).  Returns
        True when a retry was committed — the caller must then leave
        the record outstanding for the watchdog to guard.
        """
        r = self.resilience
        if r is None or record.retries >= r.config.max_retries:
            return False
        if not r.breaker.is_closed:
            # the breaker already declared the path dead; retries there
            # are exactly the amplification it exists to prevent
            return False
        now = self.env.now
        remaining = record.sent_at + self.deadline - (now + wait)
        if remaining < r.config.min_reply_frac * self.deadline:
            r.record(FailureKind.RETRY_WINDOW_CLOSED)
            return False
        if not r.retry_budget.try_acquire(now):
            r.record(FailureKind.RETRY_DENIED)
            return False
        record.retries += 1
        self.retries += 1
        r.record(FailureKind.RETRY_SENT)
        if wait > 0:
            self.env.process(
                self._deferred_resend(record.frame.frame_id, wait),
                name="offload-retry",
            )
        else:
            self._transmit(record)
        return True

    def _deferred_resend(self, frame_id: int, wait: float):
        yield self.env.timeout(wait)
        record = self._outstanding.get(frame_id)
        if record is None or record.settled:
            return  # a response (or the watchdog) beat the hint
        self._transmit(record)

    # ------------------------------------------------------------------
    def _on_server_response(self, response: Response) -> None:
        """Server-side completion: route the response down the link."""
        self.downlink.send(self.response_bytes, response, self._on_response_arrival)

    def _on_response_arrival(self, response: Response) -> None:
        record = self._outstanding.get(response.frame_id)
        if record is None or record.settled:
            self._attribute_late(response)
            return  # already counted as a timeout (late response)
        rtt = self.env.now - record.sent_at
        if self.breakdown is not None and not record.is_probe and response.ok:
            self.breakdown.record_response(
                LatencySample(
                    sent_at=record.sent_at,
                    uplink=max(0.0, response.arrived_at - record.sent_at),
                    server=max(0.0, response.completed_at - response.arrived_at),
                    downlink=max(0.0, self.env.now - response.completed_at),
                    ok=rtt <= self.deadline,
                ),
                at=self.env.now,
            )
        tracer = self.env.tracer
        if response.ok and rtt <= self.deadline:
            self._settle(record, response.frame_id)
            self.last_rtt = rtt
            self._record_path_outcome(record, ok=True)
            if record.is_probe:
                self._probe_done(record, True)
            else:
                self.successes += 1
                if tracer is not None:
                    now = self.env.now
                    tracer.end_offload(
                        self.tenant, response.frame_id, now, "ok", rtt=rtt
                    )
                    tracer.finish_frame(
                        self.tenant, response.frame_id, now, "completed-offload"
                    )
                self.on_success(record.frame, rtt)
        elif response.overloaded:
            # Explicit pushback: the server is saturated but alive.
            self.overloads += 1
            r = self.resilience
            if r is not None:
                r.note_overload(response.retry_after)
                r.record(FailureKind.OVERLOADED)
                if not record.is_probe and self._maybe_retry(
                    record, wait=response.retry_after or 0.0
                ):
                    return  # still outstanding; the watchdog guards it
            # No retry possible: a definitive failure *now* — don't
            # burn the rest of the deadline waiting for nothing.
            self._settle(record, response.frame_id)
            self._record_path_outcome(
                record, ok=False, retry_after=response.retry_after
            )
            if record.is_probe:
                self._probe_done(record, False)
            else:
                if self.breakdown is not None:
                    self.breakdown.record_rejection(self.env.now)
                self.timeouts += 1
                if tracer is not None:
                    now = self.env.now
                    tracer.end_offload(
                        self.tenant, response.frame_id, now, "overloaded"
                    )
                    tracer.finish_frame(
                        self.tenant, response.frame_id, now, "timeout",
                        cause="overloaded",
                    )
                self.on_timeout(record.frame, "overloaded")
        elif not response.ok:
            # Rejection: a definitive failure, counted immediately.
            self._settle(record, response.frame_id)
            if self.resilience is not None:
                self.resilience.record(FailureKind.REJECTED)
            self.rejections += 1
            self._record_path_outcome(record, ok=False)
            if record.is_probe:
                self._probe_done(record, False)
            else:
                if self.breakdown is not None:
                    self.breakdown.record_rejection(self.env.now)
                self.timeouts += 1
                if tracer is not None:
                    now = self.env.now
                    tracer.end_offload(
                        self.tenant, response.frame_id, now, "rejected"
                    )
                    tracer.finish_frame(
                        self.tenant, response.frame_id, now, "rejected"
                    )
                self.on_timeout(record.frame, "rejected")
        # else: a successful response past the deadline — leave the
        # record for the watchdog (or it already fired).

    def _watchdog(self, frame_id: int):
        yield self.env.timeout(self.deadline)
        self._watchdog_expired(frame_id)

    def _watchdog_fire(self, event: Event) -> None:
        """call_later body of the fast-path deadline watchdog."""
        self._watchdog_expired(event.value)

    def _watchdog_expired(self, frame_id: int) -> None:
        record = self._outstanding.get(frame_id)
        if record is None or record.settled:
            return
        self._settle(record, frame_id)
        if self.resilience is not None:
            self.resilience.record(FailureKind.SILENT_TIMEOUT)
        self._record_path_outcome(record, ok=False)
        if record.is_probe:
            self._probe_done(record, False)
            return
        self.timeouts += 1
        tracer = self.env.tracer
        if tracer is not None:
            now = self.env.now
            tracer.end_offload(self.tenant, frame_id, now, "timeout")
            tracer.finish_frame(
                self.tenant, frame_id, now, "timeout", cause="deadline"
            )
        self.on_timeout(record.frame, "deadline")
        if self.breakdown is not None:
            # Attribution is deferred: a late response (if one ever
            # comes) tells us whether network or server ate the budget;
            # true silence is a network loss.
            resolved = self.env.event()
            self._late_pending[frame_id] = (record, self.env.now, resolved)
            self.env.process(self._attribution_grace(frame_id, resolved))

    def _attribution_grace(self, frame_id: int, resolved):
        # Wake early if a late response already resolved attribution —
        # otherwise a grace sleep per silent frame keeps the event heap
        # (and wall-clock drain time) needlessly inflated.
        yield self.env.timeout(max(4.0 * self.deadline, 1.0)) | resolved
        pending = self._late_pending.pop(frame_id, None)
        if pending is not None:
            _record, violated_at, _resolved = pending
            self.breakdown.record_silent_timeout(violated_at)

    def _attribute_late(self, response: Response) -> None:
        """A response for a frame already counted as violated."""
        pending = self._late_pending.pop(response.frame_id, None)
        if pending is None or self.breakdown is None:
            return
        record, violated_at, resolved = pending
        if not resolved.triggered:
            resolved.succeed()
        if response.ok:
            self.breakdown.record_response(
                LatencySample(
                    sent_at=record.sent_at,
                    uplink=max(0.0, response.arrived_at - record.sent_at),
                    server=max(0.0, response.completed_at - response.arrived_at),
                    downlink=max(0.0, self.env.now - response.completed_at),
                    ok=False,
                ),
                at=violated_at,
            )
        else:
            self.breakdown.record_rejection(violated_at)

    def _settle(self, record: _Outstanding, frame_id: int) -> None:
        record.settled = True
        self._outstanding.pop(frame_id, None)
        # Retire the frame's timers; cancel() is a no-op (False) for the
        # timer whose own firing brought us here.
        if record.watchdog is not None:
            record.watchdog.cancel()
            record.watchdog = None
        if record.hedge is not None:
            record.hedge.cancel()
            record.hedge = None

    def _record_path_outcome(
        self,
        record: _Outstanding,
        ok: bool,
        retry_after: Optional[float] = None,
    ) -> None:
        """Feed a definitive outcome to the circuit breaker.

        Half-open trial probes (``on_result`` set) are excluded: their
        verdicts flow through :meth:`CircuitBreaker.record_probe` via
        the device's probe loop, not the data-path counters.

        In fleet mode the per-server health ledger replaces the
        device-wide breaker: outcomes feed the pool (which ejects a
        server after ``fail_threshold`` consecutive failures — its own
        breaker, with probation as the half-open state) and the breaker
        never engages.
        """
        if self.router is not None:
            if record.server_name is not None:
                self.router.record_result(
                    record.server_name, ok,
                    rtt=self.last_rtt if ok else None,
                )
            return
        r = self.resilience
        if r is None or record.on_result is not None:
            return
        if ok:
            r.breaker.record_success(self.env.now)
        else:
            r.breaker.record_failure(self.env.now, retry_after=retry_after)

    def _probe_done(self, record: _Outstanding, ok: bool) -> None:
        if record.on_result is not None:
            record.on_result(ok)
        elif self.on_probe_result is not None:
            self.on_probe_result(ok)
