"""The retry token bucket: retries may help, amplification never does.

Token-bucket-constrained offloading (Chakrabarti et al.,
arXiv:2010.13737) budgets *when* a frame may be (re)transmitted; this
is that idea applied to the failure path only.  During a healthy run
the bucket stays full and every eligible retry is granted; during an
outage the bucket drains after ``burst`` retries and thereafter meters
them at ``rate`` — so the wire sees at most ``rate`` extra frames/s no
matter how many frames are failing.
"""

from __future__ import annotations


class RetryBudget:
    """Continuous-refill token bucket gating retransmissions."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated_at = 0.0
        self.granted = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        if now < self._updated_at:
            raise ValueError(
                f"time went backwards: {now} < {self._updated_at}"
            )
        self._tokens = min(self.burst, self._tokens + (now - self._updated_at) * self.rate)
        self._updated_at = now

    def tokens(self, now: float) -> float:
        """Tokens available at ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._tokens

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means deny."""
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        self._refill(now)
        if self._tokens + 1e-12 >= cost:
            self._tokens -= cost
            self.granted += 1
            return True
        self.denied += 1
        return False
