"""Every knob of the resilient offload path, in one validated record.

Defaults are tuned for the paper's evaluation point (30 fps source,
250 ms deadline, 1 s control period) and follow two budget arguments:

* **Retry budget.**  A retransmission is only worth sending while the
  remaining deadline budget still admits a useful reply, so the retry
  fires at ``retry_after_frac`` of the deadline (125 ms by default —
  half the budget gone with no response is already a strong loss
  signal) and is suppressed when less than ``min_reply_frac`` of the
  deadline would remain at transmission time.  A token bucket
  (``retry_budget_rate``/``retry_budget_burst``) caps the *aggregate*
  retry rate so an outage can never amplify into a send storm: at the
  defaults, retries add at most 3 frames/s sustained — 10 % of the
  source rate, the same fraction the paper already reserves for its
  standing probe.
* **Breaker economics.**  Each frame sent into a dead path costs a
  full 250 ms of silence.  After ``trip_threshold`` consecutive
  failures the expected value of further attempts is negative, so the
  breaker opens and frames take the local fallback instead.  Re-probes
  back off exponentially (``backoff_initial`` doubling to
  ``backoff_max``), which bounds both probe waste during a long outage
  and the re-close delay after healing (one ``backoff_max`` in the
  worst case).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResilienceConfig:
    """Configuration for :class:`~repro.resilience.ResilienceLayer`."""

    # --- deadline-budgeted retransmission ------------------------------
    #: fraction of the deadline to wait before the hedged retransmit
    #: (the original may still be in flight; first response wins)
    retry_after_frac: float = 0.5
    #: minimum remaining deadline fraction for a retry to be worth it
    min_reply_frac: float = 0.3
    #: retransmissions allowed per frame
    max_retries: int = 1
    #: sustained retry rate the token bucket refills at (retries/s)
    retry_budget_rate: float = 3.0
    #: burst capacity of the retry token bucket (tokens)
    retry_budget_burst: float = 6.0

    # --- circuit breaker ----------------------------------------------
    #: consecutive offload failures that trip the breaker open
    trip_threshold: int = 5
    #: first half-open probe delay after tripping (seconds)
    backoff_initial: float = 0.5
    #: backoff growth factor per failed half-open probe
    backoff_multiplier: float = 2.0
    #: backoff ceiling (seconds); also bounds re-close delay post-heal
    backoff_max: float = 8.0
    #: consecutive successful probes required to close again
    close_after: int = 1
    #: ``P_o`` target (as a fraction of ``F_s``) held while the breaker
    #: is open — the paper's 0.1 F_s standing probe, now owned by the
    #: resilience layer because the controller no longer sees failures
    #: (its frames are being saved by the local fallback)
    open_target_frac: float = 0.1

    @classmethod
    def wallclock(cls) -> "ResilienceConfig":
        """Preset for wall-clock gateway clients (:mod:`repro.realtime`).

        Same state machine, faster clock: a wall-clock chaos run lasts
        seconds rather than simulated minutes, so the breaker trips a
        hair earlier and the probe backoff ceiling drops from 8 s to
        2 s — otherwise a single failed probe could park the breaker
        open for longer than the whole run, and the re-close invariant
        would be untestable inside a CI-sized window.
        """
        return cls(
            trip_threshold=4,
            backoff_initial=0.3,
            backoff_max=2.0,
            close_after=1,
        )

    def __post_init__(self) -> None:
        if not 0.0 < self.retry_after_frac < 1.0:
            raise ValueError(
                f"retry_after_frac must be in (0, 1), got {self.retry_after_frac}"
            )
        if not 0.0 <= self.min_reply_frac < 1.0:
            raise ValueError(
                f"min_reply_frac must be in [0, 1), got {self.min_reply_frac}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_budget_rate <= 0 or self.retry_budget_burst <= 0:
            raise ValueError("retry budget rate and burst must be positive")
        if self.trip_threshold < 1:
            raise ValueError(f"trip_threshold must be >= 1, got {self.trip_threshold}")
        if self.backoff_initial <= 0:
            raise ValueError("backoff_initial must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_max < self.backoff_initial:
            raise ValueError("backoff_max must be >= backoff_initial")
        if self.close_after < 1:
            raise ValueError(f"close_after must be >= 1, got {self.close_after}")
        if not 0.0 < self.open_target_frac < 1.0:
            raise ValueError(
                f"open_target_frac must be in (0, 1), got {self.open_target_frac}"
            )
