"""Circuit breaker for the offload path.

State machine::

    CLOSED ──(trip_threshold consecutive failures)──▶ OPEN
    OPEN ──(backoff elapsed, trial probe sent)──▶ HALF_OPEN
    HALF_OPEN ──(probe ok × close_after)──▶ CLOSED   (backoff reset)
    HALF_OPEN ──(probe failed)──▶ OPEN               (backoff doubled)

While not CLOSED, the device routes offload-designated frames straight
to the local pipeline, so a dead path costs zero per-frame 250 ms
stalls beyond the frames that tripped the breaker.  The breaker is
deliberately simulation-free — every method takes ``now`` explicitly —
so the state machine is unit-testable without an event loop and
reusable by :mod:`repro.realtime`.

A server overload hint (``retry-after``) can seed the first backoff:
"the server told us when to come back" beats a blind initial delay.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple

from repro.resilience.config import ResilienceConfig


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with exponential half-open backoff."""

    def __init__(self, config: Optional[ResilienceConfig] = None) -> None:
        self.config = config or ResilienceConfig()
        self.state = BreakerState.CLOSED
        self.current_backoff = self.config.backoff_initial
        #: every state change as ``(time, state)``, in order
        self.transitions: List[Tuple[float, BreakerState]] = []
        #: times at which half-open trial probes were launched
        self.probe_times: List[float] = []
        #: invoked once per CLOSED->OPEN trip (the device hooks its
        #: half-open probe loop here)
        self.on_open: Optional[Callable[[], None]] = None
        self.opened_count = 0
        self._consecutive_failures = 0
        self._probe_successes = 0

    # ------------------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        return self.state is BreakerState.CLOSED

    @property
    def is_open(self) -> bool:
        return self.state is BreakerState.OPEN

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def state_value(self) -> float:
        """Numeric encoding for traces: 0 closed, 0.5 half-open, 1 open."""
        return {
            BreakerState.CLOSED: 0.0,
            BreakerState.HALF_OPEN: 0.5,
            BreakerState.OPEN: 1.0,
        }[self.state]

    # ------------------------------------------------------------------
    # data-path outcomes (CLOSED bookkeeping only; stragglers that
    # settle after the trip must not re-trip or close anything)
    # ------------------------------------------------------------------
    def record_success(self, now: float) -> None:
        if self.state is BreakerState.CLOSED:
            self._consecutive_failures = 0

    def record_failure(self, now: float, retry_after: Optional[float] = None) -> None:
        if self.state is not BreakerState.CLOSED:
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.config.trip_threshold:
            self._trip(now, retry_after)

    # ------------------------------------------------------------------
    # half-open probe protocol (driven by the device's probe loop)
    # ------------------------------------------------------------------
    def on_probe_sent(self, now: float) -> None:
        """A trial probe just left; OPEN becomes HALF_OPEN."""
        if self.state is BreakerState.CLOSED:
            raise RuntimeError("half-open probe sent while breaker closed")
        self.probe_times.append(now)
        if self.state is BreakerState.OPEN:
            self._transition(now, BreakerState.HALF_OPEN)

    def record_probe(self, ok: bool, now: float) -> None:
        """Outcome of the trial probe: close, or reopen with backoff."""
        if self.state is not BreakerState.HALF_OPEN:
            return
        if ok:
            self._probe_successes += 1
            if self._probe_successes >= self.config.close_after:
                self._close(now)
            return
        self._probe_successes = 0
        self.current_backoff = min(
            self.current_backoff * self.config.backoff_multiplier,
            self.config.backoff_max,
        )
        self._transition(now, BreakerState.OPEN)

    # ------------------------------------------------------------------
    # checkpointing (supervision layer)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able copy of the protection-relevant state.

        The transitions/probe histories are run-scoped observability,
        not protection state, and are deliberately excluded — a warm
        restart must not resurrect another run's trace.
        """
        return {
            "state": self.state.value,
            "current_backoff": self.current_backoff,
            "consecutive_failures": self._consecutive_failures,
            "probe_successes": self._probe_successes,
        }

    def restore(self, state: dict, now: float) -> None:
        """Reinstate a :meth:`snapshot` at time ``now``.

        Restoring a non-CLOSED state is logged as a transition at
        ``now`` (so traces stay consistent) and fires ``on_open`` so
        the owner re-arms its half-open probe loop — the old probe
        loop died with the crashed process.
        """
        target = BreakerState(state["state"])
        self.current_backoff = min(
            max(float(state["current_backoff"]), 0.0), self.config.backoff_max
        )
        self._consecutive_failures = int(state["consecutive_failures"])
        self._probe_successes = int(state["probe_successes"])
        if target is not self.state:
            self._transition(now, target)
        if target is not BreakerState.CLOSED and self.on_open is not None:
            self.on_open()

    # ------------------------------------------------------------------
    def _trip(self, now: float, retry_after: Optional[float]) -> None:
        self.opened_count += 1
        self._consecutive_failures = 0
        self._probe_successes = 0
        self.current_backoff = self.config.backoff_initial
        if retry_after is not None and retry_after > 0:
            # the server scheduled our comeback; don't probe earlier
            self.current_backoff = min(
                max(self.current_backoff, float(retry_after)),
                self.config.backoff_max,
            )
        self._transition(now, BreakerState.OPEN)
        if self.on_open is not None:
            self.on_open()

    def _close(self, now: float) -> None:
        self._consecutive_failures = 0
        self._probe_successes = 0
        self.current_backoff = self.config.backoff_initial
        self._transition(now, BreakerState.CLOSED)

    def _transition(self, now: float, state: BreakerState) -> None:
        self.state = state
        self.transitions.append((now, state))
