"""Resilient offload path: active defenses under the control loop.

The paper leans on the controller alone to absorb failures — every
timeout folds into ``T`` and the control law backs ``P_o`` off one
period later.  That leaves three gaps this package closes:

* a frame lost to the network stalls the pipeline for the full 250 ms
  deadline before anyone reacts → **deadline-budgeted retransmission**
  (:class:`RetryBudget` gating hedged re-sends while a useful reply is
  still possible);
* during a total outage *every* offloaded frame pays that stall →
  a **circuit breaker** (:class:`CircuitBreaker`) that trips after a
  few consecutive failures, routes frames to the local pipeline, and
  re-probes with exponential backoff;
* a bare rejection is indistinguishable from a dead link → **server
  overload pushback** (``RequestOutcome.OVERLOADED`` + retry-after,
  see :mod:`repro.server.requests`), classified by the
  :class:`~repro.metrics.taxonomy.FailureTaxonomy`.

Enable it per device via
``DeviceConfig(resilience=ResilienceConfig())``; chaos runs flip it on
with ``ChaosScenario(resilience=...)`` or ``repro chaos --resilience``.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.budget import RetryBudget
from repro.resilience.config import ResilienceConfig
from repro.resilience.layer import ResilienceLayer

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResilienceLayer",
    "RetryBudget",
]
