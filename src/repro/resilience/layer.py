"""The per-device bundle of resilience state.

One :class:`ResilienceLayer` is shared by the
:class:`~repro.device.device.EdgeDevice` (breaker-aware routing,
half-open probe loop, measurement integration) and its
:class:`~repro.device.offload.OffloadClient` (retransmissions, outcome
classification).  It owns no processes itself — the device drives it —
which keeps every piece independently unit-testable.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.taxonomy import FailureKind, FailureTaxonomy
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import RetryBudget
from repro.resilience.config import ResilienceConfig


class ResilienceLayer:
    """Breaker + retry budget + failure taxonomy for one device."""

    def __init__(self, config: ResilienceConfig, frame_rate: float) -> None:
        if frame_rate <= 0:
            raise ValueError(f"frame rate must be positive, got {frame_rate}")
        self.config = config
        self.frame_rate = frame_rate
        self.breaker = CircuitBreaker(config)
        self.retry_budget = RetryBudget(
            rate=config.retry_budget_rate, burst=config.retry_budget_burst
        )
        self.taxonomy = FailureTaxonomy()
        #: most recent server retry-after hint (None until one arrives)
        self.last_retry_after: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def open_target(self) -> float:
        """``P_o`` held while the breaker is not closed (standing probe)."""
        return self.config.open_target_frac * self.frame_rate

    def note_overload(self, retry_after: Optional[float]) -> None:
        """Remember the server's latest pushback hint."""
        if retry_after is not None and retry_after >= 0:
            self.last_retry_after = float(retry_after)

    def record(self, kind: FailureKind, count: int = 1) -> None:
        self.taxonomy.record(kind, count)
