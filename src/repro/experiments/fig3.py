"""Figure 3: controller comparison under the Table V network schedule.

4,000 frames at 30 fps (~133 s) per controller; NetEm-style schedule
degrades bandwidth/loss at the Table V boundaries.  The paper's
reading of its own figure, which the reproduction should recover:

* all offloading controllers match under very good (bw=10) conditions;
* under intermediate conditions (bw=4, and bw=10 + 7 % loss)
  FrameFeedback finds a supportable partial rate and beats the
  all-or-nothing baseline by ~1.5–3x;
* under hopeless conditions (bw=1) FrameFeedback ≈ LocalOnly while
  AlwaysOffload collapses to ~0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.device.config import DeviceConfig
from repro.experiments.scenario import RunResult, Scenario, run_scenario
from repro.experiments.standard import ControllerFactory, standard_controllers
from repro.metrics.qos import PhaseSummary, summarize_phases
from repro.metrics.timeseries import TimeSeries
from repro.workloads.schedules import TABLE_V_NETWORK, table_v_schedule

PHASE_LABELS = (
    "bw=10 loss=0",
    "bw=4  loss=0",
    "bw=1  loss=0",
    "bw=10 loss=0",
    "bw=10 loss=7%",
    "bw=4  loss=7%",
)


@dataclass
class Fig3Result:
    """Per-controller run results plus the per-phase summary."""

    runs: Dict[str, RunResult]
    phases: List[PhaseSummary]
    duration: float

    @property
    def throughput(self) -> Dict[str, TimeSeries]:
        return {name: run.traces.throughput for name, run in self.runs.items()}

    @property
    def framefeedback_offload(self) -> TimeSeries:
        """The light P_o series the paper overlays for FrameFeedback."""
        return self.runs["FrameFeedback"].traces.offload_target


def run_fig3(
    seed: int = 0,
    total_frames: int = 4000,
    controllers: Optional[Dict[str, ControllerFactory]] = None,
) -> Fig3Result:
    """Run the Fig 3 experiment for every controller (same seed)."""
    device = DeviceConfig(total_frames=total_frames)
    duration = device.stream_duration + 1.0
    controllers = controllers or standard_controllers()
    runs: Dict[str, RunResult] = {}
    for name, factory in controllers.items():
        scenario = Scenario(
            controller_factory=factory,
            device=device,
            network=table_v_schedule(),
            duration=duration,
            seed=seed,
        )
        runs[name] = run_scenario(scenario)
    phases = summarize_phases(
        {name: run.traces.throughput for name, run in runs.items()},
        boundaries=[row[0] for row in TABLE_V_NETWORK],
        end=duration,
        labels=PHASE_LABELS,
    )
    return Fig3Result(runs=runs, phases=phases, duration=duration)
