"""Process-parallel experiment execution.

Sweeps (seed grids, gain grids, scenario matrices) are embarrassingly
parallel: every run is an independent, deterministic function of its
config.  This module fans runs out over a process pool.

Because controller factories are closures (not picklable), jobs travel
as the *declarative* scenario dicts of :mod:`repro.io.config`; each
worker rebuilds its scenario and returns a picklable
:class:`RunSummary` (QoS scalars + requested trace arrays), never the
full RunResult.

Usage::

    from repro.experiments.parallel import run_many, seed_sweep_configs

    configs = seed_sweep_configs(base_config, seeds=range(16))
    summaries = run_many(configs, workers=8)

Falls back to in-process execution for ``workers=1`` (and transparently
in environments where process pools are unavailable), so callers never
need two code paths.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


@dataclass
class RunSummary:
    """Picklable subset of a RunResult."""

    config: dict
    controller: str
    seed: int
    mean_throughput: float
    mean_violation_rate: float
    successful: int
    timeouts: int
    total_frames: int
    traces: Dict[str, np.ndarray] = field(default_factory=dict)


#: trace names a job may request (keep the IPC payload bounded)
TRACE_NAMES = (
    "throughput",
    "offload_target",
    "offload_rate",
    "timeout_rate",
    "local_rate",
    "capture_quality",
)


def execute_config(config: dict, trace_names: Sequence[str] = ()) -> RunSummary:
    """Run one serialized scenario (the worker entry point)."""
    from repro.experiments.scenario import run_scenario
    from repro.io.config import scenario_from_dict

    unknown = set(trace_names) - set(TRACE_NAMES)
    if unknown:
        raise ValueError(f"unknown trace names: {sorted(unknown)}")

    scenario = scenario_from_dict(config)
    result = run_scenario(scenario)
    traces = {
        name: np.asarray(getattr(result.traces, name).values)
        for name in trace_names
    }
    return RunSummary(
        config=config,
        controller=result.controller_name,
        seed=scenario.seed,
        mean_throughput=result.qos.mean_throughput,
        mean_violation_rate=result.qos.mean_violation_rate,
        successful=result.qos.successful,
        timeouts=result.qos.timeouts,
        total_frames=result.qos.total_frames,
        traces=traces,
    )


def map_jobs(fn, jobs: Sequence, workers: Optional[int] = None) -> List:
    """Ordered process-pool map with the sandboxed-environment fallback.

    ``fn`` must be a picklable module-level function of one picklable
    argument.  Results come back in the order of ``jobs`` regardless of
    completion order, so parallel sweeps stay deterministic; in
    fork-restricted environments (or for ``workers=1``) execution is
    transparently in-process.  Shared by the experiment sweeps here and
    the adversarial scenario search (:mod:`repro.search.runner`).
    """
    if not jobs:
        return []
    if workers is None:
        workers = min(len(jobs), os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    if workers == 1 or len(jobs) == 1:
        return [fn(job) for job in jobs]

    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, job) for job in jobs]
            return [f.result() for f in futures]
    except (OSError, PermissionError):  # sandboxed / fork-restricted envs
        return [fn(job) for job in jobs]


def _execute_job(job: tuple) -> RunSummary:
    """Pool entry point for :func:`run_many` (picklable wrapper)."""
    config, trace_names = job
    return execute_config(config, trace_names)


def run_many(
    configs: Sequence[dict],
    workers: Optional[int] = None,
    trace_names: Sequence[str] = (),
) -> List[RunSummary]:
    """Execute many serialized scenarios, in parallel when possible.

    Results are returned in the order of ``configs`` regardless of
    completion order (determinism of the *sweep*, not just each run).
    """
    return map_jobs(
        _execute_job, [(c, tuple(trace_names)) for c in configs], workers=workers
    )


def seed_sweep_configs(base: dict, seeds: Iterable[int]) -> List[dict]:
    """The same scenario across seeds."""
    return [{**base, "seed": int(s)} for s in seeds]


def controller_sweep_configs(base: dict, controllers: Iterable[str]) -> List[dict]:
    """The same scenario across controllers (registry names)."""
    return [{**base, "controller": name} for name in controllers]
