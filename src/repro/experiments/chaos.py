"""Chaos scenarios: composed fault injection with recovery validation.

A :class:`ChaosScenario` is an ordinary :class:`Scenario` plus a set of
:class:`~repro.faults.FaultInjector` instances composed over one
simulated run.  :func:`run_chaos`

* validates the plan (same-resource injectors must not overlap),
* wires the testbed via :func:`~repro.experiments.scenario.build_runtime`
  and installs every injector on the live substrate,
* wraps the controller so the full measurement→target transcript is
  captured (:mod:`repro.control.transcript` format — two runs with the
  same seed must serialize byte-identically),
* records per-window QoS for every fault window, and
* evaluates the paper's recovery invariants (§II-A.3 / Table IV) on
  every *total-failure* window: ``P_o`` settles at the ``0.1 F_s``
  standing probe, and re-converges within a bounded number of control
  periods after the fault heals.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.control.transcript import FORMAT_VERSION
from repro.experiments.scenario import RunResult, Scenario, build_runtime
from repro.faults.base import FaultInjector, validate_plan
from repro.faults.device import CameraStall, CpuThrottle
from repro.faults.invariants import (
    MIN_PROBE_WINDOW,
    BreakerTransitions,
    InvariantCheck,
    breaker_reclose_invariant,
    breaker_trip_invariant,
    reconvergence_invariant,
    restart_ordering_invariant,
    restart_settle_invariant,
    settle_periods_after_restart,
    standing_probe_invariant,
)
from repro.faults.link import BandwidthCollapse, BurstLoss
from repro.faults.process import ControllerKill, DeviceReboot, ServerKill
from repro.faults.server import ServerCrash, ServerSlowdown
from repro.faults.windows import FaultTimeline, FaultWindow
from repro.resilience.config import ResilienceConfig
from repro.supervision.supervisor import SupervisionConfig, Supervisor


class RecordingController:
    """Transparent controller wrapper capturing the control transcript.

    Duck-typed, not a :class:`~repro.control.base.Controller` subclass:
    every attribute the device reads (``wants_probe``, ``name``,
    ``last_error``, ``capture_quality``, ...) is forwarded to the
    wrapped controller, so wrapping never changes behaviour — only
    observes it.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.steps: List[dict] = []

    def update(self, measurement) -> float:
        inner = self.inner
        before = getattr(inner, "degraded_inputs", None)
        target = inner.update(measurement)
        step = {
            "measurement": dataclasses.asdict(measurement),
            "target": float(target),
        }
        if before is not None:
            after = getattr(inner, "degraded_inputs", before)
            if after > before:
                # The input was repaired (NaN/negative/excessive T);
                # stamp the step so transcript consumers can see which
                # windows ran on degraded telemetry.  Clean runs emit
                # no key, keeping golden transcripts byte-stable.
                validity = getattr(inner, "last_input_validity", None)
                step["degraded_input"] = getattr(validity, "value", True)
        self.steps.append(step)
        return target

    def reset(self) -> None:
        self.inner.reset()
        self.steps.clear()

    def transcript(self, frame_rate: float) -> Dict[str, object]:
        """The captured run in :mod:`repro.control.transcript` format."""
        return {
            "version": FORMAT_VERSION,
            "controller": self.inner.name,
            "initial_target": float(self.inner.initial_target(frame_rate)),
            "steps": list(self.steps),
        }

    def __getattr__(self, item):
        if item == "inner":  # guard unpickling/copy before __init__
            raise AttributeError(item)
        return getattr(self.inner, item)


@dataclass(frozen=True)
class WindowQos:
    """Per-fault-window QoS summary read from the device traces."""

    injector: str
    layer: str
    window: FaultWindow
    mean_throughput: float
    mean_timeout_rate: float
    mean_offload_target: float

    def row(self) -> list:
        return [
            self.injector,
            self.layer,
            f"[{self.window.start:g},{self.window.end:g})",
            f"{self.mean_throughput:6.2f}",
            f"{self.mean_timeout_rate:6.2f}",
            f"{self.mean_offload_target:6.2f}",
        ]


@dataclass
class ChaosScenario:
    """One scenario plus the fault plan composed over it."""

    base: Scenario
    injectors: Sequence[FaultInjector] = ()
    #: standing-probe fraction the controller under test parks at
    #: during total failure (FrameFeedback/Headroom: the Table IV
    #: ``0.1``; AIMD: set its ``floor`` to match)
    probe_frac: float = 0.1
    #: re-convergence threshold as a fraction of ``F_s``
    reconverge_frac: float = 0.6
    #: control periods allowed for re-convergence after healing
    reconverge_periods: int = 25
    #: when set, the run gets the full defense stack: the device is
    #: rebuilt with this resilience config and the server with overload
    #: pushback, and the breaker trip/re-close invariants join the
    #: recovery checks on every total-failure window
    resilience: Optional[ResilienceConfig] = None
    #: control periods within which the breaker must trip after a
    #: total-failure onset (resilience runs only)
    breaker_trip_periods: float = 3.0
    #: when set, a :class:`~repro.supervision.Supervisor` is attached
    #: to the runtime: heartbeats, per-tick controller checkpoints, the
    #: degraded-telemetry hold-then-decay policy, and MTTR/restart
    #: counters exported into the QoS extras.  Process-kill injectors
    #: route their restarts through it, and the restart-settle
    #: invariant joins the checks on every controller-outage window.
    supervision: Optional[SupervisionConfig] = None
    #: measure windows a *warm* restart gets to re-settle within
    #: ``settle_tolerance_fps`` of the pre-crash ``P_o`` (the tentpole
    #: acceptance bound); cold restarts get ``reconverge_periods``
    warm_restart_windows: float = 3.0

    def with_seed(self, seed: int) -> "ChaosScenario":
        return dataclasses.replace(
            self, base=dataclasses.replace(self.base, seed=seed)
        )

    def effective_base(self) -> Scenario:
        """The base scenario with the resilience stack applied, if any."""
        if self.resilience is None:
            return self.base
        return dataclasses.replace(
            self.base,
            device=dataclasses.replace(self.base.device, resilience=self.resilience),
            server_pushback=True,
        )


@dataclass
class ChaosResult:
    """Everything observable from one chaos run."""

    run: RunResult
    transcript: Dict[str, object]
    window_qos: List[WindowQos] = field(default_factory=list)
    invariants: List[InvariantCheck] = field(default_factory=list)
    #: circuit-breaker state changes ``(time, state)``; empty when the
    #: run had no resilience layer
    breaker_transitions: BreakerTransitions = field(default_factory=list)
    #: cumulative failure-taxonomy counts (wire names); empty likewise
    failure_taxonomy: Dict[str, int] = field(default_factory=dict)
    #: supervision stats (``SupervisionStats.as_dict()``); None when
    #: the run had no supervisor attached
    supervision: Optional[Dict[str, object]] = None

    @property
    def all_invariants_hold(self) -> bool:
        return all(c.passed for c in self.invariants)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (``repro chaos --json``)."""
        qos = self.run.qos
        return {
            "controller": self.run.controller_name,
            "seed": self.run.scenario.seed,
            "elapsed": self.run.elapsed,
            "resilience": bool(self.breaker_transitions or self.failure_taxonomy),
            "qos": {
                "total_frames": qos.total_frames,
                "successful": qos.successful,
                "timeouts": qos.timeouts,
                "rejected": qos.rejected,
                "mean_throughput": qos.mean_throughput,
                "mean_violation_rate": qos.mean_violation_rate,
            },
            "window_qos": [
                {
                    "injector": w.injector,
                    "layer": w.layer,
                    "window": [w.window.start, w.window.end],
                    "mean_throughput": w.mean_throughput,
                    "mean_timeout_rate": w.mean_timeout_rate,
                    "mean_offload_target": w.mean_offload_target,
                }
                for w in self.window_qos
            ],
            "invariants": [_check_to_dict(c) for c in self.invariants],
            "breaker_transitions": [
                [t, state.value] for t, state in self.breaker_transitions
            ],
            "failure_taxonomy": dict(self.failure_taxonomy),
            "supervision": self.supervision,
            "verdict": "PASS" if self.all_invariants_hold else "FAIL",
        }


def _finite(x: float) -> Optional[float]:
    return float(x) if math.isfinite(x) else None


def _check_to_dict(c: InvariantCheck) -> Dict[str, object]:
    return {
        "name": c.name,
        "window": [c.window.start, c.window.end] if c.window else None,
        "observed": _finite(c.observed),
        "expected": _finite(c.expected),
        "tolerance": c.tolerance,
        "passed": c.passed,
        "detail": c.detail,
    }


def _window_qos(result: RunResult, injector: FaultInjector) -> List[WindowQos]:
    out: List[WindowQos] = []
    for w in injector.timeline:
        t1 = min(w.end, result.elapsed)
        if t1 <= w.start:
            continue  # window entirely past the run's end

        def mean(series):
            v = series.mean_over(w.start, t1)
            return 0.0 if math.isnan(v) else v

        out.append(
            WindowQos(
                injector=injector.name,
                layer=injector.layer,
                window=w,
                mean_throughput=mean(result.traces.throughput),
                mean_timeout_rate=mean(result.traces.timeout_rate),
                mean_offload_target=mean(result.traces.offload_target),
            )
        )
    return out


def _recovery_checks(
    chaos: ChaosScenario,
    result: RunResult,
    breaker_transitions: Optional[BreakerTransitions] = None,
) -> List[InvariantCheck]:
    """Evaluate the recovery invariants on every total-failure window."""
    checks: List[InvariantCheck] = []
    fs = chaos.base.device.frame_rate
    period = chaos.base.device.measure_period
    po = result.traces.offload_target
    # Worst re-close case: a max-length backoff sleep begun just before
    # the heal, its probe failing at the deadline, then one more
    # max-length sleep before the probe that finally lands.
    reclose_delay = None
    if chaos.resilience is not None:
        reclose_delay = (
            chaos.resilience.backoff_max
            + chaos.base.device.deadline
            + 2.0 * period
        )
    supervision = chaos.supervision
    for injector in chaos.injectors:
        # Controller-outage windows (ControllerKill / DeviceReboot) get
        # the restart-settle invariant when a supervisor ran: warm
        # restarts must re-settle within ``warm_restart_windows``
        # measure windows, cold ones within the re-convergence bound.
        if supervision is not None and getattr(injector, "controller_outage", False):
            mode = getattr(injector, "restart", "supervised")
            if mode != "none":
                warm = (
                    supervision.checkpoint_enabled
                    if mode == "supervised"
                    else mode == "warm"
                )
                name = "warm-restart-settle" if warm else "cold-restart-settle"
                bound = (
                    chaos.warm_restart_windows
                    if warm
                    else float(chaos.reconverge_periods)
                )
                for w in injector.timeline:
                    if w.end + bound * period <= result.elapsed:
                        checks.append(
                            restart_settle_invariant(
                                po,
                                crash_time=w.start,
                                restart_time=w.end,
                                frame_rate=fs,
                                tolerance_fps=supervision.settle_tolerance_fps,
                                max_periods=bound,
                                control_period=period,
                                window=w,
                                name=name,
                            )
                        )
        if not injector.total_failure:
            continue
        for w in injector.timeline:
            if w.duration >= MIN_PROBE_WINDOW and w.end <= result.elapsed:
                checks.append(
                    standing_probe_invariant(po, w, fs, probe_frac=chaos.probe_frac)
                )
            # Only judge re-convergence when the run actually observed
            # the full allowance after healing.
            horizon = w.end + chaos.reconverge_periods * period
            if w.end < result.elapsed and horizon <= result.elapsed:
                checks.append(
                    reconvergence_invariant(
                        po,
                        heal_time=w.end,
                        frame_rate=fs,
                        threshold_frac=chaos.reconverge_frac,
                        max_periods=chaos.reconverge_periods,
                        control_period=period,
                        window=w,
                    )
                )
            if breaker_transitions is None or reclose_delay is None:
                continue
            if w.end <= result.elapsed:
                checks.append(
                    breaker_trip_invariant(
                        breaker_transitions,
                        w,
                        control_period=period,
                        max_periods=chaos.breaker_trip_periods,
                    )
                )
            if w.end + reclose_delay <= result.elapsed:
                checks.append(
                    breaker_reclose_invariant(
                        breaker_transitions,
                        heal_time=w.end,
                        max_delay=reclose_delay,
                        window=w,
                    )
                )
    return checks


def run_chaos(chaos: ChaosScenario, tracer=None) -> ChaosResult:
    """Execute one chaos scenario deterministically.

    ``tracer`` (a :class:`repro.trace.Tracer`) is attached to the
    runtime environment before anything runs, so per-frame spans cover
    the whole stream and supervision/controller events land in the
    same trace (see :mod:`repro.trace.scenarios`).
    """
    validate_plan(list(chaos.injectors))
    runtime = build_runtime(chaos.effective_base())
    if tracer is not None:
        runtime.env.tracer = tracer

    # The supervisor checkpoints the *inner* controller: wrapping for
    # transcripts must not change what a restore reloads (and a warm
    # restart must never clear the recorded steps).
    supervisor = None
    if chaos.supervision is not None:
        supervisor = Supervisor(
            runtime.env,
            runtime.device,
            runtime.server,
            chaos.supervision,
            controller=runtime.controller,
        )
        runtime.supervisor = supervisor

    recorder = RecordingController(runtime.device.controller)
    runtime.device.controller = recorder

    targets = runtime.fault_targets()
    for injector in chaos.injectors:
        injector.install(runtime.env, targets)

    result = runtime.run()
    if supervisor is not None:
        result.qos.extras.update(supervisor.stats.as_extras())

    window_qos: List[WindowQos] = []
    for injector in chaos.injectors:
        window_qos.extend(_window_qos(result, injector))

    resilience = runtime.device.resilience
    transitions = list(resilience.breaker.transitions) if resilience else []
    return ChaosResult(
        run=result,
        transcript=recorder.transcript(chaos.base.device.frame_rate),
        window_qos=window_qos,
        invariants=_recovery_checks(
            chaos, result, breaker_transitions=transitions if resilience else None
        ),
        breaker_transitions=transitions,
        failure_taxonomy=resilience.taxonomy.as_dict() if resilience else {},
        supervision=supervisor.stats.as_dict() if supervisor else None,
    )


def default_chaos_injectors() -> List[FaultInjector]:
    """The canned cross-layer plan behind ``framefeedback chaos``.

    One fault per substrate knob, spread over ~two minutes: burst loss
    and a server slowdown (degraded-but-alive regimes), a 20 s server
    blackout and a 12 s bandwidth collapse (the two total-failure
    windows the recovery invariants are asserted on), plus device-side
    CPU throttling and a camera stall.
    """
    return [
        BurstLoss(FaultTimeline.from_rows([(15.0, 10.0)]), loss=0.25, burst=6.0),
        ServerSlowdown(FaultTimeline.from_rows([(32.0, 10.0)]), factor=4.0),
        ServerCrash(FaultTimeline.from_rows([(50.0, 20.0)])),
        CpuThrottle(FaultTimeline.from_rows([(74.0, 8.0)]), factor=2.0),
        CameraStall(FaultTimeline.from_rows([(84.0, 3.0)])),
        BandwidthCollapse(FaultTimeline.from_rows([(89.0, 16.0)]), factor=0.01),
    ]


# ----------------------------------------------------------------------
# supervision chaos: crash/restart schedule run warm vs cold
# ----------------------------------------------------------------------


def supervision_chaos_injectors(
    controller_kill: Optional[tuple] = (60.0, 5.0),
    server_kill: Optional[tuple] = (90.0, 15.0),
    reboot: Optional[tuple] = (108.0, 4.0),
) -> List[FaultInjector]:
    """The canned process-crash plan behind ``framefeedback chaos --supervision``.

    Three kill windows, each ``(start, duration)`` and individually
    omittable: the controller loop dies mid-steady-state, the server
    loses its service loop (and queue), and finally the whole device
    reboots.  Injectors are built fresh per call — they bind to one
    environment and must not be shared across runs.
    """
    out: List[FaultInjector] = []
    if controller_kill is not None:
        out.append(ControllerKill(FaultTimeline.from_rows([controller_kill])))
    if server_kill is not None:
        out.append(ServerKill(FaultTimeline.from_rows([server_kill])))
    if reboot is not None:
        out.append(DeviceReboot(FaultTimeline.from_rows([reboot])))
    return out


@dataclass
class SupervisionChaosResult:
    """One crash schedule executed twice: checkpointing on, then off.

    The pair is the tentpole's evidence: identical seeds and fault
    plans, differing only in whether the supervisor restores from
    checkpoints — so every gap between the two runs is attributable to
    the checkpoint, and the warm-beats-cold ordering invariant can be
    asserted per outage window.
    """

    warm: ChaosResult
    cold: ChaosResult
    #: cross-run checks (warm-beats-cold per controller-outage window)
    cross_invariants: List[InvariantCheck] = field(default_factory=list)

    @property
    def all_invariants_hold(self) -> bool:
        return (
            self.warm.all_invariants_hold
            and self.cold.all_invariants_hold
            and all(c.passed for c in self.cross_invariants)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": "supervision",
            "warm": self.warm.to_dict(),
            "cold": self.cold.to_dict(),
            "cross_invariants": [_check_to_dict(c) for c in self.cross_invariants],
            "verdict": "PASS" if self.all_invariants_hold else "FAIL",
        }


def run_supervision_chaos(
    seed: int = 0,
    total_frames: int = 4000,
    controller_factory=None,
    controller_kill: Optional[tuple] = (60.0, 5.0),
    server_kill: Optional[tuple] = (90.0, 15.0),
    reboot: Optional[tuple] = (108.0, 4.0),
    resilience: Optional[ResilienceConfig] = None,
    settle_tolerance_fps: float = 1.0,
    warm_restart_windows: float = 3.0,
) -> SupervisionChaosResult:
    """Run the crash schedule twice (warm, then cold) and compare.

    Both runs share the seed, scenario and fault plan; only
    ``SupervisionConfig.checkpoint_enabled`` differs.  Per-run
    invariants assert the absolute bounds (warm re-settles within
    ``warm_restart_windows`` measure windows of the restart, cold
    within the re-convergence allowance); the cross-run ordering check
    then asserts warm is *strictly* faster for every outage window.
    """
    from repro.device.config import DeviceConfig
    from repro.experiments.standard import framefeedback_factory

    factory = (
        controller_factory if controller_factory is not None else framefeedback_factory()
    )
    base = Scenario(
        controller_factory=factory,
        device=DeviceConfig(total_frames=total_frames),
        seed=seed,
    )

    def one(checkpoint_enabled: bool) -> ChaosResult:
        return run_chaos(
            ChaosScenario(
                base=base,
                injectors=supervision_chaos_injectors(
                    controller_kill, server_kill, reboot
                ),
                resilience=resilience,
                supervision=SupervisionConfig(
                    checkpoint_enabled=checkpoint_enabled,
                    settle_tolerance_fps=settle_tolerance_fps,
                ),
                warm_restart_windows=warm_restart_windows,
            )
        )

    warm = one(True)
    cold = one(False)

    period = base.device.measure_period
    cross: List[InvariantCheck] = []
    for injector in supervision_chaos_injectors(controller_kill, server_kill, reboot):
        if not getattr(injector, "controller_outage", False):
            continue
        for w in injector.timeline:
            if w.end >= min(warm.run.elapsed, cold.run.elapsed):
                continue
            _, warm_periods = settle_periods_after_restart(
                warm.run.traces.offload_target,
                w.start,
                w.end,
                tolerance_fps=settle_tolerance_fps,
                control_period=period,
            )
            _, cold_periods = settle_periods_after_restart(
                cold.run.traces.offload_target,
                w.start,
                w.end,
                tolerance_fps=settle_tolerance_fps,
                control_period=period,
            )
            cross.append(
                restart_ordering_invariant(warm_periods, cold_periods, window=w)
            )
    return SupervisionChaosResult(warm=warm, cold=cold, cross_invariants=cross)
