"""Figure 2: controller gain comparison under a loss injection.

The paper plots the offloading rate ``P_o`` for controllers with
different ``(K_P, K_D)`` coefficients on an otherwise-ideal link, with
7 % packet loss introduced after 27 seconds.  Well-tuned gains settle
smoothly onto a reduced rate; aggressive gains oscillate; sluggish
gains under-react.  This module reproduces the traces and scores them
with :mod:`repro.analysis.stability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.stability import StabilityReport, stability_report
from repro.control.framefeedback import FrameFeedbackSettings
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.metrics.timeseries import TimeSeries
from repro.workloads.schedules import fig2_schedule

#: the gain grid plotted: paper settings plus the instructive failures
DEFAULT_GAIN_GRID: Tuple[Tuple[float, float], ...] = (
    (0.2, 0.26),  # Table IV (the published tuning)
    (0.2, 0.0),  # no derivative: overshoots after the loss hits
    (0.4, 0.26),  # hot proportional gain: oscillates
    (0.05, 0.26),  # sluggish: never reaches F_s before the loss
)

#: seconds of ideal conditions before the loss injection (§III-B/Fig 2)
LOSS_INJECTION_TIME = 27.0


@dataclass
class Fig2Result:
    """P_o traces and stability scores per gain setting."""

    traces: Dict[str, TimeSeries]
    reports: Dict[str, StabilityReport]
    loss_injection_time: float
    duration: float

    def labels(self) -> List[str]:
        return list(self.traces)


def gain_label(kp: float, kd: float) -> str:
    return f"Kp={kp:g} Kd={kd:g}"


def run_fig2(
    gains: Sequence[Tuple[float, float]] = DEFAULT_GAIN_GRID,
    duration: float = 60.0,
    seed: int = 0,
) -> Fig2Result:
    """Run the Fig 2 experiment for every gain pair."""
    device = DeviceConfig(total_frames=int(duration * 30))
    traces: Dict[str, TimeSeries] = {}
    reports: Dict[str, StabilityReport] = {}
    for kp, kd in gains:
        settings = FrameFeedbackSettings(kp=kp, kd=kd)
        scenario = Scenario(
            controller_factory=framefeedback_factory(settings),
            device=device,
            network=fig2_schedule(),
            duration=duration,
            seed=seed,
        )
        result = run_scenario(scenario)
        label = gain_label(kp, kd)
        trace = result.traces.offload_target
        traces[label] = trace
        # score only the post-injection segment: that is where tuning
        # quality shows (§III-B: stability under disturbance)
        after = trace.slice(LOSS_INJECTION_TIME + 3.0, duration)
        reports[label] = stability_report(after.times, after.values)
    return Fig2Result(
        traces=traces,
        reports=reports,
        loss_injection_time=LOSS_INJECTION_TIME,
        duration=duration,
    )
