"""Multi-seed statistics: are the paper's orderings luck or signal?

The paper reports single runs; this module reruns any scenario across
seeds and summarizes each metric with mean, standard deviation, and a
normal-approximation confidence interval, plus a win-rate table for
controller comparisons.  ``benchmarks/bench_robustness.py`` uses it to
check that every Fig 3/Fig 4 claim survives seed variation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.experiments.scenario import RunResult, Scenario, run_scenario

#: z for a ~95% two-sided normal CI
Z95 = 1.96


@dataclass(frozen=True)
class MetricSummary:
    """Mean/std/CI of one scalar metric across seeds."""

    name: str
    values: tuple
    mean: float
    std: float
    ci_half_width: float

    @property
    def lo(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def hi(self) -> float:
        return self.mean + self.ci_half_width

    @classmethod
    def from_values(cls, name: str, values: Sequence[float]) -> "MetricSummary":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError("no values to summarize")
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(
            name=name,
            values=tuple(arr.tolist()),
            mean=float(arr.mean()),
            std=std,
            ci_half_width=Z95 * std / np.sqrt(arr.size) if arr.size > 1 else 0.0,
        )

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.name}: {self.mean:.2f} ± {self.ci_half_width:.2f} (std {self.std:.2f})"


def run_across_seeds(
    scenario: Scenario,
    seeds: Sequence[int],
    metric: Callable[[RunResult], float] = lambda r: r.qos.mean_throughput,
    metric_name: str = "mean_throughput",
) -> MetricSummary:
    """Run one scenario once per seed and summarize ``metric``."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = [metric(run_scenario(scenario.with_seed(s))) for s in seeds]
    return MetricSummary.from_values(metric_name, values)


def compare_across_seeds(
    scenario: Scenario,
    controllers: Dict[str, Callable],
    seeds: Sequence[int],
    metric: Callable[[RunResult], float] = lambda r: r.qos.mean_throughput,
) -> Dict[str, MetricSummary]:
    """Per-controller metric summaries on identical seed sets."""
    per_controller: Dict[str, List[float]] = {name: [] for name in controllers}
    for seed in seeds:
        for name, factory in controllers.items():
            result = run_scenario(
                replace(scenario, controller_factory=factory, seed=seed)
            )
            per_controller[name].append(metric(result))
    return {
        name: MetricSummary.from_values(name, values)
        for name, values in per_controller.items()
    }


def win_rate(
    summaries: Dict[str, MetricSummary], challenger: str, incumbent: str
) -> float:
    """Fraction of seeds where ``challenger`` beats ``incumbent``."""
    a = summaries[challenger].values
    b = summaries[incumbent].values
    if len(a) != len(b):
        raise ValueError("summaries cover different seed sets")
    wins = sum(1 for x, y in zip(a, b) if x > y)
    return wins / len(a)
