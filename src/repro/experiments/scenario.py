"""Scenario wiring: device + links + server + schedules, one seed.

A :class:`Scenario` is a complete description of one run of the §IV
testbed; :func:`run_scenario` executes it deterministically and
returns a :class:`RunResult` with every trace and counter the paper's
figures need.

Controller factories come in two arities:

* ``factory(config)`` — ordinary controllers (FrameFeedback and the
  paper baselines observe only device-local measurements);
* ``factory(config, context)`` — controllers that need testbed wiring:
  the clairvoyant oracle reads the schedules, the reservation baseline
  talks to a server-side broker.  ``context`` is a
  :class:`ScenarioContext`.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.control.base import Controller
from repro.device.config import DeviceConfig
from repro.device.device import DeviceTraces, EdgeDevice
from repro.fleet.config import FleetTopology
from repro.metrics.qos import QosReport
from repro.models.latency import GpuBatchModel
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.netem.schedule import NetworkSchedule
from repro.server.batching import BatchPolicy
from repro.server.server import EdgeServer, ServerStats
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.loadgen import BackgroundLoad, LoadSchedule


@dataclass
class ScenarioContext:
    """Testbed wiring handed to two-argument controller factories."""

    env: Environment
    server: EdgeServer
    rng: RngRegistry
    network: Optional[NetworkSchedule]
    load: Optional[LoadSchedule]
    gpu_model: GpuBatchModel


def _build_controller(factory, config: DeviceConfig, context: ScenarioContext):
    """Call a one- or two-argument controller factory.

    Only *required* positional parameters count toward the arity, so
    ``lambda cfg, captured=x: ...`` closures stay one-argument.
    """
    try:
        params = inspect.signature(factory).parameters.values()
    except (TypeError, ValueError):  # builtins / odd callables
        params = ()
    required = sum(
        1
        for p in params
        if p.default is inspect.Parameter.empty
        and p.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    )
    if required >= 2:
        return factory(config, context)
    return factory(config)


@dataclass
class Scenario:
    """One complete experiment configuration.

    ``controller_factory`` builds a fresh controller per run so the
    same scenario can be executed across seeds without state leakage.
    """

    controller_factory: Callable[[DeviceConfig], Controller]
    device: DeviceConfig = field(default_factory=DeviceConfig)
    network: Optional[NetworkSchedule] = None
    load: Optional[LoadSchedule] = None
    duration: Optional[float] = None
    seed: int = 0
    gpu_model: GpuBatchModel = field(default_factory=GpuBatchModel)
    batch_policy: BatchPolicy = BatchPolicy.FIFO
    uplink_queue_bytes: float = 131_072.0
    #: server answers overflow with OVERLOADED + retry-after instead of
    #: bare rejections (pairs with ``device.resilience``)
    server_pushback: bool = False
    #: multi-server fleet topology; ``None`` keeps the classic
    #: single-server testbed (bit-identical to pre-fleet runs)
    topology: Optional[FleetTopology] = None
    #: simulation kernel: ``"exact"`` event-steps every frame,
    #: ``"hybrid"`` advances steady-state windows analytically (the
    #: ``REPRO_KERNEL`` environment variable overrides this field)
    kernel: str = "exact"

    def with_seed(self, seed: int) -> "Scenario":
        return replace(self, seed=seed)

    @property
    def run_duration(self) -> float:
        """Explicit duration, or the stream length plus drain slack."""
        if self.duration is not None:
            return self.duration
        return self.device.stream_duration + 2.0


@dataclass
class RunResult:
    """Everything observable from one scenario run."""

    scenario: Scenario
    traces: DeviceTraces
    qos: QosReport
    server_stats: ServerStats
    uplink_stats: "object"
    background_sent: int = 0
    background_rejected: int = 0
    gpu_utilization: float = 0.0
    elapsed: float = 0.0
    #: omniscient T_n/T_l attribution (None only for legacy callers)
    breakdown: "object" = None

    @property
    def controller_name(self) -> str:
        return self.qos.name


@dataclass
class ScenarioRuntime:
    """A fully-wired testbed that has not started running yet.

    :func:`build_runtime` assembles the substrate (links, server,
    device, schedules) and hands it back *before* ``env.run``, so
    callers can attach extra machinery — fault injectors, probes,
    tracing — to live components.  :meth:`run` then executes and
    collects the :class:`RunResult` exactly as :func:`run_scenario`
    always did.
    """

    scenario: Scenario
    env: Environment
    rng: RngRegistry
    box: ConditionBox
    uplink: Link
    downlink: Link
    server: EdgeServer
    background: Optional[BackgroundLoad]
    context: ScenarioContext
    controller: Controller
    device: EdgeDevice
    #: attached supervision layer, if any (set by chaos runners after
    #: build; rides along into :meth:`fault_targets`)
    supervisor: Optional[object] = None
    #: fleet tier (multi-server scenarios only)
    pool: Optional[object] = None
    router: Optional[object] = None

    def fault_targets(self):
        """Substrate handles for :meth:`repro.faults.FaultInjector.install`."""
        from repro.faults.base import FaultTargets

        return FaultTargets(
            box=self.box,
            server=self.server,
            device=self.device,
            rng=self.rng.stream("faults"),
            supervisor=self.supervisor,
            pool=self.pool,
        )

    def run(self, until: Optional[float] = None) -> RunResult:
        """Execute to ``until`` (default: the scenario's duration)."""
        duration = until if until is not None else self.scenario.run_duration
        self.env.run(until=duration)
        return self.collect(duration)

    def collect(self, elapsed: float) -> RunResult:
        """Snapshot every observable into a :class:`RunResult`."""
        return RunResult(
            scenario=self.scenario,
            traces=self.device.traces,
            qos=self.device.qos_report(elapsed),
            server_stats=self.server.stats,
            uplink_stats=self.uplink.stats,
            background_sent=self.background.sent if self.background else 0,
            background_rejected=self.background.rejected if self.background else 0,
            gpu_utilization=self.server.gpu.utilization(elapsed),
            elapsed=elapsed,
            breakdown=self.device.breakdown,
        )


def build_runtime(scenario: Scenario) -> ScenarioRuntime:
    """Wire one scenario's testbed without running it."""
    env = Environment()
    rng = RngRegistry(seed=scenario.seed)

    # Network: one condition box shared by both directions, driven by
    # the schedule (exactly like NetEm shaping the Pi's interface).
    initial = (
        scenario.network.at(0.0) if scenario.network is not None else LinkConditions()
    )
    box = ConditionBox(initial)
    uplink = Link(
        env,
        rng.stream("uplink"),
        box,
        name="uplink",
        queue_bytes_cap=scenario.uplink_queue_bytes,
    )
    downlink = Link(
        env,
        rng.stream("downlink"),
        box,
        name="downlink",
        # responses are tiny; the same byte cap never binds
        queue_bytes_cap=scenario.uplink_queue_bytes,
    )
    if scenario.network is not None:
        scenario.network.install(env, box)

    pool = None
    router = None
    if scenario.topology is not None:
        # Fleet: one EdgeServer per topology name, each on its own rng
        # stream, plus the pool/health/router tier.  Imported lazily so
        # single-server runs never touch the fleet package.
        from repro.fleet.pool import ServerPool
        from repro.fleet.router import Router

        members = [
            EdgeServer(
                env,
                rng.stream(f"server:{name}"),
                cost_model=scenario.gpu_model,
                batch_policy=scenario.batch_policy,
                name=name,
                pushback=scenario.server_pushback,
                trace_identity=True,
            )
            for name in scenario.topology.servers
        ]
        pool = ServerPool(env, members, scenario.topology.config)
        router = Router(pool)
        # members[0] stays the "primary" handle: background load,
        # legacy stats collection and ScenarioContext keep working.
        server = members[0]
    else:
        server = EdgeServer(
            env,
            rng.stream("server"),
            cost_model=scenario.gpu_model,
            batch_policy=scenario.batch_policy,
            pushback=scenario.server_pushback,
        )

    background: Optional[BackgroundLoad] = None
    if scenario.load is not None:
        background = BackgroundLoad(
            env,
            server,
            scenario.load,
            rng.stream("background"),
            payload_bytes=scenario.device.frame_spec.bytes_on_wire,
        )

    context = ScenarioContext(
        env=env,
        server=server,
        rng=rng,
        network=scenario.network,
        load=scenario.load,
        gpu_model=scenario.gpu_model,
    )
    controller = _build_controller(scenario.controller_factory, scenario.device, context)
    device = EdgeDevice(
        env,
        scenario.device,
        controller,
        uplink=uplink,
        downlink=downlink,
        server=server,
        rng=rng.stream("device"),
        router=router,
    )

    kernel = os.environ.get("REPRO_KERNEL") or scenario.kernel
    if kernel not in ("exact", "hybrid"):
        raise ValueError(f"unknown kernel {kernel!r}; choose 'exact' or 'hybrid'")
    if kernel == "hybrid":
        from repro.sim.fluid import FluidRegime

        regime = FluidRegime(env)
        # every known structural edge is a wall no window may cross
        if scenario.network is not None:
            regime.pin_edges(scenario.network.change_times)
        if scenario.load is not None:
            regime.pin_edges(scenario.load.change_times)
        device.enable_fluid(
            regime,
            rng.stream("fluid"),
            bg_rate_fn=scenario.load.rate_at if scenario.load is not None else None,
            bg_model_names=background.model_names if background is not None else (),
        )

    return ScenarioRuntime(
        scenario=scenario,
        env=env,
        rng=rng,
        box=box,
        uplink=uplink,
        downlink=downlink,
        server=server,
        background=background,
        context=context,
        controller=controller,
        device=device,
        pool=pool,
        router=router,
    )


def run_scenario(scenario: Scenario) -> RunResult:
    """Execute one scenario deterministically."""
    return build_runtime(scenario).run()


def run_controllers(
    scenario: Scenario,
    controllers: Dict[str, Callable[[DeviceConfig], Controller]],
) -> Dict[str, RunResult]:
    """Run the same scenario once per controller (identical seeds)."""
    out: Dict[str, RunResult] = {}
    for name, factory in controllers.items():
        out[name] = run_scenario(replace(scenario, controller_factory=factory))
    return out
