"""The paper's standard controller lineup (§IV-B) as factories."""

from __future__ import annotations

from typing import Callable, Dict

from repro.control.base import Controller
from repro.control.baselines import (
    AllOrNothingController,
    AlwaysOffloadController,
    LocalOnlyController,
)
from repro.control.framefeedback import (
    FrameFeedbackController,
    FrameFeedbackSettings,
)
from repro.device.config import DeviceConfig

ControllerFactory = Callable[[DeviceConfig], Controller]


def framefeedback_factory(
    settings: FrameFeedbackSettings = FrameFeedbackSettings(),
) -> ControllerFactory:
    """Factory for a FrameFeedback controller with given settings."""

    def make(config: DeviceConfig) -> Controller:
        return FrameFeedbackController(config.frame_rate, settings)

    return make


def standard_controllers() -> Dict[str, ControllerFactory]:
    """All four §IV controllers keyed by their report names."""
    return {
        "FrameFeedback": framefeedback_factory(),
        "LocalOnly": lambda config: LocalOnlyController(),
        "AlwaysOffload": lambda config: AlwaysOffloadController(),
        "AllOrNothing": lambda config: AllOrNothingController(),
    }


def aimd_factory() -> ControllerFactory:
    """TCP-style AIMD extension baseline."""
    from repro.control.aimd import AimdController

    return lambda config: AimdController(config.frame_rate)


def oracle_factory():
    """Clairvoyant oracle; needs the scenario context (schedules)."""
    from repro.control.oracle import OracleController

    def make(config: DeviceConfig, context) -> Controller:
        return OracleController(
            frame_rate=config.frame_rate,
            frame_bytes=config.frame_spec.bytes_on_wire,
            deadline=config.deadline,
            network=context.network,
            load=context.load,
            gpu_model=context.gpu_model,
            model_name=config.model.name,
        )

    return make


def reservation_factory():
    """ATOMS-lite reservation baseline; builds a broker on the server."""
    from repro.control.reservation import ReservationController
    from repro.server.admission import ReservationBroker

    def make(config: DeviceConfig, context) -> Controller:
        broker = ReservationBroker(context.env, context.server, context.gpu_model)
        return ReservationController(config.frame_rate, broker, config.name)

    return make


def headroom_factory() -> ControllerFactory:
    """Latency-predictive FrameFeedback variant."""
    from repro.control.headroom import HeadroomController

    return lambda config: HeadroomController(config.frame_rate, config.deadline)


def adaptive_quality_factory() -> ControllerFactory:
    """FrameFeedback + the §II-D JPEG-quality ladder."""
    from repro.control.quality import AdaptiveQualityController

    return lambda config: AdaptiveQualityController(config.frame_rate)


def extended_controllers() -> Dict[str, ControllerFactory]:
    """Standard lineup plus the extension controllers and the zoo.

    Every device-local :func:`repro.control.zoo.zoo_controllers` member
    resolves here too (``setdefault`` keeps the canonical factories for
    names both registries know), so scenario configs, the sweep pool
    and the tournament can address the whole zoo by name.
    """
    from repro.control.zoo import zoo_controllers

    out = standard_controllers()
    out["AIMD"] = aimd_factory()
    out["Reservation"] = reservation_factory()
    out["Headroom"] = headroom_factory()
    out["FrameFeedback+Q"] = adaptive_quality_factory()
    out["Oracle"] = oracle_factory()
    for name, factory in zoo_controllers().items():
        out.setdefault(name, factory)
    return out
