"""Terminal reporting: ASCII tables and series plots for every experiment.

Benchmarks call these so their output shows the same rows/series the
paper's tables and figures report, making paper-vs-measured comparison
a side-by-side read.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig4 import Fig4Result
from repro.experiments.table2 import Table2Cell
from repro.experiments.table3 import Table3Row, TradeoffPoint
from repro.experiments.table4 import AblationRow
from repro.metrics.qos import PhaseSummary
from repro.metrics.timeseries import TimeSeries

_BLOCKS = " .:-=+*#%@"


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain monospaced table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}s}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in str_rows)
    return "\n".join(lines)


def spark(series: TimeSeries, width: int = 60, vmax: Optional[float] = None) -> str:
    """One-line density plot of a series (paper-figure-at-a-glance)."""
    v = series.values
    if v.size == 0:
        return "(empty)"
    top = vmax if vmax is not None else max(float(v.max()), 1e-9)
    # bucket-average onto `width` columns
    idx = np.linspace(0, v.size, width + 1).astype(int)
    cols = []
    for i in range(width):
        seg = v[idx[i] : max(idx[i + 1], idx[i] + 1)]
        level = float(np.clip(seg.mean() / top, 0.0, 1.0))
        cols.append(_BLOCKS[int(round(level * (len(_BLOCKS) - 1)))])
    return "".join(cols)


def series_panel(
    series_by_name: Dict[str, TimeSeries], width: int = 60, vmax: Optional[float] = None
) -> str:
    """Stacked sparklines with a shared scale."""
    if vmax is None:
        vmax = max(
            (float(s.values.max()) for s in series_by_name.values() if len(s)),
            default=1.0,
        )
    label_w = max(len(n) for n in series_by_name)
    lines = [
        f"{name:<{label_w}s} |{spark(series, width, vmax)}| max={vmax:.1f}"
        for name, series in series_by_name.items()
    ]
    return "\n".join(lines)


def phase_table(phases: List[PhaseSummary]) -> str:
    """Per-phase mean throughput for every controller."""
    controllers = list(phases[0].mean_throughput) if phases else []
    headers = ["phase", *controllers, "winner"]
    rows = []
    for ph in phases:
        rows.append(
            [
                ph.label,
                *(f"{ph.mean_throughput[c]:6.2f}" for c in controllers),
                ph.winner(),
            ]
        )
    return ascii_table(headers, rows)


# ----------------------------------------------------------------------
# experiment-specific renderers
# ----------------------------------------------------------------------
def render_fig2(result: Fig2Result) -> str:
    lines = [
        "Fig 2: P_o traces per gain setting "
        f"(7% loss injected at t={result.loss_injection_time:g}s)",
        series_panel(result.traces, vmax=30.0),
        "",
        ascii_table(
            ["gains", "oscillation", "reversals", "overshoot", "mean P_o"],
            [
                [
                    label,
                    f"{rep.oscillation:.3f}",
                    rep.direction_changes,
                    f"{rep.overshoot:.2f}",
                    f"{rep.mean:.2f}",
                ]
                for label, rep in result.reports.items()
            ],
        ),
    ]
    return "\n".join(lines)


def render_fig3(result: Fig3Result) -> str:
    panel = dict(result.throughput)
    panel["FF P_o (target)"] = result.framefeedback_offload
    lines = [
        "Fig 3: total inference throughput P under the Table V network schedule",
        series_panel(panel, vmax=30.0),
        "",
        phase_table(result.phases),
    ]
    return "\n".join(lines)


def render_fig4(result: Fig4Result) -> str:
    panel = dict(result.throughput)
    panel["FF P_o (target)"] = result.framefeedback_offload
    lines = [
        "Fig 4: total inference throughput P under the Table VI server load",
        series_panel(panel, vmax=30.0),
        "",
        phase_table(result.phases),
    ]
    return "\n".join(lines)


def render_table2(cells: List[Table2Cell]) -> str:
    rows = [
        [
            cell.device.display_name,
            cell.model.display_name,
            f"{cell.paper_rate:g}",
            f"{cell.measured_rate:.2f}",
            f"{100 * cell.relative_error:.1f}%",
        ]
        for cell in cells
    ]
    return "Table II: local processing rates P_l (paper vs measured)\n" + ascii_table(
        ["device", "model", "paper P_l", "measured P_l", "error"], rows
    )


def render_table3(rows: List[Table3Row], sweep: List[TradeoffPoint]) -> str:
    acc = ascii_table(
        ["Model", "Top-1 Accuracy"],
        [[r.display_name, f"{100 * r.top1:.1f}%"] for r in rows],
    )
    trade = ascii_table(
        ["resolution", "quality", "est. accuracy", "bytes/frame"],
        [
            [
                p.resolution,
                f"{p.jpeg_quality:g}",
                f"{100 * p.estimated_accuracy:.1f}%",
                p.bytes_per_frame,
            ]
            for p in sweep
        ],
    )
    return (
        "Table III: top-1 model accuracy\n"
        + acc
        + "\n\nSec II-D accuracy/bytes trade-off (MobileNetV3Small estimator)\n"
        + trade
    )


def render_table4(settings_rows: List[tuple], ablation: List[AblationRow]) -> str:
    table = ascii_table(["Variable", "Value"], settings_rows)
    abl = ascii_table(
        ["configuration", "mean P (fps)", "mean T (/s)"],
        [
            [row.label, f"{row.mean_throughput:.2f}", f"{row.mean_violation_rate:.2f}"]
            for row in ablation
        ],
    )
    return (
        "Table IV: PID settings\n"
        + table
        + "\n\nSetting ablation under the Table V scenario\n"
        + abl
    )
