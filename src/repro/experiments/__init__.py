"""Experiment harness: one entry point per paper table/figure.

Wiring lives in :mod:`repro.experiments.scenario`; each ``figN.py`` /
``tableN.py`` module builds the paper's exact configuration and
returns structured results; :mod:`repro.experiments.report` formats
them as the rows/series the paper prints.
"""

from repro.experiments.chaos import (
    ChaosResult,
    ChaosScenario,
    SupervisionChaosResult,
    default_chaos_injectors,
    run_chaos,
    run_supervision_chaos,
    supervision_chaos_injectors,
)
from repro.experiments.fleet import FleetMember, FleetScenario, run_fleet
from repro.experiments.parallel import run_many
from repro.experiments.scenario import (
    RunResult,
    Scenario,
    ScenarioContext,
    ScenarioRuntime,
    build_runtime,
    run_scenario,
)
from repro.experiments.seeds import compare_across_seeds, run_across_seeds, win_rate
from repro.experiments.standard import extended_controllers, standard_controllers
from repro.experiments.validation import validate_all

__all__ = [
    "ChaosResult",
    "ChaosScenario",
    "FleetMember",
    "FleetScenario",
    "RunResult",
    "Scenario",
    "ScenarioContext",
    "ScenarioRuntime",
    "SupervisionChaosResult",
    "build_runtime",
    "compare_across_seeds",
    "default_chaos_injectors",
    "extended_controllers",
    "run_across_seeds",
    "run_chaos",
    "run_fleet",
    "run_many",
    "run_scenario",
    "run_supervision_chaos",
    "standard_controllers",
    "supervision_chaos_injectors",
    "validate_all",
    "win_rate",
]
