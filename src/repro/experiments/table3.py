"""Table III: top-1 model accuracy, plus the §II-D trade-off sweep.

Table III itself is a registry of published constants (the paper cites
[27], [28] for them).  The reproduction prints it and additionally
quantifies §II-D's qualitative claims with the accuracy estimator:
raising resolution or JPEG quality raises estimated accuracy *and*
bytes per frame — the tension FrameFeedback's offloading budget lives
under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.models.accuracy import AccuracyModel
from repro.models.frames import frame_bytes
from repro.models.zoo import MODEL_ZOO, ModelSpec


@dataclass(frozen=True)
class Table3Row:
    model: ModelSpec

    @property
    def display_name(self) -> str:
        return self.model.display_name

    @property
    def top1(self) -> float:
        return self.model.top1_accuracy


@dataclass(frozen=True)
class TradeoffPoint:
    """One (resolution, quality) operating point for a model."""

    model: ModelSpec
    resolution: int
    jpeg_quality: float
    estimated_accuracy: float
    bytes_per_frame: int


def run_table3() -> List[Table3Row]:
    """The Table III rows, in the paper's order."""
    order = (
        "efficientnet_b0",
        "efficientnet_b4",
        "mobilenet_v3_small",
        "mobilenet_v3_large",
    )
    return [Table3Row(MODEL_ZOO[name]) for name in order]


def run_tradeoff_sweep(
    model_name: str = "mobilenet_v3_small",
    resolutions: Tuple[int, ...] = (112, 224, 448),
    qualities: Tuple[float, ...] = (30.0, 60.0, 85.0, 95.0),
) -> List[TradeoffPoint]:
    """Accuracy/bytes sweep quantifying §II-D."""
    model = MODEL_ZOO[model_name]
    estimator = AccuracyModel(model)
    points: List[TradeoffPoint] = []
    for res in resolutions:
        for q in qualities:
            points.append(
                TradeoffPoint(
                    model=model,
                    resolution=res,
                    jpeg_quality=q,
                    estimated_accuracy=estimator.estimate(res, q),
                    bytes_per_frame=frame_bytes(res, q),
                )
            )
    return points
