"""Table II: local processing rates ``P_l`` per device/model.

The paper measured these on hardware; here they are cost-model inputs,
so the reproduction *recovers* them by running the full local pipeline
(camera at 30 fps -> skip-when-busy engine -> completion counting) and
measuring the achieved rate — a round-trip check that the device
substrate reproduces its own calibration through the system dynamics,
not just by echoing constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.device.camera import FrameSource
from repro.device.local import LocalPipeline
from repro.models.device_profiles import (
    DEVICE_PROFILES,
    DeviceProfile,
    local_rate,
)
from repro.models.latency import LocalLatencyModel
from repro.models.zoo import EFFICIENTNET_B0, MOBILENET_V3_SMALL, ModelSpec
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry

#: the two models Table II reports
TABLE2_MODELS: Tuple[ModelSpec, ...] = (MOBILENET_V3_SMALL, EFFICIENTNET_B0)


@dataclass(frozen=True)
class Table2Cell:
    """One measured cell of Table II."""

    device: DeviceProfile
    model: ModelSpec
    paper_rate: float
    measured_rate: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured_rate - self.paper_rate) / self.paper_rate


def measure_local_rate(
    device: DeviceProfile,
    model: ModelSpec,
    duration: float = 120.0,
    frame_rate: float = 30.0,
    seed: int = 0,
) -> float:
    """Measure the local pipeline's completion rate for one cell."""
    env = Environment()
    rng = RngRegistry(seed)
    pipeline = LocalPipeline(
        env,
        LocalLatencyModel(device, model),
        rng.stream(f"local:{device.name}:{model.name}"),
    )
    FrameSource(
        env,
        frame_rate=frame_rate,
        nbytes=0,
        sink=lambda frame: pipeline.offer(frame),
        total_frames=None,
    )
    # Skip a warmup second so the measured window is steady-state.
    env.run(until=1.0)
    start_completed = pipeline.completed
    env.run(until=1.0 + duration)
    return (pipeline.completed - start_completed) / duration


def run_table2(duration: float = 120.0, seed: int = 0) -> List[Table2Cell]:
    """Measure every Table II cell."""
    cells: List[Table2Cell] = []
    for device in DEVICE_PROFILES.values():
        for model in TABLE2_MODELS:
            paper = local_rate(device, model)
            measured = measure_local_rate(device, model, duration, seed=seed)
            cells.append(
                Table2Cell(
                    device=device,
                    model=model,
                    paper_rate=paper,
                    measured_rate=measured,
                )
            )
    return cells
