"""Combined network + server-load stress (§IV-C's mentioned-but-unplotted case).

    "Combining both sources of end-to-end latency largely works
    additively to create more unsuccessful offload requests."

The paper cuts this for space; the reproduction runs it: Table V's
network schedule and Table VI's load schedule applied simultaneously
(Table VI's 100 s envelope is stretched to Table V's ~133 s run).  The
additivity claim is checked by comparing FrameFeedback's achieved
offloading under (network only), (load only) and (both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.device.config import DeviceConfig
from repro.experiments.scenario import RunResult, Scenario, run_scenario
from repro.experiments.standard import ControllerFactory, standard_controllers
from repro.workloads.loadgen import LoadSchedule
from repro.workloads.schedules import TABLE_VI_LOAD, table_v_schedule


def stretched_table_vi(factor: float) -> LoadSchedule:
    """Table VI with its timeline scaled by ``factor``."""
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    return LoadSchedule.from_rows(
        [(start * factor, rate) for start, rate in TABLE_VI_LOAD]
    )


@dataclass
class CombinedResult:
    runs: Dict[str, RunResult]

    def mean_throughput(self, name: str) -> float:
        return self.runs[name].qos.mean_throughput


def run_combined(
    seed: int = 0,
    total_frames: int = 4000,
    controllers: "Dict[str, ControllerFactory] | None" = None,
) -> CombinedResult:
    """Both schedules at once, every controller."""
    device = DeviceConfig(total_frames=total_frames)
    duration = device.stream_duration + 1.0
    load = stretched_table_vi(duration / 100.0)
    controllers = controllers or standard_controllers()
    runs = {}
    for name, factory in controllers.items():
        scenario = Scenario(
            controller_factory=factory,
            device=device,
            network=table_v_schedule(),
            load=load,
            duration=duration,
            seed=seed,
        )
        runs[name] = run_scenario(scenario)
    return CombinedResult(runs=runs)


def run_additivity_check(seed: int = 0, total_frames: int = 2400) -> Dict[str, float]:
    """FrameFeedback's mean timeout rate under each stressor alone and both.

    Returns ``{"network": T_n-ish, "load": T_l-ish, "both": T}`` —
    the §IV-C additivity claim predicts both >= max(network, load).
    """
    from repro.experiments.standard import framefeedback_factory

    device = DeviceConfig(total_frames=total_frames)
    duration = device.stream_duration + 1.0
    load = stretched_table_vi(duration / 100.0)

    def mean_t(network, load_schedule) -> float:
        scenario = Scenario(
            controller_factory=framefeedback_factory(),
            device=device,
            network=network,
            load=load_schedule,
            duration=duration,
            seed=seed,
        )
        return run_scenario(scenario).qos.mean_violation_rate

    return {
        "network": mean_t(table_v_schedule(), None),
        "load": mean_t(None, load),
        "both": mean_t(table_v_schedule(), load),
    }
