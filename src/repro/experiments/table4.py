"""Table IV: the published controller settings, plus ablations.

Table IV is a settings table; reproducing it means (a) asserting the
defaults in code match it and (b) showing *why* each setting earns its
place.  The ablation grid perturbs one Table IV row at a time and
re-runs the Fig 3 scenario, reporting mean throughput and violation
rate — quantifying §III's design arguments (the dropped integral term,
the asymmetric update clamps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.control.framefeedback import PAPER_SETTINGS, FrameFeedbackSettings
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.standard import framefeedback_factory
from repro.workloads.schedules import table_v_schedule


@dataclass(frozen=True)
class AblationRow:
    """One ablated configuration's whole-run QoS."""

    label: str
    settings: FrameFeedbackSettings
    mean_throughput: float
    mean_violation_rate: float


def paper_settings_rows() -> List[tuple]:
    """Table IV verbatim, as (variable, value) rows."""
    s = PAPER_SETTINGS
    return [
        ("K_P", f"{s.kp:g}"),
        ("K_I", f"{s.ki:g}"),
        ("K_D", f"{s.kd:g}"),
        ("Update minimum", f"{s.update_min_frac:g} * F_s"),
        ("Update maximum", f"{s.update_max_frac:g} * F_s"),
        ("Measure Frequency", f"{1.0 / s.measure_period:g}"),
    ]


def ablation_grid() -> Dict[str, FrameFeedbackSettings]:
    """Table IV with one row perturbed at a time."""
    base = PAPER_SETTINGS
    return {
        "paper (Table IV)": base,
        "with integral (Ki=0.05)": FrameFeedbackSettings(
            kp=base.kp, ki=0.05, kd=base.kd
        ),
        "no derivative (Kd=0)": FrameFeedbackSettings(kp=base.kp, ki=0.0, kd=0.0),
        "symmetric clamps (+/-0.1 Fs)": FrameFeedbackSettings(
            kp=base.kp, kd=base.kd, update_min_frac=-0.1, update_max_frac=0.1
        ),
        "wide clamps (+/-0.5 Fs)": FrameFeedbackSettings(
            kp=base.kp, kd=base.kd, update_min_frac=-0.5, update_max_frac=0.5
        ),
        "hot gains (Kp=0.6)": FrameFeedbackSettings(kp=0.6, kd=base.kd),
    }


def run_table4_ablation(
    seed: int = 0, total_frames: int = 2400
) -> List[AblationRow]:
    """Run the Fig 3 scenario under each ablated setting."""
    device = DeviceConfig(total_frames=total_frames)
    rows: List[AblationRow] = []
    for label, settings in ablation_grid().items():
        scenario = Scenario(
            controller_factory=framefeedback_factory(settings),
            device=device,
            network=table_v_schedule(),
            seed=seed,
        )
        result = run_scenario(scenario)
        rows.append(
            AblationRow(
                label=label,
                settings=settings,
                mean_throughput=result.qos.mean_throughput,
                mean_violation_rate=result.qos.mean_violation_rate,
            )
        )
    return rows
