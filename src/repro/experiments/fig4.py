"""Figure 4: controller comparison under the Table VI server load.

Same protocol as Fig 3 (4,000 frames at 30 fps) but the network stays
ideal and *other devices* inject request volume per Table VI, ramping
0 -> 150 -> 0 req/s.  Expected shape (§IV-E): "Up until about 150
additional requests, our Pi can fit in some offloading when controlled
by FrameFeedback.  The other controllers have lower throughput due to
their inability to adapt in a fine-grained way."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.device.config import DeviceConfig
from repro.experiments.scenario import RunResult, Scenario, run_scenario
from repro.experiments.standard import ControllerFactory, standard_controllers
from repro.metrics.qos import PhaseSummary, summarize_phases
from repro.metrics.timeseries import TimeSeries
from repro.workloads.schedules import TABLE_VI_LOAD, table_vi_schedule

PHASE_LABELS = tuple(f"load={int(rate)}/s" for _, rate in TABLE_VI_LOAD)


@dataclass
class Fig4Result:
    """Per-controller run results plus the per-phase summary."""

    runs: Dict[str, RunResult]
    phases: List[PhaseSummary]
    duration: float

    @property
    def throughput(self) -> Dict[str, TimeSeries]:
        return {name: run.traces.throughput for name, run in self.runs.items()}

    @property
    def framefeedback_offload(self) -> TimeSeries:
        return self.runs["FrameFeedback"].traces.offload_target


def run_fig4(
    seed: int = 0,
    total_frames: int = 4000,
    controllers: Optional[Dict[str, ControllerFactory]] = None,
) -> Fig4Result:
    """Run the Fig 4 experiment for every controller (same seed)."""
    device = DeviceConfig(total_frames=total_frames)
    duration = device.stream_duration + 1.0
    controllers = controllers or standard_controllers()
    runs: Dict[str, RunResult] = {}
    for name, factory in controllers.items():
        scenario = Scenario(
            controller_factory=factory,
            device=device,
            load=table_vi_schedule(),
            duration=duration,
            seed=seed,
        )
        runs[name] = run_scenario(scenario)
    phases = summarize_phases(
        {name: run.traces.throughput for name, run in runs.items()},
        boundaries=[row[0] for row in TABLE_VI_LOAD],
        end=duration,
        labels=PHASE_LABELS,
    )
    return Fig4Result(runs=runs, phases=phases, duration=duration)
