"""The §II-A.5 energy observation: CPU usage local vs. offloading.

    "Raspberry Pi CPU usage drops from 50.2% to 22.3% on average when
    transitioning from local execution to offloading."

Reproduced by running the full device under LocalOnly and under
AlwaysOffload on an ideal link and averaging the per-second CPU
utilization series the device records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.baselines import AlwaysOffloadController, LocalOnlyController
from repro.device.config import DeviceConfig
from repro.experiments.scenario import Scenario, run_scenario
from repro.netem.profiles import IDEAL
from repro.workloads.schedules import steady_schedule

#: the paper's reported averages
PAPER_LOCAL_CPU = 0.502
PAPER_OFFLOAD_CPU = 0.223


@dataclass(frozen=True)
class EnergyResult:
    local_cpu: float
    offload_cpu: float

    @property
    def drop(self) -> float:
        return self.local_cpu - self.offload_cpu


def run_energy(seed: int = 0, total_frames: int = 1800) -> EnergyResult:
    """Measure mean CPU utilization under the two extreme policies."""
    device = DeviceConfig(total_frames=total_frames)

    def mean_cpu(factory) -> float:
        scenario = Scenario(
            controller_factory=factory,
            device=device,
            network=steady_schedule(IDEAL),
            seed=seed,
        )
        result = run_scenario(scenario)
        return float(result.traces.cpu_utilization.values.mean())

    return EnergyResult(
        local_cpu=mean_cpu(lambda c: LocalOnlyController()),
        offload_cpu=mean_cpu(lambda c: AlwaysOffloadController()),
    )
