"""Controller tournament: the whole zoo raced across the scenario matrix.

Every cell of the matrix is one deterministic chaos run — a
:class:`~repro.search.language.ScenarioSpec` with the cell's
controller substituted — scored as **deadline-violation regret**
against the clairvoyant oracle (:mod:`repro.control.oracle`) on the
*same spec at the same seed*:

    ``regret = mean_violation_rate(controller) - mean_violation_rate(Oracle)``

Regret can go negative: the oracle is clairvoyant about *schedules*
(bandwidth, load), not about injected faults, so a defensive policy
may beat it inside an outage window.  The report ranks controllers by
mean regret across the matrix.

The matrix fans out through :func:`repro.experiments.parallel.map_jobs`
(cells travel as dicts, the same pool discipline the adversarial
search uses), and the report is **byte-deterministic**: two runs of
:func:`run_tournament` with the same config serialize to identical
bytes via :func:`dumps_report`.  Every built-in scenario keeps nonzero
link loss or a multi-server topology in *every* phase, which forces
the hybrid kernel's fluid regime to veto (``lossy-link`` /
``multi-server``) — so reports are byte-identical across
``REPRO_KERNEL=exact`` and ``REPRO_KERNEL=hybrid`` too, and the
committed tournament golden replays on both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.search.language import ScenarioSpec
from repro.search.runner import QOS_DECIMALS, qos_summary, run_spec

#: bump on any change to the report document structure
TOURNAMENT_VERSION = 1

#: the scoring reference; always run once per scenario, never ranked
ORACLE = "Oracle"


def default_lineup() -> List[str]:
    """The full zoo, in registry order (the default contestants)."""
    from repro.control.zoo import zoo_entries

    return [entry.name for entry in zoo_entries()]


# ----------------------------------------------------------------------
# the built-in scenario matrix
# ----------------------------------------------------------------------
def builtin_scenarios(frames: int = 900, seed: int = 0) -> Dict[str, ScenarioSpec]:
    """The canonical matrix: fig3-style sweep, chaos, fleet — 6 specs.

    Phase edges and fault windows sit at fixed quarters of the stream
    horizon so the matrix scales with ``frames`` without any window
    falling off the end.  Every spec carries >= 0.5 % link loss in
    every phase (or a two-server topology), keeping hybrid-kernel
    replays byte-exact (see module docstring).
    """
    horizon = frames / 30.0
    q = horizon / 4.0
    device = {"total_frames": frames}

    def spec(**data: Any) -> ScenarioSpec:
        return ScenarioSpec.from_dict(
            {"device": dict(device), "seed": seed, **data}
        )

    return {
        # Table-V-style bandwidth staircase, slightly lossy throughout
        "degraded_bandwidth": spec(
            network=[[0.0, 10.0, 1.0], [q, 4.0, 1.0], [2 * q, 1.5, 1.0],
                     [3 * q, 10.0, 1.0]],
        ),
        # steady bandwidth, loss ramps up and back down
        "lossy_link": spec(
            network=[[0.0, 10.0, 2.0], [q, 10.0, 7.0], [3 * q, 10.0, 3.0]],
        ),
        # Table-VI-style background-load wave on a lossy baseline
        "server_load": spec(
            network=[[0.0, 10.0, 0.5]],
            load=[[0.0, 0.0], [q, 90.0], [2 * q, 150.0], [3 * q, 90.0]],
        ),
        # bandwidth dip and load spike overlapping mid-stream
        "combined_stress": spec(
            network=[[0.0, 10.0, 1.0], [q, 3.0, 2.0], [3 * q, 10.0, 1.0]],
            load=[[0.0, 30.0], [2 * q, 120.0], [3 * q, 30.0]],
        ),
        # chaos: a link collapse then a server crash, lossy throughout
        "chaos_outage": spec(
            network=[[0.0, 10.0, 1.0]],
            faults=[
                {"kind": "bandwidth_collapse", "factor": 0.15,
                 "windows": [[q, 0.5 * q]]},
                {"kind": "server_crash", "windows": [[2.5 * q, 0.5 * q]]},
            ],
        ),
        # two-server fleet losing a member mid-stream (failover on)
        "fleet_failover": spec(
            topology={"servers": ["alpha", "beta"], "failover": True},
            faults=[
                {"kind": "server_kill", "server": "alpha",
                 "windows": [[q, q]]},
            ],
        ),
    }


def load_scenario_dir(directory) -> Dict[str, ScenarioSpec]:
    """Extra matrix columns from committed golden scenario files.

    Accepts both bare spec files and search-golden documents (which
    nest the spec under ``"scenario"``).  Files are taken in sorted
    order; each keeps its own embedded seed/frames so replays match
    the committed search outcome's conditions exactly.
    """
    out: Dict[str, ScenarioSpec] = {}
    for path in sorted(Path(directory).glob("*.json")):
        with open(path) as fh:
            doc = json.load(fh)
        data = doc.get("scenario", doc) if isinstance(doc, dict) else doc
        out[path.stem] = ScenarioSpec.from_dict(data)
    return out


# ----------------------------------------------------------------------
# configuration and results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TournamentConfig:
    """One tournament: lineup x matrix at a seed."""

    seed: int = 0
    frames: int = 900
    #: contestants; empty means the full zoo (:func:`default_lineup`)
    controllers: Tuple[str, ...] = ()
    #: restrict the built-in matrix to these names (empty = all)
    scenarios: Tuple[str, ...] = ()
    #: directory of extra golden scenario files to include
    scenario_dir: Optional[str] = None
    workers: Optional[int] = None

    def lineup(self) -> List[str]:
        names = list(self.controllers) or default_lineup()
        return [n for n in names if n != ORACLE]

    def matrix(self) -> Dict[str, ScenarioSpec]:
        specs = builtin_scenarios(frames=self.frames, seed=self.seed)
        if self.scenarios:
            unknown = sorted(set(self.scenarios) - set(specs))
            if unknown:
                raise ValueError(
                    f"unknown scenario(s) {unknown}; "
                    f"built-ins: {sorted(specs)}"
                )
            specs = {k: v for k, v in specs.items() if k in self.scenarios}
        if self.scenario_dir:
            for name, spec in load_scenario_dir(self.scenario_dir).items():
                specs.setdefault(name, spec)
        return specs


@dataclass
class CellResult:
    """One (scenario, controller) run, scored against the oracle."""

    scenario: str
    controller: str
    seed: int
    regret: float
    qos: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "controller": self.controller,
            "seed": self.seed,
            "regret": self.regret,
            "qos": self.qos,
        }


@dataclass
class Standing:
    """One controller's aggregate across the matrix."""

    controller: str
    mean_regret: float
    max_regret: float
    wins: int
    mean_violation_rate: float
    mean_throughput: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "controller": self.controller,
            "mean_regret": self.mean_regret,
            "max_regret": self.max_regret,
            "wins": self.wins,
            "mean_violation_rate": self.mean_violation_rate,
            "mean_throughput": self.mean_throughput,
        }


@dataclass
class TournamentResult:
    """The scored matrix plus the ranking (the report's substance)."""

    config: TournamentConfig
    scenarios: Dict[str, ScenarioSpec]
    oracle_qos: Dict[str, Dict[str, Any]]
    cells: List[CellResult] = field(default_factory=list)
    ranking: List[Standing] = field(default_factory=list)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _run_cell_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: one cell run, dicts in and out (picklable)."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    result = run_spec(spec, controller=payload["controller"])
    return {
        "scenario": payload["scenario"],
        "controller": payload["controller"],
        "seed": spec.seed,
        "qos": qos_summary(result.run.qos),
    }


def run_tournament(config: TournamentConfig = TournamentConfig()) -> TournamentResult:
    """Race the lineup across the matrix; deterministic in the config."""
    from repro.experiments.parallel import map_jobs

    lineup = config.lineup()
    if not lineup:
        raise ValueError("tournament needs at least one non-oracle controller")
    scenarios = config.matrix()
    if not scenarios:
        raise ValueError("tournament needs at least one scenario")

    names = sorted(scenarios)
    payloads = [
        {"scenario": name, "spec": scenarios[name].data, "controller": controller}
        for name in names
        for controller in [ORACLE, *lineup]
    ]
    raw = map_jobs(_run_cell_payload, payloads, workers=config.workers)

    oracle_qos = {
        r["scenario"]: r["qos"] for r in raw if r["controller"] == ORACLE
    }
    cells = [
        CellResult(
            scenario=r["scenario"],
            controller=r["controller"],
            seed=r["seed"],
            regret=round(
                r["qos"]["mean_violation_rate"]
                - oracle_qos[r["scenario"]]["mean_violation_rate"],
                QOS_DECIMALS,
            ),
            qos=r["qos"],
        )
        for r in raw
        if r["controller"] != ORACLE
    ]
    return TournamentResult(
        config=config,
        scenarios=scenarios,
        oracle_qos=oracle_qos,
        cells=cells,
        ranking=_rank(cells, lineup, names),
    )


def _rank(cells: List[CellResult], lineup: Sequence[str],
          scenario_names: Sequence[str]) -> List[Standing]:
    """Mean-regret ranking (ties broken by name, so order is total)."""
    by_controller: Dict[str, List[CellResult]] = {name: [] for name in lineup}
    for cell in cells:
        by_controller[cell.controller].append(cell)
    best_per_scenario = {
        name: min(c.regret for c in cells if c.scenario == name)
        for name in scenario_names
    }
    standings = []
    for name, own in by_controller.items():
        n = len(own)
        standings.append(
            Standing(
                controller=name,
                mean_regret=round(sum(c.regret for c in own) / n, QOS_DECIMALS),
                max_regret=round(max(c.regret for c in own), QOS_DECIMALS),
                wins=sum(
                    1 for c in own if c.regret == best_per_scenario[c.scenario]
                ),
                mean_violation_rate=round(
                    sum(c.qos["mean_violation_rate"] for c in own) / n,
                    QOS_DECIMALS,
                ),
                mean_throughput=round(
                    sum(c.qos["mean_throughput"] for c in own) / n, QOS_DECIMALS
                ),
            )
        )
    standings.sort(key=lambda s: (s.mean_regret, s.controller))
    return standings


# ----------------------------------------------------------------------
# the report artifact
# ----------------------------------------------------------------------
def report_document(result: TournamentResult) -> Dict[str, Any]:
    """The JSON-ready report (sorted, rounded, version-stamped)."""
    return {
        "version": TOURNAMENT_VERSION,
        "seed": result.config.seed,
        "frames": result.config.frames,
        "controllers": list(result.config.lineup()),
        "scenarios": {
            name: {
                "spec": result.scenarios[name].data,
                "oracle_qos": result.oracle_qos[name],
            }
            for name in sorted(result.scenarios)
        },
        "cells": [
            c.as_dict()
            for c in sorted(result.cells, key=lambda c: (c.scenario, c.controller))
        ],
        "ranking": [s.as_dict() for s in result.ranking],
    }


def dumps_report(doc: Dict[str, Any]) -> str:
    """Canonical byte-stable report serialization (newline-terminated)."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def render_report(result: TournamentResult) -> str:
    """The human-readable markdown ranking table."""
    lines = [
        f"# Controller tournament (seed={result.config.seed}, "
        f"{len(result.config.lineup())} controllers x "
        f"{len(result.scenarios)} scenarios)",
        "",
        "Regret = mean deadline-violation rate minus the clairvoyant "
        "oracle's, same spec and seed (violations/s; lower is better).",
        "",
        "| rank | controller | mean regret | max regret | wins | mean T | mean P |",
        "|---:|---|---:|---:|---:|---:|---:|",
    ]
    for i, s in enumerate(result.ranking, start=1):
        lines.append(
            f"| {i} | {s.controller} | {s.mean_regret:.3f} | "
            f"{s.max_regret:.3f} | {s.wins} | "
            f"{s.mean_violation_rate:.3f} | {s.mean_throughput:.2f} |"
        )
    lines += ["", "## Matrix (regret per cell)", ""]
    names = sorted(result.scenarios)
    header = "| controller | " + " | ".join(names) + " |"
    lines += [header, "|---|" + "---:|" * len(names)]
    regrets = {(c.scenario, c.controller): c.regret for c in result.cells}
    for s in result.ranking:
        row = " | ".join(f"{regrets[(n, s.controller)]:.3f}" for n in names)
        lines.append(f"| {s.controller} | {row} |")
    lines += [
        "",
        "Oracle mean violation rate per scenario: "
        + ", ".join(
            f"{n}={result.oracle_qos[n]['mean_violation_rate']:.3f}/s"
            for n in names
        ),
    ]
    return "\n".join(lines)
