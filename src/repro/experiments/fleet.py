"""Multi-device fleets sharing one edge server (§II-A.1 multi-tenancy).

The paper's testbed runs three Pis concurrently against one server
(§IV-A); :class:`FleetScenario` generalizes :class:`Scenario` to N
devices, each with its own radio link, controller instance, and seed
stream, all submitting to one shared :class:`EdgeServer`.  Fairness
questions (who starves when the server saturates?) only exist at this
level, which is why the batch-policy ablation lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.control.base import Controller
from repro.device.config import DeviceConfig
from repro.device.device import EdgeDevice
from repro.fleet.config import FleetConfig
from repro.metrics.qos import QosReport
from repro.models.latency import GpuBatchModel
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.netem.schedule import NetworkSchedule
from repro.server.batching import BatchPolicy
from repro.server.server import EdgeServer, ServerStats
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.loadgen import BackgroundLoad, LoadSchedule


@dataclass(frozen=True)
class FleetMember:
    """One device's slot in the fleet."""

    config: DeviceConfig
    #: per-member link conditions (None -> defaults); members may have
    #: heterogeneous radios, as real deployments do
    link: Optional[LinkConditions] = None
    #: per-member network schedule overrides ``link`` when present
    network: Optional[NetworkSchedule] = None


@dataclass
class FleetScenario:
    """N devices + one server + optional background load."""

    members: Sequence[FleetMember]
    controller_factory: Callable[[DeviceConfig], Controller]
    load: Optional[LoadSchedule] = None
    duration: Optional[float] = None
    seed: int = 0
    gpu_model: GpuBatchModel = field(default_factory=GpuBatchModel)
    batch_policy: BatchPolicy = BatchPolicy.FIFO
    #: server names — empty keeps the classic single shared server;
    #: two or more spin up a :class:`~repro.fleet.pool.ServerPool`
    #: with per-device routers (each device load-balances across the
    #: pool and fails over around ejected members)
    servers: Sequence[str] = ()
    #: routing/health policy for the pool (None -> FleetConfig defaults)
    fleet_config: Optional[FleetConfig] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("fleet needs at least one member")
        names = [m.config.name for m in self.members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")
        server_names = list(self.servers)
        if len(set(server_names)) != len(server_names):
            raise ValueError(f"duplicate server names: {server_names}")

    @property
    def run_duration(self) -> float:
        if self.duration is not None:
            return self.duration
        return max(m.config.stream_duration for m in self.members) + 2.0


@dataclass
class FleetResult:
    """Per-device results plus shared-server statistics."""

    devices: Dict[str, QosReport]
    server_stats: ServerStats
    gpu_utilization: float
    elapsed: float
    #: GPU frames per batch — small values are the §II-A.1 hardware
    #: fragmentation a single tenant causes
    mean_batch_size: float = 0.0
    #: per-server stats for multi-server runs (empty otherwise)
    per_server_stats: Dict[str, ServerStats] = field(default_factory=dict)
    #: pool routing/health counters (``fleet.*``) for multi-server runs
    fleet_extras: Dict[str, float] = field(default_factory=dict)

    def throughputs(self) -> Dict[str, float]:
        return {name: qos.mean_throughput for name, qos in self.devices.items()}

    @property
    def fleet_mean_throughput(self) -> float:
        values = list(self.throughputs().values())
        return sum(values) / len(values)

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-device throughput (1 = equal)."""
        x = np.array(list(self.throughputs().values()))
        if not x.any():
            return 1.0
        return float(x.sum() ** 2 / (len(x) * (x**2).sum()))


def run_fleet(scenario: FleetScenario) -> FleetResult:
    """Execute a fleet scenario deterministically."""
    env = Environment()
    rng = RngRegistry(scenario.seed)
    pool = None
    if scenario.servers:
        from repro.fleet.pool import ServerPool
        from repro.fleet.router import Router

        edge_servers = [
            EdgeServer(
                env,
                rng.stream(f"server:{sname}"),
                cost_model=scenario.gpu_model,
                batch_policy=scenario.batch_policy,
                name=sname,
                trace_identity=True,
            )
            for sname in scenario.servers
        ]
        pool = ServerPool(env, edge_servers, scenario.fleet_config)
        server = edge_servers[0]
    else:
        server = EdgeServer(
            env,
            rng.stream("server"),
            cost_model=scenario.gpu_model,
            batch_policy=scenario.batch_policy,
        )
    if scenario.load is not None:
        BackgroundLoad(env, server, scenario.load, rng.stream("background"))

    devices: List[EdgeDevice] = []
    for member in scenario.members:
        name = member.config.name
        box = ConditionBox(
            member.network.at(0.0)
            if member.network is not None
            else (member.link or LinkConditions())
        )
        uplink = Link(env, rng.stream(f"uplink:{name}"), box, name=f"up:{name}")
        downlink = Link(env, rng.stream(f"downlink:{name}"), box, name=f"down:{name}")
        if member.network is not None:
            member.network.install(env, box)
        controller = scenario.controller_factory(member.config)
        # each device gets its own Router so round-robin rotation is
        # per-device state, not cross-device coupling
        router = Router(pool) if pool is not None else None
        devices.append(
            EdgeDevice(
                env,
                member.config,
                controller,
                uplink=uplink,
                downlink=downlink,
                server=server,
                rng=rng.stream(f"device:{name}"),
                router=router,
            )
        )

    duration = scenario.run_duration
    env.run(until=duration)
    if pool is not None:
        frames_run = sum(s.gpu.frames_run for s in pool.servers)
        batches_run = sum(s.gpu.batches_run for s in pool.servers)
        utilization = sum(
            s.gpu.utilization(duration) for s in pool.servers
        ) / len(pool.servers)
        per_server = {s.name: s.stats for s in pool.servers}
        extras = pool.extras()
    else:
        frames_run = server.gpu.frames_run
        batches_run = server.gpu.batches_run
        utilization = server.gpu.utilization(duration)
        per_server = {}
        extras = {}
    return FleetResult(
        devices={d.config.name: d.qos_report(duration) for d in devices},
        server_stats=server.stats,
        gpu_utilization=utilization,
        elapsed=duration,
        mean_batch_size=frames_run / max(batches_run, 1),
        per_server_stats=per_server,
        fleet_extras=extras,
    )


def homogeneous_fleet(
    n: int,
    total_frames: int = 1800,
    link: Optional[LinkConditions] = None,
    name_prefix: str = "pi",
) -> List[FleetMember]:
    """N identical members (the paper's three-Pi setup generalized)."""
    if n < 1:
        raise ValueError(f"need at least one device, got {n}")
    return [
        FleetMember(
            config=DeviceConfig(name=f"{name_prefix}{i}", total_frames=total_frames),
            link=link,
        )
        for i in range(n)
    ]
