"""Multi-device fleets sharing one edge server (§II-A.1 multi-tenancy).

The paper's testbed runs three Pis concurrently against one server
(§IV-A); :class:`FleetScenario` generalizes :class:`Scenario` to N
devices, each with its own radio link, controller instance, and seed
stream, all submitting to one shared :class:`EdgeServer`.  Fairness
questions (who starves when the server saturates?) only exist at this
level, which is why the batch-policy ablation lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.control.base import Controller
from repro.device.config import DeviceConfig
from repro.device.device import EdgeDevice
from repro.metrics.qos import QosReport
from repro.models.latency import GpuBatchModel
from repro.netem.link import ConditionBox, Link, LinkConditions
from repro.netem.schedule import NetworkSchedule
from repro.server.batching import BatchPolicy
from repro.server.server import EdgeServer, ServerStats
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.loadgen import BackgroundLoad, LoadSchedule


@dataclass(frozen=True)
class FleetMember:
    """One device's slot in the fleet."""

    config: DeviceConfig
    #: per-member link conditions (None -> defaults); members may have
    #: heterogeneous radios, as real deployments do
    link: Optional[LinkConditions] = None
    #: per-member network schedule overrides ``link`` when present
    network: Optional[NetworkSchedule] = None


@dataclass
class FleetScenario:
    """N devices + one server + optional background load."""

    members: Sequence[FleetMember]
    controller_factory: Callable[[DeviceConfig], Controller]
    load: Optional[LoadSchedule] = None
    duration: Optional[float] = None
    seed: int = 0
    gpu_model: GpuBatchModel = field(default_factory=GpuBatchModel)
    batch_policy: BatchPolicy = BatchPolicy.FIFO

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("fleet needs at least one member")
        names = [m.config.name for m in self.members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")

    @property
    def run_duration(self) -> float:
        if self.duration is not None:
            return self.duration
        return max(m.config.stream_duration for m in self.members) + 2.0


@dataclass
class FleetResult:
    """Per-device results plus shared-server statistics."""

    devices: Dict[str, QosReport]
    server_stats: ServerStats
    gpu_utilization: float
    elapsed: float
    #: GPU frames per batch — small values are the §II-A.1 hardware
    #: fragmentation a single tenant causes
    mean_batch_size: float = 0.0

    def throughputs(self) -> Dict[str, float]:
        return {name: qos.mean_throughput for name, qos in self.devices.items()}

    @property
    def fleet_mean_throughput(self) -> float:
        values = list(self.throughputs().values())
        return sum(values) / len(values)

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-device throughput (1 = equal)."""
        x = np.array(list(self.throughputs().values()))
        if not x.any():
            return 1.0
        return float(x.sum() ** 2 / (len(x) * (x**2).sum()))


def run_fleet(scenario: FleetScenario) -> FleetResult:
    """Execute a fleet scenario deterministically."""
    env = Environment()
    rng = RngRegistry(scenario.seed)
    server = EdgeServer(
        env,
        rng.stream("server"),
        cost_model=scenario.gpu_model,
        batch_policy=scenario.batch_policy,
    )
    if scenario.load is not None:
        BackgroundLoad(env, server, scenario.load, rng.stream("background"))

    devices: List[EdgeDevice] = []
    for member in scenario.members:
        name = member.config.name
        box = ConditionBox(
            member.network.at(0.0)
            if member.network is not None
            else (member.link or LinkConditions())
        )
        uplink = Link(env, rng.stream(f"uplink:{name}"), box, name=f"up:{name}")
        downlink = Link(env, rng.stream(f"downlink:{name}"), box, name=f"down:{name}")
        if member.network is not None:
            member.network.install(env, box)
        controller = scenario.controller_factory(member.config)
        devices.append(
            EdgeDevice(
                env,
                member.config,
                controller,
                uplink=uplink,
                downlink=downlink,
                server=server,
                rng=rng.stream(f"device:{name}"),
            )
        )

    duration = scenario.run_duration
    env.run(until=duration)
    return FleetResult(
        devices={d.config.name: d.qos_report(duration) for d in devices},
        server_stats=server.stats,
        gpu_utilization=server.gpu.utilization(duration),
        elapsed=duration,
        mean_batch_size=server.gpu.frames_run / max(server.gpu.batches_run, 1),
    )


def homogeneous_fleet(
    n: int,
    total_frames: int = 1800,
    link: Optional[LinkConditions] = None,
    name_prefix: str = "pi",
) -> List[FleetMember]:
    """N identical members (the paper's three-Pi setup generalized)."""
    if n < 1:
        raise ValueError(f"need at least one device, got {n}")
    return [
        FleetMember(
            config=DeviceConfig(name=f"{name_prefix}{i}", total_frames=total_frames),
            link=link,
        )
        for i in range(n)
    ]
