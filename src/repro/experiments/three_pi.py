"""The paper's literal data-collection setup: three concurrent Pis.

§IV-A: "For the collection of the data shown in Figures 2, 3 and 4,
we use the three Raspberry-Pi's concurrently sending streaming
requests to our edge server and evaluated their total inference
throughput."

The headline figures in this repository use a single measured device
(matching the figures' 0–30 fps axis); this module runs the literal
three-device configuration — the three Table II Pis, each with its own
shaped link and its own controller instance, sharing the GPU — and
reports both per-device and fleet-total throughput, so either reading
of the paper's sentence is covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.device.config import DeviceConfig
from repro.experiments.fleet import FleetMember, FleetResult, FleetScenario, run_fleet
from repro.models.device_profiles import PI_3B_1_2, PI_4B_1_2, PI_4B_1_4
from repro.netem.schedule import NetworkSchedule
from repro.workloads.loadgen import LoadSchedule
from repro.workloads.schedules import table_v_schedule


def three_pi_members(
    total_frames: int = 4000,
    network: Optional[Callable[[], NetworkSchedule]] = None,
) -> list:
    """The three Table II devices, MobileNetV3Small each (§IV-A)."""
    profiles = {
        "pi3b": PI_3B_1_2,
        "pi4b-r12": PI_4B_1_2,
        "pi4b-r14": PI_4B_1_4,
    }
    members = []
    for name, profile in profiles.items():
        members.append(
            FleetMember(
                config=DeviceConfig(
                    name=name, profile=profile, total_frames=total_frames
                ),
                # each device's radio is shaped identically but
                # independently (three NetEm instances, like three Pis
                # on one AP), so impairments are correlated in time
                # only through the shared schedule
                network=network() if network is not None else None,
            )
        )
    return members


@dataclass
class ThreePiResult:
    fleet: FleetResult

    @property
    def total_throughput(self) -> float:
        return sum(self.fleet.throughputs().values())

    @property
    def per_device(self) -> Dict[str, float]:
        return self.fleet.throughputs()


def run_three_pi(
    controller_factory,
    total_frames: int = 4000,
    use_table_v: bool = True,
    load: Optional[LoadSchedule] = None,
    seed: int = 0,
) -> ThreePiResult:
    """Run the three-Pi configuration under Table V and/or load."""
    scenario = FleetScenario(
        members=three_pi_members(
            total_frames,
            network=table_v_schedule if use_table_v else None,
        ),
        controller_factory=controller_factory,
        load=load,
        seed=seed,
    )
    return ThreePiResult(fleet=run_fleet(scenario))
