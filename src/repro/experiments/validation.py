"""Executable reproduction claims: EXPERIMENTS.md as code.

Each :class:`Claim` states one falsifiable sentence from the paper's
evaluation (or from this repository's extension findings), how it is
measured, and the acceptance predicate.  :func:`validate_all` runs the
whole list and returns structured verdicts — the programmatic answer
to "does this repository still reproduce the paper?".

``framefeedback validate`` prints the table; CI asserts every claim in
``tests/test_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


@dataclass(frozen=True)
class ClaimResult:
    """One verdict: the claim, the measured value(s), pass/fail."""

    claim_id: str
    statement: str
    measured: str
    passed: bool


@dataclass(frozen=True)
class Claim:
    claim_id: str
    statement: str
    #: returns (measured-description, passed)
    check: Callable[[int], Tuple[str, bool]]

    def run(self, frames: int) -> ClaimResult:
        measured, passed = self.check(frames)
        return ClaimResult(self.claim_id, self.statement, measured, passed)


# ----------------------------------------------------------------------
# claim checks (each builds what it needs lazily)
# ----------------------------------------------------------------------
def _fig3(frames: int):
    from repro.experiments.fig3 import run_fig3

    return run_fig3(seed=0, total_frames=frames)


def _check_fig3_intermediate(frames: int):
    result = _fig3(frames)
    ph = result.phases[1]  # bw=4
    adv = ph.advantage_over("FrameFeedback", "AllOrNothing")
    return f"bw=4 advantage {adv:.2f}x", 1.3 <= adv and ph.winner() == "FrameFeedback"


def _check_fig3_dead_network(frames: int):
    result = _fig3(frames)
    ph = result.phases[2]  # bw=1
    ff = ph.mean_throughput["FrameFeedback"]
    local = ph.mean_throughput["LocalOnly"]
    always = ph.mean_throughput["AlwaysOffload"]
    return (
        f"bw=1: FF {ff:.1f} vs local {local:.1f}, always {always:.1f}",
        abs(ff - local) < 2.0 and always < 2.0,
    )


def _check_fig3_always_suboptimal(frames: int):
    result = _fig3(frames)
    ff = result.runs["FrameFeedback"].qos.mean_throughput
    always = result.runs["AlwaysOffload"].qos.mean_throughput
    return f"whole-run FF {ff:.1f} vs AlwaysOffload {always:.1f}", ff > always


def _check_fig4_graceful(frames: int):
    from repro.experiments.fig4 import run_fig4

    result = run_fig4(seed=0, total_frames=frames)
    peak = result.phases[4]  # 150 req/s
    ff = peak.mean_throughput["FrameFeedback"]
    loaded_winners = [ph.winner() for ph in result.phases[1:-1]]
    return (
        f"peak-load FF {ff:.1f} fps; loaded-phase winners {set(loaded_winners)}",
        abs(ff - 13.0) < 3.0 and set(loaded_winners) == {"FrameFeedback"},
    )


def _check_probe_fixed_point(frames: int):
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.netem.profiles import DEAD
    from repro.workloads.schedules import steady_schedule

    result = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=frames),
            network=steady_schedule(DEAD),
            seed=0,
        )
    )
    tail = result.traces.offload_target.values[-15:].mean()
    return f"dead-link P_o settles at {tail:.2f} fps", abs(tail - 3.0) < 1.5


def _check_table2_roundtrip(frames: int):
    from repro.experiments.table2 import run_table2

    cells = run_table2(duration=max(frames / 30.0, 30.0))
    worst = max(cell.relative_error for cell in cells)
    return f"worst P_l round-trip error {100 * worst:.1f}%", worst < 0.05


def _check_energy(frames: int):
    from repro.experiments.energy import run_energy

    res = run_energy(seed=0, total_frames=frames)
    return (
        f"CPU {100 * res.local_cpu:.1f}% local vs {100 * res.offload_cpu:.1f}% offload",
        abs(res.local_cpu - 0.502) < 0.05 and abs(res.offload_cpu - 0.223) < 0.05,
    )


def _check_fig2_tuning(frames: int):
    from repro.experiments.fig2 import gain_label, run_fig2

    result = run_fig2(duration=max(frames / 30.0, 45.0), seed=0)
    tuned = result.reports[gain_label(0.2, 0.26)]
    hot = result.reports[gain_label(0.4, 0.26)]
    return (
        f"overshoot tuned {tuned.overshoot:.2f} vs hot-Kp {hot.overshoot:.2f}",
        tuned.overshoot < hot.overshoot,
    )


def _check_attribution(frames: int):
    from repro.device.config import DeviceConfig
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.netem.profiles import SEVERE
    from repro.workloads.schedules import steady_schedule

    result = run_scenario(
        Scenario(
            controller_factory=framefeedback_factory(),
            device=DeviceConfig(total_frames=frames),
            network=steady_schedule(SEVERE),
            seed=0,
        )
    )
    rates = result.breakdown.cause_rates(0.0, result.elapsed)
    return (
        f"network-stress attribution T_n={rates['T_n']:.2f} T_l={rates['T_l']:.2f}",
        rates["T_n"] > 0.3 and rates["T_l"] < 0.2,
    )


CLAIMS: List[Claim] = [
    Claim(
        "fig3-intermediate",
        "FrameFeedback beats all-or-nothing by >=1.3x under intermediate "
        "network conditions (paper: '50% and up to 3x')",
        _check_fig3_intermediate,
    ),
    Claim(
        "fig3-dead",
        "On a dead link FrameFeedback matches LocalOnly while "
        "AlwaysOffload collapses (Fig 3, bw=1 phase)",
        _check_fig3_dead_network,
    ),
    Claim(
        "fig3-always-suboptimal",
        "'Clearly, the only-offloading strategy is suboptimal' (§IV-D)",
        _check_fig3_always_suboptimal,
    ),
    Claim(
        "fig4-graceful",
        "FrameFeedback wins every loaded phase and degrades to ~P_l at "
        "the 150 req/s peak (§IV-E)",
        _check_fig4_graceful,
    ),
    Claim(
        "probe-fixed-point",
        "Under total offload failure P_o settles at 0.1 F_s (§III-A.1)",
        _check_probe_fixed_point,
    ),
    Claim(
        "table2-roundtrip",
        "Table II local rates are recovered through the full device "
        "pipeline within 5%",
        _check_table2_roundtrip,
    ),
    Claim(
        "energy",
        "CPU usage ~50.2% local vs ~22.3% offloading (§II-A.5)",
        _check_energy,
    ),
    Claim(
        "fig2-tuning",
        "Table IV gains overshoot less after the loss injection than "
        "hot proportional gains (Fig 2 / §III-B)",
        _check_fig2_tuning,
    ),
    Claim(
        "tn-tl-attribution",
        "Pure network stress attributes to T_n, not T_l (Table I split)",
        _check_attribution,
    ),
]


def validate_all(frames: int = 4000, claims: Optional[List[Claim]] = None) -> List[ClaimResult]:
    """Run every claim at the given stream length."""
    return [claim.run(frames) for claim in (claims or CLAIMS)]


def render_results(results: List[ClaimResult]) -> str:
    from repro.experiments.report import ascii_table

    rows = [
        ["PASS" if r.passed else "FAIL", r.claim_id, r.measured]
        for r in results
    ]
    n_pass = sum(r.passed for r in results)
    return (
        "Reproduction claims:\n"
        + ascii_table(["verdict", "claim", "measured"], rows)
        + f"\n{n_pass}/{len(results)} claims hold"
    )
