"""Workload generation: background tenants and the paper's schedules."""

from repro.faults.server import OutageSchedule, OutageWindow
from repro.workloads.loadgen import BackgroundLoad, LoadSchedule, LoadPhase
from repro.workloads.mobility import (
    RadioModel,
    Trajectory,
    Waypoint,
    mobility_schedule,
    patrol_loop,
)
from repro.workloads.schedules import (
    FIG2_LOSS_INJECTION,
    TABLE_V_NETWORK,
    TABLE_VI_LOAD,
    table_v_schedule,
    table_vi_schedule,
)
from repro.workloads.video import VideoContentModel

__all__ = [
    "BackgroundLoad",
    "FIG2_LOSS_INJECTION",
    "LoadPhase",
    "LoadSchedule",
    "OutageSchedule",
    "OutageWindow",
    "RadioModel",
    "TABLE_V_NETWORK",
    "TABLE_VI_LOAD",
    "Trajectory",
    "VideoContentModel",
    "Waypoint",
    "mobility_schedule",
    "patrol_loop",
    "table_v_schedule",
    "table_vi_schedule",
]
