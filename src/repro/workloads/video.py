"""Video content model: realistic frame-size variation.

The core experiments use fixed-size frames (the paper streams ImageNet
images at one resolution/quality, §IV-A).  Real camera feeds are not
that polite: JPEG bytes track scene complexity, drift with lighting,
and jump at scene cuts.  :class:`VideoContentModel` generates a
correlated log-size process around the configured mean:

* AR(1) log-size: ``x_{k+1} = rho * x_k + sqrt(1-rho^2) * sigma * z``
  so the *stationary* spread is ``sigma`` regardless of correlation;
* Poisson scene cuts multiply the next frames' sizes while a short
  burst of high-entropy content passes.

Size variation matters to the controller because the link budget is in
*bytes*: a size burst behaves exactly like a bandwidth dip.
``benchmarks/bench_video_content.py`` quantifies how much headroom
FrameFeedback loses to content variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class VideoContentModel:
    """Stationary lognormal AR(1) frame-size process with scene cuts."""

    mean_bytes: int
    #: stationary std-dev of log-size (0.25 ~ +/-28% typical swing)
    sigma: float = 0.25
    #: AR(1) coefficient of log-size between consecutive frames
    correlation: float = 0.9
    #: scene cuts per second (at 30 fps, 0.1/s ~ every 10 s)
    scene_cut_rate: float = 0.1
    #: size multiplier immediately after a cut
    scene_cut_multiplier: float = 1.8
    #: frames over which a cut's inflation decays away
    scene_cut_decay_frames: int = 15
    frame_rate: float = 30.0

    def __post_init__(self) -> None:
        if self.mean_bytes <= 0:
            raise ValueError(f"mean bytes must be positive, got {self.mean_bytes}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.correlation < 1.0:
            raise ValueError(
                f"correlation must be in [0, 1), got {self.correlation}"
            )
        if self.scene_cut_rate < 0:
            raise ValueError("scene cut rate must be >= 0")
        if self.scene_cut_multiplier < 1.0:
            raise ValueError("scene cut multiplier must be >= 1")
        if self.frame_rate <= 0:
            raise ValueError("frame rate must be positive")

    def sampler(self, rng: np.random.Generator) -> Callable[[], int]:
        """A stateful per-frame byte sampler.

        The returned callable produces one frame size per call; state
        (AR level, cut decay) lives in the closure, keeping the model
        itself immutable and shareable.
        """
        # mean-1 lognormal: shift so E[size] == mean_bytes
        log_mean = -0.5 * self.sigma * self.sigma
        state = {"x": 0.0, "cut_decay": 0}
        innovation_scale = self.sigma * np.sqrt(1.0 - self.correlation**2)
        cut_prob = self.scene_cut_rate / self.frame_rate

        def sample() -> int:
            state["x"] = self.correlation * state["x"] + innovation_scale * rng.normal()
            size = self.mean_bytes * float(np.exp(log_mean + state["x"]))
            if rng.random() < cut_prob:
                state["cut_decay"] = self.scene_cut_decay_frames
            if state["cut_decay"] > 0:
                frac = state["cut_decay"] / self.scene_cut_decay_frames
                size *= 1.0 + (self.scene_cut_multiplier - 1.0) * frac
                state["cut_decay"] -= 1
            return max(int(round(size)), 200)

        return sample
