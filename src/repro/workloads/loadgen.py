"""Background tenant load: the §IV-C.2 server-load injector.

The paper injects multi-tenant load by having *other devices* send
request volume while the measured Pi runs.  Those devices have their
own (unshaped) network paths, so the injector submits requests to the
server directly with a small fixed network delay — the measured
device's shaped uplink is never shared with them, matching the paper's
topology where NetEm shapes only the Pi under test.

Arrivals are Poisson at the scheduled rate, alternating between the
two model families the paper notes it hits ("batch size limits are set
per model, so we hit both model types", §IV-C.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.server.requests import InferenceRequest, Response
from repro.server.server import EdgeServer
from repro.sim.core import Environment


@dataclass(frozen=True)
class LoadPhase:
    """One row of Table VI: ``rate`` requests/s from ``start`` onward."""

    start: float
    rate: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"phase start must be >= 0, got {self.start}")
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")


class LoadSchedule:
    """Piecewise-constant background request rate."""

    def __init__(self, phases: Sequence[LoadPhase]) -> None:
        if not phases:
            raise ValueError("schedule needs at least one phase")
        ordered = sorted(phases, key=lambda p: p.start)
        if ordered[0].start != 0.0:
            raise ValueError("first phase must start at t=0")
        starts = [p.start for p in ordered]
        if len(set(starts)) != len(starts):
            raise ValueError("duplicate phase start times")
        self.phases: List[LoadPhase] = list(ordered)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "LoadSchedule":
        """Build from ``(start, rate)`` tuples."""
        return cls([LoadPhase(start=float(s), rate=float(r)) for s, r in rows])

    def rate_at(self, t: float) -> float:
        rate = self.phases[0].rate
        for phase in self.phases:
            if phase.start <= t:
                rate = phase.rate
            else:
                break
        return rate

    @property
    def change_times(self) -> List[float]:
        return [p.start for p in self.phases]

    @property
    def peak_rate(self) -> float:
        return max(p.rate for p in self.phases)


class BackgroundLoad:
    """Poisson background request stream driven by a :class:`LoadSchedule`."""

    #: fixed one-way delay of the (unshaped) background tenants' network
    NETWORK_DELAY = 0.006

    def __init__(
        self,
        env: Environment,
        server: EdgeServer,
        schedule: LoadSchedule,
        rng: np.random.Generator,
        model_names: Sequence[str] = ("mobilenet_v3_small", "efficientnet_b0"),
        payload_bytes: int = 11_700,
        tenant_prefix: str = "bg",
        n_tenants: int = 8,
    ) -> None:
        if not model_names:
            raise ValueError("need at least one model")
        if n_tenants < 1:
            raise ValueError(f"need >= 1 tenant, got {n_tenants}")
        self.env = env
        self.server = server
        self.schedule = schedule
        self.rng = rng
        self.model_names = list(model_names)
        self.payload_bytes = payload_bytes
        self.tenants = [f"{tenant_prefix}{i}" for i in range(n_tenants)]
        self.sent = 0
        self.completed = 0
        self.rejected = 0
        self._counter = 0
        env.process(self._run(), name="background-load")

    # ------------------------------------------------------------------
    def _run(self):
        """Poisson arrivals; exact across rate changes.

        Because the exponential is memoryless, discarding an arrival
        that would land past the next schedule boundary and resampling
        at the boundary's new rate yields an exact piecewise-Poisson
        process.
        """
        env = self.env
        while True:
            rate = self.schedule.rate_at(env.now)
            next_change = self._next_change_after(env.now)
            if rate <= 0:
                if next_change == float("inf"):
                    return  # schedule ended at rate 0: nothing left to do
                yield env.sleep(next_change - env.now)
                continue
            gap = self.rng.exponential(1.0 / rate)
            if env.now + gap >= next_change:
                yield env.sleep(next_change - env.now)
                continue
            yield env.sleep(gap)
            self._submit_one()

    def _next_change_after(self, now: float) -> float:
        for t in self.schedule.change_times:
            if t > now + 1e-12:
                return t
        return float("inf")

    def _submit_one(self) -> None:
        self._counter += 1
        self.sent += 1
        model = self.model_names[self._counter % len(self.model_names)]
        tenant = self.tenants[self._counter % len(self.tenants)]
        request = InferenceRequest(
            tenant=tenant,
            model_name=model,
            sent_at=self.env.now,
            payload_bytes=self.payload_bytes,
            respond=self._on_response,
            frame_id=self._counter,
        )
        if self.env.slowpath:
            self.env.process(self._deliver(request))
        else:
            self.env.call_later(
                self.NETWORK_DELAY, self._deliver_cb, value=request
            )

    def _deliver(self, request: InferenceRequest):
        yield self.env.timeout(self.NETWORK_DELAY)
        self.server.submit(request)

    def _deliver_cb(self, event) -> None:
        self.server.submit(event.value)

    def _on_response(self, response: Response) -> None:
        if response.ok:
            self.completed += 1
        else:
            self.rejected += 1
