"""Mobility-driven network conditions (§II-A.4).

    "Most edge devices connect to the network wirelessly.  Movement
    and sources of interference can make connections unreliable."

Table V injects that unreliability by hand; this module derives it
from *motion*: a device follows a waypoint trajectory, and its link
quality follows the distance to the access point through a standard
log-distance path-loss model —

``bandwidth(d) = bw_ref * (d_ref / d) ^ (exponent / 2)``

(throughput scales roughly with SNR, SNR falls with distance to the
path-loss exponent; the square root folds the log2(1+SNR) flattening
into a single effective exponent).  Past ``loss_onset`` the packet
loss rate grows linearly toward the coverage edge, as links do when
they fall back through MCS rates and start dropping frames.

The output is an ordinary :class:`NetworkSchedule`, so a walking
security guard or a patrolling drone plugs into every existing
experiment unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.netem.link import LinkConditions
from repro.netem.schedule import NetworkSchedule, SchedulePhase


@dataclass(frozen=True)
class Waypoint:
    """Device position ``(x, y)`` metres at time ``t`` seconds."""

    t: float
    x: float
    y: float

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError(f"waypoint time must be >= 0, got {self.t}")


class Trajectory:
    """Piecewise-linear motion through waypoints."""

    def __init__(self, waypoints: Sequence[Waypoint]) -> None:
        if len(waypoints) < 1:
            raise ValueError("need at least one waypoint")
        ordered = sorted(waypoints, key=lambda w: w.t)
        times = [w.t for w in ordered]
        if len(set(times)) != len(times):
            raise ValueError("duplicate waypoint times")
        if ordered[0].t != 0.0:
            raise ValueError("first waypoint must be at t=0")
        self.waypoints: List[Waypoint] = list(ordered)

    @property
    def duration(self) -> float:
        return self.waypoints[-1].t

    def position_at(self, t: float) -> Tuple[float, float]:
        """Linear interpolation; clamped at the ends."""
        ws = self.waypoints
        if t <= ws[0].t:
            return ws[0].x, ws[0].y
        if t >= ws[-1].t:
            return ws[-1].x, ws[-1].y
        for a, b in zip(ws, ws[1:]):
            if a.t <= t <= b.t:
                frac = (t - a.t) / (b.t - a.t)
                return (a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
        raise AssertionError("unreachable")  # pragma: no cover

    def distance_to(self, t: float, point: Tuple[float, float]) -> float:
        x, y = self.position_at(t)
        return math.hypot(x - point[0], y - point[1])


@dataclass(frozen=True)
class RadioModel:
    """Distance -> link-quality mapping."""

    #: bandwidth units measured at the reference distance
    bw_ref: float = 10.0
    #: reference distance, metres
    d_ref: float = 10.0
    #: effective throughput-decay exponent (SNR path loss folded
    #: through the rate curve; ~2-3 for indoor Wi-Fi)
    exponent: float = 2.2
    #: usable range bounds on the derived bandwidth
    bw_floor: float = 0.5
    bw_ceiling: float = 10.0
    #: distance where loss starts, and where it reaches loss_max
    loss_onset: float = 35.0
    loss_edge: float = 70.0
    loss_max: float = 0.15

    def __post_init__(self) -> None:
        if self.bw_ref <= 0 or self.d_ref <= 0 or self.exponent <= 0:
            raise ValueError("bw_ref, d_ref and exponent must be positive")
        if not 0 < self.bw_floor <= self.bw_ceiling:
            raise ValueError("need 0 < bw_floor <= bw_ceiling")
        if not 0 <= self.loss_onset < self.loss_edge:
            raise ValueError("need 0 <= loss_onset < loss_edge")
        if not 0 <= self.loss_max < 1:
            raise ValueError("loss_max must be in [0, 1)")

    def bandwidth_at(self, distance: float) -> float:
        d = max(distance, 0.1)
        bw = self.bw_ref * (self.d_ref / d) ** (self.exponent / 2.0)
        return min(max(bw, self.bw_floor), self.bw_ceiling)

    def loss_at(self, distance: float) -> float:
        if distance <= self.loss_onset:
            return 0.0
        frac = min(1.0, (distance - self.loss_onset) / (self.loss_edge - self.loss_onset))
        return self.loss_max * frac

    def conditions_at(self, distance: float) -> LinkConditions:
        return LinkConditions(
            bandwidth=self.bandwidth_at(distance),
            loss=self.loss_at(distance),
        )


def mobility_schedule(
    trajectory: Trajectory,
    ap_position: Tuple[float, float] = (0.0, 0.0),
    radio: RadioModel = RadioModel(),
    step: float = 2.0,
    duration: "float | None" = None,
) -> NetworkSchedule:
    """Derive a network schedule from motion.

    Samples the trajectory every ``step`` seconds and maps distance to
    conditions through ``radio``.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    horizon = duration if duration is not None else max(trajectory.duration, step)
    phases = []
    t = 0.0
    while t < horizon:
        d = trajectory.distance_to(t, ap_position)
        phases.append(SchedulePhase(t, radio.conditions_at(d)))
        t += step
    return NetworkSchedule(phases)


def patrol_loop(
    radius_near: float = 5.0,
    radius_far: float = 45.0,
    lap_seconds: float = 60.0,
    laps: int = 2,
) -> Trajectory:
    """A guard's loop: walk away from the AP, around, and back.

    Produces the out-and-back distance profile whose derived schedule
    sweeps the link through every Table V regime each lap.
    """
    if radius_near <= 0 or radius_far <= radius_near:
        raise ValueError("need 0 < radius_near < radius_far")
    if lap_seconds <= 0 or laps < 1:
        raise ValueError("need positive lap time and >= 1 lap")
    waypoints = []
    for lap in range(laps):
        t0 = lap * lap_seconds
        waypoints += [
            Waypoint(t0, radius_near, 0.0),
            Waypoint(t0 + lap_seconds * 0.4, radius_far, 0.0),
            Waypoint(t0 + lap_seconds * 0.5, radius_far, radius_far * 0.3),
            Waypoint(t0 + lap_seconds * 0.9, radius_near, radius_near),
        ]
    waypoints.append(Waypoint(laps * lap_seconds, radius_near, 0.0))
    return Trajectory(waypoints)
