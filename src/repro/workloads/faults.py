"""Scheduled fault injection: server outage windows.

§II-A.3's scenario — "specific workloads may saturate a server, thus
causing QoS violations ... the system should respond by reducing
offloading" — in its hardest form: the server goes away entirely for a
window.  :class:`OutageSchedule` stalls an :class:`EdgeServer` over
configured windows; the controller under test only sees the resulting
timeout/rejection burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.server.server import EdgeServer
from repro.sim.core import Environment


@dataclass(frozen=True)
class OutageWindow:
    """One server stall: ``[start, start + duration)``."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"outage start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(f"outage duration must be positive, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration


class OutageSchedule:
    """A set of non-overlapping outage windows applied to a server."""

    def __init__(self, windows: Sequence[OutageWindow]) -> None:
        ordered = sorted(windows, key=lambda w: w.start)
        for a, b in zip(ordered, ordered[1:]):
            if b.start < a.end:
                raise ValueError(f"overlapping outages: {a} and {b}")
        self.windows: List[OutageWindow] = list(ordered)

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[float, float]]) -> "OutageSchedule":
        """Build from ``(start, duration)`` pairs."""
        return cls([OutageWindow(float(s), float(d)) for s, d in rows])

    def is_down(self, t: float) -> bool:
        return any(w.start <= t < w.end for w in self.windows)

    @property
    def total_downtime(self) -> float:
        return sum(w.duration for w in self.windows)

    def install(self, env: Environment, server: EdgeServer) -> None:
        """Apply the windows to ``server`` inside ``env``."""

        def driver():
            for window in self.windows:
                if window.start > env.now:
                    yield env.timeout(window.start - env.now)
                server.pause(window.duration)

        env.process(driver(), name="outage-schedule")
