"""Backward-compatibility shim: fault injection moved to :mod:`repro.faults`.

The original module held only :class:`OutageSchedule` (server stall
windows).  That grew into the full cross-layer chaos package —
link/server/device injectors, timeline algebra, recovery invariants —
under :mod:`repro.faults`; import from there in new code.

Importing this module raises a :class:`DeprecationWarning` pointing at
the new home.  The shim (and the warning) will be removed once nothing
imports it.
"""

from __future__ import annotations

import warnings

from repro.faults.server import OutageSchedule, OutageWindow
from repro.faults.windows import FaultTimeline, FaultWindow

warnings.warn(
    "repro.workloads.faults is deprecated; import OutageSchedule, "
    "OutageWindow, FaultTimeline and FaultWindow from repro.faults instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["FaultTimeline", "FaultWindow", "OutageSchedule", "OutageWindow"]
