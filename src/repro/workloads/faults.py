"""Backward-compatibility shim: fault injection moved to :mod:`repro.faults`.

The original module held only :class:`OutageSchedule` (server stall
windows).  That grew into the full cross-layer chaos package —
link/server/device injectors, timeline algebra, recovery invariants —
under :mod:`repro.faults`; import from there in new code.
"""

from __future__ import annotations

from repro.faults.server import OutageSchedule, OutageWindow
from repro.faults.windows import FaultTimeline, FaultWindow

__all__ = ["FaultTimeline", "FaultWindow", "OutageSchedule", "OutageWindow"]
