"""The paper's evaluation schedules, verbatim.

* Table V — network conditions for the Fig 3 experiment;
* Table VI — background request rate for the Fig 4 experiment;
* Fig 2's impairment — 7 % packet loss injected at t = 27 s.
"""

from __future__ import annotations

from repro.netem.link import LinkConditions
from repro.netem.schedule import NetworkSchedule, SchedulePhase
from repro.workloads.loadgen import LoadSchedule

#: Table V rows: (start time s, bandwidth units, loss %)
TABLE_V_NETWORK = (
    (0.0, 10.0, 0.0),
    (30.0, 4.0, 0.0),
    (45.0, 1.0, 0.0),
    (60.0, 10.0, 0.0),
    (90.0, 10.0, 7.0),
    (105.0, 4.0, 7.0),
)

#: Table VI rows: (start time s, background requests/s)
TABLE_VI_LOAD = (
    (0.0, 0.0),
    (10.0, 90.0),
    (20.0, 120.0),
    (35.0, 135.0),
    (50.0, 150.0),
    (60.0, 130.0),
    (75.0, 120.0),
    (90.0, 90.0),
    (100.0, 0.0),
)

#: Fig 2: ideal conditions, then 7 % loss "after 27 seconds"
FIG2_LOSS_INJECTION = (
    (0.0, 10.0, 0.0),
    (27.0, 10.0, 7.0),
)


def table_v_schedule() -> NetworkSchedule:
    """The Table V network schedule as a :class:`NetworkSchedule`."""
    return NetworkSchedule.from_rows(TABLE_V_NETWORK)


def table_vi_schedule() -> LoadSchedule:
    """The Table VI load schedule as a :class:`LoadSchedule`."""
    return LoadSchedule.from_rows(TABLE_VI_LOAD)


def fig2_schedule() -> NetworkSchedule:
    """Fig 2's loss-injection schedule."""
    return NetworkSchedule.from_rows(FIG2_LOSS_INJECTION)


def steady_schedule(conditions: LinkConditions) -> NetworkSchedule:
    """A constant-conditions schedule (tuning runs, unit tests)."""
    return NetworkSchedule([SchedulePhase(0.0, conditions)])
