"""Command-line entry point: regenerate any paper table or figure.

Installed as ``framefeedback`` (see pyproject).  Examples::

    framefeedback fig3                # Table V network comparison
    framefeedback fig4 --frames 2000  # shorter server-load run
    framefeedback table2              # P_l calibration round-trip
    framefeedback all                 # everything, in paper order
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _cmd_fig2(args: argparse.Namespace) -> str:
    from repro.experiments.fig2 import run_fig2
    from repro.experiments.report import render_fig2

    return render_fig2(run_fig2(seed=args.seed, duration=args.duration))


def _cmd_fig3(args: argparse.Namespace) -> str:
    from repro.experiments.fig3 import run_fig3
    from repro.experiments.report import render_fig3

    return render_fig3(run_fig3(seed=args.seed, total_frames=args.frames))


def _cmd_fig4(args: argparse.Namespace) -> str:
    from repro.experiments.fig4 import run_fig4
    from repro.experiments.report import render_fig4

    return render_fig4(run_fig4(seed=args.seed, total_frames=args.frames))


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments.report import render_table2
    from repro.experiments.table2 import run_table2

    return render_table2(run_table2(seed=args.seed))


def _cmd_table3(args: argparse.Namespace) -> str:
    from repro.experiments.report import render_table3
    from repro.experiments.table3 import run_table3, run_tradeoff_sweep

    return render_table3(run_table3(), run_tradeoff_sweep())


def _cmd_table4(args: argparse.Namespace) -> str:
    from repro.experiments.report import render_table4
    from repro.experiments.table4 import paper_settings_rows, run_table4_ablation

    return render_table4(paper_settings_rows(), run_table4_ablation(seed=args.seed))


def _cmd_energy(args: argparse.Namespace) -> str:
    from repro.experiments.energy import (
        PAPER_LOCAL_CPU,
        PAPER_OFFLOAD_CPU,
        run_energy,
    )

    res = run_energy(seed=args.seed)
    return (
        "Sec II-A.5 CPU usage, local vs offloading (paper vs measured)\n"
        f"local:     paper {100 * PAPER_LOCAL_CPU:.1f}%   "
        f"measured {100 * res.local_cpu:.1f}%\n"
        f"offload:   paper {100 * PAPER_OFFLOAD_CPU:.1f}%   "
        f"measured {100 * res.offload_cpu:.1f}%"
    )


def _cmd_controllers(args: argparse.Namespace) -> str:
    from repro.experiments.fig3 import run_fig3
    from repro.experiments.fig4 import run_fig4
    from repro.experiments.report import ascii_table
    from repro.experiments.standard import extended_controllers

    fig3 = run_fig3(seed=args.seed, total_frames=args.frames,
                    controllers=extended_controllers())
    fig4 = run_fig4(seed=args.seed, total_frames=args.frames,
                    controllers=extended_controllers())
    rows = [
        [
            name,
            f"{fig3.runs[name].qos.mean_throughput:6.2f}",
            f"{fig4.runs[name].qos.mean_throughput:6.2f}",
        ]
        for name in extended_controllers()
    ]
    return (
        "Extended controller lineup, whole-run mean P (fps):\n"
        + ascii_table(["controller", "Table V net", "Table VI load"], rows)
    )


def _cmd_breakdown(args: argparse.Namespace) -> str:
    from repro.device.config import DeviceConfig
    from repro.experiments.report import ascii_table
    from repro.experiments.scenario import Scenario, run_scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.workloads.schedules import table_v_schedule, table_vi_schedule

    device = DeviceConfig(total_frames=args.frames)
    rows = []
    for label, net, load in (
        ("Table V (network)", table_v_schedule(), None),
        ("Table VI (load)", None, table_vi_schedule()),
    ):
        result = run_scenario(
            Scenario(
                controller_factory=framefeedback_factory(),
                device=device,
                network=net,
                load=load,
                duration=device.stream_duration + 2.0,
                seed=args.seed,
            )
        )
        rates = result.breakdown.cause_rates(0.0, result.elapsed)
        rows.append([label, f"{rates['T_n']:5.2f}", f"{rates['T_l']:5.2f}"])
    return "Timeout attribution (violations/s):\n" + ascii_table(
        ["scenario", "T_n", "T_l"], rows
    )


def _cmd_fleet(args: argparse.Namespace) -> str:
    from repro.control.framefeedback import FrameFeedbackController
    from repro.experiments.fleet import FleetScenario, homogeneous_fleet, run_fleet
    from repro.experiments.report import ascii_table

    rows = []
    for n in (1, 2, 4, 8, 12):
        result = run_fleet(
            FleetScenario(
                members=homogeneous_fleet(n, total_frames=min(args.frames, 900)),
                controller_factory=lambda c: FrameFeedbackController(c.frame_rate),
                seed=args.seed,
            )
        )
        total = sum(result.throughputs().values())
        rows.append(
            [
                n,
                f"{total:7.1f}",
                f"{total / n:6.2f}",
                f"{result.gpu_utilization:5.2f}",
                f"{result.mean_batch_size:5.1f}",
                f"{result.jain_fairness():5.3f}",
            ]
        )
    return "Fleet scaling (FrameFeedback per device):\n" + ascii_table(
        ["devices", "aggregate P", "per-device", "GPU util", "batch", "Jain"], rows
    )


def _cmd_validate(args: argparse.Namespace) -> str:
    """Run every reproduction claim and print the verdict table."""
    from repro.experiments.validation import render_results, validate_all

    results = validate_all(frames=args.frames)
    return render_results(results)


def _cmd_netem(args: argparse.Namespace) -> str:
    """Emit the tc/NetEm script replaying a schedule on real hardware."""
    from repro.netem.commands import schedule_script, unit_equivalence_note
    from repro.workloads.schedules import fig2_schedule, table_v_schedule

    schedules = {"tablev": table_v_schedule, "fig2": fig2_schedule}
    name = args.schedule
    if name not in schedules:
        raise SystemExit(f"unknown schedule {name!r}; choose from {sorted(schedules)}")
    script = schedule_script(schedules[name](), interface=args.iface)
    return unit_equivalence_note() + "\n" + script


def _cmd_sweep(args: argparse.Namespace) -> str:
    import json as _json

    from repro.experiments.parallel import run_many, seed_sweep_configs
    from repro.experiments.report import ascii_table
    from repro.experiments.seeds import MetricSummary

    if not args.config:
        raise SystemExit("sweep requires --config <file.json>")
    with open(args.config) as fh:
        base = _json.load(fh)
    configs = seed_sweep_configs(base, range(args.seeds))
    summaries = run_many(configs, workers=args.workers)
    throughput = MetricSummary.from_values(
        "mean P", [s.mean_throughput for s in summaries]
    )
    violations = MetricSummary.from_values(
        "mean T", [s.mean_violation_rate for s in summaries]
    )
    rows = [
        [s.seed, f"{s.mean_throughput:6.2f}", f"{s.mean_violation_rate:5.2f}",
         f"{s.successful}/{s.total_frames}"]
        for s in summaries
    ]
    return (
        f"{args.seeds}-seed sweep of {base.get('controller', 'FrameFeedback')} "
        f"({args.workers or 'auto'} workers):\n"
        + ascii_table(["seed", "mean P", "mean T", "ok/total"], rows)
        + f"\n{throughput}\n{violations}"
    )


def _cmd_run(args: argparse.Namespace) -> str:
    import json as _json

    from repro.experiments.report import series_panel
    from repro.experiments.scenario import run_scenario
    from repro.io import export_run, scenario_from_dict

    if not args.config:
        raise SystemExit("run requires --config <file.json>")
    with open(args.config) as fh:
        scenario = scenario_from_dict(_json.load(fh))
    result = run_scenario(scenario)
    lines = [result.qos.row()]
    lines.append(
        series_panel(
            {
                "P": result.traces.throughput,
                "P_o": result.traces.offload_target,
                "T": result.traces.timeout_rate,
            },
            vmax=scenario.device.frame_rate,
        )
    )
    if args.export:
        paths = export_run(result, args.export)
        lines.append(f"exported: {paths['traces']}, {paths['qos']}")
    return "\n".join(lines)


def _cmd_chaos(args: argparse.Namespace):
    """Composed link+server+device fault run with recovery validation.

    Returns ``(text, exit_code)``: a failed recovery invariant exits
    non-zero so CI gates can consume the command directly.
    """
    import json as _json

    if args.realtime:
        return _chaos_realtime(args)

    from repro.control.aimd import AimdController
    from repro.control.headroom import HeadroomController
    from repro.device.config import DeviceConfig
    from repro.experiments.chaos import (
        ChaosScenario,
        default_chaos_injectors,
        run_chaos,
        run_supervision_chaos,
    )
    from repro.experiments.report import ascii_table, series_panel
    from repro.experiments.scenario import Scenario
    from repro.experiments.standard import framefeedback_factory
    from repro.resilience.config import ResilienceConfig

    factories = {
        "framefeedback": framefeedback_factory(),
        # floor = 0.1 F_s so AIMD keeps the paper's standing-probe role
        "aimd": lambda cfg: AimdController(cfg.frame_rate, floor=0.1 * cfg.frame_rate),
        "headroom": lambda cfg: HeadroomController(cfg.frame_rate, cfg.deadline),
    }
    if args.controller not in factories:
        raise SystemExit(
            f"unknown controller {args.controller!r}; choose from {sorted(factories)}"
        )
    if args.fleet:
        from repro.fleet.chaos import DEFAULT_KILL, DEFAULT_SERVERS, run_fleet_chaos
        from repro.metrics.qos import fleet_extras

        # fleet chaos wants a short stream; only honor --frames when the
        # user moved it off the global 4000-frame default
        frames = args.frames if args.frames != 4000 else 900
        result = run_fleet_chaos(seed=args.seed, total_frames=frames)
        code = 0 if result.all_invariants_hold else 1
        if args.json:
            return _json.dumps(result.to_dict(), indent=1, sort_keys=True), code
        name, start, duration = DEFAULT_KILL
        lines = [
            f"Fleet chaos run (seed={args.seed}, {frames} frames, "
            f"servers={','.join(DEFAULT_SERVERS)}): ServerKill {name} "
            f"@{start}s for {duration}s, failover on vs off",
        ]
        for label, child in (("failover", result.failover),
                             ("no-failover", result.no_failover)):
            qos = child.run.qos
            fleet = fleet_extras(qos.extras)
            lines += [
                "",
                f"{label}: ok={qos.successful}/{qos.total_frames}  "
                f"timeouts={qos.timeouts}  dropped_local={qos.dropped_local}  "
                f"failovers={fleet.get('fleet.failovers', 0.0):.0f}  "
                f"crash_drops={fleet.get('fleet.crash_drops', 0.0):.0f}  "
                f"mttr={fleet.get('fleet.mttr_mean', 0.0):.2f}s",
                ascii_table(
                    ["server", "routed", "ok", "fail", "fo_out", "fo_in", "eject"],
                    [
                        [
                            srv,
                            f"{fleet.get(f'fleet.{srv}.routed', 0.0):.0f}",
                            f"{fleet.get(f'fleet.{srv}.successes', 0.0):.0f}",
                            f"{fleet.get(f'fleet.{srv}.failures', 0.0):.0f}",
                            f"{fleet.get(f'fleet.{srv}.failed_over_out', 0.0):.0f}",
                            f"{fleet.get(f'fleet.{srv}.failed_over_in', 0.0):.0f}",
                            f"{fleet.get(f'fleet.{srv}.ejections', 0.0):.0f}",
                        ]
                        for srv in DEFAULT_SERVERS
                    ],
                ),
            ]
        lines += [
            "",
            "Fleet invariants (kill catches in-flight work; failover must pay off):",
            ascii_table(
                ["invariant", "window", "observed", "expected", "verdict"],
                [c.row() for c in result.fleet_invariants],
            ),
            "",
            f"verdict: {'PASS' if result.all_invariants_hold else 'FAIL'}",
        ]
        return "\n".join(lines), code
    if args.supervision:
        result = run_supervision_chaos(
            seed=args.seed,
            total_frames=args.frames,
            controller_factory=factories[args.controller],
            resilience=ResilienceConfig() if args.resilience else None,
        )
        code = 0 if result.all_invariants_hold else 1
        if args.json:
            return _json.dumps(result.to_dict(), indent=1, sort_keys=True), code
        lines = [
            f"Supervision chaos run ({args.controller}, seed={args.seed}, "
            f"{args.frames} frames): kill/restart schedule, warm vs cold",
        ]
        for label, child in (("warm (checkpointed)", result.warm),
                             ("cold (no checkpoint)", result.cold)):
            sup = child.supervision or {}
            lines += [
                "",
                f"{label}: crashes={sup.get('crashes')}  "
                f"restarts={sup.get('restarts')}  "
                f"missed_windows={sup.get('missed_windows')}  "
                f"mttr={ {k: [round(s, 2) for s in v] for k, v in (sup.get('mttr') or {}).items()} }",
                ascii_table(
                    ["invariant", "window", "observed", "expected", "verdict"],
                    [c.row() for c in child.invariants],
                ),
            ]
        lines += [
            "",
            "Cross-run ordering (same crash schedule, warm vs cold):",
            ascii_table(
                ["invariant", "window", "warm", "cold", "verdict"],
                [c.row() for c in result.cross_invariants],
            ),
            "",
            f"verdict: {'PASS' if result.all_invariants_hold else 'FAIL'}",
        ]
        return "\n".join(lines), code
    chaos = ChaosScenario(
        base=Scenario(
            controller_factory=factories[args.controller],
            device=DeviceConfig(total_frames=args.frames),
            seed=args.seed,
        ),
        injectors=default_chaos_injectors(),
        resilience=ResilienceConfig() if args.resilience else None,
    )
    result = run_chaos(chaos)
    code = 0 if result.all_invariants_hold else 1
    if args.json:
        return _json.dumps(result.to_dict(), indent=1, sort_keys=True), code
    stack = "resilience stack on" if args.resilience else "bare client"
    lines = [
        f"Cross-layer chaos run ({args.controller}, seed={args.seed}, "
        f"{args.frames} frames, {stack})",
        "",
        series_panel(
            {
                "P": result.run.traces.throughput,
                "P_o": result.run.traces.offload_target,
                "T": result.run.traces.timeout_rate,
            },
            vmax=chaos.base.device.frame_rate,
        ),
        "",
        "Per-window QoS (means over each fault window):",
        ascii_table(
            ["injector", "layer", "window", "P", "T", "P_o"],
            [w.row() for w in result.window_qos],
        ),
        "",
        "Recovery invariants (paper §II-A.3 / Table IV):",
        ascii_table(
            ["invariant", "window", "observed", "expected", "verdict"],
            [c.row() for c in result.invariants],
        ),
    ]
    if args.resilience:
        taxonomy = {k: v for k, v in result.failure_taxonomy.items() if v}
        lines += [
            "",
            f"Breaker transitions: {len(result.breaker_transitions)} "
            f"(opened {sum(1 for _, s in result.breaker_transitions if s.value == 'open')}x)",
            "Failure taxonomy: "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(taxonomy.items()))
                or "(clean)"
            ),
        ]
    lines += ["", f"verdict: {'PASS' if result.all_invariants_hold else 'FAIL'}"]
    return "\n".join(lines), code


def _chaos_realtime(args: argparse.Namespace):
    """Wall-clock chaos: kill/restart a live asyncio gateway under load.

    The same ScenarioSpec fault language as the simulated chaos run,
    replayed against real sockets (:mod:`repro.realtime.chaos`), judged
    by the wall-clock invariants: breaker opens during the outage,
    local fallback is served, the breaker re-closes after the restart,
    completions resume, and accounting is closed on both wire ends.
    """
    import json as _json

    from repro.experiments.report import ascii_table
    from repro.realtime.chaos import default_realtime_spec, run_realtime_chaos

    spec = default_realtime_spec(seed=args.seed)
    if args.clients:
        spec = spec.replace(
            population={"size": args.clients, "name_prefix": "dev"}
        )
    result = run_realtime_chaos(spec)
    code = 0 if result.all_invariants_hold else 1
    if args.json:
        return _json.dumps(result.to_dict(), indent=1, sort_keys=True), code
    report = result.report
    gw = result.gateway_stats
    outcomes = ", ".join(f"{k}={v}" for k, v in sorted(report.outcomes.items()) if v)
    lines = [
        f"Wall-clock chaos run (seed={args.seed}, {report.clients} clients, "
        f"{report.duration:g}s, {result.incarnations} gateway incarnation(s))",
        "",
        f"client outcomes: {outcomes}",
        f"tick jitter: p50={report.jitter_p50 * 1e3:.1f}ms  "
        f"p99={report.jitter_p99 * 1e3:.1f}ms  max={report.jitter_max * 1e3:.1f}ms",
        f"gateway: received={gw.get('received', 0)}  "
        f"completed={gw.get('completed', 0)}  "
        f"overloaded={gw.get('overloaded', 0)}  expired={gw.get('expired', 0)}  "
        f"resets={gw.get('resets', 0)}  batches={gw.get('batches', 0)}",
        "",
        "Wall-clock invariants:",
        ascii_table(
            ["invariant", "window", "observed", "expected", "verdict"],
            [c.row() for c in result.invariants],
        ),
        "",
        f"verdict: {'PASS' if result.all_invariants_hold else 'FAIL'}",
    ]
    return "\n".join(lines), code


def _cmd_loadgen(args: argparse.Namespace):
    """Async load burst against an in-process gateway.

    ``repro loadgen --clients 200 --duration 3`` boots the asyncio
    gateway, drives N resilient clients at a fixed cadence, and prints
    the QoS/taxonomy rollup plus the event-loop health canary (p99 tick
    jitter).  Exits non-zero when accounting fails to close.
    """
    import asyncio
    import json as _json

    from repro.realtime.gateway import GatewayConfig, InferenceGateway
    from repro.realtime.loadgen import LoadgenConfig, run_loadgen

    clients = args.clients or 40
    duration = args.duration if args.duration != 60.0 else 3.0
    config = LoadgenConfig(clients=clients, duration=duration, seed=args.seed)

    async def _run():
        gateway = InferenceGateway(GatewayConfig())
        await gateway.start()
        try:
            report = await run_loadgen(config, gateway.address)
        finally:
            await gateway.stop()
        return report, gateway.stats.as_dict()

    report, gw = asyncio.run(_run())
    closed = report.accounting_closed and (
        gw["received"]
        == gw["completed"] + gw["rejected"] + gw["overloaded"] + gw["expired"]
    )
    code = 0 if closed else 1
    if args.json:
        doc = {"report": report.to_dict(), "gateway": gw,
               "accounting_closed": closed}
        return _json.dumps(doc, indent=1, sort_keys=True), code
    outcomes = ", ".join(f"{k}={v}" for k, v in sorted(report.outcomes.items()) if v)
    taxonomy = ", ".join(f"{k}={v}" for k, v in sorted(report.taxonomy.items()) if v)
    lines = [
        f"loadgen burst: {clients} clients x {config.frame_rate:g} fps "
        f"for {duration:g}s (seed={args.seed})",
        report.qos().row(),
        f"outcomes: {outcomes or '(none)'}",
        f"taxonomy: {taxonomy or '(clean)'}",
        f"tick jitter: p50={report.jitter_p50 * 1e3:.1f}ms  "
        f"p99={report.jitter_p99 * 1e3:.1f}ms  max={report.jitter_max * 1e3:.1f}ms",
        f"gateway: received={gw['received']}  completed={gw['completed']}  "
        f"overloaded={gw['overloaded']}  expired={gw['expired']}  "
        f"batches={gw['batches']}",
        f"accounting: {'closed' if closed else 'LEAK DETECTED'}",
    ]
    return "\n".join(lines), code


def _cmd_profile(args: argparse.Namespace) -> str:
    """Profile one scenario: cProfile hot spots + kernel EnvStats.

    ``framefeedback profile fig3`` answers two questions at once: where
    the wall-clock goes (cProfile, cumulative) and what the kernel did
    to earn it (events scheduled/cancelled/skipped, peak heap, which
    processes flood the heap).  See docs/performance.md for how to read
    the output.
    """
    import cProfile
    import io
    import pstats

    from repro.sim import core as sim_core

    def _fig3() -> None:
        from repro.experiments.fig3 import run_fig3

        run_fig3(seed=args.seed, total_frames=args.frames)

    def _fig4() -> None:
        from repro.experiments.fig4 import run_fig4

        run_fig4(seed=args.seed, total_frames=args.frames)

    def _chaos() -> None:
        from repro.device.config import DeviceConfig
        from repro.experiments.chaos import (
            ChaosScenario,
            default_chaos_injectors,
            run_chaos,
        )
        from repro.experiments.scenario import Scenario
        from repro.experiments.standard import framefeedback_factory

        run_chaos(
            ChaosScenario(
                base=Scenario(
                    controller_factory=framefeedback_factory(),
                    device=DeviceConfig(total_frames=args.frames),
                    seed=args.seed,
                ),
                injectors=default_chaos_injectors(),
            )
        )

    runners = {"fig3": _fig3, "fig4": _fig4, "chaos": _chaos}
    name = args.scenario or "fig3"
    if name not in runners:
        raise SystemExit(
            f"unknown profile scenario {name!r}; choose from {sorted(runners)}"
        )

    sink: list = []
    sim_core.capture_env_stats(sink)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        runners[name]()
        profiler.disable()
    finally:
        sim_core.capture_env_stats(None)

    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(15)
    lines = [
        f"profile: {name} (seed={args.seed}, frames={args.frames})",
        "",
        f"kernel stats ({len(sink)} environment(s)):",
    ]
    for i, env_stats in enumerate(sink):
        lines.append(f"  env[{i}]: {env_stats.summary()}")
    lines += ["", "cProfile, top 15 by cumulative time:", buf.getvalue().rstrip()]
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace):
    """Run one canned scenario with per-frame tracing on.

    ``--json`` emits the canonical golden serialization (byte-identical
    across runs and across the ``REPRO_SIM_SLOWPATH`` kernels), which
    is exactly what ``tests/goldens/trace_*.json`` hold::

        framefeedback trace fig3 --json > tests/goldens/trace_fig3.json

    Scenario stream lengths are fixed (see
    ``repro.trace.scenarios.DEFAULT_FRAMES``) so golden files stay
    reviewable; ``--frames`` is deliberately ignored here.
    """
    from repro.metrics import trace_latency_summary
    from repro.trace import (
        TRACE_SCENARIOS,
        dumps_trace,
        run_trace_scenario,
        terminal_counts,
    )

    name = args.scenario or "fig3"
    if name not in TRACE_SCENARIOS:
        raise SystemExit(
            f"unknown trace scenario {name!r}; choose from {sorted(TRACE_SCENARIOS)}"
        )
    doc = run_trace_scenario(name, seed=args.seed)
    if args.json:
        # main() prints with one trailing newline, matching dumps_trace
        return dumps_trace(doc)[:-1]
    counts = terminal_counts(doc)
    lines = [
        f"trace: {name} (seed={args.seed}, {len(doc['frames'])} frames, "
        f"{len(doc['events'])} control-plane events)",
        "terminal states:",
    ]
    lines += [f"  {status:18s} {n:5d}" for status, n in counts.items()]
    summary = trace_latency_summary(doc)
    lines.append("latency attribution (total / mean / p95 seconds per span):")
    for span_name, s in summary["spans"].items():
        lines.append(
            f"  {span_name:18s} {s['total']:8.3f} / {s['mean']:.4f} / "
            f"{s['p95']:.4f}  (n={s['count']})"
        )
    fs = summary["frame_seconds"]
    lines.append(
        f"completed frames: {fs['count']}  capture->settled "
        f"mean {fs['mean']:.4f}s  p95 {fs['p95']:.4f}s"
    )
    lines.append("use --json for the canonical golden serialization")
    return "\n".join(lines)


def _cmd_trace_diff(args: argparse.Namespace):
    """Structurally compare two trace files; non-zero exit on divergence."""
    from repro.trace import diff_traces, load_trace

    if not args.scenario or not args.scenario2:
        raise SystemExit("trace-diff requires two trace files: trace-diff a.json b.json")
    report = diff_traces(load_trace(args.scenario), load_trace(args.scenario2))
    if report is None:
        return f"traces identical: {args.scenario} == {args.scenario2}", 0
    return report, 1


def _cmd_combined(args: argparse.Namespace) -> str:
    from repro.experiments.combined import run_additivity_check, run_combined

    combined = run_combined(seed=args.seed, total_frames=args.frames)
    additivity = run_additivity_check(seed=args.seed)
    lines = ["Sec IV-C combined network + server-load stress (extension)"]
    for name, run in combined.runs.items():
        lines.append(f"  {run.qos.row()}")
    lines.append(
        "  FrameFeedback mean T: "
        f"network-only={additivity['network']:.2f}/s  "
        f"load-only={additivity['load']:.2f}/s  "
        f"both={additivity['both']:.2f}/s"
    )
    return "\n".join(lines)


def _cmd_compile(args: argparse.Namespace):
    """Validate a scenario spec and emit its compiled base-format JSON.

    ``repro compile spec.json`` lowers every schedule generator to flat
    phase rows (what ``repro run --config`` and the sweep pool accept);
    ``--expand`` emits one config per population member instead.  A
    spec error exits non-zero with the offending field named.
    """
    import json as _json

    from repro.search import compile_flat, expand_population, load_spec
    from repro.search.language import SpecError

    if not args.scenario:
        raise SystemExit("compile requires a spec file: repro compile spec.json")
    try:
        spec = load_spec(args.scenario)
        if args.expand:
            doc = expand_population(spec)
        else:
            doc = compile_flat(spec)
    except SpecError as exc:
        return f"spec error: {exc}", 1
    return _json.dumps(doc, indent=1, sort_keys=True)


def _cmd_search(args: argparse.Namespace):
    """Adversarial scenario search: find, minimize, emit chaos goldens.

    Deterministic in ``--seed``/``--budget``: the same invocation twice
    prints byte-identical output.  ``--out DIR`` writes each minimized
    distinct failure as a golden scenario file (the workflow that
    produced ``tests/goldens/scenarios/``); ``--json`` emits the
    machine-readable search summary.  Exits non-zero when the budget
    produced no oracle-feasible failure.
    """
    import json as _json

    from repro.experiments.report import ascii_table
    from repro.search import (
        SearchConfig,
        minimize,
        run_search,
        spec_signature,
        write_goldens,
    )

    # search wants many short runs; only honor --frames when the user
    # moved it off the global 4000-frame default
    frames = args.frames if args.frames != 4000 else SearchConfig.frames
    config = SearchConfig(
        seed=args.seed, budget=args.budget, frames=frames, workers=args.workers
    )
    result = run_search(config)
    # minimization often collapses near-clone lineages onto the same
    # mechanism, so dedupe by structural signature AFTER minimizing
    minimized = []
    seen_sigs = set()
    for finding in result.distinct_failures(limit=max(2 * args.goldens, 8)):
        if len(minimized) >= args.goldens:
            break
        mr = minimize(finding, config.params)
        sig = spec_signature(mr.minimized.spec)
        if sig in seen_sigs:
            continue
        seen_sigs.add(sig)
        minimized.append(mr.minimized)
    code = 0 if minimized else 1

    written = []
    if args.out:
        written = write_goldens(args.out, minimized, config.params)

    if args.json:
        doc = result.to_dict()
        doc["minimized"] = [m.as_dict() for m in minimized]
        return _json.dumps(doc, indent=1, sort_keys=True), code

    lines = [
        f"adversarial search: seed={config.seed} budget={config.budget} "
        f"frames={config.frames} controller={config.controller}",
        f"evaluated {len(result.evaluations)} candidates, "
        f"{sum(1 for e in result.evaluations if e.feasible)} oracle-feasible, "
        f"{len(result.failures)} failing (threshold "
        f"{config.params.fail_threshold}/s)",
    ]
    if result.best:
        rows = [
            [
                f"{e.score:7.3f}",
                "yes" if e.feasible else "no",
                ",".join(sorted({f['kind'] for f in e.spec.faults})) or "-",
                _schedule_kind(e.spec.data.get("network")),
                _schedule_kind(e.spec.data.get("load")),
            ]
            for e in result.best[:8]
        ]
        lines += [
            "",
            "best feasible candidates (violations/s):",
            ascii_table(["score", "feasible", "faults", "network", "load"], rows),
        ]
    for m in minimized:
        lines += ["", f"minimized finding (score {m.score}/s):", m.spec.to_json().rstrip()]
    if written:
        lines += ["", "goldens written:"] + [f"  {p}" for p in written]
    lines += ["", f"verdict: {'FINDINGS' if minimized else 'NO FINDINGS'}"]
    return "\n".join(lines), code


def _cmd_tournament(args: argparse.Namespace):
    """Race the controller zoo across the scenario matrix.

    ``repro tournament`` runs the built-in matrix (fig3-style sweep,
    chaos, fleet) — plus any committed search goldens under
    ``tests/goldens/scenarios/`` when run from a checkout — scoring
    every cell as deadline-violation regret against the clairvoyant
    oracle at the same seed.  ``--json`` emits the canonical report
    (byte-identical across runs at the same seed, and across
    simulation kernels); the default output is a markdown ranking.
    ``--lineup A,B`` and ``--matrix x,y`` shrink the race (the CI
    smoke job runs a 2x2 mini-tournament this way).
    """
    import os as _os

    from repro.experiments.tournament import (
        TournamentConfig,
        dumps_report,
        render_report,
        report_document,
        run_tournament,
    )

    # tournaments want many short runs; only honor --frames when the
    # user moved it off the global 4000-frame default
    frames = args.frames if args.frames != 4000 else 900
    scenario_dir = args.scenario_dir
    if scenario_dir is None and _os.path.isdir("tests/goldens/scenarios"):
        scenario_dir = "tests/goldens/scenarios"
    config = TournamentConfig(
        seed=args.seed,
        frames=frames,
        controllers=tuple(args.lineup.split(",")) if args.lineup else (),
        scenarios=tuple(args.matrix.split(",")) if args.matrix else (),
        scenario_dir=scenario_dir,
        workers=args.workers,
    )
    result = run_tournament(config)
    if args.json:
        # main() prints with one trailing newline, matching dumps_report
        return dumps_report(report_document(result))[:-1]
    return render_report(result)


def _schedule_kind(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, dict):
        return value["kind"]
    return "phases"


_COMMANDS = {
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "energy": _cmd_energy,
    "chaos": _cmd_chaos,
    "combined": _cmd_combined,
    "controllers": _cmd_controllers,
    "breakdown": _cmd_breakdown,
    "fleet": _cmd_fleet,
    "loadgen": _cmd_loadgen,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "trace-diff": _cmd_trace_diff,
    "run": _cmd_run,
    "compile": _cmd_compile,
    "search": _cmd_search,
    "sweep": _cmd_sweep,
    "tournament": _cmd_tournament,
    "netem": _cmd_netem,
    "validate": _cmd_validate,
}

_PAPER_ORDER = ["table2", "table3", "table4", "fig2", "fig3", "fig4", "energy", "combined"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="framefeedback",
        description="Regenerate the FrameFeedback paper's tables and figures.",
    )
    parser.add_argument("command", choices=[*_COMMANDS, "all"], help="what to run")
    parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario to instrument (profile/trace): fig3 | fig4 | chaos "
        "| supervision — or the first trace file (trace-diff), or the "
        "scenario spec file (compile)",
    )
    parser.add_argument(
        "scenario2",
        nargs="?",
        default=None,
        help="second trace file (trace-diff)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--frames", type=int, default=4000, help="stream length (fig3/fig4/combined)"
    )
    parser.add_argument(
        "--duration", type=float, default=60.0, help="run length in seconds (fig2)"
    )
    parser.add_argument(
        "--config", type=str, default=None, help="scenario JSON file (run)"
    )
    parser.add_argument(
        "--export", type=str, default=None, help="directory for CSV/JSON artifacts (run)"
    )
    parser.add_argument(
        "--seeds", type=int, default=8, help="number of seeds (sweep)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="process-pool size (sweep/search)"
    )
    parser.add_argument(
        "--budget", type=int, default=24, help="candidate evaluations (search)"
    )
    parser.add_argument(
        "--goldens", type=int, default=4,
        help="max distinct failures to minimize (search)"
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="directory for minimized golden scenario files (search)"
    )
    parser.add_argument(
        "--expand", action="store_true",
        help="emit one config per population member (compile)"
    )
    parser.add_argument(
        "--lineup", type=str, default=None,
        help="comma-separated controller names to race (tournament); "
        "default: the full zoo"
    )
    parser.add_argument(
        "--matrix", type=str, default=None,
        help="comma-separated built-in scenario names to race on "
        "(tournament); default: all"
    )
    parser.add_argument(
        "--scenario-dir", type=str, default=None,
        help="directory of extra golden scenario files to include in "
        "the matrix (tournament); default: tests/goldens/scenarios "
        "when present"
    )
    parser.add_argument(
        "--schedule", type=str, default="tablev", help="schedule name (netem)"
    )
    parser.add_argument(
        "--iface", type=str, default="wlan0", help="network interface (netem)"
    )
    parser.add_argument(
        "--controller",
        type=str,
        default="framefeedback",
        help="controller under chaos: framefeedback | aimd | headroom",
    )
    parser.add_argument(
        "--resilience",
        action="store_true",
        help="enable the resilient offload path (retries + circuit "
        "breaker + server pushback) for the chaos run",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="run the multi-server kill/failover chaos scenario twice "
        "(failover on vs off) and assert the fleet accounting, "
        "failover-exercised, readmission, and failover-beats-none "
        "invariants",
    )
    parser.add_argument(
        "--realtime",
        action="store_true",
        help="run the chaos scenario against a live asyncio gateway "
        "over real sockets (kill/restart mid-load) and assert the "
        "wall-clock breaker/fallback/accounting invariants",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=None,
        help="concurrent async clients (loadgen, chaos --realtime)",
    )
    parser.add_argument(
        "--supervision",
        action="store_true",
        help="run the kill/restart chaos schedule twice (checkpointed "
        "warm restarts vs cold) and assert the restart-settle and "
        "warm-beats-cold recovery invariants",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON summary (chaos) or the "
        "canonical golden trace (trace)",
    )
    parser.add_argument(
        "--kernel",
        choices=("exact", "hybrid"),
        default=None,
        help="simulation kernel: exact per-frame DES (default) or the "
        "hybrid kernel that advances steady-state windows analytically "
        "(statistically equivalent QoS, byte-exact traced runs)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernel is not None:
        # Every scenario built below this point — including ones built
        # inside worker processes that re-read the environment — picks
        # the kernel up from build_runtime's REPRO_KERNEL override.
        os.environ["REPRO_KERNEL"] = args.kernel
    commands = _PAPER_ORDER if args.command == "all" else [args.command]
    exit_code = 0
    for i, name in enumerate(commands):
        if i:
            print("\n" + "=" * 72 + "\n")
        out = _COMMANDS[name](args)
        # Commands return either text, or (text, exit_code) when they
        # carry a verdict (chaos): any failure makes the run non-zero.
        if isinstance(out, tuple):
            out, code = out
            exit_code = max(exit_code, code)
        print(out)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
