"""Terminal visualization: multi-series line charts and histograms.

The report module's sparklines are one-line densities; this package
renders full charts (y-axis, gridline, legend, multi-series markers)
so the paper's figures are readable directly in a terminal — used by
``framefeedback fig3 --plot`` style output and the examples.
"""

from repro.viz.chart import histogram, line_chart

__all__ = ["histogram", "line_chart"]
