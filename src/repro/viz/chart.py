"""ASCII chart rendering."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.metrics.timeseries import TimeSeries

#: per-series plot markers, assigned in insertion order
MARKERS = "o*x+#@%&"


def _resample_to_columns(series: TimeSeries, t0: float, t1: float, width: int) -> np.ndarray:
    """Column-averaged values of ``series`` over [t0, t1]."""
    t, v = series.times, series.values
    out = np.full(width, np.nan)
    if len(series) == 0 or t1 <= t0:
        return out
    edges = np.linspace(t0, t1, width + 1)
    idx = np.searchsorted(t, edges)
    for c in range(width):
        seg = v[idx[c] : idx[c + 1]]
        if seg.size:
            out[c] = seg.mean()
        elif idx[c] > 0:  # zero-order hold through gaps
            out[c] = v[idx[c] - 1]
    return out


def line_chart(
    series: Dict[str, TimeSeries],
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_max: Optional[float] = None,
    y_min: float = 0.0,
) -> str:
    """Render several time series as one overlaid ASCII chart.

    Later series draw over earlier ones in marker collisions, so list
    the most important series last.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small to be legible")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")

    t0 = min((float(s.times[0]) for s in series.values() if len(s)), default=0.0)
    t1 = max((float(s.times[-1]) for s in series.values() if len(s)), default=1.0)
    top = y_max
    if top is None:
        top = max(
            (float(np.nanmax(s.values)) for s in series.values() if len(s)),
            default=1.0,
        )
    top = max(top, y_min + 1e-9)

    grid = np.full((height, width), " ", dtype="<U1")
    for (name, s), marker in zip(series.items(), MARKERS):
        cols = _resample_to_columns(s, t0, t1, width)
        for c, value in enumerate(cols):
            if np.isnan(value):
                continue
            frac = (min(max(value, y_min), top) - y_min) / (top - y_min)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row, c] = marker

    label_w = 8
    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        frac = (height - 1 - r) / (height - 1)
        y_val = y_min + frac * (top - y_min)
        label = f"{y_val:7.1f} " if r % max(height // 4, 1) == 0 or r == height - 1 else " " * label_w
        lines.append(label + "|" + "".join(grid[r]))
    axis = " " * label_w + "+" + "-" * width
    lines.append(axis)
    lines.append(
        " " * label_w
        + f"t={t0:.0f}s"
        + " " * max(1, width - len(f"t={t0:.0f}s") - len(f"t={t1:.0f}s"))
        + f"t={t1:.0f}s"
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _s), marker in zip(series.items(), MARKERS)
    )
    lines.append(" " * label_w + legend)
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 50,
    title: str = "",
) -> str:
    """A horizontal ASCII histogram."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("nothing to plot")
    if bins < 1:
        raise ValueError(f"need >= 1 bin, got {bins}")
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:9.3f}, {hi:9.3f}) {bar} {count}")
    return "\n".join(lines)
