"""Process-crash injectors: kill and restart sim processes mid-run.

Where the PR-1 injectors degrade the *substrate* (link conditions, GPU
speed, sensor cadence), these kill the *processes* the testbed is made
of: the device's measurement/control loop, the server's service loop,
or the whole device.  Each window is ``[crash, restart)`` — the
component is killed at the window's start and brought back at its end,
so downtime is exactly as scripted and runs stay deterministic.

Restarts route through :attr:`FaultTargets.supervisor` when one is
attached: the supervisor decides warm vs cold (checkpoint restore vs
``reset()``), and its MTTR/restart counters see the event.  Without a
supervisor the component is restarted in place with whatever state the
in-memory object still holds — a "hot" restart that loses nothing,
which is precisely the unrealistic baseline the supervision layer
replaces (a real crashed process does not keep its heap).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.base import FaultInjector, FaultTargets, resolve_server
from repro.faults.windows import FaultTimeline
from repro.sim.core import Environment

#: restart policies a ControllerKill window may request
RESTART_MODES = ("supervised", "warm", "cold", "none")


class ControllerKill(FaultInjector):
    """Kill the device's measurement/control loop for each window.

    While dead, the data path keeps running at the last splitter
    target (a frozen actuator), no buckets close, and telemetry goes
    silent — the supervisor's staleness policy takes over.  At the
    window's end the loop is restarted per ``restart``:

    * ``"supervised"`` — defer to the supervisor's config (warm when
      checkpointing is enabled, else cold);
    * ``"warm"`` / ``"cold"`` — force the mode (requires a supervisor);
    * ``"none"`` — stay dead (measure the unsupervised blackout).
    """

    layer = "device"
    resource = "device.controller"
    #: chaos runners key restart-settle invariants off this marker
    controller_outage = True

    def __init__(
        self,
        timeline: FaultTimeline,
        restart: str = "supervised",
        name: Optional[str] = None,
    ) -> None:
        if restart not in RESTART_MODES:
            raise ValueError(
                f"restart must be one of {RESTART_MODES}, got {restart!r}"
            )
        super().__init__(timeline, name)
        self.restart = restart

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        targets.require("device", self.name)
        if self.restart in ("warm", "cold") and targets.supervisor is None:
            raise ValueError(
                f"{self.name}: restart={self.restart!r} needs a supervisor "
                "(attach one, or use 'supervised'/'none')"
            )

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        targets.require("device", self.name).crash_measure_loop()

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        if self.restart == "none":
            return
        supervisor = targets.supervisor
        if supervisor is not None:
            warm = None if self.restart == "supervised" else (self.restart == "warm")
            supervisor.restart_controller(warm=warm)
        else:
            targets.require("device", self.name).restart_measure_loop()


class ServerKill(FaultInjector):
    """Kill the server's service loop, losing its queue, per window.

    Harsher than :class:`~repro.faults.server.ServerCrash` (a stall):
    queued and in-flight requests are dropped unanswered and arrivals
    during the window land on a dead host.  Devices observe pure
    silence — every offload burns its full deadline — so the standing
    probe and re-convergence invariants apply to these windows.
    Shares ``server.loop`` with ``ServerCrash``: the two cannot overlap.

    With ``server=<name>`` the kill targets one member of a fleet pool:
    the resource becomes ``server.loop:<name>`` (kills of *different*
    members may overlap), ``total_failure`` drops to False (the fleet
    still serves — the blackout invariants don't apply), and the
    kill/restart route through the pool so the member is ejected (which
    triggers the in-flight failover sweep) and re-admitted after
    probation.  An unnamed kill on a fleet scenario hits the pool's
    first member.
    """

    layer = "server"
    resource = "server.loop"
    total_failure = True

    def __init__(
        self,
        timeline: FaultTimeline,
        server: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(timeline, name)
        self.server = server
        if server is not None:
            self.resource = f"server.loop:{server}"
            self.total_failure = False

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        resolve_server(targets, self.server, self.name)

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        pool = targets.pool
        if pool is not None:
            pool.kill(self.server or pool.servers[0].name)
        else:
            targets.require("server", self.name).crash()

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        pool = targets.pool
        if pool is not None:
            pool.restart(self.server or pool.servers[0].name)
            return
        supervisor = targets.supervisor
        if supervisor is not None:
            supervisor.restart_server()
        else:
            targets.require("server", self.name).restart()


class DeviceReboot(FaultInjector):
    """Reboot the whole device: camera, control loop, in-flight frames.

    The camera and measurement loop are killed and every outstanding
    offload is aborted (their deadline watchdog/hedge timers are
    cancelled — a rebooted device has no one waiting for those
    responses, and they must count as neither success nor timeout).
    On exit the camera resumes the stream where it stopped and the
    controller restarts per the supervisor's policy.

    Claims the ``device.controller`` resource (the invariant-bearing
    one), so it cannot overlap :class:`ControllerKill`; plan validation
    does not see its camera side — avoid overlapping a camera-resource
    injector with a reboot window.
    """

    layer = "device"
    resource = "device.controller"
    controller_outage = True

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        targets.require("device", self.name)

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        device = targets.require("device", self.name)
        device.source.crash()
        device.crash_measure_loop()
        device.offload.abort_inflight()

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        device = targets.require("device", self.name)
        supervisor = targets.supervisor
        if supervisor is not None:
            supervisor.restart_camera()
            supervisor.restart_controller()
        else:
            device.source.restart()
            device.restart_measure_loop()
