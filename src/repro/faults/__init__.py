"""Composable, deterministic fault injection across every substrate layer.

The chaos layer for the reproduction: validated fault timelines
(:mod:`~repro.faults.windows`), an injector interface with exclusive
resource keys (:mod:`~repro.faults.base`), injectors for the link
(:mod:`~repro.faults.link`), the server (:mod:`~repro.faults.server`)
and the device (:mod:`~repro.faults.device`), plus the recovery
invariants the paper's robustness claims pin
(:mod:`~repro.faults.invariants`).

Compose any set of injectors over a timeline with
:class:`~repro.experiments.chaos.ChaosScenario`; every stochastic
choice draws from the run's :class:`~repro.sim.rng.RngRegistry`, so a
chaos run is bit-reproducible from its seed.
"""

from repro.faults.base import FaultInjector, FaultTargets, validate_plan
from repro.faults.device import CameraStall, CpuThrottle
from repro.faults.invariants import (
    InvariantCheck,
    breaker_reclose_invariant,
    breaker_trip_invariant,
    reconvergence_invariant,
    restart_ordering_invariant,
    restart_settle_invariant,
    settle_periods_after_restart,
    standing_probe_invariant,
)
from repro.faults.link import BandwidthCollapse, BurstLoss, LatencySpike, LinkFault
from repro.faults.process import ControllerKill, DeviceReboot, ServerKill
from repro.faults.server import (
    GpuContention,
    OutageSchedule,
    OutageWindow,
    ServerCrash,
    ServerSlowdown,
)
from repro.faults.windows import FaultOverlapError, FaultTimeline, FaultWindow

__all__ = [
    "BandwidthCollapse",
    "BurstLoss",
    "CameraStall",
    "ControllerKill",
    "CpuThrottle",
    "DeviceReboot",
    "FaultInjector",
    "FaultOverlapError",
    "FaultTargets",
    "FaultTimeline",
    "FaultWindow",
    "GpuContention",
    "InvariantCheck",
    "LatencySpike",
    "LinkFault",
    "OutageSchedule",
    "OutageWindow",
    "ServerCrash",
    "ServerKill",
    "ServerSlowdown",
    "breaker_reclose_invariant",
    "breaker_trip_invariant",
    "reconvergence_invariant",
    "restart_ordering_invariant",
    "restart_settle_invariant",
    "settle_periods_after_restart",
    "standing_probe_invariant",
    "validate_plan",
]
