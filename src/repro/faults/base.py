"""Injector interface: one fault mechanism driven over a timeline.

Every injector names the substrate ``layer`` it attacks (link, server,
device) and the exclusive ``resource`` it mutates.  Two injectors may
overlap in time freely *unless* they share a resource — two things
cannot rewrite the same knob at once — which :func:`validate_plan`
enforces before a chaos run starts.

Installation goes through :class:`FaultTargets`, the bag of substrate
handles a :class:`~repro.experiments.scenario.ScenarioRuntime` exposes;
each injector picks the handles it needs and raises early when its
target is missing.  All stochastic choices draw from ``targets.rng``
(the registry's ``"faults"`` stream) so chaos runs stay bit-reproducible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.faults.windows import FaultOverlapError, FaultTimeline
from repro.sim.core import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.device import EdgeDevice
    from repro.fleet.pool import ServerPool
    from repro.netem.link import ConditionBox
    from repro.server.server import EdgeServer
    from repro.supervision.supervisor import Supervisor


@dataclass
class FaultTargets:
    """Substrate handles an injector may attack (any may be absent)."""

    box: "Optional[ConditionBox]" = None
    server: "Optional[EdgeServer]" = None
    device: "Optional[EdgeDevice]" = None
    rng: Optional[np.random.Generator] = None
    #: supervision layer, when attached — process-kill injectors route
    #: their restarts through it so warm/cold policy and MTTR counters
    #: live in one place
    supervisor: "Optional[Supervisor]" = None
    #: fleet tier, when the scenario has a multi-server topology —
    #: server-layer injectors resolve named targets through it and
    #: route kill/restart through its ejection lifecycle
    pool: "Optional[ServerPool]" = None

    def require(self, attr: str, who: str):
        value = getattr(self, attr)
        if value is None:
            raise ValueError(f"{who} needs a {attr!r} target, none was provided")
        return value


def resolve_server(targets: FaultTargets, server_name: Optional[str], who: str):
    """Look up an injector's server target, by name when given.

    A named target requires a fleet pool and must be a member of it;
    the error lists the valid names (mirroring the config layer's
    unknown-key style).  Unnamed targets fall back to the pool's first
    member, then to the classic single ``targets.server`` handle.
    """
    if server_name is None:
        if targets.pool is not None:
            return targets.pool.servers[0]
        return targets.require("server", who)
    pool = targets.require("pool", who)
    server = pool.by_name.get(server_name)
    if server is None:
        raise ValueError(
            f"{who}: unknown server {server_name!r}; "
            f"valid servers: {sorted(pool.by_name)}"
        )
    return server


class FaultInjector(abc.ABC):
    """One fault mechanism applied over a :class:`FaultTimeline`."""

    #: substrate layer, for reports ("link" | "server" | "device")
    layer: str = "?"
    #: exclusive knob this injector rewrites; two installed injectors
    #: sharing a resource must not overlap in time
    resource: str = "?"
    #: True when an active window makes *every* offload fail — the
    #: windows the recovery invariants (standing probe, re-convergence)
    #: are asserted against
    total_failure: bool = False

    def __init__(self, timeline: FaultTimeline, name: Optional[str] = None) -> None:
        self.timeline = timeline
        self.name = name or type(self).__name__

    # ------------------------------------------------------------------
    def active_at(self, t: float) -> bool:
        return self.timeline.active_at(t)

    def install(self, env: Environment, targets: FaultTargets) -> None:
        """Spawn the driver process applying this injector's windows.

        Windows already in the past at install time are skipped; a
        window straddling ``env.now`` runs for its remaining duration.
        """
        self.bind(env, targets)
        clipped = self.timeline.clipped_from(env.now)

        regime = getattr(env, "regime", None)
        if regime is not None:
            # Hybrid kernel: every fault boundary is a transient no
            # fluid window may straddle, and no window may open while
            # a window of ours is active (the substrate is degraded).
            edges = [w.start for w in clipped] + [w.end for w in clipped]
            regime.pin_edges(edges)
            regime.add_steady_check(
                lambda now: "fault-active" if self.timeline.active_at(now) else None
            )

        def driver():
            for window in clipped:
                if window.start > env.now:
                    yield env.timeout(window.start - env.now)
                self.on_enter(env, targets, window)
                yield env.timeout(window.end - env.now)
                self.on_exit(env, targets, window)

        env.process(driver(), name=f"fault:{self.name}")

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def bind(self, env: Environment, targets: FaultTargets) -> None:
        """Validate targets / subscribe listeners before the run starts."""

    @abc.abstractmethod
    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        """Engage the fault at the window's start instant."""

    @abc.abstractmethod
    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        """Heal the fault at the window's end instant."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.timeline!r})"


def validate_plan(injectors: Sequence[FaultInjector]) -> None:
    """Reject plans where same-resource injectors overlap in time."""
    for i, a in enumerate(injectors):
        for b in injectors[i + 1 :]:
            if a.resource != b.resource:
                continue
            if a.timeline.overlaps_timeline(b.timeline):
                raise FaultOverlapError(
                    f"{a.name} and {b.name} both drive resource "
                    f"{a.resource!r} over overlapping windows"
                )
