"""Link-layer injectors: degrade the emulated wireless path.

Each injector is an *override layer* on the scenario's shared
:class:`~repro.netem.link.ConditionBox`: while a window is active the
box holds ``transform(underlying)``, where ``underlying`` tracks
whatever the benign :class:`~repro.netem.schedule.NetworkSchedule`
(or nobody) last set.  A schedule change landing mid-fault is
re-degraded immediately, and healing restores the schedule's *current*
conditions, not a stale pre-fault snapshot — the same layering NetEm
achieves when a chaos qdisc is stacked on a shaping qdisc.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.faults.base import FaultInjector, FaultTargets
from repro.faults.windows import FaultTimeline
from repro.netem.link import ConditionBox, LinkConditions
from repro.sim.core import Environment


class LinkFault(FaultInjector):
    """Base class: maintain the override while windows are active."""

    layer = "link"
    resource = "link.conditions"

    def __init__(self, timeline: FaultTimeline, name: Optional[str] = None) -> None:
        super().__init__(timeline, name)
        self._engaged = False
        self._applying = False
        self._underlying: Optional[LinkConditions] = None
        self._box: Optional[ConditionBox] = None

    def transform(self, cond: LinkConditions) -> LinkConditions:
        """The degraded version of ``cond`` (subclasses override)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def bind(self, env: Environment, targets: FaultTargets) -> None:
        box = targets.require("box", self.name)
        self._box = box
        self._underlying = box.conditions
        box.subscribe(self._on_box_set)

    def _on_box_set(self, cond: LinkConditions) -> None:
        if self._applying:
            return  # our own write echoing back
        self._underlying = cond
        if self._engaged:
            self._apply(self.transform(cond))

    def _apply(self, cond: LinkConditions) -> None:
        assert self._box is not None
        self._applying = True
        try:
            self._box.set(cond)
        finally:
            self._applying = False

    # ------------------------------------------------------------------
    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        self._engaged = True
        assert self._underlying is not None
        self._apply(self.transform(self._underlying))

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        self._engaged = False
        assert self._underlying is not None
        self._apply(self._underlying)


class BandwidthCollapse(LinkFault):
    """Throttle the link to a fraction of its scheduled bandwidth.

    ``factor=0.01`` against the default 10-unit link leaves 32 kbit/s —
    serialization alone blows the 250 ms deadline, so an active window
    is a *total* offload failure (the Chakrabarti et al. token-bucket
    starvation regime).
    """

    total_failure = True

    def __init__(
        self,
        timeline: FaultTimeline,
        factor: float = 0.01,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ValueError(f"collapse factor must be in (0, 1), got {factor}")
        super().__init__(timeline, name)
        self.factor = factor
        # below ~0.3 units even one frame cannot meet the deadline
        self.total_failure = factor * 10.0 < 0.5

    def transform(self, cond: LinkConditions) -> LinkConditions:
        return replace(cond, bandwidth=cond.bandwidth * self.factor)


class LatencySpike(LinkFault):
    """Add propagation delay (and optional jitter) during windows."""

    def __init__(
        self,
        timeline: FaultTimeline,
        extra_delay: float = 0.150,
        extra_jitter: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if extra_delay < 0 or extra_jitter < 0:
            raise ValueError("latency spike extras must be non-negative")
        super().__init__(timeline, name)
        self.extra_delay = extra_delay
        self.extra_jitter = extra_jitter
        # a spike beyond the paper's 250 ms deadline kills every offload
        self.total_failure = extra_delay >= 0.250

    def transform(self, cond: LinkConditions) -> LinkConditions:
        return replace(
            cond,
            propagation_delay=cond.propagation_delay + self.extra_delay,
            jitter_sigma=cond.jitter_sigma + self.extra_jitter,
        )


class BurstLoss(LinkFault):
    """Gilbert–Elliott burst loss during windows (wireless fading)."""

    def __init__(
        self,
        timeline: FaultTimeline,
        loss: float = 0.30,
        burst: float = 8.0,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 < loss < 1.0:
            raise ValueError(f"loss must be in (0, 1), got {loss}")
        if burst < 1.0:
            raise ValueError(f"burst length must be >= 1, got {burst}")
        super().__init__(timeline, name)
        self.loss = loss
        self.burst = burst

    def transform(self, cond: LinkConditions) -> LinkConditions:
        return replace(
            cond, loss=max(cond.loss, self.loss), loss_burst=max(cond.loss_burst, self.burst)
        )
