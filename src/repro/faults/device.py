"""Device-layer injectors: CPU throttling and camera stalls.

These attack the parts of the pipeline the controller can *not* route
around: :class:`CpuThrottle` slows the local fallback path (thermal
throttling on a passively-cooled Pi), so during a throttle window the
``P_l < F_s`` gap widens and offloading becomes more valuable exactly
when the rest of the chaos plan may be degrading it.
:class:`CameraStall` freezes the frame source itself — no frames, no
measurements moving, a sensor-driver hiccup.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.base import FaultInjector, FaultTargets
from repro.faults.windows import FaultTimeline
from repro.sim.core import Environment


class CpuThrottle(FaultInjector):
    """Multiply local inference latency by ``factor`` during windows."""

    layer = "device"
    resource = "device.cpu"

    def __init__(
        self,
        timeline: FaultTimeline,
        factor: float = 2.0,
        name: Optional[str] = None,
    ) -> None:
        if factor <= 1.0:
            raise ValueError(f"throttle factor must be > 1, got {factor}")
        super().__init__(timeline, name)
        self.factor = factor

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        targets.require("device", self.name)

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        device = targets.require("device", self.name)
        device.local.set_slowdown(self.factor)

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        device = targets.require("device", self.name)
        device.local.set_slowdown(1.0)


class CameraStall(FaultInjector):
    """Freeze the frame source for each window (sensor stall)."""

    layer = "device"
    resource = "device.camera"

    def bind(self, env: Environment, targets: FaultTargets) -> None:
        targets.require("device", self.name)

    def on_enter(self, env: Environment, targets: FaultTargets, window) -> None:
        device = targets.require("device", self.name)
        device.source.pause(window.end - env.now)

    def on_exit(self, env: Environment, targets: FaultTargets, window) -> None:
        pass  # pause() already encoded the resume instant
