"""Recovery invariants: what a healthy controller must do under chaos.

Two properties from the paper's robustness story (§II-A.3, Table IV):

* **Standing probe** — under *total* offload failure the error is zero
  at ``T = 0.1 F_s``, so ``P_o`` must settle at the probe floor
  ``0.1 F_s`` (± one actuation step, the Table IV update clamp
  ``0.1 F_s``) instead of pinning to 0 or thrashing.
* **Re-convergence** — once the path heals, ``P_o`` must climb back to
  a healthy level within a bounded number of control periods; the
  standing probe is precisely what makes this bound small.

Both checks read the recorded ``P_o`` trace, so they apply to *any*
controller (FrameFeedback, AIMD with a matching floor, Headroom, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.windows import FaultWindow
from repro.metrics.timeseries import TimeSeries
from repro.resilience.breaker import BreakerState


@dataclass(frozen=True)
class InvariantCheck:
    """One evaluated invariant: verdict plus the numbers behind it."""

    name: str
    passed: bool
    observed: float
    expected: float
    tolerance: float
    window: Optional[FaultWindow] = None
    detail: str = ""

    def row(self) -> list:
        span = (
            f"[{self.window.start:g},{self.window.end:g})" if self.window else "-"
        )
        return [
            self.name,
            span,
            f"{self.observed:.2f}",
            f"{self.expected:.2f}±{self.tolerance:.2f}",
            "PASS" if self.passed else "FAIL",
        ]


#: seconds of a failure window discarded before judging the settle
SETTLE_SKIP = 8.0

#: minimum window length for the standing-probe check to be meaningful
MIN_PROBE_WINDOW = 12.0


def standing_probe_invariant(
    offload_target: TimeSeries,
    window: FaultWindow,
    frame_rate: float,
    probe_frac: float = 0.1,
    tolerance: Optional[float] = None,
) -> InvariantCheck:
    """``P_o`` settles at ``probe_frac * F_s`` inside a failure window.

    The first :data:`SETTLE_SKIP` seconds of the window are excluded —
    Table IV's ``-0.5 F_s`` clamp needs a couple of periods to unwind a
    full-rate target, and the ``T`` window (3 buckets) must fill with
    failures first.
    """
    if window.duration < MIN_PROBE_WINDOW:
        raise ValueError(
            f"window {window} too short to assert settling "
            f"(need >= {MIN_PROBE_WINDOW} s)"
        )
    expected = probe_frac * frame_rate
    # one actuation step: the Table IV max update, 0.1 F_s
    tol = tolerance if tolerance is not None else 0.1 * frame_rate
    observed = offload_target.mean_over(window.start + SETTLE_SKIP, window.end)
    passed = not math.isnan(observed) and abs(observed - expected) <= tol
    return InvariantCheck(
        name="standing-probe",
        passed=passed,
        observed=observed,
        expected=expected,
        tolerance=tol,
        window=window,
        detail=f"mean P_o over [{window.start + SETTLE_SKIP:g},{window.end:g})",
    )


def reconvergence_invariant(
    offload_target: TimeSeries,
    heal_time: float,
    frame_rate: float,
    threshold_frac: float = 0.6,
    max_periods: int = 30,
    control_period: float = 1.0,
    window: Optional[FaultWindow] = None,
) -> InvariantCheck:
    """``P_o`` re-crosses ``threshold_frac * F_s`` within the bound.

    ``observed`` is the number of control periods from ``heal_time`` to
    the first sample at/above the threshold (``inf`` when it never
    recovers inside the trace).
    """
    if max_periods <= 0:
        raise ValueError(f"max_periods must be positive, got {max_periods}")
    threshold = threshold_frac * frame_rate
    periods = float("inf")
    for t, v in offload_target:
        if t >= heal_time and v >= threshold:
            periods = max(0.0, (t - heal_time) / control_period)
            break
    passed = periods <= max_periods
    return InvariantCheck(
        name="re-convergence",
        passed=passed,
        observed=periods,
        expected=float(max_periods),
        tolerance=0.0,
        window=window,
        detail=f"periods until P_o >= {threshold:.1f} after t={heal_time:g}",
    )


# ----------------------------------------------------------------------
# restart invariants (supervision runs)
# ----------------------------------------------------------------------


def settle_periods_after_restart(
    offload_target: TimeSeries,
    crash_time: float,
    restart_time: float,
    tolerance_fps: float = 1.0,
    control_period: float = 1.0,
) -> Tuple[float, float]:
    """Measure how long a restarted controller takes to re-settle.

    Returns ``(pre_crash_target, periods)`` where ``pre_crash_target``
    is the last recorded ``P_o`` before ``crash_time`` and ``periods``
    counts control periods from ``restart_time`` to the first sample
    at or above ``pre - tolerance_fps`` (``inf`` when it never
    re-settles inside the trace).  Recovery is one-sided on purpose: a
    crash that lands mid-climb has a transient pre-crash target, and a
    restarted controller that keeps climbing *past* it has recovered —
    demanding a band crossing would fail exactly the healthy runs.
    Samples recorded *during* the outage (e.g. the supervisor's decay
    steps) are excluded from both measurements.
    """
    if restart_time < crash_time:
        raise ValueError(
            f"restart t={restart_time:g} precedes crash t={crash_time:g}"
        )
    pre: Optional[float] = None
    for t, v in offload_target:
        if t >= crash_time:
            break
        pre = v
    if pre is None:
        raise ValueError(f"no P_o samples before crash t={crash_time:g}")
    periods = float("inf")
    for t, v in offload_target:
        if t >= restart_time and v >= pre - tolerance_fps:
            periods = max(0.0, (t - restart_time) / control_period)
            break
    return pre, periods


def restart_settle_invariant(
    offload_target: TimeSeries,
    crash_time: float,
    restart_time: float,
    frame_rate: float,
    tolerance_fps: float = 1.0,
    max_periods: float = 3.0,
    control_period: float = 1.0,
    window: Optional[FaultWindow] = None,
    name: str = "warm-restart-settle",
) -> InvariantCheck:
    """A restarted controller re-settles near its pre-crash ``P_o``.

    The tentpole acceptance check: a *warm* restart resumes from the
    checkpoint, so its first post-restart target is already within
    ``tolerance_fps`` of the pre-crash value and ``observed`` is the
    single period the first measure tick takes; a *cold* restart ramps
    from ``initial_target`` under the ``+0.1 F_s`` update clamp and
    needs ~``(P_o / 0.1 F_s)`` periods.  ``observed`` is periods from
    ``restart_time`` to the first in-tolerance sample.
    """
    if max_periods <= 0:
        raise ValueError(f"max_periods must be positive, got {max_periods}")
    pre, periods = settle_periods_after_restart(
        offload_target,
        crash_time,
        restart_time,
        tolerance_fps=tolerance_fps,
        control_period=control_period,
    )
    passed = periods <= max_periods
    return InvariantCheck(
        name=name,
        passed=passed,
        observed=periods,
        expected=float(max_periods),
        tolerance=0.0,
        window=window,
        detail=(
            f"periods after restart t={restart_time:g} until "
            f"P_o >= {pre - tolerance_fps:.1f} (pre-crash {pre:.1f})"
        ),
    )


def restart_ordering_invariant(
    warm_periods: float,
    cold_periods: float,
    window: Optional[FaultWindow] = None,
) -> InvariantCheck:
    """Warm restart re-settles *strictly* faster than cold.

    The whole point of checkpointing: if a cold restart is just as
    fast, the checkpoint carries no information.  ``observed`` is the
    warm settle count, ``expected`` the cold one; two unsettled runs
    (both ``inf``) fail.
    """
    passed = warm_periods < cold_periods
    return InvariantCheck(
        name="warm-beats-cold",
        passed=passed,
        observed=warm_periods,
        expected=cold_periods,
        tolerance=0.0,
        window=window,
        detail="warm vs cold settle periods for the same crash schedule",
    )


# ----------------------------------------------------------------------
# circuit-breaker invariants (resilience runs only)
# ----------------------------------------------------------------------

#: transition log type: ``CircuitBreaker.transitions``
BreakerTransitions = List[Tuple[float, BreakerState]]


def _breaker_state_at(transitions: BreakerTransitions, t: float) -> BreakerState:
    """Breaker state just after ``t`` (initial state is CLOSED)."""
    state = BreakerState.CLOSED
    for when, s in transitions:
        if when > t:
            break
        state = s
    return state


def breaker_trip_invariant(
    transitions: BreakerTransitions,
    window: FaultWindow,
    control_period: float = 1.0,
    max_periods: float = 3.0,
) -> InvariantCheck:
    """The breaker opens within ``max_periods`` of a total-failure onset.

    A breaker that dawdles is pure cost: every frame offloaded between
    onset and trip pays the full deadline in silence.  ``observed`` is
    control periods from ``window.start`` to the first OPEN transition
    (0 when already open at onset; ``inf`` when it never opened).
    """
    if _breaker_state_at(transitions, window.start) is not BreakerState.CLOSED:
        periods = 0.0
    else:
        periods = float("inf")
        for when, state in transitions:
            if when >= window.start and state is BreakerState.OPEN:
                periods = (when - window.start) / control_period
                break
    passed = periods <= max_periods
    return InvariantCheck(
        name="breaker-trip",
        passed=passed,
        observed=periods,
        expected=float(max_periods),
        tolerance=0.0,
        window=window,
        detail=f"periods from onset t={window.start:g} to OPEN",
    )


def breaker_reclose_invariant(
    transitions: BreakerTransitions,
    heal_time: float,
    max_delay: float,
    window: Optional[FaultWindow] = None,
) -> InvariantCheck:
    """The breaker re-closes within ``max_delay`` seconds of healing.

    With exponential backoff capped at ``backoff_max`` the worst case
    is one full ``backoff_max`` sleep started just before the heal,
    plus the trial probe's round trip — callers size ``max_delay``
    accordingly (``backoff_max + deadline + slack``).  ``observed`` is
    seconds from ``heal_time`` until the breaker is CLOSED (0 when it
    never opened or already closed; ``inf`` when it stays open).
    """
    if max_delay <= 0:
        raise ValueError(f"max_delay must be positive, got {max_delay}")
    if _breaker_state_at(transitions, heal_time) is BreakerState.CLOSED:
        delay = 0.0
    else:
        delay = float("inf")
        for when, state in transitions:
            if when >= heal_time and state is BreakerState.CLOSED:
                delay = when - heal_time
                break
    passed = delay <= max_delay
    return InvariantCheck(
        name="breaker-reclose",
        passed=passed,
        observed=delay,
        expected=max_delay,
        tolerance=0.0,
        window=window,
        detail=f"seconds from heal t={heal_time:g} to CLOSED",
    )
